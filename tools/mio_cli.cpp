// mio — command-line front end for the library. Lets a user generate or
// load datasets, inspect them, and run MIO queries (any algorithm, any
// variant) without writing C++.
//
//   mio generate --preset=bird2 --scale=quick --out=birds.bin
//   mio stats    --in=birds.bin
//   mio query    --in=birds.bin --r=4 --k=5 --threads=4 --algo=bigrid
//   mio sweep    --in=birds.bin --r=4,4.2,4.4 --labels=./labels
//   mio convert  --in=birds.bin --out=birds.txt
#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/nested_loop.hpp"
#include "baseline/nl_kdtree.hpp"
#include "baseline/rtree_mbr.hpp"
#include "baseline/simple_grid.hpp"
#include "baseline/theoretical.hpp"
#include "common/argparse.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/mio_engine.hpp"
#include "core/temporal.hpp"
#include "datagen/presets.hpp"
#include "io/dataset_io.hpp"
#include "io/importers.hpp"
#include "object/spatial_sort.hpp"

namespace {

void Usage() {
  std::printf(
      "mio <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --preset=neuron|neuron2|bird|bird2|syn [--scale=quick|full]\n"
      "            [--seed=N] --out=FILE [--format=binary|text]\n"
      "  stats     --in=FILE\n"
      "  query     --in=FILE --r=R [--k=K] [--threads=T] [--delta=D]\n"
      "            [--algo=bigrid|nl|nl-kd|sg|rt|theoretical] [--labels=DIR]\n"
      "  sweep     --in=FILE --r=R1,R2,... [--k=K] [--threads=T] [--labels=DIR]\n"
      "  convert   --in=FILE --out=FILE [--format=binary|text]\n"
      "  import-swc --dir=DIR --out=FILE      (NeuroMorpho morphologies)\n"
      "  import-csv --in=FILE --out=FILE [--id-col=id --x-col=x --y-col=y]\n"
      "             [--z-col=C] [--time-col=C] [--delim=,] [--split=M]\n");
}

bool EndsWith(const std::string& s, const char* suffix) {
  std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

mio::Result<mio::ObjectSet> LoadAny(const std::string& path) {
  if (EndsWith(path, ".txt")) return mio::LoadDatasetText(path);
  return mio::LoadDatasetBinary(path);
}

mio::Status SaveAny(const mio::ObjectSet& set, const std::string& path,
                    const std::string& format) {
  if (format == "text" || (format.empty() && EndsWith(path, ".txt"))) {
    return mio::SaveDatasetText(set, path);
  }
  return mio::SaveDatasetBinary(set, path);
}

int CmdGenerate(const mio::ArgParser& args) {
  mio::datagen::Preset preset;
  std::string name = args.GetString("preset", "bird2");
  if (!mio::datagen::ParsePreset(name, &preset)) {
    std::fprintf(stderr, "unknown preset '%s'\n", name.c_str());
    return 1;
  }
  mio::datagen::Scale scale = args.GetString("scale", "quick") == "full"
                                  ? mio::datagen::Scale::kFull
                                  : mio::datagen::Scale::kQuick;
  std::string out = args.GetString("out", name + ".bin");
  mio::Timer t;
  mio::ObjectSet set = mio::datagen::MakePreset(
      preset, scale, static_cast<std::uint64_t>(args.GetInt("seed", 42)));
  mio::Status st = SaveAny(set, out, args.GetString("format", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s (%.2fs)\n", out.c_str(),
              set.Stats().ToString().c_str(), t.ElapsedSeconds());
  return 0;
}

int CmdStats(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> set = LoadAny(args.GetString("in", ""));
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  const mio::ObjectSet& objects = set.value();
  std::printf("%s\n", objects.Stats().ToString().c_str());
  mio::Aabb box = objects.Bounds();
  std::printf("bounds: [%.2f,%.2f]x[%.2f,%.2f]x[%.2f,%.2f]%s\n", box.min.x,
              box.max.x, box.min.y, box.max.y, box.min.z, box.max.z,
              objects.IsPlanar() ? " (planar)" : "");
  std::printf("in-memory size: %s\n",
              mio::FormatBytes(objects.MemoryUsageBytes()).c_str());
  return 0;
}

void PrintResult(const mio::QueryResult& res, double elapsed) {
  for (const mio::ScoredObject& s : res.topk) {
    std::printf("object %u  tau=%u\n", s.id, s.score);
  }
  const mio::QueryStats& st = res.stats;
  std::printf("time %.4fs (grid %.4f | lb %.4f | ub %.4f | verify %.4f)\n",
              elapsed, st.phases.grid_mapping, st.phases.lower_bounding,
              st.phases.upper_bounding, st.phases.verification);
  if (st.num_candidates > 0) {
    std::printf("candidates %zu, verified %zu, index %s\n", st.num_candidates,
                st.num_verified, mio::FormatBytes(st.index_memory_bytes).c_str());
  }
}

int CmdQuery(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const mio::ObjectSet& set = loaded.value();
  double r = args.GetDouble("r", 4.0);
  std::size_t k = static_cast<std::size_t>(args.GetInt("k", 1));
  int threads = static_cast<int>(args.GetInt("threads", 1));
  std::string algo = args.GetString("algo", "bigrid");

  mio::Timer t;
  if (args.Has("delta")) {
    mio::QueryResult res =
        mio::TemporalMioQuery(set, r, args.GetDouble("delta", 0.0), k);
    PrintResult(res, t.ElapsedSeconds());
    return 0;
  }
  mio::QueryResult res;
  if (algo == "nl") {
    res = mio::NestedLoopQuery(set, r, threads, k);
  } else if (algo == "nl-kd") {
    res = mio::NlKdQuery(set, r, threads, k);
  } else if (algo == "sg") {
    res = mio::SimpleGridQuery(set, r, threads, k);
  } else if (algo == "rt") {
    res = mio::RtreeMbrQuery(set, r, threads, k);
  } else if (algo == "theoretical") {
    mio::TheoreticalIndex theo(set, threads);
    std::printf("(theoretical pre-processing: %.2fs, %s)\n",
                theo.preprocessing_seconds(),
                mio::FormatBytes(theo.MemoryUsageBytes()).c_str());
    res = theo.Query(r, k);
  } else {
    mio::MioEngine engine(set, args.GetString("labels", ""));
    mio::QueryOptions opt;
    opt.k = k;
    opt.threads = threads;
    opt.use_labels = opt.record_labels = args.Has("labels");
    res = engine.Query(r, opt);
  }
  PrintResult(res, t.ElapsedSeconds());
  return 0;
}

int CmdSweep(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const mio::ObjectSet& set = loaded.value();
  mio::MioEngine engine(set, args.GetString("labels", ""));
  mio::QueryOptions opt;
  opt.k = static_cast<std::size_t>(args.GetInt("k", 1));
  opt.threads = static_cast<int>(args.GetInt("threads", 1));
  opt.use_labels = opt.record_labels = true;  // the sweep is labels' use case
  opt.reuse_grid = true;  // same-ceiling queries share the large grid

  std::printf("%8s %10s %10s %12s %10s\n", "r", "winner", "tau", "time[s]",
              "labels");
  for (double r : args.GetDoubleList("r", {4, 6, 8, 10})) {
    bool had = engine.HasLabelsFor(r);
    mio::Timer t;
    mio::QueryResult res = engine.Query(r, opt);
    if (res.topk.empty()) continue;
    std::printf("%8.2f %10u %10u %12.4f %10s\n", r, res.best().id,
                res.best().score, t.ElapsedSeconds(),
                had ? "reused" : "recorded");
  }
  return 0;
}

int CmdConvert(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::string out = args.GetString("out", "");
  mio::Status st = SaveAny(loaded.value(), out, args.GetString("format", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdImportSwc(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> set = mio::LoadSwcDirectory(args.GetString("dir", "."));
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  // Morton-order ids: what the compressed cell bitsets rely on.
  mio::ObjectSet sorted = mio::SortObjectsSpatially(set.value());
  std::string out = args.GetString("out", "neurons.bin");
  mio::Status st = SaveAny(sorted, out, args.GetString("format", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", out.c_str(), sorted.Stats().ToString().c_str());
  return 0;
}

int CmdImportCsv(const mio::ArgParser& args) {
  mio::TrajectoryCsvOptions opt;
  opt.id_column = args.GetString("id-col", "id");
  opt.x_column = args.GetString("x-col", "x");
  opt.y_column = args.GetString("y-col", "y");
  opt.z_column = args.GetString("z-col", "");
  opt.time_column = args.GetString("time-col", "");
  std::string delim = args.GetString("delim", ",");
  if (!delim.empty()) opt.delimiter = delim[0];
  opt.max_points_per_object =
      static_cast<std::size_t>(args.GetInt("split", 0));
  mio::Result<mio::ObjectSet> set =
      mio::LoadTrajectoryCsv(args.GetString("in", ""), opt);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  mio::ObjectSet sorted = mio::SortObjectsSpatially(set.value());
  std::string out = args.GetString("out", "tracks.bin");
  mio::Status st = SaveAny(sorted, out, args.GetString("format", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", out.c_str(), sorted.Stats().ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  std::string cmd = argv[1];
  mio::ArgParser args(argc - 1, argv + 1);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "sweep") return CmdSweep(args);
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "import-swc") return CmdImportSwc(args);
  if (cmd == "import-csv") return CmdImportCsv(args);
  Usage();
  return cmd == "help" || cmd == "--help" ? 0 : 1;
}
