// mio — command-line front end for the library. Lets a user generate or
// load datasets, inspect them, and run MIO queries (any algorithm, any
// variant) without writing C++.
//
//   mio generate --preset=bird2 --scale=quick --out=birds.bin
//   mio stats    --in=birds.bin
//   mio query    --in=birds.bin --r=4 --k=5 --threads=4 --algo=bigrid
//   mio sweep    --in=birds.bin --r=4,4.2,4.4 --labels=./labels
//   mio profile  --in=birds.bin --r=4 --warmup=1 --runs=5
//   mio explain  --in=birds.bin --r=4
//   mio run-workload --spec=work.spec --in=birds.bin --qlog=run.jsonl
//   mio qlog report  --in=run.jsonl
//   mio convert  --in=birds.bin --out=birds.txt
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "baseline/nested_loop.hpp"
#include "baseline/nl_kdtree.hpp"
#include "baseline/rtree_mbr.hpp"
#include "baseline/simple_grid.hpp"
#include "baseline/theoretical.hpp"
#include "common/argparse.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/mio_engine.hpp"
#include "core/temporal.hpp"
#include "datagen/presets.hpp"
#include "geo/kernels.hpp"
#include "io/dataset_io.hpp"
#include "io/importers.hpp"
#include "object/spatial_sort.hpp"
#include "obs/exit_flush.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/qlog.hpp"
#include "obs/stats_sink.hpp"
#include "obs/trace.hpp"
#include "workload/workload_runner.hpp"
#include "workload/workload_spec.hpp"

namespace {

void Usage() {
  std::printf(
      "mio <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --preset=neuron|neuron2|bird|bird2|syn [--scale=quick|full]\n"
      "            [--seed=N] --out=FILE [--format=binary|text]\n"
      "  stats     --in=FILE\n"
      "  query     --in=FILE --r=R [--k=K] [--threads=T] [--delta=D]\n"
      "            [--algo=bigrid|nl|nl-kd|sg|rt|theoretical] [--labels=DIR]\n"
      "            [--deadline-ms=MS] [--memory-budget-mb=MB]\n"
      "            [--trace-out=FILE] [--stats-json=FILE|-]\n"
      "  sweep     --in=FILE --r=R1,R2,... [--k=K] [--threads=T] [--labels=DIR]\n"
      "            [--trace-out=FILE]\n"
      "  profile   --in=FILE --r=R [--k=K] [--threads=T] [--warmup=N]\n"
      "            [--runs=M] [--labels=DIR] [--out=FILE|-]\n"
      "            (repeated measured runs; per-phase medians + hardware\n"
      "             counters when the PMU is available, MIO_PMU=off forces\n"
      "             the timing fallback)\n"
      "  explain   --in=FILE --r=R [--k=K] [--threads=T] [--labels=DIR]\n"
      "            (one query, human-readable pruning-funnel report)\n"
      "  run-workload --spec=FILE [--in=FILE] [--qlog=FILE|-] [--labels=DIR]\n"
      "            [--trace-dir=DIR] [--tail-threshold-ms=MS]\n"
      "            [--tail-slowest=N] [--batch] [--verbose]\n"
      "            (runs the spec's query sequence through one engine:\n"
      "             one mio-qlog-v1 JSONL record per query; Chrome traces\n"
      "             are kept only for tail queries; --batch folds the\n"
      "             queries into one QueryBatch call, amortising grid\n"
      "             builds and label lookups per ceil(r) class)\n"
      "  qlog report --in=FILE [--slowest=N] [--trace-dir=DIR]\n"
      "            [--json=FILE|-]\n"
      "            (aggregates a qlog: p50/p95/p99 latency, per-phase\n"
      "             totals, label hit rate per ceil(r) class, slowest-N)\n"
      "  convert   --in=FILE --out=FILE [--format=binary|text]\n"
      "  import-swc --dir=DIR --out=FILE      (NeuroMorpho morphologies)\n"
      "  import-csv --in=FILE --out=FILE [--id-col=id --x-col=x --y-col=y]\n"
      "             [--z-col=C] [--time-col=C] [--delim=,] [--split=M]\n");
}

/// Reports a failure and maps it to the process exit code for its status
/// code (docs/ROBUSTNESS.md: 0 = OK, distinct nonzero per StatusCode).
int StatusExit(const mio::Status& st) {
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return mio::ExitCodeFor(st.code());
}

bool EndsWith(const std::string& s, const char* suffix) {
  std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

mio::Result<mio::ObjectSet> LoadAny(const std::string& path) {
  if (EndsWith(path, ".txt")) return mio::LoadDatasetText(path);
  return mio::LoadDatasetBinary(path);
}

mio::Status SaveAny(const mio::ObjectSet& set, const std::string& path,
                    const std::string& format) {
  if (format == "text" || (format.empty() && EndsWith(path, ".txt"))) {
    return mio::SaveDatasetText(set, path);
  }
  return mio::SaveDatasetBinary(set, path);
}

int CmdGenerate(const mio::ArgParser& args) {
  mio::datagen::Preset preset;
  std::string name = args.GetString("preset", "bird2");
  if (!mio::datagen::ParsePreset(name, &preset)) {
    std::fprintf(stderr, "unknown preset '%s'\n", name.c_str());
    return 1;
  }
  mio::datagen::Scale scale = args.GetString("scale", "quick") == "full"
                                  ? mio::datagen::Scale::kFull
                                  : mio::datagen::Scale::kQuick;
  std::string out = args.GetString("out", name + ".bin");
  mio::Timer t;
  mio::ObjectSet set = mio::datagen::MakePreset(
      preset, scale, static_cast<std::uint64_t>(args.GetInt("seed", 42)));
  mio::Status st = SaveAny(set, out, args.GetString("format", ""));
  if (!st.ok()) return StatusExit(st);
  std::printf("wrote %s: %s (%.2fs)\n", out.c_str(),
              set.Stats().ToString().c_str(), t.ElapsedSeconds());
  return 0;
}

int CmdStats(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> set = LoadAny(args.GetString("in", ""));
  if (!set.ok()) return StatusExit(set.status());
  const mio::ObjectSet& objects = set.value();
  std::printf("%s\n", objects.Stats().ToString().c_str());
  mio::Aabb box = objects.Bounds();
  std::printf("bounds: [%.2f,%.2f]x[%.2f,%.2f]x[%.2f,%.2f]%s\n", box.min.x,
              box.max.x, box.min.y, box.max.y, box.min.z, box.max.z,
              objects.IsPlanar() ? " (planar)" : "");
  std::printf("in-memory size: %s\n",
              mio::FormatBytes(objects.MemoryUsageBytes()).c_str());
  return 0;
}

void PrintResult(const mio::QueryResult& res, double elapsed) {
  for (const mio::ScoredObject& s : res.topk) {
    std::printf("object %u  tau=%u\n", s.id, s.score);
  }
  if (!res.complete) {
    std::printf("INCOMPLETE (%s) — answer above is best-so-far\n",
                res.status.ToString().c_str());
  }
  if (res.stats.degradation_level > 0) {
    std::printf("degraded: level %u (memory budget shed optional work)\n",
                res.stats.degradation_level);
  }
  const mio::QueryStats& st = res.stats;
  std::printf("time %.4fs (grid %.4f | lb %.4f | ub %.4f | verify %.4f)\n",
              elapsed, st.phases.grid_mapping, st.phases.lower_bounding,
              st.phases.upper_bounding, st.phases.verification);
  if (st.num_candidates > 0) {
    std::printf("candidates %zu, verified %zu, index %s\n", st.num_candidates,
                st.num_verified, mio::FormatBytes(st.index_memory_bytes).c_str());
  }
}

// Shared tail of `query`/`sweep`: dump the collected trace and/or the
// machine-readable stats document if the user asked for them.
int EmitObservability(const mio::ArgParser& args, const mio::QueryResult& res,
                      mio::obs::RunInfo info) {
  if (args.Has("trace-out")) {
    std::string path = args.GetString("trace-out", "trace.json");
    mio::Status st = mio::obs::Tracer::Instance().WriteChromeTrace(path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::size_t dropped = mio::obs::Tracer::Instance().DroppedEvents();
    std::printf("trace: %s (%zu threads%s)\n", path.c_str(),
                mio::obs::Tracer::Instance().NumThreads(),
                dropped > 0 ? ", ring overflowed" : "");
  }
  if (args.Has("stats-json")) {
    std::string path = args.GetString("stats-json", "-");
    mio::obs::MetricsSnapshot metrics = mio::obs::SnapshotMetrics();
    // The QueryResult overload adds the "outcome" section (status /
    // complete / degradation level) so harnesses can detect degraded or
    // incomplete runs without parsing stderr.
    mio::Status st = mio::obs::WriteTextFile(
        path, mio::obs::StatsJson(res, info, &metrics) + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (path != "-") std::printf("stats: %s\n", path.c_str());
  }
  return 0;
}

// Arms the exit-time flush backstop so an interrupted query still leaves
// valid --trace-out / --stats-json artifacts (truncation-marked). Disarm
// after the normal emission succeeds.
void ArmObservabilityBackstop(const mio::ArgParser& args,
                              const mio::obs::RunInfo& info) {
  if (!args.Has("trace-out") && !args.Has("stats-json")) return;
  mio::obs::ExitFlushConfig cfg;
  if (args.Has("trace-out")) {
    cfg.trace_path = args.GetString("trace-out", "trace.json");
  }
  if (args.Has("stats-json")) {
    cfg.stats_path = args.GetString("stats-json", "-");
    mio::obs::JsonWriter w;
    w.BeginObject();
    w.Key("schema").String("mio-stats-v1");
    w.Key("git").String(mio::obs::GitDescribe());
    w.Key("bench").String(info.bench);
    w.Key("dataset").String(info.dataset);
    w.Key("algo").String(info.algo);
    w.Key("truncated").Bool(true);
    w.EndObject();
    cfg.stats_document = std::move(w).Take() + "\n";
  }
  mio::obs::ArmExitFlush(std::move(cfg));
}

int CmdQuery(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) return StatusExit(loaded.status());
  const mio::ObjectSet& set = loaded.value();
  double r = args.GetDouble("r", 4.0);
  std::size_t k = static_cast<std::size_t>(args.GetInt("k", 1));
  int threads = static_cast<int>(args.GetInt("threads", 1));
  std::string algo = args.GetString("algo", "bigrid");
  if (args.Has("trace-out")) mio::obs::Tracer::Instance().SetEnabled(true);
  mio::obs::ResetMetrics();
  mio::MemoryTracker::Instance().Observe("dataset", set.MemoryUsageBytes());

  mio::obs::RunInfo info;
  info.bench = "mio_cli";
  info.dataset = args.GetString("in", "");
  info.algo = args.Has("delta") ? "temporal" : algo;
  info.r = r;
  info.k = k;
  info.threads = threads;
  ArmObservabilityBackstop(args, info);

  mio::Timer t;
  mio::QueryResult res;
  if (args.Has("delta")) {
    algo = "temporal";
    res = mio::TemporalMioQuery(set, r, args.GetDouble("delta", 0.0), k);
  } else if (algo == "nl") {
    res = mio::NestedLoopQuery(set, r, threads, k);
  } else if (algo == "nl-kd") {
    res = mio::NlKdQuery(set, r, threads, k);
  } else if (algo == "sg") {
    res = mio::SimpleGridQuery(set, r, threads, k);
  } else if (algo == "rt") {
    res = mio::RtreeMbrQuery(set, r, threads, k);
  } else if (algo == "theoretical") {
    mio::TheoreticalIndex theo(set, threads);
    std::printf("(theoretical pre-processing: %.2fs, %s)\n",
                theo.preprocessing_seconds(),
                mio::FormatBytes(theo.MemoryUsageBytes()).c_str());
    res = theo.Query(r, k);
  } else {
    mio::MioEngine engine(set, args.GetString("labels", ""));
    mio::QueryOptions opt;
    opt.k = k;
    opt.threads = threads;
    opt.use_labels = opt.record_labels = args.Has("labels");
    opt.deadline_ms = args.GetDouble("deadline-ms", 0.0);
    opt.memory_budget_bytes = static_cast<std::size_t>(
        args.GetDouble("memory-budget-mb", 0.0) * 1024.0 * 1024.0);
    res = engine.Query(r, opt);
  }
  double elapsed = t.ElapsedSeconds();
  PrintResult(res, elapsed);

  info.algo = algo;
  info.wall_seconds = elapsed;
  int obs_rc = EmitObservability(args, res, info);
  mio::obs::DisarmExitFlush();
  if (obs_rc != 0) return obs_rc;
  // A guardrail-terminated query still printed its best-so-far answer;
  // the exit code tells scripts which limit fired.
  return mio::ExitCodeFor(res.status.code());
}

int CmdSweep(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) return StatusExit(loaded.status());
  const mio::ObjectSet& set = loaded.value();
  mio::MioEngine engine(set, args.GetString("labels", ""));
  mio::QueryOptions opt;
  opt.k = static_cast<std::size_t>(args.GetInt("k", 1));
  opt.threads = static_cast<int>(args.GetInt("threads", 1));
  opt.use_labels = opt.record_labels = true;  // the sweep is labels' use case
  opt.reuse_grid = true;  // same-ceiling queries share the large grid
  if (args.Has("trace-out")) mio::obs::Tracer::Instance().SetEnabled(true);

  mio::obs::RunInfo info;
  info.bench = "mio_cli_sweep";
  info.dataset = args.GetString("in", "");
  info.algo = "bigrid-label";
  info.k = opt.k;
  info.threads = opt.threads;
  ArmObservabilityBackstop(args, info);

  std::printf("%8s %10s %10s %12s %10s\n", "r", "winner", "tau", "time[s]",
              "labels");
  mio::QueryResult last;
  double last_r = 0.0, last_wall = 0.0;
  for (double r : args.GetDoubleList("r", {4, 6, 8, 10})) {
    bool had = engine.HasLabelsFor(r);
    mio::Timer t;
    mio::QueryResult res = engine.Query(r, opt);
    if (res.topk.empty()) continue;
    double elapsed = t.ElapsedSeconds();
    std::printf("%8.2f %10u %10u %12.4f %10s\n", r, res.best().id,
                res.best().score, elapsed, had ? "reused" : "recorded");
    last = std::move(res);
    last_r = r;
    last_wall = elapsed;
  }

  info.r = last_r;
  info.wall_seconds = last_wall;
  int obs_rc = EmitObservability(args, last, info);
  mio::obs::DisarmExitFlush();
  return obs_rc;
}

// --- mio profile -----------------------------------------------------------

/// Median over the measured runs of one double drawn per run.
template <typename F>
double MedianOver(const std::vector<mio::QueryStats>& runs, F get) {
  std::vector<double> v;
  v.reserve(runs.size());
  for (const mio::QueryStats& s : runs) v.push_back(get(s));
  return mio::obs::Median(std::move(v));
}

/// Element-wise median of one phase's PMU counts across the runs.
mio::obs::PmuCounts PmuMedianOver(
    const std::vector<mio::QueryStats>& runs,
    mio::obs::PmuCounts mio::PhaseHardware::*phase) {
  mio::obs::PmuCounts out;
  for (int e = 0; e < mio::obs::kNumPmuEvents; ++e) {
    mio::obs::PmuEvent pe = static_cast<mio::obs::PmuEvent>(e);
    double med = MedianOver(runs, [&](const mio::QueryStats& s) {
      return static_cast<double>((s.hardware.*phase).Get(pe));
    });
    out.Set(pe, static_cast<std::uint64_t>(med + 0.5));
  }
  for (const mio::QueryStats& s : runs) out.valid |= (s.hardware.*phase).valid;
  return out;
}

void WriteProfilePmu(mio::obs::JsonWriter& w, const char* key,
                     const mio::obs::PmuCounts& c) {
  if (c.Empty()) return;
  w.Key(key).BeginObject();
  for (int e = 0; e < mio::obs::kNumPmuEvents; ++e) {
    mio::obs::PmuEvent pe = static_cast<mio::obs::PmuEvent>(e);
    std::uint64_t v = c.Get(pe);
    if (v == 0 && !c.valid) continue;  // timing tier: task_clock_ns only
    w.Key(mio::obs::PmuEventName(pe)).UInt(v);
  }
  if (c.valid) {
    w.Key("ipc").Double(c.Ipc());
    w.Key("cache_miss_rate").Double(c.CacheMissRate());
  }
  w.EndObject();
}

int CmdProfile(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) return StatusExit(loaded.status());
  const mio::ObjectSet& set = loaded.value();
  double r = args.GetDouble("r", 4.0);
  std::size_t k = static_cast<std::size_t>(args.GetInt("k", 1));
  int threads = static_cast<int>(args.GetInt("threads", 1));
  int warmup = std::max(0, static_cast<int>(args.GetInt("warmup", 1)));
  int runs = std::max(1, static_cast<int>(args.GetInt("runs", 5)));

  mio::MioEngine engine(set, args.GetString("labels", ""));
  mio::QueryOptions opt;
  opt.k = k;
  opt.threads = threads;
  opt.use_labels = opt.record_labels = args.Has("labels");

  for (int i = 0; i < warmup; ++i) (void)engine.Query(r, opt);

  std::vector<double> wall;
  std::vector<mio::QueryStats> stats;
  for (int i = 0; i < runs; ++i) {
    mio::Timer t;
    mio::QueryResult res = engine.Query(r, opt);
    if (!res.status.ok()) return StatusExit(res.status);
    wall.push_back(t.ElapsedSeconds());
    stats.push_back(std::move(res.stats));
  }

  const mio::obs::PmuTier tier = mio::obs::ActivePmuTier();
  mio::obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("mio-profile-v1");
  w.Key("git").String(mio::obs::GitDescribe());
  w.Key("dataset").String(args.GetString("in", ""));
  w.Key("algo").String(args.Has("labels") ? "bigrid-label" : "bigrid");
  w.Key("params").BeginObject();
  w.Key("r").Double(r);
  w.Key("k").UInt(k);
  w.Key("threads").Int(threads);
  w.Key("warmup").Int(warmup);
  w.Key("runs").Int(runs);
  w.EndObject();
  w.Key("kernel_tier").String(mio::KernelTierName(mio::ActiveKernelTier()));
  w.Key("pmu_tier").String(mio::obs::PmuTierName(tier));
  // Machine-detectable marker that hardware counters were unavailable and
  // only the steady-clock timing story is present.
  if (tier == mio::obs::PmuTier::kTiming) w.Key("fallback").String("timing");
  {
    std::vector<double> sorted = wall;
    w.Key("wall_seconds").BeginObject();
    w.Key("median").Double(mio::obs::Median(sorted));
    w.Key("min").Double(*std::min_element(wall.begin(), wall.end()));
    w.Key("max").Double(*std::max_element(wall.begin(), wall.end()));
    w.EndObject();
  }
  w.Key("phases").BeginObject();
  w.Key("label_input").Double(MedianOver(
      stats, [](const mio::QueryStats& s) { return s.phases.label_input; }));
  w.Key("grid_mapping").Double(MedianOver(
      stats, [](const mio::QueryStats& s) { return s.phases.grid_mapping; }));
  w.Key("lower_bounding").Double(MedianOver(
      stats, [](const mio::QueryStats& s) { return s.phases.lower_bounding; }));
  w.Key("upper_bounding").Double(MedianOver(
      stats, [](const mio::QueryStats& s) { return s.phases.upper_bounding; }));
  w.Key("verification").Double(MedianOver(
      stats, [](const mio::QueryStats& s) { return s.phases.verification; }));
  w.Key("total").Double(MedianOver(
      stats, [](const mio::QueryStats& s) { return s.phases.Total(); }));
  w.EndObject();
  {
    mio::obs::PmuCounts label_input =
        PmuMedianOver(stats, &mio::PhaseHardware::label_input);
    mio::obs::PmuCounts grid =
        PmuMedianOver(stats, &mio::PhaseHardware::grid_mapping);
    mio::obs::PmuCounts lb =
        PmuMedianOver(stats, &mio::PhaseHardware::lower_bounding);
    mio::obs::PmuCounts ub =
        PmuMedianOver(stats, &mio::PhaseHardware::upper_bounding);
    mio::obs::PmuCounts verify =
        PmuMedianOver(stats, &mio::PhaseHardware::verification);
    mio::obs::PmuCounts total = label_input;
    total += grid;
    total += lb;
    total += ub;
    total += verify;
    w.Key("hardware").BeginObject();
    w.Key("phases").BeginObject();
    WriteProfilePmu(w, "label_input", label_input);
    WriteProfilePmu(w, "grid_mapping", grid);
    WriteProfilePmu(w, "lower_bounding", lb);
    WriteProfilePmu(w, "upper_bounding", ub);
    WriteProfilePmu(w, "verification", verify);
    WriteProfilePmu(w, "total", total);
    w.EndObject();
    if (total.valid) {
      w.Key("derived").BeginObject();
      w.Key("cycles_per_point")
          .Double(MedianOver(stats, [](const mio::QueryStats& s) {
            return s.total_points > 0
                       ? static_cast<double>(s.hardware.Total().Get(
                             mio::obs::PmuEvent::kCycles)) /
                             static_cast<double>(s.total_points)
                       : 0.0;
          }));
      w.Key("cycles_per_candidate")
          .Double(MedianOver(stats, [](const mio::QueryStats& s) {
            return s.num_verified > 0
                       ? static_cast<double>(s.hardware.verification.Get(
                             mio::obs::PmuEvent::kCycles)) /
                             static_cast<double>(s.num_verified)
                       : 0.0;
          }));
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();

  std::string doc = std::move(w).Take();
  std::string error;
  if (!mio::obs::ValidateJson(doc, &error)) {
    std::fprintf(stderr, "internal error: profile JSON invalid: %s\n",
                 error.c_str());
    return 1;
  }
  std::string out = args.GetString("out", "-");
  mio::Status st = mio::obs::WriteTextFile(out, doc + "\n");
  if (!st.ok()) return StatusExit(st);
  if (out != "-") {
    std::printf("profile: %s (%d runs, pmu tier %s)\n", out.c_str(), runs,
                mio::obs::PmuTierName(tier));
  }
  return 0;
}

// --- mio explain -----------------------------------------------------------

int CmdExplain(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) return StatusExit(loaded.status());
  const mio::ObjectSet& set = loaded.value();
  double r = args.GetDouble("r", 4.0);
  std::size_t k = static_cast<std::size_t>(args.GetInt("k", 1));
  int threads = static_cast<int>(args.GetInt("threads", 1));

  mio::MioEngine engine(set, args.GetString("labels", ""));
  mio::QueryOptions opt;
  opt.k = k;
  opt.threads = threads;
  opt.use_labels = opt.record_labels = args.Has("labels");
  mio::obs::ResetMetrics();  // label cache hit/miss counters, this query only

  mio::Timer t;
  mio::QueryResult res = engine.Query(r, opt);
  double elapsed = t.ElapsedSeconds();
  const mio::QueryStats& st = res.stats;
  const std::size_t n = set.size();

  auto pct = [](std::size_t num, std::size_t den) {
    return den > 0 ? 100.0 * static_cast<double>(num) /
                         static_cast<double>(den)
                   : 0.0;
  };

  std::printf("explain: %s  r=%.3g k=%zu threads=%d\n",
              args.GetString("in", "").c_str(), r, k, threads);
  std::printf("tiers: kernel=%s pmu=%s\n",
              mio::KernelTierName(mio::ActiveKernelTier()),
              mio::obs::PmuTierName(mio::obs::ActivePmuTier()));
  std::printf("\npruning funnel (paper §IV):\n");
  std::printf("  objects               %12zu  (%zu points)\n", n,
              st.total_points);
  std::printf("  lower-bounding        tau_low_max=%u (threshold for pruning)\n",
              st.tau_low_max);
  std::printf("  ub-survivors          %12zu  (%.2f%% of objects enter the "
              "candidate queue)\n",
              st.num_candidates, pct(st.num_candidates, n));
  std::printf("  verified exactly      %12zu  (%.2f%% of candidates; %zu "
              "early-terminated by the queue bound)\n",
              st.num_verified, pct(st.num_verified, st.num_candidates),
              st.num_candidates > st.num_verified
                  ? st.num_candidates - st.num_verified
                  : 0);
  if (!res.topk.empty()) {
    std::printf("  winner                object %u  tau=%u\n", res.best().id,
                res.best().score);
  }
  std::printf("\nwork: %zu distance computations, cells small/large %zu/%zu\n",
              st.distance_computations, st.cells_small, st.cells_large);
  if (opt.use_labels) {
    mio::obs::MetricsSnapshot m = mio::obs::SnapshotMetrics();
    std::uint64_t hits = m.counters[static_cast<std::size_t>(
        mio::obs::Counter::kLabelCacheHits)];
    std::uint64_t misses = m.counters[static_cast<std::size_t>(
        mio::obs::Counter::kLabelCacheMisses)];
    std::printf("labels: %s (%zu points pruned by labels; cache hits %llu, "
                "misses %llu)\n",
                mio::LabelOutcomeName(st.label_outcome),
                st.points_pruned_by_labels,
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));
  } else {
    std::printf("labels: off (pass --labels=DIR to record/reuse)\n");
  }
  std::printf("degradation: %s\n",
              st.degradation_level == 0
                  ? "none"
                  : (std::string("level ") +
                     std::to_string(st.degradation_level))
                        .c_str());
  std::printf("outcome: %s%s\n", mio::StatusCodeName(res.status.code()),
              res.complete ? "" : " (incomplete — best-so-far answer)");
  std::printf("time: %.4fs (grid %.4f | lb %.4f | ub %.4f | verify %.4f)\n",
              elapsed, st.phases.grid_mapping, st.phases.lower_bounding,
              st.phases.upper_bounding, st.phases.verification);
  return mio::ExitCodeFor(res.status.code());
}

// --- mio run-workload / mio qlog report -------------------------------------

int CmdRunWorkload(const mio::ArgParser& args) {
  if (!args.Has("spec")) {
    std::fprintf(stderr, "run-workload: --spec=FILE is required\n");
    return 1;
  }
  mio::Result<mio::WorkloadSpec> spec_res =
      mio::LoadWorkloadSpec(args.GetString("spec", ""));
  if (!spec_res.ok()) return StatusExit(spec_res.status());
  mio::WorkloadSpec spec = std::move(spec_res).value();

  std::string dataset = args.GetString("in", spec.dataset);
  if (dataset.empty()) {
    std::fprintf(stderr,
                 "run-workload: no dataset (--in=FILE or a `dataset` line "
                 "in the spec)\n");
    return 1;
  }
  mio::Result<mio::ObjectSet> loaded = LoadAny(dataset);
  if (!loaded.ok()) return StatusExit(loaded.status());
  mio::obs::ResetMetrics();
  mio::MemoryTracker::Instance().Observe("dataset",
                                         loaded.value().MemoryUsageBytes());

  mio::WorkloadRunOptions opts;
  opts.dataset_name = dataset;
  opts.qlog_path = args.GetString("qlog", "");
  opts.trace_dir = args.GetString("trace-dir", "");
  opts.tail.threshold_seconds =
      args.GetDouble("tail-threshold-ms", 0.0) / 1000.0;
  opts.tail.slowest_n =
      static_cast<std::size_t>(args.GetInt("tail-slowest", 0));
  opts.label_dir = args.GetString("labels", "");
  opts.batch = args.Has("batch");
  opts.verbose = args.Has("verbose");

  mio::Result<mio::WorkloadRunSummary> run =
      mio::RunWorkload(loaded.value(), spec, opts);
  if (!run.ok()) return StatusExit(run.status());
  const mio::WorkloadRunSummary& s = run.value();

  std::printf("workload %s: %zu queries in %.3fs (%zu failed, %zu "
              "incomplete)\n",
              spec.name.empty() ? "(unnamed)" : spec.name.c_str(), s.queries,
              s.wall_seconds, s.failed, s.incomplete);
  if (!opts.qlog_path.empty() && opts.qlog_path != "-") {
    std::printf("qlog: %s (%zu records)\n", opts.qlog_path.c_str(),
                s.qlog_records);
  }
  if (opts.tail.enabled()) {
    std::printf("tail: %zu queries", s.tail_indices.size());
    if (!opts.trace_dir.empty()) {
      std::printf(", %zu traces in %s (%zu evicted)", s.traces_written,
                  opts.trace_dir.c_str(), s.traces_evicted);
    }
    std::printf("\n");
  }
  mio::obs::MetricsSnapshot m = mio::obs::SnapshotMetrics();
  if (opts.batch) {
    std::printf(
        "batch: %llu classes, %llu grid builds saved, %llu posting bytes "
        "shared, %llu cells partitioned\n",
        static_cast<unsigned long long>(m.counters[static_cast<std::size_t>(
            mio::obs::Counter::kBatchClasses)]),
        static_cast<unsigned long long>(m.counters[static_cast<std::size_t>(
            mio::obs::Counter::kBatchGridBuildsSaved)]),
        static_cast<unsigned long long>(m.counters[static_cast<std::size_t>(
            mio::obs::Counter::kBatchPostingsBytesShared)]),
        static_cast<unsigned long long>(m.counters[static_cast<std::size_t>(
            mio::obs::Counter::kBatchCellsPartitioned)]));
  }
  std::uint64_t hits = m.counters[static_cast<std::size_t>(
      mio::obs::Counter::kLabelCacheHits)];
  std::uint64_t misses = m.counters[static_cast<std::size_t>(
      mio::obs::Counter::kLabelCacheMisses)];
  if (hits + misses > 0) {
    std::printf("labels: %llu cache hits, %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses));
  }
  return 0;
}

int CmdQlogReport(const mio::ArgParser& args) {
  if (!args.Has("in")) {
    std::fprintf(stderr, "qlog report: --in=FILE is required\n");
    return 1;
  }
  mio::Result<std::vector<mio::obs::QlogRecord>> records =
      mio::obs::LoadQlogFile(args.GetString("in", ""));
  if (!records.ok()) return StatusExit(records.status());
  std::size_t slowest_n =
      static_cast<std::size_t>(args.GetInt("slowest", 5));
  std::string trace_dir = args.GetString("trace-dir", "");
  mio::obs::QlogReport report =
      mio::obs::BuildQlogReport(records.value(), slowest_n);
  if (args.Has("json")) {
    std::string doc = mio::obs::QlogReportToJson(report, trace_dir);
    std::string error;
    if (!mio::obs::ValidateJson(doc, &error)) {
      std::fprintf(stderr, "internal error: report JSON invalid: %s\n",
                   error.c_str());
      return 1;
    }
    std::string out = args.GetString("json", "-");
    mio::Status st = mio::obs::WriteTextFile(out, doc + "\n");
    if (!st.ok()) return StatusExit(st);
    if (out != "-") std::printf("report: %s\n", out.c_str());
  } else {
    std::fputs(mio::obs::FormatQlogReport(report, trace_dir).c_str(), stdout);
  }
  return 0;
}

int CmdConvert(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> loaded = LoadAny(args.GetString("in", ""));
  if (!loaded.ok()) return StatusExit(loaded.status());
  std::string out = args.GetString("out", "");
  mio::Status st = SaveAny(loaded.value(), out, args.GetString("format", ""));
  if (!st.ok()) return StatusExit(st);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdImportSwc(const mio::ArgParser& args) {
  mio::Result<mio::ObjectSet> set = mio::LoadSwcDirectory(args.GetString("dir", "."));
  if (!set.ok()) return StatusExit(set.status());
  // Morton-order ids: what the compressed cell bitsets rely on.
  mio::ObjectSet sorted = mio::SortObjectsSpatially(set.value());
  std::string out = args.GetString("out", "neurons.bin");
  mio::Status st = SaveAny(sorted, out, args.GetString("format", ""));
  if (!st.ok()) return StatusExit(st);
  std::printf("wrote %s: %s\n", out.c_str(), sorted.Stats().ToString().c_str());
  return 0;
}

int CmdImportCsv(const mio::ArgParser& args) {
  mio::TrajectoryCsvOptions opt;
  opt.id_column = args.GetString("id-col", "id");
  opt.x_column = args.GetString("x-col", "x");
  opt.y_column = args.GetString("y-col", "y");
  opt.z_column = args.GetString("z-col", "");
  opt.time_column = args.GetString("time-col", "");
  std::string delim = args.GetString("delim", ",");
  if (!delim.empty()) opt.delimiter = delim[0];
  opt.max_points_per_object =
      static_cast<std::size_t>(args.GetInt("split", 0));
  mio::Result<mio::ObjectSet> set =
      mio::LoadTrajectoryCsv(args.GetString("in", ""), opt);
  if (!set.ok()) return StatusExit(set.status());
  mio::ObjectSet sorted = mio::SortObjectsSpatially(set.value());
  std::string out = args.GetString("out", "tracks.bin");
  mio::Status st = SaveAny(sorted, out, args.GetString("format", ""));
  if (!st.ok()) return StatusExit(st);
  std::printf("wrote %s: %s\n", out.c_str(), sorted.Stats().ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  std::string cmd = argv[1];
  mio::ArgParser args(argc - 1, argv + 1);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "sweep") return CmdSweep(args);
  if (cmd == "profile") return CmdProfile(args);
  if (cmd == "explain") return CmdExplain(args);
  if (cmd == "run-workload") return CmdRunWorkload(args);
  if (cmd == "qlog") {
    if (argc >= 3 && std::string(argv[2]) == "report") {
      return CmdQlogReport(mio::ArgParser(argc - 2, argv + 2));
    }
    std::fprintf(stderr, "usage: mio qlog report --in=FILE\n");
    return 1;
  }
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "import-swc") return CmdImportSwc(args);
  if (cmd == "import-csv") return CmdImportCsv(args);
  Usage();
  return cmd == "help" || cmd == "--help" ? 0 : 1;
}
