// Extension bench: the fine-grained threshold sweep workload the paper's
// introduction motivates ("users would utilize MIO queries while varying
// the distance threshold r ... thresholds are usually fine-grained").
// Compares, over a sweep of radii under a shared ceiling:
//   BIGrid            — rebuild everything per query (the paper's mode);
//   BIGrid-label      — label reuse (the paper's §III-D);
//   BIGrid-label+grid — labels plus this library's cached large grid
//                       (cells, memoised b_adj, point groups).
//
//   ./bench_sweep_reuse [--datasets=neuron,bird2] [--rbase=4]
//                       [--steps=5] [--full]
#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  double rbase = args.GetDouble("rbase", 4.0);
  int steps = static_cast<int>(args.GetInt("steps", 5));
  std::vector<std::string> names =
      args.GetStringList("datasets", {"neuron", "bird2", "syn"});

  // Fine-grained sweep under one ceiling: rbase, rbase-0.1, ...
  std::vector<double> radii;
  for (int i = 0; i < steps; ++i) radii.push_back(rbase - 0.1 * i);

  mio::bench::Header("Extension: fine-grained sweep, label + grid reuse");
  std::printf("%-10s %-22s %14s %16s\n", "dataset", "mode", "sweep-time[s]",
              "per-query[s]");

  for (const std::string& name : names) {
    mio::datagen::Preset preset;
    if (!mio::datagen::ParsePreset(name, &preset)) continue;
    mio::ObjectSet set = mio::datagen::MakePreset(preset, scale);

    struct Mode {
      const char* label;
      bool use_labels;
      bool reuse_grid;
    };
    const Mode modes[] = {
        {"BIGrid (rebuild)", false, false},
        {"BIGrid-label", true, false},
        {"BIGrid-label+grid", true, true},
    };
    std::uint32_t reference = 0;
    bool reference_set = false;
    for (const Mode& mode : modes) {
      mio::MioEngine engine(set);
      mio::QueryOptions opt;
      opt.use_labels = opt.record_labels = mode.use_labels;
      opt.reuse_grid = mode.reuse_grid;
      mio::Timer t;
      std::uint32_t last_score = 0;
      for (double r : radii) {
        last_score = engine.Query(r, opt).best().score;
      }
      double elapsed = t.ElapsedSeconds();
      std::printf("%-10s %-22s %14s %16s\n", name.c_str(), mode.label,
                  mio::bench::Sec(elapsed).c_str(),
                  mio::bench::Sec(elapsed / radii.size()).c_str());
      // All modes must end the sweep on the same answer.
      if (!reference_set) {
        reference = last_score;
        reference_set = true;
      } else if (last_score != reference) {
        std::printf("ERROR: mode '%s' disagrees (%u vs %u)\n", mode.label,
                    last_score, reference);
        return 1;
      }
    }
  }
  return 0;
}
