// Table I — dataset statistics. Regenerates the paper's table for the
// synthetic stand-ins at the selected scale, plus the target (paper)
// sizes for reference and the interaction level at r = 4 (the winner's
// score), which documents how dense each analogue is.
//
//   ./bench_table1_datasets [--full] [--datasets=...] [--skip-scores]
#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  bool skip_scores = args.GetBool("skip-scores", false);

  mio::bench::Header("Table I: dataset statistics");
  std::printf("%-10s %10s %10s %12s %10s %10s %14s %12s\n", "dataset", "n",
              "m", "nm", "paper_n", "paper_m", "gen_time[s]",
              "tau(o*)@r=4");
  for (mio::datagen::Preset preset : mio::bench::SelectDatasets(args)) {
    mio::Timer timer;
    mio::ObjectSet set = mio::datagen::MakePreset(preset, scale);
    double gen_time = timer.ElapsedSeconds();
    mio::DatasetStats stats = set.Stats();
    std::size_t paper_n = 0, paper_m = 0;
    mio::datagen::PresetTargetSize(preset, mio::datagen::Scale::kFull,
                                   &paper_n, &paper_m);
    std::string score = "-";
    if (!skip_scores) {
      mio::MioEngine engine(set);
      mio::QueryResult res = engine.Query(4.0);
      score = std::to_string(res.best().score) + " (" +
              std::to_string(static_cast<int>(100.0 * res.best().score /
                                              (stats.n > 1 ? stats.n - 1 : 1))) +
              "%)";
    }
    std::printf("%-10s %10zu %10.0f %12zu %10zu %10zu %14.3f %12s\n",
                mio::datagen::PresetName(preset).c_str(), stats.n, stats.m,
                stats.nm, paper_n, paper_m, gen_time, score.c_str());
  }
  return 0;
}
