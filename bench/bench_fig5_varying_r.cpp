// Fig. 5 — the headline single-core experiment: query time (a-e) and
// memory usage (f-j) while varying the distance threshold r, for NL, SG,
// BIGrid and BIGrid-label on every dataset.
//
// Protocol notes mirroring the paper:
//  * everything is built online, per query; no warm state except labels;
//  * BIGrid-label times a query that loads labels recorded by an earlier
//    (untimed) BIGrid run with the same ceil(r) — footnote 8's setup;
//  * memory is the index-structure footprint (grid + bitsets + lists).
//
//   ./bench_fig5_varying_r [--full] [--datasets=...] [--r=4,6,8,10]
//                          [--algos=nl,sg,bigrid,bigrid-label]
//                          [--timeout=120] [--repeats=1]
#include <filesystem>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  std::vector<double> radii = args.GetDoubleList("r", {4, 6, 8, 10});
  std::vector<std::string> algos =
      args.GetStringList("algos", {"nl", "sg", "bigrid", "bigrid-label"});
  double timeout = args.GetDouble("timeout", 120.0);
  int repeats = static_cast<int>(args.GetInt("repeats", 1));

  mio::bench::Header("Fig. 5: single-core query time and memory, varying r");
  std::printf("%-10s %-14s %6s %12s %12s %10s %12s\n", "dataset", "algo", "r",
              "time[s]", "memory[MiB]", "tau(o*)", "verified");

  for (mio::datagen::Preset preset : mio::bench::SelectDatasets(args)) {
    mio::ObjectSet set = mio::datagen::MakePreset(preset, scale);
    std::string name = mio::datagen::PresetName(preset);

    // Label store on disk so BIGrid-label pays the Label-Input I/O.
    std::string label_dir =
        (std::filesystem::temp_directory_path() / ("mio_fig5_" + name))
            .string();
    std::filesystem::remove_all(label_dir);

    for (const std::string& algo : algos) {
      // The paper reports no NL numbers for the two largest sets (it
      // cannot finish); mirror that unless the user forces --algos.
      if (algo == "nl" && !args.Has("algos") &&
          (preset == mio::datagen::Preset::kBird ||
           preset == mio::datagen::Preset::kSyn)) {
        std::printf("%-10s %-14s        (skipped by default, as in the "
                    "paper; force with --algos)\n",
                    name.c_str(), algo.c_str());
        continue;
      }
      bool timed_out = false;
      for (double r : radii) {
        if (timed_out) break;
        if (algo == "bigrid-label") {
          // Untimed recording run persists labels for ceil(r) to disk.
          mio::MioEngine recorder(set, label_dir);
          mio::bench::PrimeLabels(recorder, r, 1);
        }
        double best_time = 0.0;
        mio::QueryResult res;
        for (int rep = 0; rep < repeats; ++rep) {
          // A fresh engine per repeat: BIGrid-label must pay the label
          // load from external memory (the Label-Input row).
          mio::MioEngine one(set, label_dir);
          mio::Timer t;
          res = mio::bench::RunAlgorithm(algo, one, set, r, 1);
          double elapsed = t.ElapsedSeconds();
          best_time = rep == 0 ? elapsed : std::min(best_time, elapsed);
        }
        std::printf("%-10s %-14s %6.1f %12s %12s %10u %12zu\n", name.c_str(),
                    algo.c_str(), r, mio::bench::Sec(best_time).c_str(),
                    mio::bench::MiB(res.stats.index_memory_bytes).c_str(),
                    res.best().score, res.stats.num_verified);
        if (best_time > timeout) {
          std::printf("%-10s %-14s        (exceeded --timeout=%.0fs; "
                      "skipping larger r)\n",
                      name.c_str(), algo.c_str(), timeout);
          timed_out = true;
        }
      }
    }
    std::filesystem::remove_all(label_dir);
  }
  return 0;
}
