// Fig. 8 — partitioning strategies for the parallel phases, varying the
// number of cores: LB-greedy-d vs LB-hash-p (lower-bounding) and
// UB-greedy-p (cost-based) vs UB-greedy-d (upper-bounding). Besides
// wall-clock (which on this container saturates at the physical core
// count), each strategy's partition balance is reported — a
// hardware-independent proxy for the paper's scaling curves.
//
//   ./bench_fig8_partitioning [--full] [--datasets=neuron,neuron2,bird,bird2]
//                             [--r=4] [--t=1,2,4,8,12]
#include "bench_common.hpp"
#include "core/bigrid.hpp"
#include "core/parallel_phases.hpp"
#include "core/partition.hpp"

namespace {

void ReportLbBalance(const mio::BiGrid& grid, int t) {
  const std::size_t n = grid.objects().size();
  std::vector<std::uint64_t> weights(n);
  for (mio::ObjectId i = 0; i < n; ++i) {
    weights[i] = grid.KeyList(i).size() + 1;
  }
  mio::PartitionQuality q =
      mio::EvaluatePartition(weights, mio::GreedyAssign(weights, t), t);
  std::printf("      LB-greedy-d partition balance @t=%d: %s\n", t,
              q.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  double r = args.GetDouble("r", 4.0);
  std::vector<std::int64_t> threads_list = args.GetIntList("t", {1, 2, 4, 8, 12});

  mio::bench::Header("Fig. 8: parallel lower-/upper-bounding strategies");
  std::printf("%-10s %4s %16s %16s %16s %16s\n", "dataset", "t",
              "LB-greedy-d[s]", "LB-hash-p[s]", "UB-greedy-p[s]",
              "UB-greedy-d[s]");

  // The paper's Fig. 8 uses the four real datasets.
  std::vector<mio::datagen::Preset> presets;
  if (args.Has("datasets")) {
    presets = mio::bench::SelectDatasets(args);
  } else {
    presets = {mio::datagen::Preset::kNeuron, mio::datagen::Preset::kNeuron2,
               mio::datagen::Preset::kBird, mio::datagen::Preset::kBird2};
  }
  for (mio::datagen::Preset preset : presets) {
    mio::ObjectSet set = mio::datagen::MakePreset(preset, scale);
    std::string name = mio::datagen::PresetName(preset);

    for (std::int64_t t64 : threads_list) {
      int t = static_cast<int>(t64);

      // Shared grid build (not what Fig. 8 measures).
      mio::BiGrid grid(set, r);
      grid.BuildParallel(t, nullptr, /*build_groups=*/true);

      mio::Timer timer;
      mio::ParallelLowerBounding(grid, mio::LbStrategy::kGreedyDivideObjects,
                                 t, false);
      double lb_greedy = timer.ElapsedSeconds();

      timer.Restart();
      mio::ParallelLowerBounding(grid, mio::LbStrategy::kHashPartitionPoints,
                                 t, false);
      double lb_hash = timer.ElapsedSeconds();

      // Upper bounding mutates the lazy adj memo, so rebuild per strategy.
      double ub_costs[2] = {0, 0};
      mio::UbStrategy strategies[2] = {mio::UbStrategy::kCostBasedGreedy,
                                       mio::UbStrategy::kGreedyDivideObjects};
      for (int sidx = 0; sidx < 2; ++sidx) {
        mio::BiGrid g2(set, r);
        g2.BuildParallel(t, nullptr, true);
        timer.Restart();
        mio::ParallelUpperBounding(g2, 0, strategies[sidx], t, nullptr,
                                   nullptr, nullptr);
        ub_costs[sidx] = timer.ElapsedSeconds();
      }

      std::printf("%-10s %4d %16s %16s %16s %16s\n", name.c_str(), t,
                  mio::bench::Sec(lb_greedy).c_str(),
                  mio::bench::Sec(lb_hash).c_str(),
                  mio::bench::Sec(ub_costs[0]).c_str(),
                  mio::bench::Sec(ub_costs[1]).c_str());
      if (t == threads_list.back()) ReportLbBalance(grid, t);
    }
  }
  return 0;
}
