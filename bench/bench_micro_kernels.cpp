// Micro-benchmarks of the batch distance kernels (google-benchmark):
// per-dispatch-tier throughput, AoS-vs-SoA layout comparison, and a
// batch-size sweep — plus a summary report of the vectorized-over-scalar
// speedup on a large batch (the kernel layer's headline number).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/random.hpp"
#include "geo/kernels.hpp"
#include "geo/point.hpp"

namespace {

using mio::KernelTier;
using mio::Point;
using mio::SoaPoints;

/// A reproducible batch where roughly half the points are within r.
struct Workload {
  Point q{0.0, 0.0, 0.0};
  SoaPoints soa;
  std::vector<Point> aos;
  double r2 = 0.0;

  explicit Workload(std::size_t n, std::uint64_t seed = 42) {
    mio::Pcg32 rng(seed, n);
    aos.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      aos.push_back(Point{rng.NextDouble(-10, 10), rng.NextDouble(-10, 10),
                          rng.NextDouble(-10, 10)});
    }
    soa.Assign(aos);
    double r = 8.0;  // ~half of the uniform cube is within 8 of the centre
    r2 = r * r;
  }
};

std::size_t CountForTier(KernelTier tier, const Workload& w) {
  switch (tier) {
    case KernelTier::kSse2:
      return mio::kernel_detail::CountWithinSse2(
          w.q, w.soa.xs.data(), w.soa.ys.data(), w.soa.zs.data(), w.soa.size(),
          w.r2);
    case KernelTier::kAvx2:
      return mio::kernel_detail::CountWithinAvx2(
          w.q, w.soa.xs.data(), w.soa.ys.data(), w.soa.zs.data(), w.soa.size(),
          w.r2);
    default:
      return mio::kernel_detail::CountWithinScalar(
          w.q, w.soa.xs.data(), w.soa.ys.data(), w.soa.zs.data(), w.soa.size(),
          w.r2);
  }
}

bool TierRunnable(KernelTier tier) {
  return static_cast<int>(tier) <= static_cast<int>(mio::BestSupportedTier());
}

// --- Per-tier CountWithin throughput, batch-size sweep --------------------

void BM_CountWithinTier(benchmark::State& state) {
  KernelTier tier = static_cast<KernelTier>(state.range(0));
  if (!TierRunnable(tier)) {
    state.SkipWithError("tier unsupported on this CPU");
    return;
  }
  Workload w(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountForTier(tier, w));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(mio::KernelTierName(tier));
}
BENCHMARK(BM_CountWithinTier)
    ->ArgsProduct({{0, 1, 2}, {4, 16, 64, 256, 4096}});

// --- AnyWithin: early-exit variant, hit at a controlled depth -------------

void BM_AnyWithinTier(benchmark::State& state) {
  KernelTier tier = static_cast<KernelTier>(state.range(0));
  if (!TierRunnable(tier)) {
    state.SkipWithError("tier unsupported on this CPU");
    return;
  }
  std::size_t n = static_cast<std::size_t>(state.range(1));
  Workload w(n);
  // Push every point out of range, then plant one hit at 3/4 depth so the
  // scan length is deterministic.
  for (std::size_t i = 0; i < n; ++i) {
    w.soa.xs[i] += 100.0;
  }
  std::size_t hit = (3 * n) / 4;
  w.soa.xs[hit] = 1.0;
  w.soa.ys[hit] = 1.0;
  w.soa.zs[hit] = 1.0;

  KernelTier prev = mio::ActiveKernelTier();
  mio::SetKernelTier(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mio::AnyWithin(w.q, w.soa.xs.data(),
                                            w.soa.ys.data(), w.soa.zs.data(),
                                            n, w.r2));
  }
  mio::SetKernelTier(prev);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(hit + 1));
  state.SetLabel(mio::KernelTierName(tier));
}
BENCHMARK(BM_AnyWithinTier)->ArgsProduct({{0, 1, 2}, {64, 1024, 16384}});

// --- AoS vs SoA: the layout half of the optimisation ----------------------

void BM_CountAoS(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::size_t count = 0;
    for (const Point& p : w.aos) {
      if (mio::SquaredDistance(w.q, p) <= w.r2) ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CountAoS)->Arg(256)->Arg(4096)->Arg(65536);

void BM_CountSoADispatched(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mio::CountWithin(w.q, w.soa.xs.data(),
                                              w.soa.ys.data(),
                                              w.soa.zs.data(), w.soa.size(),
                                              w.r2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CountSoADispatched)->Arg(256)->Arg(4096)->Arg(65536);

// --- Headline summary ------------------------------------------------------

/// Measures one tier's batch-count throughput in points/second.
double MeasureThroughput(KernelTier tier, const Workload& w) {
  using Clock = std::chrono::steady_clock;
  // Warm up, then time enough repetitions for a stable reading.
  std::size_t sink = 0;
  for (int i = 0; i < 16; ++i) sink += CountForTier(tier, w);
  int reps = 2000;
  auto start = Clock::now();
  for (int i = 0; i < reps; ++i) sink += CountForTier(tier, w);
  std::chrono::duration<double> dt = Clock::now() - start;
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(w.soa.size()) * reps / dt.count();
}

void PrintSpeedupReport() {
  std::printf("\n==== Kernel dispatch summary ====\n");
  std::printf("best supported tier: %s, active tier: %s\n",
              mio::KernelTierName(mio::BestSupportedTier()),
              mio::KernelTierName(mio::ActiveKernelTier()));
  Workload w(16384);
  double scalar = MeasureThroughput(KernelTier::kScalar, w);
  std::printf("%-8s %14.0f points/s   1.00x\n", "scalar", scalar);
  for (KernelTier tier : {KernelTier::kSse2, KernelTier::kAvx2}) {
    if (!TierRunnable(tier)) continue;
    double tput = MeasureThroughput(tier, w);
    std::printf("%-8s %14.0f points/s   %.2fx\n", mio::KernelTierName(tier),
                tput, tput / scalar);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  PrintSpeedupReport();
  return 0;
}
