// Appendix A — why BIGrid must be built online. An index pre-built for a
// threshold r' breaks both bounding directions when queried at r != r':
//
//  (i)  r < r': the offline small grid's cells are too wide, so two
//       points sharing a cell are no longer guaranteed to be within r —
//       the "lower bound" is not a lower bound. We count the objects
//       whose offline pseudo-lower-bound exceeds the true score.
//  (ii) r > r': the offline large grid's cells are too narrow, so
//       partners can sit beyond the 27-cell neighbourhood; correctness
//       needs rings of ceil(ceil(r)/ceil(r')) cells, and the accessed
//       cell count grows cubically. We report that blow-up, and the
//       looseness of the resulting upper bound.
//  The online build itself is cheap (the Grid-Mapping row of Table II),
//  so pre-building buys nothing — the paper's conclusion.
//
//   ./bench_appendixA_offline [--datasets=neuron,bird2] [--r=4]
//                             [--rprime=2,8]
#include <cmath>

#include "bench_common.hpp"
#include "bitset/ewah.hpp"
#include "geo/cell_key.hpp"

namespace {

// Pseudo lower bounds from a small grid of width rprime/sqrt(3).
std::vector<std::uint32_t> OfflineLowerBounds(const mio::ObjectSet& set,
                                              double rprime) {
  double w = mio::SmallGridWidth(rprime);
  std::unordered_map<mio::CellKey, mio::Ewah, mio::CellKeyHash> cells;
  for (mio::ObjectId i = 0; i < set.size(); ++i) {
    for (const mio::Point& p : set[i].points) {
      cells[mio::KeyForWidth(p, w)].Set(i);
    }
  }
  std::vector<std::uint32_t> lb(set.size(), 0);
  for (mio::ObjectId i = 0; i < set.size(); ++i) {
    mio::Ewah acc;
    for (const mio::Point& p : set[i].points) {
      acc.OrWith(cells[mio::KeyForWidth(p, w)]);
    }
    std::size_t c = acc.Count();
    lb[i] = c > 0 ? static_cast<std::uint32_t>(c - 1) : 0;
  }
  return lb;
}

}  // namespace

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 4.0);
  std::vector<double> rprimes = args.GetDoubleList("rprime", {2.0, 8.0});
  std::vector<std::string> names =
      args.GetStringList("datasets", {"neuron", "bird2"});

  mio::bench::Header("Appendix A: offline BIGrid building is ineffective");
  for (const std::string& name : names) {
    mio::datagen::Preset preset;
    if (!mio::datagen::ParsePreset(name, &preset)) continue;
    mio::ObjectSet set =
        mio::datagen::MakePreset(preset, mio::datagen::Scale::kQuick);
    std::vector<std::uint32_t> exact = mio::SimpleGridScores(set, r);

    std::printf("\ndataset=%s, query r=%.1f\n", name.c_str(), r);
    std::printf("%-10s %-26s %s\n", "r'", "offline small grid (LB)",
                "offline large grid (UB)");
    for (double rp : rprimes) {
      // (i) lower-bound soundness with the offline small grid.
      std::vector<std::uint32_t> lb = OfflineLowerBounds(set, rp);
      std::size_t violations = 0;
      for (mio::ObjectId i = 0; i < set.size(); ++i) {
        if (lb[i] > exact[i]) ++violations;
      }
      // (ii) neighbourhood blow-up for the offline large grid.
      double w_off = mio::LargeGridWidth(rp);
      int rings = static_cast<int>(std::ceil(r / w_off));
      long cells_per_point = (2L * rings + 1) * (2L * rings + 1) *
                             (2L * rings + 1);
      char lbcol[64], ubcol[96];
      if (rp > r) {
        std::snprintf(lbcol, sizeof(lbcol), "UNSOUND: %zu/%zu violations",
                      violations, set.size());
      } else {
        std::snprintf(lbcol, sizeof(lbcol), "sound but loose (w=%0.2f)",
                      mio::SmallGridWidth(rp));
      }
      if (mio::LargeGridWidth(rp) < mio::LargeGridWidth(r)) {
        std::snprintf(ubcol, sizeof(ubcol),
                      "needs %d-cell rings: %ld cells/point (vs 27 online)",
                      rings, cells_per_point);
      } else {
        std::snprintf(ubcol, sizeof(ubcol),
                      "27 cells/point but looser (w=%.0f vs %.0f online)",
                      w_off, mio::LargeGridWidth(r));
      }
      std::printf("%-10.1f %-38s %s\n", rp, lbcol, ubcol);
    }

    // Reference: the online build the paper recommends.
    mio::MioEngine engine(set);
    mio::QueryResult res = engine.Query(r);
    std::printf("online build cost at query time: %s (grid-mapping) of %s "
                "total -- cheap enough to rebuild per query\n",
                mio::bench::Sec(res.stats.phases.grid_mapping).c_str(),
                mio::bench::Sec(res.stats.total_seconds).c_str());
  }
  return 0;
}
