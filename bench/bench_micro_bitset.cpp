// Micro-benchmarks of the bitset substrate (google-benchmark), plus the
// footnote-4 reproduction: on the default workload the BIGrid cell
// bitsets compress by 80-99.9% versus uncompressed bitsets.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bitset/bitset_stats.hpp"
#include "bitset/ewah.hpp"
#include "bitset/plain_bitset.hpp"
#include "bitset/roaring.hpp"
#include "common/random.hpp"
#include "core/bigrid.hpp"
#include "datagen/presets.hpp"

namespace {

// Builds an EWAH + plain pair with `count` set bits over `universe`.
void FillPair(std::uint64_t seed, std::size_t universe, std::size_t count,
              mio::Ewah* e, mio::PlainBitset* p) {
  mio::Pcg32 rng(seed);
  std::size_t step = universe / (count + 1);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    pos += 1 + rng.NextBounded(static_cast<std::uint32_t>(2 * step + 1));
    if (pos >= universe) pos = universe - 1;
    e->Set(pos);
    p->Set(pos);
  }
  p->Resize(universe);
}

void BM_EwahOr(benchmark::State& state) {
  std::size_t universe = static_cast<std::size_t>(state.range(0));
  std::size_t density = static_cast<std::size_t>(state.range(1));
  mio::Ewah a, b;
  mio::PlainBitset pa, pb;
  FillPair(1, universe, universe / density, &a, &pa);
  FillPair(2, universe, universe / density, &b, &pb);
  for (auto _ : state) {
    mio::Ewah c = mio::Ewah::Or(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.counters["compressed_bytes"] =
      static_cast<double>(a.CompressedBytes());
}
BENCHMARK(BM_EwahOr)->Args({1 << 16, 64})->Args({1 << 16, 4})->Args({1 << 20, 1024});

void BM_PlainOr(benchmark::State& state) {
  std::size_t universe = static_cast<std::size_t>(state.range(0));
  std::size_t density = static_cast<std::size_t>(state.range(1));
  mio::Ewah a, b;
  mio::PlainBitset pa, pb;
  FillPair(1, universe, universe / density, &a, &pa);
  FillPair(2, universe, universe / density, &b, &pb);
  for (auto _ : state) {
    mio::PlainBitset c = pa;
    c.OrWith(pb);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PlainOr)->Args({1 << 16, 64})->Args({1 << 16, 4})->Args({1 << 20, 1024});

void BM_EwahAndNot(benchmark::State& state) {
  mio::Ewah a, b;
  mio::PlainBitset pa, pb;
  FillPair(3, 1 << 16, 1024, &a, &pa);
  FillPair(4, 1 << 16, 1024, &b, &pb);
  for (auto _ : state) {
    mio::Ewah c = mio::Ewah::AndNot(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_EwahAndNot);

void BM_EwahSetAscending(benchmark::State& state) {
  std::size_t count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mio::Ewah b;
    for (std::size_t i = 0; i < count; ++i) b.Set(i * 17);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EwahSetAscending)->Arg(1024)->Arg(16384);

void BM_EwahCount(benchmark::State& state) {
  mio::Ewah a;
  mio::PlainBitset pa;
  FillPair(5, 1 << 18, 4096, &a, &pa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
}
BENCHMARK(BM_EwahCount);

void BM_EwahToPlain(benchmark::State& state) {
  mio::Ewah a;
  mio::PlainBitset pa;
  FillPair(6, 1 << 18, 4096, &a, &pa);
  for (auto _ : state) {
    mio::PlainBitset p = a.ToPlain();
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_EwahToPlain);

// --- Roaring: the alternative codec (paper footnote 3) --------------------

void BM_RoaringOr(benchmark::State& state) {
  std::size_t universe = static_cast<std::size_t>(state.range(0));
  std::size_t density = static_cast<std::size_t>(state.range(1));
  mio::Ewah ea, eb;
  mio::PlainBitset pa, pb;
  FillPair(1, universe, universe / density, &ea, &pa);
  FillPair(2, universe, universe / density, &eb, &pb);
  mio::Roaring a = mio::Roaring::FromPlain(pa);
  mio::Roaring b = mio::Roaring::FromPlain(pb);
  for (auto _ : state) {
    mio::Roaring c = mio::Roaring::Or(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.counters["compressed_bytes"] =
      static_cast<double>(a.CompressedBytes());
}
BENCHMARK(BM_RoaringOr)->Args({1 << 16, 64})->Args({1 << 16, 4})->Args({1 << 20, 1024});

void BM_RoaringAndNot(benchmark::State& state) {
  mio::Ewah e1, e2;
  mio::PlainBitset pa, pb;
  FillPair(3, 1 << 16, 1024, &e1, &pa);
  FillPair(4, 1 << 16, 1024, &e2, &pb);
  mio::Roaring a = mio::Roaring::FromPlain(pa);
  mio::Roaring b = mio::Roaring::FromPlain(pb);
  for (auto _ : state) {
    mio::Roaring c = mio::Roaring::AndNot(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RoaringAndNot);

void BM_RoaringSetRandomOrder(benchmark::State& state) {
  std::size_t count = static_cast<std::size_t>(state.range(0));
  mio::Pcg32 rng(8);
  std::vector<std::size_t> idx(count);
  for (std::size_t& v : idx) v = rng.NextBounded(1u << 20);
  for (auto _ : state) {
    mio::Roaring b;
    for (std::size_t v : idx) b.Set(v);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_RoaringSetRandomOrder)->Arg(1024)->Arg(16384);

// Footnote 4: compression ratio of the cell bitsets on the default
// experimental setting — plus what the same cell contents would cost
// under the alternative Roaring codec (footnote 3: BIGrid is orthogonal
// to the compressed-bitset choice).
void PrintCompressionReport() {
  std::printf("\n==== Footnote 4: BIGrid cell-bitset compression (r = 4) "
              "====\n");
  std::printf("%-10s %10s %14s %16s %12s %10s\n", "dataset", "cells",
              "ewah[B]", "uncompressed[B]", "roaring[B]", "savings");
  for (mio::datagen::Preset preset : mio::datagen::AllPresets()) {
    mio::ObjectSet set =
        mio::datagen::MakePreset(preset, mio::datagen::Scale::kQuick);
    mio::BiGrid grid(set, 4.0);
    grid.Build();
    mio::BitsetCompressionStats stats = grid.CompressionStats();
    // Re-encode every small-cell bitset under Roaring for comparison.
    std::size_t roaring_bytes = 0;
    grid.ForEachLargeCell([&](const mio::CellKey&, mio::LargeCell& cell) {
      roaring_bytes +=
          mio::Roaring::FromPlain(cell.bits.ToPlain()).CompressedBytes();
    });
    std::printf("%-10s %10zu %14zu %16zu %12zu %9.1f%%\n",
                mio::datagen::PresetName(preset).c_str(), stats.num_bitsets,
                stats.compressed_bytes, stats.uncompressed_bytes,
                roaring_bytes, stats.SavingsRatio() * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  PrintCompressionReport();
  return 0;
}
