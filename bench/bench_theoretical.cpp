// Section II-B — the theoretical algorithm's trade-off: O(n log n) query
// time, but O(n^2) memory and O(n^2 (m log m + log n)) pre-processing.
// Sweeping n shows pre-processing time and memory growing quadratically
// while BIGrid (which includes its whole index build in every query)
// stays near-linear — the motivation for the paper's design.
//
//   ./bench_theoretical [--dataset=bird2] [--r=4] [--s=0.1,0.2,0.4,0.8]
#include "baseline/theoretical.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 4.0);
  std::vector<double> rates = args.GetDoubleList("s", {0.1, 0.2, 0.4, 0.8});
  std::string name = args.GetString("dataset", "bird2");

  mio::datagen::Preset preset;
  if (!mio::datagen::ParsePreset(name, &preset)) return 1;
  mio::ObjectSet full =
      mio::datagen::MakePreset(preset, mio::bench::SelectScale(args));

  mio::bench::Header("II-B: theoretical algorithm vs BIGrid (dataset=" +
                     name + ", r=" + std::to_string(r) + ")");
  std::printf("%8s %16s %14s %14s %16s %10s\n", "n", "theo-preproc[s]",
              "theo-mem[MiB]", "theo-query[s]", "bigrid-query[s]", "agree");

  for (double s : rates) {
    mio::ObjectSet set = mio::SampleObjects(full, s, 23);

    mio::TheoreticalIndex theo(set, 1);
    mio::Timer t;
    mio::QueryResult tq = theo.Query(r);
    double theo_query = t.ElapsedSeconds();

    mio::MioEngine engine(set);
    t.Restart();
    mio::QueryResult bq = engine.Query(r);
    double bigrid_query = t.ElapsedSeconds();

    std::printf("%8zu %16s %14s %14.6f %16s %10s\n", set.size(),
                mio::bench::Sec(theo.preprocessing_seconds()).c_str(),
                mio::bench::MiB(theo.MemoryUsageBytes()).c_str(), theo_query,
                mio::bench::Sec(bigrid_query).c_str(),
                tq.best().score == bq.best().score ? "yes" : "NO");
  }
  std::printf("\nthe theoretical index answers any r once built, but its\n"
              "pre-processing and memory grow ~quadratically in n (the\n"
              "paper's 8-hour/512GB blow-up at full scale).\n");
  return 0;
}
