// Batch execution (MioEngine::QueryBatch) vs the sequential Query loop:
// a mixed-ceil(r) workload of N queries cycling r = 3, 4.5, 9 (three
// radius classes, like the canonical workload), run twice per dataset —
// once as plain per-query calls, once as one batch. Reports wall time,
// throughput speedup, and the batch's amortisation accounting (grid
// builds saved, posting bytes shared, arena high-water).
//
//   ./bench_batch [--full] [--datasets=...] [--queries=30] [--threads=1]
//                 [--json-out=FILE|-]
#include "bench_common.hpp"

namespace {

/// Folds per-query stats into one record for the JSON sink: phase times
/// and funnel counters sum; total_seconds carries the loop/batch wall.
void Accumulate(mio::QueryStats* agg, const mio::QueryStats& s) {
  agg->phases.label_input += s.phases.label_input;
  agg->phases.grid_mapping += s.phases.grid_mapping;
  agg->phases.lower_bounding += s.phases.lower_bounding;
  agg->phases.upper_bounding += s.phases.upper_bounding;
  agg->phases.verification += s.phases.verification;
  agg->num_candidates += s.num_candidates;
  agg->num_verified += s.num_verified;
  agg->distance_computations += s.distance_computations;
  agg->threads = s.threads;
}

}  // namespace

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::bench::JsonSink sink(args, "batch");
  const std::size_t queries =
      static_cast<std::size_t>(args.GetInt("queries", 30));
  const int threads = static_cast<int>(args.GetInt("threads", 1));
  const std::vector<double> cycle = args.GetDoubleList("r", {3.0, 4.5, 9.0});

  mio::bench::Header("Batch vs sequential (" + std::to_string(queries) +
                     " queries, mixed ceil(r))");
  std::printf("%-10s %8s %8s %12s %12s %9s %12s %14s\n", "dataset", "queries",
              "classes", "seq [s]", "batch [s]", "speedup", "builds-saved",
              "shared [MiB]");

  for (mio::datagen::Preset preset : mio::bench::SelectDatasets(args)) {
    mio::ObjectSet set = mio::datagen::MakePreset(
        preset, mio::bench::SelectScale(args));
    std::string name = mio::datagen::PresetName(preset);

    std::vector<mio::BatchQuery> batch(queries);
    for (std::size_t i = 0; i < queries; ++i) {
      batch[i].r = cycle[i % cycle.size()];
      batch[i].options.threads = threads;
    }

    // Sequential loop: the status-quo per-query calls (paper-faithful
    // defaults — every query rebuilds both grids).
    double seq_wall = 0.0;
    {
      mio::MioEngine engine(set);
      mio::QueryStats agg;
      sink.Begin();
      mio::Timer timer;
      for (const mio::BatchQuery& q : batch) {
        Accumulate(&agg, engine.Query(q.r, q.options).stats);
      }
      seq_wall = timer.ElapsedSeconds();
      agg.total_seconds = seq_wall;
      sink.Record(name, "sequential", 0.0, 1, threads, seq_wall, agg);
    }

    // The same members as one batch (per-class grids, hoisted labels,
    // two-level postings, shared verification arena).
    double batch_wall = 0.0;
    mio::BatchStats bstats;
    {
      mio::MioEngine engine(set);
      mio::QueryStats agg;
      sink.Begin();
      mio::Timer timer;
      mio::BatchResult res = engine.QueryBatch(batch);
      batch_wall = timer.ElapsedSeconds();
      for (const mio::QueryResult& r : res.results) {
        Accumulate(&agg, r.stats);
      }
      agg.total_seconds = batch_wall;
      bstats = res.stats;
      sink.Record(name, "batch", 0.0, 1, threads, batch_wall, agg);
    }

    const double speedup = batch_wall > 0.0 ? seq_wall / batch_wall : 0.0;
    std::printf("%-10s %8zu %8zu %12s %12s %8.2fx %12zu %14s\n", name.c_str(),
                queries, bstats.classes, mio::bench::Sec(seq_wall).c_str(),
                mio::bench::Sec(batch_wall).c_str(), speedup,
                bstats.grid_builds_saved,
                mio::bench::MiB(bstats.postings_bytes_shared).c_str());
  }
  return 0;
}
