// Fig. 2 case study — the paper's motivating anecdote: on the bird
// trajectory set at r = 4 m, the MIO answer is a trajectory that
// "interacts with approximately 30% of all trajectories" (a flock
// leader / core member). This harness reruns that analysis on the
// synthetic bird analogue: the winner's interaction fraction, the score
// distribution's shape, and the top-k cohort (the leader-follower group).
//
//   ./bench_fig2_case_study [--dataset=bird] [--r=4] [--full]
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 4.0);
  std::string name = args.GetString("dataset", "bird");
  mio::datagen::Preset preset;
  if (!mio::datagen::ParsePreset(name, &preset)) return 1;

  mio::ObjectSet set =
      mio::datagen::MakePreset(preset, mio::bench::SelectScale(args));
  mio::DatasetStats stats = set.Stats();

  mio::bench::Header("Fig. 2 case study: the most interactive trajectory (" +
                     name + ", r = " + std::to_string(r) + ")");

  // Full score distribution via SG (exact for every object).
  std::vector<std::uint32_t> scores = mio::SimpleGridScores(set, r);
  std::vector<std::uint32_t> sorted = scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  mio::MioEngine engine(set);
  mio::QueryOptions opt;
  opt.k = 10;
  mio::QueryResult res = engine.Query(r, opt);

  double frac = 100.0 * res.best().score / (stats.n - 1);
  std::printf("winner: trajectory %u interacts with %u of %zu others "
              "(%.1f%% of the set; the paper reports ~30%% on the real "
              "data)\n\n",
              res.best().id, res.best().score, stats.n - 1, frac);

  std::printf("top-10 cohort (leader-follower core):\n");
  for (const mio::ScoredObject& s : res.topk) {
    std::printf("  trajectory %6u: tau = %u (%.1f%%)\n", s.id, s.score,
                100.0 * s.score / (stats.n - 1));
  }

  std::printf("\nscore distribution (exact, all objects):\n");
  const double quantiles[] = {0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 1.0};
  for (double q : quantiles) {
    std::size_t idx = std::min(static_cast<std::size_t>(q * (sorted.size() - 1)),
                               sorted.size() - 1);
    std::printf("  p%-5.1f tau = %u\n", 100.0 * (1.0 - q), sorted[idx]);
  }
  std::uint32_t zero = static_cast<std::uint32_t>(
      std::count(sorted.begin(), sorted.end(), 0u));
  std::printf("  isolated objects (tau = 0): %u of %zu\n", zero, sorted.size());
  return 0;
}
