// Appendix B — the temporal variant: query time and answer as the time
// threshold delta tightens, against the brute-force oracle on a sample
// (correctness spot-check) and against the spatial-only query (the
// delta -> infinity limit).
//
//   ./bench_temporal [--n=1500] [--m=40] [--r=6] [--deltas=...]
#include "bench_common.hpp"
#include "core/temporal.hpp"
#include "datagen/trajectory_gen.hpp"
#include "object/sampling.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 6.0);

  mio::datagen::BirdConfig cfg;
  cfg.num_objects = static_cast<std::size_t>(args.GetInt("n", 1500));
  cfg.points_per_object = static_cast<std::size_t>(args.GetInt("m", 40));
  cfg.with_times = true;
  mio::ObjectSet set = mio::datagen::MakeBirdLike(cfg);
  double span = set.MaxTime() + 1.0;

  mio::bench::Header("Appendix B: temporal MIO queries (r = " +
                     std::to_string(r) + ")");
  std::printf("dataset: %s, time span %.0f\n\n", set.Stats().ToString().c_str(),
              span);

  std::vector<double> deltas =
      args.GetDoubleList("deltas", {span, 500, 100, 20, 5, 1, 0});
  std::printf("%12s %10s %10s %12s %12s %14s\n", "delta", "winner", "tau",
              "time[s]", "cells", "dist-comps");
  for (double delta : deltas) {
    mio::Timer t;
    mio::QueryResult res = mio::TemporalMioQuery(set, r, delta);
    if (res.topk.empty()) continue;
    std::printf("%12.1f %10u %10u %12s %12zu %14zu\n", delta, res.best().id,
                res.best().score, mio::bench::Sec(t.ElapsedSeconds()).c_str(),
                res.stats.cells_large, res.stats.distance_computations);
  }

  // Oracle spot-check on a sample (brute force is O(n^2 m^2)).
  mio::ObjectSet sample = mio::SampleObjects(set, 0.05, 3);
  bool all_ok = true;
  for (double delta : {span, 20.0, 0.0}) {
    std::uint32_t want = 0;
    for (std::uint32_t s : mio::TemporalBruteForceScores(sample, r, delta)) {
      want = std::max(want, s);
    }
    std::uint32_t got = mio::TemporalMioQuery(sample, r, delta).best().score;
    if (got != want) {
      std::printf("ORACLE MISMATCH at delta=%.1f: got %u want %u\n", delta,
                  got, want);
      all_ok = false;
    }
  }
  std::printf("\noracle spot-check on a 5%% sample: %s\n",
              all_ok ? "all agree" : "FAILED");
  return all_ok ? 0 : 1;
}
