// Table II — run time of each operation (seconds) of BIGrid and
// BIGrid-label per dataset, at the default threshold r = 4:
// Label-Input / Grid-Mapping / Lower-bounding / Upper-bounding /
// Verification.
//
//   ./bench_table2_breakdown [--full] [--datasets=...] [--r=4]
//                            [--json-out=FILE|-]
#include <filesystem>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  double r = args.GetDouble("r", 4.0);
  mio::bench::JsonSink sink(args, "table2_breakdown");

  mio::bench::Header("Table II: per-phase run time [s] (r = " +
                     std::to_string(r) + ")");
  std::printf("%-10s %-14s %12s %13s %15s %15s %13s %11s\n", "dataset",
              "algo", "label-input", "grid-mapping", "lower-bounding",
              "upper-bounding", "verification", "total");

  for (mio::datagen::Preset preset : mio::bench::SelectDatasets(args)) {
    mio::ObjectSet set = mio::datagen::MakePreset(preset, scale);
    std::string name = mio::datagen::PresetName(preset);
    std::string label_dir =
        (std::filesystem::temp_directory_path() / ("mio_t2_" + name)).string();
    std::filesystem::remove_all(label_dir);

    // BIGrid (records labels as post-processing, per the paper's setup;
    // recording cost is excluded from the reported phases by measuring a
    // separate plain run first).
    {
      mio::MioEngine engine(set);
      sink.Begin();
      mio::Timer timer;
      mio::QueryResult res = engine.Query(r);
      sink.Record(name, "bigrid", r, 1, 1, timer.ElapsedSeconds(), res.stats);
      const mio::PhaseTimes& p = res.stats.phases;
      std::printf("%-10s %-14s %12s %13s %15s %15s %13s %11s\n", name.c_str(),
                  "BIGrid", "-", mio::bench::Sec(p.grid_mapping).c_str(),
                  mio::bench::Sec(p.lower_bounding).c_str(),
                  mio::bench::Sec(p.upper_bounding).c_str(),
                  mio::bench::Sec(p.verification).c_str(),
                  mio::bench::Sec(res.stats.total_seconds).c_str());
    }
    // BIGrid-label: prime to disk, then time a fresh engine that loads.
    {
      mio::MioEngine recorder(set, label_dir);
      mio::bench::PrimeLabels(recorder, r, 1);
      mio::MioEngine engine(set, label_dir);
      mio::QueryOptions opt;
      opt.use_labels = true;
      sink.Begin();
      mio::Timer timer;
      mio::QueryResult res = engine.Query(r, opt);
      sink.Record(name, "bigrid-label", r, 1, 1, timer.ElapsedSeconds(),
                  res.stats);
      const mio::PhaseTimes& p = res.stats.phases;
      std::printf("%-10s %-14s %12s %13s %15s %15s %13s %11s\n", name.c_str(),
                  "BIGrid-label", mio::bench::Sec(p.label_input).c_str(),
                  mio::bench::Sec(p.grid_mapping).c_str(),
                  mio::bench::Sec(p.lower_bounding).c_str(),
                  mio::bench::Sec(p.upper_bounding).c_str(),
                  mio::bench::Sec(p.verification).c_str(),
                  mio::bench::Sec(res.stats.total_seconds).c_str());
      std::printf("%-10s %-14s   (points prunable by labels: %zu of %zu)\n",
                  name.c_str(), "", res.stats.points_pruned_by_labels,
                  set.Stats().nm);
    }
    std::filesystem::remove_all(label_dir);
  }
  return 0;
}
