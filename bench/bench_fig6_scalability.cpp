// Fig. 6 — scalability: query time (a-e) and memory (f-j) on samples of
// s*n objects, s in {0.2 .. 1.0}, for NL, SG, BIGrid and BIGrid-label.
//
//   ./bench_fig6_scalability [--full] [--datasets=...] [--r=4]
//                            [--s=0.2,0.4,0.6,0.8,1.0] [--algos=...]
#include <filesystem>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  double r = args.GetDouble("r", 4.0);
  std::vector<double> rates = args.GetDoubleList("s", {0.2, 0.4, 0.6, 0.8, 1.0});
  std::vector<std::string> algos =
      args.GetStringList("algos", {"nl", "sg", "bigrid", "bigrid-label"});

  mio::bench::Header("Fig. 6: scalability in the sampling rate s (r = " +
                     std::to_string(r) + ")");
  std::printf("%-10s %-14s %6s %8s %12s %12s %10s\n", "dataset", "algo", "s",
              "n", "time[s]", "memory[MiB]", "tau(o*)");

  for (mio::datagen::Preset preset : mio::bench::SelectDatasets(args)) {
    mio::ObjectSet full_set = mio::datagen::MakePreset(preset, scale);
    std::string name = mio::datagen::PresetName(preset);

    for (double s : rates) {
      mio::ObjectSet set = mio::SampleObjects(full_set, s, /*seed=*/17);
      std::string label_dir =
          (std::filesystem::temp_directory_path() / ("mio_f6_" + name))
              .string();
      std::filesystem::remove_all(label_dir);

      for (const std::string& algo : algos) {
        if (algo == "nl" && !args.Has("algos") &&
            (preset == mio::datagen::Preset::kBird ||
             preset == mio::datagen::Preset::kSyn)) {
          continue;  // as in the paper: NL cannot finish on these
        }
        if (algo == "bigrid-label") {
          mio::MioEngine recorder(set, label_dir);
          mio::bench::PrimeLabels(recorder, r, 1);
        }
        mio::MioEngine engine(set, label_dir);
        mio::Timer t;
        mio::QueryResult res =
            mio::bench::RunAlgorithm(algo, engine, set, r, 1);
        std::printf("%-10s %-14s %6.1f %8zu %12s %12s %10u\n", name.c_str(),
                    algo.c_str(), s, set.size(),
                    mio::bench::Sec(t.ElapsedSeconds()).c_str(),
                    mio::bench::MiB(res.stats.index_memory_bytes).c_str(),
                    res.best().score);
      }
      std::filesystem::remove_all(label_dir);
    }
  }
  return 0;
}
