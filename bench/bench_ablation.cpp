// Ablations of BIGrid design choices called out in DESIGN.md:
//
//  (1) small-grid cell width: the paper's r/sqrt(3) (diagonal = r) vs a
//      narrower r/2 (sound, tighter cells -> fewer certain pairs) vs a
//      wider r (UNSOUND in 3-D: the diagonal exceeds r). We report
//      lower-bound tightness (mean LB / exact) and soundness violations.
//  (2) verification order: best-first by descending upper bound
//      (Corollary 1) vs arbitrary id order — measured as the number of
//      objects that must be exactly verified before termination.
//  (3) upper-bounding OR granularity: the paper's per-point OR vs
//      one OR per distinct cell (what Labeling-2 effectively converges
//      to) — quantifies how much of BIGrid-label's gain is key dedup.
//
//   ./bench_ablation [--datasets=neuron,bird2] [--r=4]
#include <cmath>
#include <numeric>

#include "baseline/rtree_mbr.hpp"
#include "bench_common.hpp"
#include "bitset/ewah.hpp"
#include "core/bigrid.hpp"
#include "core/lower_bound.hpp"
#include "core/upper_bound.hpp"
#include "core/verification.hpp"

namespace {

// Lower bounds from a small grid of arbitrary width (same construction as
// BIGrid's, reimplemented to allow non-standard widths).
std::vector<std::uint32_t> LowerBoundsAtWidth(const mio::ObjectSet& set,
                                              double width) {
  std::unordered_map<mio::CellKey, mio::Ewah, mio::CellKeyHash> cells;
  for (mio::ObjectId i = 0; i < set.size(); ++i) {
    for (const mio::Point& p : set[i].points) {
      cells[mio::KeyForWidth(p, width)].Set(i);
    }
  }
  std::vector<std::uint32_t> lb(set.size(), 0);
  for (mio::ObjectId i = 0; i < set.size(); ++i) {
    mio::Ewah acc;
    for (const mio::Point& p : set[i].points) {
      acc.OrWith(cells[mio::KeyForWidth(p, width)]);
    }
    std::size_t c = acc.Count();
    lb[i] = c > 0 ? static_cast<std::uint32_t>(c - 1) : 0;
  }
  return lb;
}

void ReportWidthAblation(const mio::ObjectSet& set, double r,
                         const std::vector<std::uint32_t>& exact) {
  struct WidthCase {
    const char* name;
    double width;
  };
  const WidthCase cases[] = {
      {"r/sqrt(3) (paper)", mio::SmallGridWidth(r)},
      {"r/2 (narrower)", r / 2.0},
      {"r (too wide)", r},
  };
  std::printf("  %-20s %14s %12s %12s\n", "small-grid width", "mean LB/tau",
              "violations", "max LB");
  for (const WidthCase& c : cases) {
    std::vector<std::uint32_t> lb = LowerBoundsAtWidth(set, c.width);
    double ratio_sum = 0.0;
    std::size_t with_score = 0, violations = 0;
    std::uint32_t max_lb = 0;
    for (mio::ObjectId i = 0; i < set.size(); ++i) {
      if (lb[i] > exact[i]) ++violations;
      if (exact[i] > 0) {
        ratio_sum += std::min<double>(lb[i], exact[i]) / exact[i];
        ++with_score;
      }
      max_lb = std::max(max_lb, lb[i]);
    }
    std::printf("  %-20s %14.3f %12zu %12u\n", c.name,
                with_score ? ratio_sum / with_score : 0.0, violations,
                max_lb);
  }
}

void ReportVerificationOrderAblation(const mio::ObjectSet& set, double r) {
  mio::BiGrid grid(set, r);
  grid.Build();
  mio::LowerBoundResult lb = mio::LowerBounding(grid, false);
  mio::UpperBoundResult ub =
      mio::UpperBounding(grid, lb.tau_low_max, nullptr, nullptr, nullptr);

  auto count_verified = [&](const std::vector<mio::ObjectId>& order) {
    mio::TopKTracker tracker(1);
    std::size_t verified = 0;
    // Arbitrary order cannot early-break on the queue-front bound; it can
    // only skip objects individually (their own bound check).
    for (mio::ObjectId i : order) {
      if (static_cast<long long>(ub.tau_upp[i]) <= tracker.Threshold()) {
        continue;
      }
      tracker.Offer(i, mio::ExactScore(grid, i, nullptr, nullptr, nullptr,
                                       nullptr));
      ++verified;
    }
    return verified;
  };

  std::size_t best_first = count_verified(ub.candidates);
  std::vector<mio::ObjectId> id_order = ub.candidates;
  std::sort(id_order.begin(), id_order.end());
  std::size_t arbitrary = count_verified(id_order);
  std::printf("  verification order: best-first verifies %zu objects, "
              "id-order verifies %zu (of %zu candidates)\n",
              best_first, arbitrary, ub.candidates.size());
}

std::size_t benchmark_sink = 0;

void ReportUbGranularityAblation(const mio::ObjectSet& set, double r) {
  // Per-point OR (Algorithm 5 as written).
  mio::BiGrid g1(set, r);
  g1.Build();
  mio::Timer t;
  mio::UpperBounding(g1, 0, nullptr, nullptr, nullptr);
  double per_point = t.ElapsedSeconds();

  // One OR per distinct cell per object (grouped).
  mio::BiGrid g2(set, r);
  g2.Build(nullptr, /*build_groups=*/true);
  t.Restart();
  for (mio::ObjectId i = 0; i < set.size(); ++i) {
    mio::Ewah acc;
    for (const mio::PointGroup& g : g2.LargeGroups(i)) {
      acc.OrWith(g2.EnsureAdj(g.key).adj);
    }
    benchmark_sink += acc.Count();
  }
  double per_group = t.ElapsedSeconds();
  std::printf("  upper-bounding OR granularity: per-point %s, per-cell %s "
              "(x%.1f) -- the dedup Labeling-2 learns\n",
              mio::bench::Sec(per_point).c_str(),
              mio::bench::Sec(per_group).c_str(),
              per_group > 0 ? per_point / per_group : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 4.0);
  std::vector<std::string> names =
      args.GetStringList("datasets", {"neuron", "bird2"});

  mio::bench::Header("Ablations: BIGrid design choices");
  for (const std::string& name : names) {
    mio::datagen::Preset preset;
    if (!mio::datagen::ParsePreset(name, &preset)) continue;
    mio::ObjectSet set =
        mio::datagen::MakePreset(preset, mio::datagen::Scale::kQuick);
    std::vector<std::uint32_t> exact = mio::SimpleGridScores(set, r);

    std::printf("\ndataset=%s r=%.1f\n", name.c_str(), r);
    ReportWidthAblation(set, r, exact);
    ReportVerificationOrderAblation(set, r);
    ReportUbGranularityAblation(set, r);

    // The paper's II-B claim: MBR indexing is ineffective for point-set
    // objects. Emptiness near 1.0 = "uselessly large rectangles"; the RT
    // baseline timing shows the consequence.
    {
      double emptiness = mio::MbrEmptinessFraction(set, r);
      mio::Timer t;
      mio::QueryResult rt = mio::RtreeMbrQuery(set, r);
      double rt_time = t.ElapsedSeconds();
      t.Restart();
      mio::MioEngine engine(set);
      mio::QueryResult bg = engine.Query(r);
      std::printf("  MBR indexing (paper II-B): mean MBR emptiness %.1f%%; "
                  "RT %s vs BIGrid %s (answers agree: %s)\n",
                  emptiness * 100.0, mio::bench::Sec(rt_time).c_str(),
                  mio::bench::Sec(t.ElapsedSeconds()).c_str(),
                  rt.best().score == bg.best().score ? "yes" : "NO");
    }
  }
  (void)benchmark_sink;
  return 0;
}
