// Shared infrastructure for the experiment harnesses: preset loading,
// algorithm dispatch by name, and fixed-width table printing so every
// bench emits the paper's rows/series in a uniform, grep-friendly format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/nested_loop.hpp"
#include "baseline/nl_kdtree.hpp"
#include "baseline/rtree_mbr.hpp"
#include "baseline/simple_grid.hpp"
#include "common/argparse.hpp"
#include "common/timer.hpp"
#include "core/mio_engine.hpp"
#include "datagen/presets.hpp"
#include "object/sampling.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_sink.hpp"

namespace mio {
namespace bench {

/// Datasets selected by --datasets=neuron,bird,... (default: all five).
inline std::vector<datagen::Preset> SelectDatasets(const ArgParser& args) {
  std::vector<std::string> names = args.GetStringList(
      "datasets", {"neuron", "neuron2", "bird", "bird2", "syn"});
  std::vector<datagen::Preset> out;
  for (const std::string& name : names) {
    datagen::Preset p;
    if (datagen::ParsePreset(name, &p)) {
      out.push_back(p);
    } else {
      std::fprintf(stderr, "unknown dataset '%s' (skipped)\n", name.c_str());
    }
  }
  return out;
}

/// --full selects paper-scale sizes; default is quick (laptop) scale.
inline datagen::Scale SelectScale(const ArgParser& args) {
  return args.GetBool("full", false) ? datagen::Scale::kFull
                                     : datagen::Scale::kQuick;
}

/// Runs one algorithm by name. "bigrid-label" expects the engine to
/// already hold labels for ceil(r) (prime it with PrimeLabels below).
inline QueryResult RunAlgorithm(const std::string& algo, MioEngine& engine,
                                const ObjectSet& objects, double r,
                                int threads, std::size_t k = 1) {
  if (algo == "nl") return NestedLoopQuery(objects, r, threads, k);
  if (algo == "nl-kd") return NlKdQuery(objects, r, threads, k);
  if (algo == "sg") return SimpleGridQuery(objects, r, threads, k);
  if (algo == "rt") return RtreeMbrQuery(objects, r, threads, k);
  QueryOptions opt;
  opt.threads = threads;
  opt.k = k;
  if (algo == "bigrid-label") {
    opt.use_labels = true;
  } else if (algo != "bigrid") {
    std::fprintf(stderr, "unknown algorithm '%s', running bigrid\n",
                 algo.c_str());
  }
  return engine.Query(r, opt);
}

/// Executes a label-recording query so that a following "bigrid-label"
/// run finds labels for ceil(r) (the paper's footnote 8 protocol: the
/// plain BIGrid runs output labels as post-processing).
inline void PrimeLabels(MioEngine& engine, double r, int threads) {
  QueryOptions opt;
  opt.threads = threads;
  opt.record_labels = true;
  engine.Query(r, opt);
}

/// Seconds, fixed width, in seconds with ms resolution.
inline std::string Sec(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

/// Mebibytes with two decimals.
inline std::string MiB(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

/// Prints a separator + title for one experiment block.
inline void Header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Machine-readable bench output: when --json-out=FILE is given, each
/// measured run appends one `mio-stats-v1` JSON document (JSONL, "-" for
/// stdout). `Begin()` resets the metrics registry so counter/histogram
/// values are per-run, not cumulative across the harness.
class JsonSink {
 public:
  JsonSink(const ArgParser& args, std::string bench)
      : path_(args.GetString("json-out", "")),
        bench_(std::move(bench)),
        scale_(SelectScale(args) == datagen::Scale::kFull ? "full" : "quick") {}

  bool enabled() const { return !path_.empty(); }

  /// Call immediately before the measured region.
  void Begin() const {
    if (enabled()) obs::ResetMetrics();
  }

  /// Call after the measured region; appends one JSONL record.
  void Record(const std::string& dataset, const std::string& algo, double r,
              std::size_t k, int threads, double wall_seconds,
              const QueryStats& stats) const {
    if (!enabled()) return;
    obs::RunInfo info;
    info.bench = bench_;
    info.dataset = dataset;
    info.algo = algo;
    info.r = r;
    info.k = k;
    info.threads = threads;
    info.scale = scale_;
    info.wall_seconds = wall_seconds;
    obs::MetricsSnapshot metrics = obs::SnapshotMetrics();
    std::string line = obs::StatsJson(stats, info, &metrics) + "\n";
    if (path_ == "-") {
      std::fwrite(line.data(), 1, line.size(), stdout);
      return;
    }
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "json-out: cannot open %s\n", path_.c_str());
      return;
    }
    std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
  }

 private:
  std::string path_;
  std::string bench_;
  std::string scale_;
};

}  // namespace bench
}  // namespace mio
