// Fig. 9 + Table III — multi-core comparison: parallel NL, SG, BIGrid and
// BIGrid-label total query time while varying the core count, plus the
// speed-up ratios against the single-core runs (Table III).
//
// NOTE: this container may expose fewer physical cores than the sweep
// requests; OpenMP still runs t threads, so the *relative ordering* of
// algorithms and the partition behaviour remain observable even where
// wall-clock cannot scale.
//
//   ./bench_fig9_parallel [--full] [--datasets=...] [--r=4] [--t=1,2,4,8,12]
//                         [--algos=nl,sg,bigrid,bigrid-label]
//                         [--json-out=FILE|-]
#include <filesystem>
#include <map>

#include "bench_common.hpp"
#include "common/omp_utils.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  double r = args.GetDouble("r", 4.0);
  std::vector<std::int64_t> threads_list = args.GetIntList("t", {1, 2, 4, 8, 12});
  std::vector<std::string> algos =
      args.GetStringList("algos", {"nl", "sg", "bigrid", "bigrid-label"});
  mio::bench::JsonSink sink(args, "fig9_parallel");

  mio::bench::Header("Fig. 9: multi-core query time (physical cores: " +
                     std::to_string(mio::MaxThreads()) + ")");
  std::printf("%-10s %-14s %4s %12s %10s\n", "dataset", "algo", "t",
              "time[s]", "tau(o*)");

  // time[dataset][algo][t] for the Table III speed-up report.
  std::map<std::string, std::map<std::string, std::map<int, double>>> times;

  std::vector<mio::datagen::Preset> presets;
  if (args.Has("datasets")) {
    presets = mio::bench::SelectDatasets(args);
  } else {
    // The paper's Fig. 9 covers the four real datasets.
    presets = {mio::datagen::Preset::kNeuron, mio::datagen::Preset::kNeuron2,
               mio::datagen::Preset::kBird, mio::datagen::Preset::kBird2};
  }
  for (mio::datagen::Preset preset : presets) {
    mio::ObjectSet set = mio::datagen::MakePreset(preset, scale);
    std::string name = mio::datagen::PresetName(preset);
    std::string label_dir =
        (std::filesystem::temp_directory_path() / ("mio_f9_" + name)).string();
    std::filesystem::remove_all(label_dir);

    for (const std::string& algo : algos) {
      for (std::int64_t t64 : threads_list) {
        int t = static_cast<int>(t64);
        if (algo == "bigrid-label") {
          mio::MioEngine recorder(set, label_dir);
          mio::bench::PrimeLabels(recorder, r, t);
        }
        mio::MioEngine engine(set, label_dir);
        sink.Begin();
        mio::Timer timer;
        mio::QueryResult res =
            mio::bench::RunAlgorithm(algo, engine, set, r, t);
        double elapsed = timer.ElapsedSeconds();
        sink.Record(name, algo, r, 1, t, elapsed, res.stats);
        times[name][algo][t] = elapsed;
        std::printf("%-10s %-14s %4d %12s %10u\n", name.c_str(), algo.c_str(),
                    t, mio::bench::Sec(elapsed).c_str(), res.best().score);
      }
    }
    std::filesystem::remove_all(label_dir);
  }

  mio::bench::Header("Table III: speed-up ratio vs single core");
  std::printf("%-10s %-14s", "dataset", "algo");
  for (std::int64_t t : threads_list) {
    if (t == 1) continue;
    std::printf(" %7s", ("t=" + std::to_string(t)).c_str());
  }
  std::printf("\n");
  for (const auto& [name, per_algo] : times) {
    for (const auto& [algo, per_t] : per_algo) {
      auto base = per_t.find(1);
      if (base == per_t.end() || base->second <= 0.0) continue;
      std::printf("%-10s %-14s", name.c_str(), algo.c_str());
      for (std::int64_t t : threads_list) {
        if (t == 1) continue;
        auto it = per_t.find(static_cast<int>(t));
        if (it == per_t.end() || it->second <= 0.0) {
          std::printf(" %7s", "-");
        } else {
          std::printf(" %7.3f", base->second / it->second);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
