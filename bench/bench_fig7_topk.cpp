// Fig. 7 — the top-k variant: BIGrid query time as k grows. NL and SG
// compute every score, so their time is k-independent (the paper notes
// this); one reference row per dataset is printed for them.
//
//   ./bench_fig7_topk [--full] [--datasets=...] [--r=4] [--k=1,5,25,100]
#include "bench_common.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  mio::datagen::Scale scale = mio::bench::SelectScale(args);
  double r = args.GetDouble("r", 4.0);
  std::vector<std::int64_t> ks = args.GetIntList("k", {1, 5, 25, 100});

  mio::bench::Header("Fig. 7: top-k query time (r = " + std::to_string(r) +
                     ")");
  std::printf("%-10s %-10s %8s %12s %12s %12s %14s\n", "dataset", "algo", "k",
              "time[s]", "kth-score", "candidates", "verified");

  for (mio::datagen::Preset preset : mio::bench::SelectDatasets(args)) {
    mio::ObjectSet set = mio::datagen::MakePreset(preset, scale);
    std::string name = mio::datagen::PresetName(preset);

    for (std::int64_t k : ks) {
      if (static_cast<std::size_t>(k) > set.size()) continue;
      mio::MioEngine engine(set);
      mio::QueryOptions opt;
      opt.k = static_cast<std::size_t>(k);
      mio::Timer t;
      mio::QueryResult res = engine.Query(r, opt);
      std::printf("%-10s %-10s %8lld %12s %12u %12zu %14zu\n", name.c_str(),
                  "bigrid", static_cast<long long>(k),
                  mio::bench::Sec(t.ElapsedSeconds()).c_str(),
                  res.topk.back().score, res.stats.num_candidates,
                  res.stats.num_verified);
    }
    // k-independent baseline reference (SG; NL is strictly slower).
    mio::Timer t;
    mio::QueryResult sg = mio::SimpleGridQuery(set, r, 1, 1);
    std::printf("%-10s %-10s %8s %12s %12u %12s %14zu\n", name.c_str(),
                "sg(any k)", "-", mio::bench::Sec(t.ElapsedSeconds()).c_str(),
                sg.best().score, "-", set.size());
  }
  return 0;
}
