// Tests for the qlog layer (obs/qlog.hpp): mio-qlog-v1 record round-trip
// on every field, string-escaping edge cases, validator rejections, the
// JsonValue parser, writer/loader file behaviour, tail-sampling policy,
// and report aggregation against the shared R-7 percentile helper.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/query_result.hpp"
#include "obs/json.hpp"
#include "obs/qlog.hpp"
#include "obs/stats_sink.hpp"

namespace mio {
namespace obs {
namespace {

class QlogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mio_qlog_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

/// A record with a distinctive value in every field, so a round-trip
/// mix-up between any two fields is caught.
QlogRecord MakeFullRecord() {
  QlogRecord rec;
  rec.query_index = 41;
  rec.workload = "mix-workload";
  rec.dataset = "data/birds.bin";
  rec.algo = "bigrid-label";
  rec.r = 4.25;
  rec.ceil_r = 5;
  rec.k = 3;
  rec.threads = 7;
  rec.wall_seconds = 0.125;
  rec.total_seconds = 0.117;
  rec.phase_label_input = 0.001;
  rec.phase_grid_mapping = 0.032;
  rec.phase_lower_bounding = 0.008;
  rec.phase_upper_bounding = 0.046;
  rec.phase_verification = 0.03;
  rec.objects = 1200;
  rec.candidates = 321;
  rec.verified = 54;
  rec.distance_computations = 987654;
  rec.winner_id = 17;
  rec.winner_score = 290;
  rec.label_outcome = "hit_disk";
  rec.points_pruned_by_labels = 23456;
  rec.status = "DeadlineExceeded";
  rec.complete = false;
  rec.degradation_level = 2;
  rec.pmu_tier = "timing";
  rec.kernel_tier = "avx2";
  rec.index_memory_bytes = 123456789;
  rec.peak_memory_bytes = 234567890;
  rec.trace_dropped_spans = 11;
  return rec;
}

TEST(QlogRecord, RoundTripsEveryField) {
  QlogRecord rec = MakeFullRecord();
  std::string line = QlogRecordToJsonLine(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  ASSERT_TRUE(ValidateQlogLine(line).ok());

  QlogRecord back;
  ASSERT_TRUE(ParseQlogRecord(line, &back).ok());
  EXPECT_EQ(back.query_index, rec.query_index);
  EXPECT_EQ(back.workload, rec.workload);
  EXPECT_EQ(back.dataset, rec.dataset);
  EXPECT_EQ(back.algo, rec.algo);
  EXPECT_DOUBLE_EQ(back.r, rec.r);
  EXPECT_EQ(back.ceil_r, rec.ceil_r);
  EXPECT_EQ(back.k, rec.k);
  EXPECT_EQ(back.threads, rec.threads);
  EXPECT_DOUBLE_EQ(back.wall_seconds, rec.wall_seconds);
  EXPECT_DOUBLE_EQ(back.total_seconds, rec.total_seconds);
  EXPECT_DOUBLE_EQ(back.phase_label_input, rec.phase_label_input);
  EXPECT_DOUBLE_EQ(back.phase_grid_mapping, rec.phase_grid_mapping);
  EXPECT_DOUBLE_EQ(back.phase_lower_bounding, rec.phase_lower_bounding);
  EXPECT_DOUBLE_EQ(back.phase_upper_bounding, rec.phase_upper_bounding);
  EXPECT_DOUBLE_EQ(back.phase_verification, rec.phase_verification);
  EXPECT_EQ(back.objects, rec.objects);
  EXPECT_EQ(back.candidates, rec.candidates);
  EXPECT_EQ(back.verified, rec.verified);
  EXPECT_EQ(back.distance_computations, rec.distance_computations);
  EXPECT_EQ(back.winner_id, rec.winner_id);
  EXPECT_EQ(back.winner_score, rec.winner_score);
  EXPECT_EQ(back.label_outcome, rec.label_outcome);
  EXPECT_EQ(back.points_pruned_by_labels, rec.points_pruned_by_labels);
  EXPECT_EQ(back.status, rec.status);
  EXPECT_EQ(back.complete, rec.complete);
  EXPECT_EQ(back.degradation_level, rec.degradation_level);
  EXPECT_EQ(back.pmu_tier, rec.pmu_tier);
  EXPECT_EQ(back.kernel_tier, rec.kernel_tier);
  EXPECT_EQ(back.index_memory_bytes, rec.index_memory_bytes);
  EXPECT_EQ(back.peak_memory_bytes, rec.peak_memory_bytes);
  EXPECT_EQ(back.trace_dropped_spans, rec.trace_dropped_spans);
}

TEST(QlogRecord, RoundTripsEscapingEdgeCases) {
  QlogRecord rec = MakeFullRecord();
  // Quotes, backslashes, control characters, a tab, and multi-byte UTF-8
  // in the free-text fields.
  rec.workload = "a\"b\\c\n\td\x01";
  rec.dataset = "päth/with ünïcode/\"quoted\".bin";
  std::string line = QlogRecordToJsonLine(rec);
  ASSERT_TRUE(ValidateQlogLine(line).ok());
  QlogRecord back;
  ASSERT_TRUE(ParseQlogRecord(line, &back).ok());
  EXPECT_EQ(back.workload, rec.workload);
  EXPECT_EQ(back.dataset, rec.dataset);
}

TEST(QlogRecord, DefaultRecordIsValid) {
  std::string line = QlogRecordToJsonLine(QlogRecord{});
  EXPECT_TRUE(ValidateQlogLine(line).ok()) << line;
}

TEST(QlogRecord, PhasesTotalIsSumOfPhases) {
  QlogRecord rec = MakeFullRecord();
  std::string line = QlogRecordToJsonLine(rec);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(line, &doc));
  const JsonValue* phases = doc.Find("phases");
  ASSERT_NE(phases, nullptr);
  double expected = rec.phase_label_input + rec.phase_grid_mapping +
                    rec.phase_lower_bounding + rec.phase_upper_bounding +
                    rec.phase_verification;
  EXPECT_DOUBLE_EQ(phases->GetDouble("total"), expected);
}

TEST(QlogValidate, RejectsMalformedInput) {
  EXPECT_FALSE(ValidateQlogLine("").ok());
  EXPECT_FALSE(ValidateQlogLine("not json").ok());
  EXPECT_FALSE(ValidateQlogLine("[1,2,3]").ok());
  EXPECT_FALSE(ValidateQlogLine("{}").ok());
  EXPECT_FALSE(ValidateQlogLine(R"({"schema":"mio-stats-v1"})").ok());
}

TEST(QlogValidate, RejectsMissingOrWrongTypedFields) {
  std::string good = QlogRecordToJsonLine(MakeFullRecord());
  ASSERT_TRUE(ValidateQlogLine(good).ok());

  // Dropping any single required field must fail validation. Fields are
  // located via their serialized "key":value form.
  for (const char* needle :
       {"\"query_index\":41,", "\"wall_seconds\":0.125,",
        "\"verification\":0.03,", "\"objects\":1200,",
        "\"outcome\":\"hit_disk\",", "\"complete\":false,",
        "\"pmu_tier\":\"timing\",", "\"dropped_spans\":11"}) {
    std::string broken = good;
    std::size_t pos = broken.find(needle);
    ASSERT_NE(pos, std::string::npos) << needle;
    broken.erase(pos, std::string(needle).size());
    // The erase may leave a syntactically valid document (trailing comma
    // handling) or not; either way it must not validate.
    EXPECT_FALSE(ValidateQlogLine(broken).ok()) << "dropped " << needle;
  }

  // Wrong type: string where a number is required.
  std::string broken = good;
  std::size_t pos = broken.find("\"wall_seconds\":0.125");
  ASSERT_NE(pos, std::string::npos);
  broken.replace(pos, std::string("\"wall_seconds\":0.125").size(),
                 "\"wall_seconds\":\"fast\"");
  EXPECT_FALSE(ValidateQlogLine(broken).ok());
}

TEST(QlogValidate, RejectsUnknownLabelOutcome) {
  QlogRecord rec = MakeFullRecord();
  rec.label_outcome = "banana";
  EXPECT_FALSE(ValidateQlogLine(QlogRecordToJsonLine(rec)).ok());
}

// The qlog validator keeps its own copy of the outcome names (the obs
// layer cannot depend on core); this pins the two lists together.
TEST(QlogValidate, LabelOutcomeNamesMatchCoreEnum) {
  for (LabelOutcome o :
       {LabelOutcome::kOff, LabelOutcome::kHitMemory, LabelOutcome::kHitDisk,
        LabelOutcome::kMissRecorded, LabelOutcome::kMiss}) {
    QlogRecord rec;
    rec.label_outcome = LabelOutcomeName(o);
    EXPECT_TRUE(ValidateQlogLine(QlogRecordToJsonLine(rec)).ok())
        << rec.label_outcome;
  }
}

TEST(QlogValidate, LabelHitHelperMatchesNames) {
  QlogRecord rec;
  rec.label_outcome = "hit_memory";
  EXPECT_TRUE(rec.LabelHit());
  rec.label_outcome = "hit_disk";
  EXPECT_TRUE(rec.LabelHit());
  for (const char* miss : {"off", "recorded", "miss"}) {
    rec.label_outcome = miss;
    EXPECT_FALSE(rec.LabelHit()) << miss;
  }
}

// --- JsonValue parser (the read side the qlog is built on) ------------------

TEST(JsonParse, ParsesScalarsAndContainers) {
  JsonValue doc;
  ASSERT_TRUE(ParseJson(
      R"({"i":42,"d":-1.5e2,"s":"hi","b":true,"n":null,"a":[1,"two",false]})",
      &doc));
  ASSERT_TRUE(doc.IsObject());
  EXPECT_DOUBLE_EQ(doc.GetDouble("i"), 42.0);
  EXPECT_EQ(doc.GetUInt("i"), 42u);
  EXPECT_DOUBLE_EQ(doc.GetDouble("d"), -150.0);
  EXPECT_EQ(doc.GetString("s"), "hi");
  EXPECT_TRUE(doc.GetBool("b"));
  ASSERT_NE(doc.Find("n"), nullptr);
  EXPECT_TRUE(doc.Find("n")->IsNull());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->elements().size(), 3u);
  EXPECT_DOUBLE_EQ(a->elements()[0].AsDouble(), 1.0);
  EXPECT_EQ(a->elements()[1].AsString(), "two");
  EXPECT_FALSE(a->elements()[2].AsBool(true));
}

TEST(JsonParse, DecodesEscapesAndSurrogatePairs) {
  JsonValue doc;
  ASSERT_TRUE(
      ParseJson(R"({"s":"q\"b\\s\/n\nt\tué pair😀"})", &doc));
  // é = é (2-byte UTF-8), 😀 = 😀 (4-byte via surrogates).
  EXPECT_EQ(doc.GetString("s"), "q\"b\\s/n\nt\tu\xC3\xA9 pair\xF0\x9F\x98\x80");
}

TEST(JsonParse, FallbacksOnAbsentOrWrongType) {
  JsonValue doc;
  ASSERT_TRUE(ParseJson(R"({"s":"text","neg":-3})", &doc));
  EXPECT_DOUBLE_EQ(doc.GetDouble("missing", 7.5), 7.5);
  EXPECT_DOUBLE_EQ(doc.GetDouble("s", 7.5), 7.5);
  EXPECT_EQ(doc.GetUInt("neg", 9), 9u);  // negative cannot be a uint
  EXPECT_EQ(doc.GetString("missing", "fb"), "fb");
  EXPECT_TRUE(doc.GetBool("missing", true));
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParse, ReportsErrors) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\":}", &doc, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("{\"a\":1} extra", &doc, &error));
}

// --- Writer / loader --------------------------------------------------------

TEST_F(QlogFileTest, WriterAppendsAndLoaderRoundTrips) {
  std::string path = PathFor("run.jsonl");
  QlogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.is_open());
  for (std::uint64_t i = 0; i < 5; ++i) {
    QlogRecord rec = MakeFullRecord();
    rec.query_index = i;
    rec.wall_seconds = 0.01 * static_cast<double>(i + 1);
    ASSERT_TRUE(writer.Append(rec).ok());
  }
  EXPECT_EQ(writer.records_written(), 5u);
  ASSERT_TRUE(writer.Close().ok());

  Result<std::vector<QlogRecord>> loaded = LoadQlogFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(loaded.value()[i].query_index, i);
  }
}

TEST_F(QlogFileTest, WriterRefusesInvalidRecord) {
  QlogWriter writer;
  ASSERT_TRUE(writer.Open(PathFor("run.jsonl")).ok());
  QlogRecord rec;
  rec.label_outcome = "not-an-outcome";
  EXPECT_FALSE(writer.Append(rec).ok());
  EXPECT_EQ(writer.records_written(), 0u);
}

TEST_F(QlogFileTest, AppendWithoutOpenFails) {
  QlogWriter writer;
  EXPECT_FALSE(writer.Append(QlogRecord{}).ok());
}

TEST_F(QlogFileTest, LoaderReportsLineNumberOfBadRecord) {
  std::string path = PathFor("bad.jsonl");
  {
    std::ofstream out(path);
    out << QlogRecordToJsonLine(MakeFullRecord()) << "\n";
    out << "{\"schema\":\"mio-qlog-v1\"}\n";  // line 2: missing fields
  }
  Result<std::vector<QlogRecord>> loaded = LoadQlogFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos)
      << loaded.status().message();
}

TEST_F(QlogFileTest, LoaderSkipsBlankLinesAndMissingFileFails) {
  std::string path = PathFor("gaps.jsonl");
  {
    std::ofstream out(path);
    out << QlogRecordToJsonLine(MakeFullRecord()) << "\n\n";
    out << QlogRecordToJsonLine(MakeFullRecord()) << "\n";
  }
  Result<std::vector<QlogRecord>> loaded = LoadQlogFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_FALSE(LoadQlogFile(PathFor("nope.jsonl")).ok());
}

// --- Tail sampler -----------------------------------------------------------

TEST(TailSampler, DisabledExportsNothing) {
  TailSampler sampler(TailSamplerConfig{});
  EXPECT_FALSE(sampler.enabled());
  EXPECT_FALSE(sampler.Offer(0, 10.0).export_trace);
  EXPECT_TRUE(sampler.TailIndices().empty());
}

TEST(TailSampler, ThresholdKeepsEveryExceeder) {
  TailSamplerConfig cfg;
  cfg.threshold_seconds = 0.1;
  TailSampler sampler(cfg);
  EXPECT_FALSE(sampler.Offer(0, 0.05).export_trace);
  EXPECT_TRUE(sampler.Offer(1, 0.10).export_trace);  // >= threshold
  EXPECT_TRUE(sampler.Offer(2, 0.50).export_trace);
  EXPECT_FALSE(sampler.Offer(3, 0.09).export_trace);
  EXPECT_EQ(sampler.TailIndices(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(TailSampler, SlowestNEvictsFasterMembers) {
  TailSamplerConfig cfg;
  cfg.slowest_n = 2;
  TailSampler sampler(cfg);
  // Fills: both exported, no evictions.
  EXPECT_TRUE(sampler.Offer(0, 0.3).export_trace);
  EXPECT_TRUE(sampler.Offer(1, 0.1).export_trace);
  // 0.2 displaces 0.1 (index 1).
  TailSampler::Decision d = sampler.Offer(2, 0.2);
  EXPECT_TRUE(d.export_trace);
  EXPECT_EQ(d.evict, (std::vector<std::uint64_t>{1}));
  // Too fast to join: not exported, nothing evicted.
  d = sampler.Offer(3, 0.05);
  EXPECT_FALSE(d.export_trace);
  EXPECT_TRUE(d.evict.empty());
  EXPECT_EQ(sampler.TailIndices(), (std::vector<std::uint64_t>{0, 2}));
}

TEST(TailSampler, TiesKeepTheLaterIndex) {
  TailSamplerConfig cfg;
  cfg.slowest_n = 1;
  TailSampler sampler(cfg);
  EXPECT_TRUE(sampler.Offer(0, 0.2).export_trace);
  TailSampler::Decision d = sampler.Offer(1, 0.2);  // tie: later index wins
  EXPECT_TRUE(d.export_trace);
  EXPECT_EQ(d.evict, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(sampler.TailIndices(), (std::vector<std::uint64_t>{1}));
}

TEST(TailSampler, ThresholdMembersAreNeverEvicted) {
  TailSamplerConfig cfg;
  cfg.threshold_seconds = 0.1;
  cfg.slowest_n = 1;
  TailSampler sampler(cfg);
  // Exceeds the threshold AND joins slowest-1.
  EXPECT_TRUE(sampler.Offer(0, 0.15).export_trace);
  // Displaces it from slowest-1, but the threshold membership holds: no
  // eviction of its trace file.
  TailSampler::Decision d = sampler.Offer(1, 0.2);
  EXPECT_TRUE(d.export_trace);
  EXPECT_TRUE(d.evict.empty());
  EXPECT_EQ(sampler.TailIndices(), (std::vector<std::uint64_t>{0, 1}));
}

TEST(TailSampler, FinalSetMatchesOfflineRecomputation) {
  // The check scripts recompute the tail set from the qlog; this pins the
  // streaming semantics to the documented offline definition.
  TailSamplerConfig cfg;
  cfg.threshold_seconds = 0.45;
  cfg.slowest_n = 3;
  TailSampler sampler(cfg);
  std::vector<double> wall = {0.12, 0.48, 0.03, 0.2, 0.2,
                              0.46, 0.2,  0.31, 0.02, 0.19};
  for (std::size_t i = 0; i < wall.size(); ++i) {
    (void)sampler.Offer(i, wall[i]);
  }
  // Offline: threshold-exceeders {1, 5} plus slowest-3 by (wall, index)
  // descending = {1 (0.48), 5 (0.46), 7 (0.31)}.
  EXPECT_EQ(sampler.TailIndices(), (std::vector<std::uint64_t>{1, 5, 7}));
}

TEST(TailSampler, TraceFileNameIsZeroPadded) {
  EXPECT_EQ(TailTraceFileName(0), "q000000.trace.json");
  EXPECT_EQ(TailTraceFileName(123), "q000123.trace.json");
  EXPECT_EQ(TailTraceFileName(1234567), "q1234567.trace.json");
}

// --- Report -----------------------------------------------------------------

std::vector<QlogRecord> MakeWorkloadRecords() {
  std::vector<QlogRecord> records;
  // 20 queries over two ceil(r) classes; wall latency i+1 centiseconds.
  for (std::uint64_t i = 0; i < 20; ++i) {
    QlogRecord rec;
    rec.query_index = i;
    rec.r = i % 2 == 0 ? 3.5 : 7.0;
    rec.ceil_r = i % 2 == 0 ? 4 : 7;
    rec.wall_seconds = 0.01 * static_cast<double>(i + 1);
    rec.phase_grid_mapping = 0.004 * static_cast<double>(i + 1);
    rec.phase_verification = 0.006 * static_cast<double>(i + 1);
    rec.label_outcome = i < 2 ? "recorded" : (i % 5 == 0 ? "miss"
                                              : i % 2 == 0 ? "hit_memory"
                                                           : "hit_disk");
    rec.status = i == 19 ? "DeadlineExceeded" : "OK";
    rec.complete = i != 19;
    rec.degradation_level = i == 18 ? 1 : 0;
    records.push_back(std::move(rec));
  }
  return records;
}

TEST(QlogReportTest, LatencyPercentilesMatchSharedHelper) {
  std::vector<QlogRecord> records = MakeWorkloadRecords();
  QlogReport report = BuildQlogReport(records, 3);
  std::vector<double> wall;
  for (const QlogRecord& rec : records) wall.push_back(rec.wall_seconds);
  EXPECT_DOUBLE_EQ(report.latency.p50, Percentile(wall, 0.50));
  EXPECT_DOUBLE_EQ(report.latency.p95, Percentile(wall, 0.95));
  EXPECT_DOUBLE_EQ(report.latency.p99, Percentile(wall, 0.99));
  EXPECT_DOUBLE_EQ(report.latency.min, 0.01);
  EXPECT_DOUBLE_EQ(report.latency.max, 0.20);
  EXPECT_EQ(report.num_queries, 20u);
  EXPECT_EQ(report.incomplete, 1u);
  EXPECT_EQ(report.degraded, 1u);
}

TEST(QlogReportTest, PhaseSharesSumToOne) {
  QlogReport report = BuildQlogReport(MakeWorkloadRecords(), 3);
  ASSERT_EQ(report.phases.size(), 5u);
  double share_sum = 0.0;
  for (const QlogPhaseAggregate& agg : report.phases) {
    share_sum += agg.share;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-12);
  // grid_mapping : verification totals were built at a 4:6 ratio.
  EXPECT_NEAR(report.phases[1].total_seconds / report.phases[4].total_seconds,
              4.0 / 6.0, 1e-9);
}

TEST(QlogReportTest, LabelReusePerCeilClass) {
  QlogReport report = BuildQlogReport(MakeWorkloadRecords(), 3);
  ASSERT_EQ(report.ceil_classes.size(), 2u);
  EXPECT_EQ(report.ceil_classes[0].ceil_r, 4);
  EXPECT_EQ(report.ceil_classes[1].ceil_r, 7);
  std::uint64_t total = 0, hits = 0, recorded = 0, misses = 0;
  for (const QlogCeilClassStats& cls : report.ceil_classes) {
    total += cls.queries;
    hits += cls.hits;
    recorded += cls.recorded;
    misses += cls.misses;
    EXPECT_GE(cls.HitRate(), 0.0);
    EXPECT_LE(cls.HitRate(), 1.0);
  }
  EXPECT_EQ(total, 20u);
  // i in {0,1} recorded; i in {5,10,15} miss (i=0 already counted as
  // recorded); the rest hit.
  EXPECT_EQ(recorded, 2u);
  EXPECT_EQ(misses, 3u);
  EXPECT_EQ(hits, 15u);
}

TEST(QlogReportTest, SlowestTableIsWallDescending) {
  QlogReport report = BuildQlogReport(MakeWorkloadRecords(), 4);
  ASSERT_EQ(report.slowest.size(), 4u);
  EXPECT_EQ(report.slowest[0].query_index, 19u);
  EXPECT_EQ(report.slowest[0].status, "DeadlineExceeded");
  for (std::size_t i = 1; i < report.slowest.size(); ++i) {
    EXPECT_GE(report.slowest[i - 1].wall_seconds,
              report.slowest[i].wall_seconds);
  }
}

TEST(QlogReportTest, EmptyInputProducesZeroReport) {
  QlogReport report = BuildQlogReport({}, 5);
  EXPECT_EQ(report.num_queries, 0u);
  EXPECT_DOUBLE_EQ(report.latency.p99, 0.0);
  EXPECT_TRUE(report.slowest.empty());
  EXPECT_TRUE(report.ceil_classes.empty());
}

TEST_F(QlogFileTest, ReportJsonIsValidAndResolvesTraceFiles) {
  QlogReport report = BuildQlogReport(MakeWorkloadRecords(), 2);
  // Only q19's trace file exists.
  std::ofstream(PathFor(TailTraceFileName(19))) << "{}";
  std::string doc = QlogReportToJson(report, dir_.string());
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error;
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(doc, &parsed));
  EXPECT_EQ(parsed.GetString("schema"), "mio-qlog-report-v1");
  const JsonValue* slowest = parsed.Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_EQ(slowest->elements().size(), 2u);
  EXPECT_FALSE(slowest->elements()[0].GetString("trace_file").empty());
  EXPECT_TRUE(slowest->elements()[1].GetString("trace_file").empty());

  std::string text = FormatQlogReport(report, dir_.string());
  EXPECT_NE(text.find("q19"), std::string::npos);
  EXPECT_NE(text.find(TailTraceFileName(19)), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace mio
