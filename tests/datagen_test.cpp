#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/simple_grid.hpp"
#include "datagen/neuron_gen.hpp"
#include "datagen/powerlaw_gen.hpp"
#include "datagen/presets.hpp"
#include "datagen/trajectory_gen.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

using datagen::MakeBirdLike;
using datagen::MakeNeuronLike;
using datagen::MakePowerLaw;
using datagen::MakePreset;
using datagen::Preset;
using datagen::Scale;

TEST(NeuronGenTest, ShapeMatchesConfig) {
  datagen::NeuronConfig cfg;
  cfg.num_objects = 40;
  cfg.points_per_object = 100;
  ObjectSet set = MakeNeuronLike(cfg);
  DatasetStats s = set.Stats();
  EXPECT_EQ(s.n, 40u);
  EXPECT_NEAR(s.m, 100.0, 25.0);  // +-20% jitter by design
  EXPECT_GE(s.min_points, 4u);
}

TEST(NeuronGenTest, DeterministicPerSeed) {
  datagen::NeuronConfig cfg;
  cfg.num_objects = 10;
  cfg.points_per_object = 50;
  ObjectSet a = MakeNeuronLike(cfg);
  ObjectSet b = MakeNeuronLike(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (ObjectId i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].NumPoints(), b[i].NumPoints());
    EXPECT_TRUE(a[i].points.back() == b[i].points.back());
  }
  cfg.seed = 99;
  ObjectSet c = MakeNeuronLike(cfg);
  EXPECT_FALSE(a[0].points[1] == c[0].points[1]);
}

TEST(NeuronGenTest, ObjectsAreElongatedNotBlobs) {
  // A neurite arbor should span much more than its step length: check the
  // object bounding box is much larger than the inter-point step.
  datagen::NeuronConfig cfg;
  cfg.num_objects = 5;
  cfg.points_per_object = 300;
  ObjectSet set = MakeNeuronLike(cfg);
  for (const Object& o : set.objects()) {
    Aabb box;
    for (const Point& p : o.points) box.Extend(p);
    double span = std::max({box.ExtentX(), box.ExtentY(), box.ExtentZ()});
    EXPECT_GT(span, 10.0 * cfg.step_length);
  }
}

TEST(BirdGenTest, ShapeAndDeterminism) {
  datagen::BirdConfig cfg;
  cfg.num_objects = 100;
  cfg.points_per_object = 20;
  ObjectSet set = MakeBirdLike(cfg);
  DatasetStats s = set.Stats();
  EXPECT_EQ(s.n, 100u);
  EXPECT_EQ(s.min_points, 20u);
  EXPECT_EQ(s.max_points, 20u);
  ObjectSet again = MakeBirdLike(cfg);
  EXPECT_TRUE(set[50].points[3] == again[50].points[3]);
}

TEST(BirdGenTest, TrajectoriesAreTwoDimensional) {
  datagen::BirdConfig cfg;
  cfg.num_objects = 20;
  ObjectSet set = MakeBirdLike(cfg);
  for (const Object& o : set.objects()) {
    for (const Point& p : o.points) EXPECT_DOUBLE_EQ(p.z, 0.0);
  }
}

TEST(BirdGenTest, FlockingCreatesInteractions) {
  // Flock members ride the same leader path within flock_radius, so at
  // r ~ radius the flocked sub-trajectories must interact.
  datagen::BirdConfig cfg;
  cfg.num_objects = 120;
  cfg.points_per_object = 30;
  cfg.flock_fraction = 0.5;
  cfg.flock_radius = 4.0;
  ObjectSet set = MakeBirdLike(cfg);
  std::vector<std::uint32_t> scores = SimpleGridScores(set, 8.0);
  EXPECT_GT(testing::MaxScore(scores), 5u);
}

TEST(BirdGenTest, TimesAreMonotonePerObject) {
  datagen::BirdConfig cfg;
  cfg.num_objects = 30;
  cfg.with_times = true;
  ObjectSet set = MakeBirdLike(cfg);
  for (const Object& o : set.objects()) {
    ASSERT_TRUE(o.HasTimes());
    for (std::size_t j = 1; j < o.times.size(); ++j) {
      EXPECT_GT(o.times[j], o.times[j - 1]);
    }
  }
}

TEST(PowerLawGenTest, ScoreDistributionIsHeavyTailed) {
  datagen::PowerLawConfig cfg;
  cfg.num_objects = 600;
  cfg.points_per_object = 10;
  ObjectSet set = MakePowerLaw(cfg);
  std::vector<std::uint32_t> scores = SimpleGridScores(set, 8.0);
  std::sort(scores.begin(), scores.end(), std::greater<>());
  // Heavy tail: the top object interacts with far more objects than the
  // median one, and many objects interact with almost nothing.
  EXPECT_GT(scores.front(), 20u);
  EXPECT_GE(scores.front(), 4 * std::max<std::uint32_t>(scores[300], 1));
  EXPECT_LE(scores[590], scores.front() / 4);
}

TEST(PresetTest, ParseAndNames) {
  Preset p;
  EXPECT_TRUE(datagen::ParsePreset("neuron", &p));
  EXPECT_EQ(p, Preset::kNeuron);
  EXPECT_TRUE(datagen::ParsePreset("syn", &p));
  EXPECT_FALSE(datagen::ParsePreset("nope", &p));
  for (Preset preset : datagen::AllPresets()) {
    Preset round;
    EXPECT_TRUE(datagen::ParsePreset(datagen::PresetName(preset), &round));
    EXPECT_EQ(round, preset);
  }
}

TEST(PresetTest, QuickSizesMatchTargets) {
  for (Preset preset : datagen::AllPresets()) {
    std::size_t n = 0, m = 0;
    datagen::PresetTargetSize(preset, Scale::kQuick, &n, &m);
    ObjectSet set = MakePreset(preset, Scale::kQuick);
    EXPECT_EQ(set.size(), n) << datagen::PresetName(preset);
    EXPECT_NEAR(set.Stats().m, static_cast<double>(m), 0.3 * m)
        << datagen::PresetName(preset);
  }
}

TEST(PresetTest, QuickDatasetsHaveInteractionsInPaperRange) {
  // The paper sweeps r in [4, 10]; the synthetic analogues must produce
  // non-trivial MIO scores in that range or every experiment is vacuous.
  for (Preset preset : datagen::AllPresets()) {
    if (preset == Preset::kSyn) continue;  // covered above, heavier
    ObjectSet set = MakePreset(preset, Scale::kQuick);
    std::vector<std::uint32_t> scores = SimpleGridScores(set, 6.0);
    EXPECT_GT(testing::MaxScore(scores), 2u) << datagen::PresetName(preset);
  }
}

}  // namespace
}  // namespace mio
