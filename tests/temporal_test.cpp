// Temporal MIO (Appendix B) against its brute-force oracle, including the
// delta = 0 special case.
#include "core/temporal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_utils.hpp"

namespace mio {
namespace {

struct TemporalCase {
  double r;
  double delta;
  double time_span;
  std::uint64_t seed;
};

class TemporalOracleTest : public ::testing::TestWithParam<TemporalCase> {};

TEST_P(TemporalOracleTest, MatchesBruteForce) {
  const TemporalCase& c = GetParam();
  ObjectSet set = testing::MakeRandomObjects(30, 4, 10, 25.0, c.seed, 5.0,
                                             /*with_times=*/true, c.time_span);
  std::vector<std::uint32_t> exact =
      TemporalBruteForceScores(set, c.r, c.delta);
  std::uint32_t best = testing::MaxScore(exact);

  QueryResult res = TemporalMioQuery(set, c.r, c.delta);
  ASSERT_FALSE(res.topk.empty());
  EXPECT_EQ(res.best().score, best);
  EXPECT_EQ(exact[res.best().id], best);
}

TEST_P(TemporalOracleTest, TopKMatchesBruteForce) {
  const TemporalCase& c = GetParam();
  ObjectSet set = testing::MakeRandomObjects(30, 4, 10, 25.0, c.seed + 50, 5.0,
                                             true, c.time_span);
  std::vector<std::uint32_t> exact =
      TemporalBruteForceScores(set, c.r, c.delta);
  std::vector<ScoredObject> want = TopKFromScores(exact, 4);

  QueryResult res = TemporalMioQuery(set, c.r, c.delta, 4);
  ASSERT_EQ(res.topk.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(res.topk[i].score, want[i].score) << "pos " << i;
    EXPECT_EQ(exact[res.topk[i].id], res.topk[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TemporalOracleTest,
    ::testing::Values(
        TemporalCase{4.0, 10.0, 100.0, 1},   // loose time constraint
        TemporalCase{4.0, 2.0, 100.0, 2},    // tight time constraint
        TemporalCase{8.0, 5.0, 50.0, 3},
        TemporalCase{4.0, 200.0, 100.0, 4},  // delta covers everything
        TemporalCase{2.0, 0.5, 20.0, 5}));   // very tight

TEST(TemporalTest, DeltaZeroRequiresExactTimestampMatch) {
  // Two objects at the same place; times match only between 0 and 1.
  ObjectSet set;
  set.Add(Object{{{0, 0, 0}, {1, 0, 0}}, {1.0, 2.0}});
  set.Add(Object{{{0.1, 0, 0}, {1.1, 0, 0}}, {1.0, 5.0}});
  set.Add(Object{{{0.2, 0, 0}}, {9.0}});  // right place, wrong time

  std::vector<std::uint32_t> exact = TemporalBruteForceScores(set, 1.0, 0.0);
  EXPECT_EQ(exact, (std::vector<std::uint32_t>{1, 1, 0}));

  QueryResult res = TemporalMioQuery(set, 1.0, 0.0);
  EXPECT_EQ(res.best().score, 1u);
}

TEST(TemporalTest, DeltaZeroAgainstOracleRandomised) {
  // Coarse timestamps so exact collisions actually occur.
  ObjectSet base = testing::MakeRandomObjects(20, 4, 8, 15.0, 7, 4.0, true, 5.0);
  ObjectSet set;
  for (const Object& o : base.objects()) {
    Object copy = o;
    for (double& t : copy.times) t = std::floor(t);  // times in {0..4}
    set.Add(std::move(copy));
  }
  std::vector<std::uint32_t> exact = TemporalBruteForceScores(set, 5.0, 0.0);
  QueryResult res = TemporalMioQuery(set, 5.0, 0.0);
  EXPECT_EQ(res.best().score, testing::MaxScore(exact));
}

TEST(TemporalTest, LargeDeltaEqualsSpatialQuery) {
  // With delta >= time span, the temporal query degenerates to plain MIO.
  ObjectSet set = testing::MakeRandomObjects(25, 4, 8, 20.0, 8, 4.0, true, 10.0);
  std::vector<std::uint32_t> spatial = testing::OracleScores(set, 5.0);
  QueryResult res = TemporalMioQuery(set, 5.0, 1000.0);
  EXPECT_EQ(res.best().score, testing::MaxScore(spatial));
}

TEST(TemporalTest, EdgeCases) {
  ObjectSet empty;
  EXPECT_TRUE(TemporalMioQuery(empty, 5.0, 1.0).topk.empty());

  ObjectSet set = testing::MakeRandomObjects(5, 3, 5, 10.0, 9, 2.0, true, 10.0);
  EXPECT_TRUE(TemporalMioQuery(set, -1.0, 1.0).topk.empty());
  EXPECT_TRUE(TemporalMioQuery(set, 5.0, -1.0).topk.empty());
  // Single object: score zero.
  ObjectSet one;
  one.Add(Object{{{0, 0, 0}}, {1.0}});
  QueryResult res = TemporalMioQuery(one, 5.0, 1.0);
  ASSERT_EQ(res.topk.size(), 1u);
  EXPECT_EQ(res.best().score, 0u);
}

TEST(TemporalTest, StatsPopulated) {
  ObjectSet set = testing::MakeRandomObjects(30, 4, 8, 20.0, 10, 4.0, true, 50.0);
  QueryResult res = TemporalMioQuery(set, 5.0, 10.0);
  EXPECT_GT(res.stats.cells_small, 0u);
  EXPECT_GT(res.stats.cells_large, 0u);
  EXPECT_GE(res.stats.num_candidates, res.stats.num_verified);
}

}  // namespace
}  // namespace mio
