#include "bitset/plain_bitset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/random.hpp"

namespace mio {
namespace {

TEST(PlainBitsetTest, StartsEmpty) {
  PlainBitset b;
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.Empty());
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(1000));
}

TEST(PlainBitsetTest, SetTestClear) {
  PlainBitset b;
  b.Set(5);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(6));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(PlainBitsetTest, ClearPastEndIsNoop) {
  PlainBitset b;
  b.Set(3);
  b.Clear(1000);
  EXPECT_EQ(b.Count(), 1u);
}

TEST(PlainBitsetTest, SetIsIdempotent) {
  PlainBitset b;
  b.Set(42);
  b.Set(42);
  EXPECT_EQ(b.Count(), 1u);
}

TEST(PlainBitsetTest, ResizeGrowsOnly) {
  PlainBitset b(100);
  EXPECT_EQ(b.SizeInBits(), 100u);
  b.Resize(50);
  EXPECT_EQ(b.SizeInBits(), 100u);
  b.Resize(200);
  EXPECT_EQ(b.SizeInBits(), 200u);
}

TEST(PlainBitsetTest, OrWithGrows) {
  PlainBitset a, b;
  a.Set(1);
  b.Set(500);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(500));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(PlainBitsetTest, AndWithDropsOutside) {
  PlainBitset a, b;
  a.Set(1);
  a.Set(70);
  a.Set(500);
  b.Set(70);
  a.AndWith(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(70));
}

TEST(PlainBitsetTest, AndNotWith) {
  PlainBitset a, b;
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(99);
  a.AndNotWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
  EXPECT_TRUE(a.Test(3));
}

TEST(PlainBitsetTest, XorWith) {
  PlainBitset a, b;
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  a.XorWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
  EXPECT_TRUE(a.Test(3));
}

TEST(PlainBitsetTest, ForEachSetBitAscending) {
  PlainBitset b;
  b.Set(300);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  std::vector<std::size_t> got = b.SetBits();
  EXPECT_EQ(got, (std::vector<std::size_t>{0, 63, 64, 300}));
}

TEST(PlainBitsetTest, ResetKeepsCapacityClearsBits) {
  PlainBitset b;
  for (std::size_t i = 0; i < 1000; i += 7) b.Set(i);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  b.Set(3);
  EXPECT_EQ(b.Count(), 1u);
}

TEST(PlainBitsetTest, EqualityIgnoresTrailingZeros) {
  PlainBitset a, b;
  a.Set(10);
  b.Set(10);
  b.Resize(10000);  // extra zero words
  EXPECT_TRUE(a == b);
  b.Set(9999);
  EXPECT_FALSE(a == b);
}

TEST(PlainBitsetTest, RandomisedAgainstStdSet) {
  Pcg32 rng(7);
  PlainBitset b;
  std::set<std::size_t> ref;
  for (int i = 0; i < 5000; ++i) {
    std::size_t idx = rng.NextBounded(4096);
    if (rng.NextDouble() < 0.7) {
      b.Set(idx);
      ref.insert(idx);
    } else {
      b.Clear(idx);
      ref.erase(idx);
    }
  }
  EXPECT_EQ(b.Count(), ref.size());
  for (std::size_t idx : ref) EXPECT_TRUE(b.Test(idx));
  std::vector<std::size_t> bits = b.SetBits();
  EXPECT_EQ(bits, std::vector<std::size_t>(ref.begin(), ref.end()));
}

}  // namespace
}  // namespace mio
