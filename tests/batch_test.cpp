// MioEngine::QueryBatch differential tests: batch execution must be
// bit-identical to per-query Query across kernel tiers, radius classes,
// top-k, labels, and thread counts — and a guardrail-tripped or
// memory-degraded member must never poison its siblings (including the
// ClearGridCache-mid-batch lifetime contract, mio_engine.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/bigrid.hpp"
#include "core/mio_engine.hpp"
#include "geo/kernels.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

std::vector<BatchQuery> MakeBatch(const std::vector<double>& radii,
                                  const QueryOptions& opt = {}) {
  std::vector<BatchQuery> batch(radii.size());
  for (std::size_t i = 0; i < radii.size(); ++i) {
    batch[i].r = radii[i];
    batch[i].options = opt;
  }
  return batch;
}

/// Runs the same members through a fresh engine's sequential Query loop
/// (reuse_grid on, like the batch implies) for differential comparison.
std::vector<QueryResult> RunSequential(const ObjectSet& set,
                                       const std::vector<BatchQuery>& batch) {
  MioEngine engine(set);
  std::vector<QueryResult> out;
  out.reserve(batch.size());
  for (const BatchQuery& q : batch) {
    QueryOptions opt = q.options;
    opt.reuse_grid = true;
    out.push_back(engine.Query(q.r, opt));
  }
  return out;
}

void ExpectSameAnswer(const QueryResult& a, const QueryResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.status.code(), b.status.code()) << what;
  ASSERT_EQ(a.topk.size(), b.topk.size()) << what;
  for (std::size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_EQ(a.topk[i].id, b.topk[i].id) << what << " rank " << i;
    EXPECT_EQ(a.topk[i].score, b.topk[i].score) << what << " rank " << i;
  }
}

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_ = testing::MakeRandomObjects(60, 4, 10, 30.0, 13, 5.0);
  }
  std::uint32_t Oracle(double r) {
    return testing::MaxScore(testing::OracleScores(set_, r));
  }
  ObjectSet set_;
};

// The mixed-ceiling workload the batch API exists for: several radii per
// ceil(r) class, classes interleaved in submission order.
const std::vector<double> kMixedRadii = {3.0, 4.5, 3.2, 6.8, 2.1,
                                         5.5, 4.0, 3.9, 6.1, 2.8};

TEST_F(BatchTest, MixedCeilingBitIdenticalToSequential) {
  std::vector<BatchQuery> batch = MakeBatch(kMixedRadii);
  std::vector<QueryResult> seq = RunSequential(set_, batch);

  MioEngine engine(set_);
  BatchResult res = engine.QueryBatch(batch);
  ASSERT_EQ(res.results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectSameAnswer(res.results[i], seq[i],
                     "r=" + std::to_string(kMixedRadii[i]));
    EXPECT_EQ(res.results[i].best().score, Oracle(kMixedRadii[i])) << i;
  }

  // Accounting: one build per distinct ceiling, every other member saved.
  std::map<int, int> ceilings;
  for (double r : kMixedRadii) {
    ++ceilings[static_cast<int>(LargeGridWidth(r))];
  }
  EXPECT_EQ(res.stats.classes, ceilings.size());
  EXPECT_EQ(res.stats.grid_builds, ceilings.size());
  EXPECT_EQ(res.stats.grid_builds_saved, kMixedRadii.size() - ceilings.size());
  EXPECT_GT(res.stats.postings_bytes_shared, 0u);
  EXPECT_GT(res.stats.arena_high_water_bytes, 0u);
}

TEST_F(BatchTest, BitIdenticalAcrossKernelTiers) {
  std::vector<BatchQuery> batch = MakeBatch({3.0, 4.5, 3.2, 6.8, 4.0});
  std::vector<QueryResult> seq = RunSequential(set_, batch);

  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  if (static_cast<int>(BestSupportedTier()) >=
      static_cast<int>(KernelTier::kSse2)) {
    tiers.push_back(KernelTier::kSse2);
  }
  if (BestSupportedTier() == KernelTier::kAvx2) {
    tiers.push_back(KernelTier::kAvx2);
  }
  KernelTier prev = ActiveKernelTier();
  for (KernelTier tier : tiers) {
    ASSERT_EQ(SetKernelTier(tier), tier);
    MioEngine engine(set_);
    BatchResult res = engine.QueryBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ExpectSameAnswer(res.results[i], seq[i],
                       std::string(KernelTierName(tier)) + " member " +
                           std::to_string(i));
    }
  }
  SetKernelTier(prev);
}

TEST_F(BatchTest, TopKMatchesSequentialAndOracle) {
  QueryOptions opt;
  opt.k = 5;
  std::vector<BatchQuery> batch = MakeBatch({5.0, 4.2, 5.0, 3.3}, opt);
  std::vector<QueryResult> seq = RunSequential(set_, batch);

  MioEngine engine(set_);
  BatchResult res = engine.QueryBatch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectSameAnswer(res.results[i], seq[i], "k=5 member " +
                                                 std::to_string(i));
    std::vector<ScoredObject> want =
        TopKFromScores(testing::OracleScores(set_, batch[i].r), 5);
    ASSERT_EQ(res.results[i].topk.size(), want.size()) << i;
    for (std::size_t rank = 0; rank < want.size(); ++rank) {
      EXPECT_EQ(res.results[i].topk[rank].score, want[rank].score)
          << i << " rank " << rank;
    }
  }
}

TEST_F(BatchTest, LabelsHoistedOncePerClassStayExact) {
  QueryOptions opt;
  opt.use_labels = true;
  opt.record_labels = true;
  // Three members of ceiling 4: the first records, siblings must replay
  // the hoisted set as a memory hit without re-probing.
  std::vector<BatchQuery> batch = MakeBatch({4.0, 3.7, 3.3, 6.5, 6.0}, opt);
  std::vector<QueryResult> seq = RunSequential(set_, batch);

  MioEngine engine(set_);
  BatchResult res = engine.QueryBatch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectSameAnswer(res.results[i], seq[i],
                     "labels member " + std::to_string(i));
    EXPECT_EQ(res.results[i].best().score, Oracle(batch[i].r)) << i;
  }
  EXPECT_EQ(res.results[0].stats.label_outcome, LabelOutcome::kMissRecorded);
  EXPECT_EQ(res.results[1].stats.label_outcome, LabelOutcome::kHitMemory);
  EXPECT_EQ(res.results[2].stats.label_outcome, LabelOutcome::kHitMemory);
  EXPECT_TRUE(engine.HasLabelsFor(4.0));
  EXPECT_TRUE(engine.HasLabelsFor(6.5));
}

TEST_F(BatchTest, ParallelBatchMatchesSerialBatch) {
  std::vector<BatchQuery> serial_batch = MakeBatch(kMixedRadii);
  QueryOptions par;
  par.threads = 4;
  std::vector<BatchQuery> parallel_batch = MakeBatch(kMixedRadii, par);

  MioEngine serial_engine(set_);
  BatchResult serial = serial_engine.QueryBatch(serial_batch);
  MioEngine parallel_engine(set_);
  BatchResult parallel = parallel_engine.QueryBatch(parallel_batch);
  for (std::size_t i = 0; i < kMixedRadii.size(); ++i) {
    ExpectSameAnswer(parallel.results[i], serial.results[i],
                     "threads=4 member " + std::to_string(i));
  }
}

TEST_F(BatchTest, TrippedMemberDoesNotPoisonSiblings) {
  std::vector<BatchQuery> batch = MakeBatch({4.0, 3.5, 3.2, 3.8});
  batch[1].options.deadline_ms = 1e-7;  // trips at the first guard poll

  MioEngine engine(set_);
  BatchResult res = engine.QueryBatch(batch);
  EXPECT_FALSE(res.results[1].complete);
  EXPECT_EQ(res.results[1].status.code(), StatusCode::kDeadlineExceeded);
  // Every sibling is exact, including the ones after the trip.
  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_TRUE(res.results[i].complete) << i;
    EXPECT_EQ(res.results[i].best().score, Oracle(batch[i].r)) << i;
  }
}

TEST_F(BatchTest, TrippedFirstMemberLeavesClassRebuildable) {
  // The class builder itself trips: grid_out must stay empty (a partial
  // grid is never shared) and the next member rebuilds and answers.
  std::vector<BatchQuery> batch = MakeBatch({4.0, 3.5});
  batch[0].options.deadline_ms = 1e-7;

  MioEngine engine(set_);
  BatchResult res = engine.QueryBatch(batch);
  EXPECT_FALSE(res.results[0].complete);
  EXPECT_TRUE(res.results[1].complete);
  EXPECT_EQ(res.results[1].best().score, Oracle(3.5));
  EXPECT_EQ(res.stats.grid_builds_saved, 0u);
}

TEST_F(BatchTest, MidBatchCacheClearCannotDangle) {
  // Satellite regression for the ClearGridCache lifetime contract: a
  // member whose memory budget walks the degradation ladder to "drop the
  // grid cache" clears grid_cache_ in the middle of the batch. The class
  // grid is pinned by the batch loop's shared_ptr, so later siblings must
  // keep reading it (no rebuild, no dangle — ASan covers the latter via
  // scripts/check_batch.sh).
  ObjectSet set = testing::MakeRandomObjects(400, 4, 8, 40.0, 81);
  const double r = 3.0;
  // The class grid reaches member 1 with member 0's memoised b_adj
  // bitsets aboard, so the budget is pinned to the post-query footprint
  // (index_memory_bytes after one full reuse_grid query), not to the
  // bare post-build grid the sequential ladder test uses.
  MioEngine probe(set);
  QueryOptions probe_opt;
  probe_opt.reuse_grid = true;
  const std::size_t warm_bytes =
      probe.Query(r, probe_opt).stats.index_memory_bytes;
  const std::uint32_t oracle = testing::MaxScore(testing::OracleScores(set, r));

  std::vector<BatchQuery> batch = MakeBatch({r, r, r, r});
  batch[1].options.memory_budget_bytes = warm_bytes;

  MioEngine engine(set);
  BatchOptions bopt;
  bopt.partition_postings = false;  // budget pinned to the flat footprint
  BatchResult res = engine.QueryBatch(batch, bopt);
  EXPECT_TRUE(res.results[1].complete);
  EXPECT_GE(res.results[1].stats.degradation_level, 2);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(res.results[i].complete) << i;
    EXPECT_EQ(res.results[i].best().score, oracle) << i;
  }
  // Members 1..3 all ran off the pinned class grid (no rebuild).
  EXPECT_EQ(res.stats.grid_builds, 1u);
  EXPECT_EQ(res.stats.grid_builds_saved, 3u);
  // And the engine survives the cleared cache: a fresh query rebuilds.
  QueryOptions reuse;
  reuse.reuse_grid = true;
  QueryResult after = engine.Query(r, reuse);
  EXPECT_EQ(after.best().score, oracle);
}

TEST_F(BatchTest, EmptyAndDegenerateMembers) {
  MioEngine engine(set_);
  EXPECT_TRUE(engine.QueryBatch({}).results.empty());

  std::vector<BatchQuery> batch = MakeBatch({4.0, 0.0, -1.0, 3.5});
  BatchResult res = engine.QueryBatch(batch);
  ASSERT_EQ(res.results.size(), 4u);
  EXPECT_EQ(res.results[0].best().score, Oracle(4.0));
  EXPECT_TRUE(res.results[1].topk.empty());
  EXPECT_TRUE(res.results[2].topk.empty());
  EXPECT_EQ(res.results[3].best().score, Oracle(3.5));
  EXPECT_EQ(res.stats.classes, 1u);  // 4.0 and 3.5 share ceiling 4
}

TEST_F(BatchTest, BatchWarmStartsFromEngineGridCache) {
  // A grid cached by an earlier sequential query serves the whole class:
  // zero builds inside the batch.
  MioEngine engine(set_);
  QueryOptions reuse;
  reuse.reuse_grid = true;
  engine.Query(4.0, reuse);

  BatchResult res = engine.QueryBatch(MakeBatch({4.0, 3.7, 3.1}));
  EXPECT_EQ(res.stats.grid_builds, 0u);
  EXPECT_EQ(res.stats.grid_builds_saved, 3u);
  EXPECT_EQ(res.results[0].best().score, Oracle(4.0));
  EXPECT_EQ(res.results[1].best().score, Oracle(3.7));
  EXPECT_EQ(res.results[2].best().score, Oracle(3.1));
}

// --- Two-level posting layout structural invariants ------------------------

TEST(PartitionPostingsTest, PreservesPointsAndBoxesAreTight) {
  ObjectSet set = testing::MakeRandomObjects(40, 6, 12, 20.0, 7, 4.0);
  BiGrid grid(set, 4.0);
  grid.Build();
  std::shared_ptr<LargeGridData> large = grid.ShareLargeGrid();

  // Flat-layout inventory per cell: multiset of (obj, x, y, z).
  using Entry = std::tuple<ObjectId, double, double, double>;
  std::map<const LargeCell*, std::vector<Entry>> before;
  for (auto& shard : large->shards) {
    shard.ForEach([&](const CellKey&, LargeCell& cell) {
      std::vector<Entry>& inv = before[&cell];
      for (std::size_t ri = 0; ri < cell.post_obj.size(); ++ri) {
        PostingView v = cell.PostingAt(ri);
        for (std::size_t p = 0; p < v.size; ++p) {
          inv.emplace_back(cell.post_obj[ri], v.xs[p], v.ys[p], v.zs[p]);
        }
      }
      std::sort(inv.begin(), inv.end());
    });
  }

  const std::size_t cells = PartitionLargeGridPostings(large.get(),
                                                       /*min_points=*/1);
  EXPECT_GT(cells, 0u);
  // Idempotent: a second pass finds nothing left to do.
  EXPECT_EQ(PartitionLargeGridPostings(large.get(), 1), 0u);

  for (auto& shard : large->shards) {
    shard.ForEach([&](const CellKey&, LargeCell& cell) {
      ASSERT_TRUE(cell.partitioned());
      ASSERT_EQ(cell.part_runs.size(), 9u);
      ASSERT_EQ(cell.part_box.size(), 48u);
      EXPECT_EQ(cell.part_runs[0], 0u);
      EXPECT_EQ(cell.part_runs[8], cell.post_obj.size());

      std::vector<Entry> after;
      for (int o = 0; o < 8; ++o) {
        ObjectId prev_obj = 0;
        bool first = true;
        for (std::uint32_t ri = cell.part_runs[o]; ri < cell.part_runs[o + 1];
             ++ri) {
          // Runs stay ascending by object id within each octant.
          if (!first) {
            EXPECT_LT(prev_obj, cell.post_obj[ri]);
          }
          prev_obj = cell.post_obj[ri];
          first = false;
          PostingView v = cell.PostingAt(ri);
          ASSERT_GT(v.size, 0u);
          const double* box = cell.part_box.data() + o * 6;
          for (std::size_t p = 0; p < v.size; ++p) {
            after.emplace_back(cell.post_obj[ri], v.xs[p], v.ys[p], v.zs[p]);
            // Every point sits inside its octant's tight box — the exact
            // soundness condition for MinDist2ToOctantBox pruning.
            EXPECT_GE(v.xs[p], box[0]);
            EXPECT_GE(v.ys[p], box[1]);
            EXPECT_GE(v.zs[p], box[2]);
            EXPECT_LE(v.xs[p], box[3]);
            EXPECT_LE(v.ys[p], box[4]);
            EXPECT_LE(v.zs[p], box[5]);
            EXPECT_EQ(MinDist2ToOctantBox(Point{v.xs[p], v.ys[p], v.zs[p]},
                                          cell.part_box.data(), o),
                      0.0);
          }
        }
      }
      std::sort(after.begin(), after.end());
      EXPECT_EQ(after, before[&cell]);
    });
  }
}

TEST(PartitionPostingsTest, SmallCellsKeepFlatLayout) {
  ObjectSet set = testing::MakeRandomObjects(10, 2, 3, 50.0, 5, 2.0);
  BiGrid grid(set, 3.0);
  grid.Build();
  std::shared_ptr<LargeGridData> large = grid.ShareLargeGrid();
  // An absurd threshold partitions nothing.
  EXPECT_EQ(PartitionLargeGridPostings(large.get(), 1u << 20), 0u);
  for (auto& shard : large->shards) {
    shard.ForEach([&](const CellKey&, LargeCell& cell) {
      EXPECT_FALSE(cell.partitioned());
    });
  }
}

}  // namespace
}  // namespace mio
