#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geo/aabb.hpp"
#include "geo/cell_key.hpp"
#include "geo/morton.hpp"
#include "geo/point.hpp"

namespace mio {
namespace {

TEST(PointTest, DistanceBasics) {
  Point a{0, 0, 0}, b{3, 4, 0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_TRUE(WithinDistance(a, b, 5.0));
  EXPECT_TRUE(WithinDistance(a, b, 5.0001));
  EXPECT_FALSE(WithinDistance(a, b, 4.9999));
}

TEST(CellKeyTest, SmallGridDiagonalEqualsR) {
  // Two points in the same small cell must be within r: the cell diagonal
  // is width * sqrt(3) = r exactly (paper Lemma 1's geometric basis).
  double r = 6.0;
  double w = SmallGridWidth(r);
  EXPECT_NEAR(w * std::sqrt(3.0), r, 1e-12);
  // The worst case: opposite cell corners.
  Point a{0.0, 0.0, 0.0};
  Point b{w - 1e-9, w - 1e-9, w - 1e-9};
  EXPECT_EQ(KeyForWidth(a, w), KeyForWidth(b, w));
  EXPECT_LE(Distance(a, b), r);
}

TEST(CellKeyTest, LargeGridWidthIsCeil) {
  EXPECT_DOUBLE_EQ(LargeGridWidth(4.0), 4.0);
  EXPECT_DOUBLE_EQ(LargeGridWidth(4.2), 5.0);
  EXPECT_DOUBLE_EQ(LargeGridWidth(0.3), 1.0);
  // Every r with the same ceiling shares a large grid (the label-reuse
  // invariant of paper section III-D).
  EXPECT_DOUBLE_EQ(LargeGridWidth(4.1), LargeGridWidth(4.9));
}

TEST(CellKeyTest, NegativeCoordinatesFloor) {
  // floor semantics: -0.5 at width 1 must land in cell -1, not 0.
  CellKey k = KeyForWidth(Point{-0.5, -1.0, -1.5}, 1.0);
  EXPECT_EQ(k.x, -1);
  EXPECT_EQ(k.y, -1);
  EXPECT_EQ(k.z, -2);
}

TEST(CellKeyTest, PointsWithinLargeWidthAreInNeighborhood) {
  // Core invariant of Lemma 2: if dist(p, q) <= r then q's large cell is
  // p's cell or one of the 26 neighbours.
  double r = 7.3;
  double w = LargeGridWidth(r);
  Point p{10.1, -3.7, 22.9};
  for (double dx : {-r, 0.0, r}) {
    for (double dy : {-r, 0.0, r}) {
      for (double dz : {-r, 0.0, r}) {
        Point q{p.x + dx, p.y + dy, p.z + dz};
        if (Distance(p, q) > r) continue;
        CellKey kp = KeyForWidth(p, w);
        CellKey kq = KeyForWidth(q, w);
        EXPECT_LE(std::abs(kp.x - kq.x), 1);
        EXPECT_LE(std::abs(kp.y - kq.y), 1);
        EXPECT_LE(std::abs(kp.z - kq.z), 1);
      }
    }
  }
}

TEST(CellKeyTest, NeighborhoodEnumeration) {
  CellKey c{0, 0, 0};
  std::set<std::tuple<int, int, int>> with_self, without_self;
  ForEachNeighbor(c, true, [&](const CellKey& k) {
    with_self.insert({k.x, k.y, k.z});
  });
  ForEachNeighbor(c, false, [&](const CellKey& k) {
    without_self.insert({k.x, k.y, k.z});
  });
  EXPECT_EQ(with_self.size(), 27u);
  EXPECT_EQ(without_self.size(), 26u);
  EXPECT_TRUE(with_self.count({0, 0, 0}));
  EXPECT_FALSE(without_self.count({0, 0, 0}));
  EXPECT_EQ(kNeighborhoodSize, 27);
}

TEST(CellKeyTest, HashSpreadsDistinctKeys) {
  CellKeyHash h;
  std::set<std::size_t> hashes;
  for (int x = -5; x <= 5; ++x) {
    for (int y = -5; y <= 5; ++y) {
      for (int z = -5; z <= 5; ++z) {
        hashes.insert(h(CellKey{x, y, z}));
      }
    }
  }
  EXPECT_EQ(hashes.size(), 11u * 11u * 11u);  // no collisions in this cube
}

TEST(AabbTest, ExtendAndDistance) {
  Aabb box;
  EXPECT_FALSE(box.Valid());
  box.Extend(Point{0, 0, 0});
  box.Extend(Point{2, 4, 6});
  EXPECT_TRUE(box.Valid());
  EXPECT_DOUBLE_EQ(box.ExtentX(), 2.0);
  EXPECT_DOUBLE_EQ(box.ExtentY(), 4.0);
  EXPECT_DOUBLE_EQ(box.ExtentZ(), 6.0);
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo(Point{1, 2, 3}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo(Point{5, 4, 6}), 9.0);
}

TEST(AabbTest, BoxToBoxDistance) {
  Aabb a, b;
  a.Extend(Point{0, 0, 0});
  a.Extend(Point{1, 1, 1});
  b.Extend(Point{4, 0, 0});
  b.Extend(Point{5, 1, 1});
  EXPECT_DOUBLE_EQ(a.MinSquaredDistanceTo(b), 9.0);
  Aabb c;
  c.Extend(Point{0.5, 0.5, 0.5});
  c.Extend(Point{6, 6, 6});
  EXPECT_DOUBLE_EQ(a.MinSquaredDistanceTo(c), 0.0);  // overlap
}

TEST(MortonTest, EncodeDecodeRoundTrip) {
  for (std::uint32_t x : {0u, 1u, 7u, 255u, 123456u, (1u << 21) - 1}) {
    for (std::uint32_t y : {0u, 31u, 99999u}) {
      std::uint32_t z = (x * 7 + y) & ((1u << 21) - 1);
      std::uint64_t code = MortonEncode3(x, y, z);
      std::uint32_t rx, ry, rz;
      MortonDecode3(code, &rx, &ry, &rz);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
      EXPECT_EQ(rz, z);
    }
  }
}

TEST(MortonTest, KeyOrderIsLocalityPreserving) {
  // Adjacent cells should have closer Morton codes than far cells,
  // at least in the common case (sanity, not a strict property).
  std::uint64_t origin = MortonOfKey(CellKey{0, 0, 0});
  std::uint64_t near = MortonOfKey(CellKey{1, 0, 0});
  std::uint64_t far = MortonOfKey(CellKey{512, 512, 512});
  auto dist = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : b - a;
  };
  EXPECT_LT(dist(origin, near), dist(origin, far));
  // Distinct keys, distinct codes.
  EXPECT_NE(MortonOfKey(CellKey{-1, 2, 3}), MortonOfKey(CellKey{1, 2, 3}));
}

}  // namespace
}  // namespace mio
