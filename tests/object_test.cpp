#include <gtest/gtest.h>

#include <set>

#include "grid/spatial_hash_grid.hpp"
#include "object/object_set.hpp"
#include "object/sampling.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

TEST(ObjectSetTest, StatsMatchContents) {
  ObjectSet set;
  set.Add(Object{{{0, 0, 0}, {1, 1, 1}}, {}});
  set.Add(Object{{{5, 5, 5}, {6, 6, 6}, {7, 7, 7}, {8, 8, 8}}, {}});
  DatasetStats s = set.Stats();
  EXPECT_EQ(s.n, 2u);
  EXPECT_EQ(s.nm, 6u);
  EXPECT_DOUBLE_EQ(s.m, 3.0);
  EXPECT_EQ(s.min_points, 2u);
  EXPECT_EQ(s.max_points, 4u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(ObjectSetTest, BoundsCoverEverything) {
  ObjectSet set;
  set.Add(Object{{{-1, 0, 2}}, {}});
  set.Add(Object{{{10, -5, 8}}, {}});
  Aabb box = set.Bounds();
  EXPECT_DOUBLE_EQ(box.min.x, -1);
  EXPECT_DOUBLE_EQ(box.min.y, -5);
  EXPECT_DOUBLE_EQ(box.max.x, 10);
  EXPECT_DOUBLE_EQ(box.max.z, 8);
}

TEST(ObjectSetTest, EmptyStats) {
  ObjectSet set;
  DatasetStats s = set.Stats();
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.nm, 0u);
}

TEST(SamplingTest, RespectsRate) {
  ObjectSet set = testing::MakeRandomObjects(100, 5, 10, 50.0, 1);
  ObjectSet half = SampleObjects(set, 0.5, 7);
  EXPECT_EQ(half.size(), 50u);
  ObjectSet all = SampleObjects(set, 1.0, 7);
  EXPECT_EQ(all.size(), 100u);
  ObjectSet none = SampleObjects(set, 0.0, 7);
  EXPECT_EQ(none.size(), 0u);
}

TEST(SamplingTest, DeterministicPerSeed) {
  ObjectSet set = testing::MakeRandomObjects(60, 3, 6, 50.0, 2);
  ObjectSet a = SampleObjects(set, 0.4, 11);
  ObjectSet b = SampleObjects(set, 0.4, 11);
  ASSERT_EQ(a.size(), b.size());
  for (ObjectId i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].NumPoints(), b[i].NumPoints());
    EXPECT_TRUE(a[i].points[0] == b[i].points[0]);
  }
}

TEST(SamplingTest, SamplesAreDistinctOriginals) {
  // Check no object is duplicated: sampled first-points must be unique
  // (almost surely, for continuous random data).
  ObjectSet set = testing::MakeRandomObjects(80, 2, 2, 1000.0, 3, 0.1);
  ObjectSet s = SampleObjects(set, 0.5, 13);
  std::set<double> first_coords;
  for (const Object& o : s.objects()) first_coords.insert(o.points[0].x);
  EXPECT_EQ(first_coords.size(), s.size());
}

TEST(SpatialHashGridTest, AllPointsRetrievableNearby) {
  ObjectSet set = testing::MakeRandomObjects(10, 5, 10, 20.0, 4);
  SpatialHashGrid grid(2.5);
  grid.Build(set);
  EXPECT_EQ(grid.NumEntries(), set.Stats().nm);
  EXPECT_GT(grid.NumCells(), 0u);
  // Every point must see itself via the neighbourhood scan.
  for (ObjectId i = 0; i < set.size(); ++i) {
    for (const Point& p : set[i].points) {
      bool found = false;
      grid.ForEachEntryNear(p, [&](const SpatialHashGrid::Entry& e) {
        if (e.obj == i && e.p == p) {
          found = false;  // keep scanning unless exact match
          found = true;
          return false;   // stop early
        }
        return true;
      });
      EXPECT_TRUE(found);
    }
  }
}

TEST(SpatialHashGridTest, NeighborhoodCoversRadius) {
  // Points within the cell width must be reachable through the 27-cell
  // neighbourhood scan.
  SpatialHashGrid grid(3.0);
  grid.Insert(0, Point{1.0, 1.0, 1.0});
  grid.Insert(1, Point{3.5, 1.0, 1.0});  // next cell over, within 3.0
  int seen = 0;
  grid.ForEachEntryNear(Point{1.0, 1.0, 1.0}, [&](const auto&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 2);
}

TEST(SpatialHashGridTest, CellAtFindsExactCell) {
  SpatialHashGrid grid(1.0);
  grid.Insert(3, Point{5.5, 5.5, 5.5});
  const auto* cell = grid.CellAt(CellKey{5, 5, 5});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->size(), 1u);
  EXPECT_EQ((*cell)[0].obj, 3u);
  EXPECT_EQ(grid.CellAt(CellKey{9, 9, 9}), nullptr);
  EXPECT_GT(grid.MemoryUsageBytes(), 0u);
}

}  // namespace
}  // namespace mio
