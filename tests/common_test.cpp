#include <gtest/gtest.h>

#include <set>

#include "common/argparse.hpp"
#include "common/memory_tracker.hpp"
#include "common/random.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"

namespace mio {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Corruption("bad checksum");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(st.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    MIO_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(std::move(bad).ValueOr(-1), -1);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, ScopedAccumulatorAddsUp) {
  double total = 0.0;
  {
    ScopedAccumulator acc(&total);
  }
  double first = total;
  {
    ScopedAccumulator acc(&total);
  }
  EXPECT_GE(total, first);
}

TEST(TimerTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(2.5), "2.500 s");
  EXPECT_EQ(FormatSeconds(0.0125), "12.50 ms");
  EXPECT_EQ(FormatSeconds(2.5e-6), "2.50 us");
}

TEST(TimerTest, FormatSecondsEdgeCases) {
  EXPECT_EQ(FormatSeconds(0.0), "0 s");
  EXPECT_EQ(FormatSeconds(3e-9), "3.0 ns");
  EXPECT_EQ(FormatSeconds(-2.5), "-2.500 s");
  EXPECT_EQ(FormatSeconds(-0.0125), "-12.50 ms");
  EXPECT_EQ(FormatSeconds(59.999), "59.999 s");
  EXPECT_EQ(FormatSeconds(60.0), "1m 0.0s");
  EXPECT_EQ(FormatSeconds(90.5), "1m 30.5s");
  EXPECT_EQ(FormatSeconds(3599.9), "59m 59.9s");
  EXPECT_EQ(FormatSeconds(3600.0), "1h 0m 0s");
  EXPECT_EQ(FormatSeconds(3661.0), "1h 1m 1s");
  EXPECT_EQ(FormatSeconds(7384.0), "2h 3m 4s");
}

TEST(MemoryTest, TrackerObservesCurrentAndPeak) {
  MemoryTracker& mt = MemoryTracker::Instance();
  mt.Reset();
  mt.Observe("idx", 100);
  mt.Observe("idx", 40);  // current drops, peak stays
  mt.Observe("aux", 7);
  auto snap = mt.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].tag, "aux");  // lexicographic order
  EXPECT_EQ(snap[0].current_bytes, 7u);
  EXPECT_EQ(snap[0].peak_bytes, 7u);
  EXPECT_EQ(snap[1].tag, "idx");
  EXPECT_EQ(snap[1].current_bytes, 40u);
  EXPECT_EQ(snap[1].peak_bytes, 100u);
  mt.Reset();
  EXPECT_TRUE(mt.Snapshot().empty());
}

TEST(MemoryTest, TrackerObserveBreakdown) {
  MemoryTracker& mt = MemoryTracker::Instance();
  mt.Reset();
  MemoryBreakdown mb;
  mb.Add("grid", 1000);
  mb.Add("postings", 250);
  mt.ObserveBreakdown(mb);
  auto snap = mt.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].tag, "grid");
  EXPECT_EQ(snap[0].peak_bytes, 1000u);
  EXPECT_EQ(snap[1].tag, "postings");
  EXPECT_EQ(snap[1].current_bytes, 250u);
  mt.Reset();
}

TEST(MemoryTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(MemoryTest, BreakdownTotals) {
  MemoryBreakdown mb;
  mb.Add("a", 100);
  mb.Add("b", 28);
  EXPECT_EQ(mb.Total(), 128u);
  EXPECT_NE(mb.ToString().find("total="), std::string::npos);
}

TEST(RandomTest, DeterministicPerSeed) {
  Pcg32 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Pcg32 a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, BoundedStaysInRange) {
  Pcg32 rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint32_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RandomTest, DoubleInUnitInterval) {
  Pcg32 rng(6);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Pcg32 rng(7);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(ArgParseTest, FlagsAndPositionals) {
  // Note: `--flag value` greedily binds the next non-flag token, so
  // valueless boolean flags must use `--flag` at the end or `--flag=1`.
  const char* argv[] = {"prog",          "--r=4.5", "--threads", "8",
                        "dataset1",      "--names=a,b,c", "--verbose"};
  ArgParser args(7, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.GetDouble("r", 0.0), 4.5);
  EXPECT_EQ(args.GetInt("threads", 1), 8);
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_FALSE(args.GetBool("quiet", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "dataset1");
  auto names = args.GetStringList("names", {});
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(args.GetString("missing", "fallback"), "fallback");
}

TEST(ArgParseTest, NumericLists) {
  const char* argv[] = {"prog", "--r=4,6,8,10", "--k=1,10,100"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.GetDoubleList("r", {}),
            (std::vector<double>{4, 6, 8, 10}));
  EXPECT_EQ(args.GetIntList("k", {}),
            (std::vector<std::int64_t>{1, 10, 100}));
  EXPECT_EQ(args.GetIntList("absent", {5}), (std::vector<std::int64_t>{5}));
}

}  // namespace
}  // namespace mio
