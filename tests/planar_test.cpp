// The 2-D specialisation (paper footnote 1): planar datasets get the
// r/sqrt(2) small grid — sound, tighter lower bounds, same answers.
#include <gtest/gtest.h>

#include "core/bigrid.hpp"
#include "core/lower_bound.hpp"
#include "core/mio_engine.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

ObjectSet MakePlanar(std::size_t n, std::uint64_t seed, double z = 0.0) {
  ObjectSet src = testing::MakeRandomObjects(n, 4, 10, 30.0, seed, 5.0);
  ObjectSet flat;
  for (const Object& o : src.objects()) {
    Object copy = o;
    for (Point& p : copy.points) p.z = z;
    flat.Add(std::move(copy));
  }
  return flat;
}

TEST(PlanarTest, DetectionRequiresConstantZ) {
  EXPECT_TRUE(MakePlanar(10, 1).IsPlanar());
  EXPECT_TRUE(MakePlanar(10, 1, 7.5).IsPlanar());  // any constant plane
  ObjectSet mixed = testing::MakeRandomObjects(10, 3, 5, 20.0, 2);
  EXPECT_FALSE(mixed.IsPlanar());
  EXPECT_FALSE(ObjectSet{}.IsPlanar());
}

TEST(PlanarTest, SameCellPairsStillWithinR) {
  // Worst case in the plane: opposite corners of a width-r/sqrt(2) cell.
  double r = 6.0;
  double w = SmallGridWidth2D(r);
  Point a{0.0, 0.0, 5.0};
  Point b{w - 1e-9, w - 1e-9, 5.0};
  EXPECT_EQ(KeyForWidth(a, w), KeyForWidth(b, w));
  EXPECT_LE(Distance(a, b), r);
}

TEST(PlanarTest, EngineUsesPlanarGridAndStaysExact) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ObjectSet set = MakePlanar(40, seed);
    std::vector<std::uint32_t> exact = testing::OracleScores(set, 5.0);
    MioEngine engine(set);
    EXPECT_TRUE(engine.planar());
    QueryResult res = engine.Query(5.0);
    EXPECT_EQ(res.best().score, testing::MaxScore(exact)) << seed;
  }
}

TEST(PlanarTest, PlanarLowerBoundsAtLeastAsTight) {
  ObjectSet set = MakePlanar(60, 5);
  double r = 5.0;
  BiGrid planar(set, r, /*planar=*/true);
  planar.Build();
  BiGrid generic(set, r, /*planar=*/false);
  generic.Build();
  LowerBoundResult lb2d = LowerBounding(planar, false);
  LowerBoundResult lb3d = LowerBounding(generic, false);
  // Wider cells capture more certain pairs: the 2-D max lower bound
  // cannot be worse, and each per-object bound stays a valid lower bound.
  EXPECT_GE(lb2d.tau_low_max, lb3d.tau_low_max);
  std::vector<std::uint32_t> exact = testing::OracleScores(set, r);
  std::uint64_t sum2d = 0, sum3d = 0;
  for (ObjectId i = 0; i < set.size(); ++i) {
    EXPECT_LE(lb2d.tau_low[i], exact[i]) << i;
    sum2d += lb2d.tau_low[i];
    sum3d += lb3d.tau_low[i];
  }
  EXPECT_GE(sum2d, sum3d);
}

TEST(PlanarTest, LabelsStillValidInPlanarMode) {
  ObjectSet set = MakePlanar(40, 6);
  std::uint32_t best = testing::MaxScore(testing::OracleScores(set, 4.0));
  MioEngine engine(set);
  QueryOptions opt;
  opt.record_labels = true;
  opt.use_labels = true;
  EXPECT_EQ(engine.Query(4.0, opt).best().score, best);
  EXPECT_EQ(engine.Query(4.0, opt).best().score, best);  // with labels
}

TEST(PlanarTest, ParallelPlanarMatchesOracle) {
  ObjectSet set = MakePlanar(50, 7);
  std::uint32_t best = testing::MaxScore(testing::OracleScores(set, 5.0));
  QueryOptions opt;
  opt.threads = 4;
  MioEngine engine(set);
  EXPECT_EQ(engine.Query(5.0, opt).best().score, best);
}

}  // namespace
}  // namespace mio
