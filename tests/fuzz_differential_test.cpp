// Mixed-mode fuzz: random datasets, random query configurations (threads,
// k, labels, grid reuse, strategies, radii), every answer differentially
// checked against the NL oracle. One TEST_P instance per seed so failures
// pinpoint a reproducible configuration.
#include <gtest/gtest.h>

#include "core/mio_engine.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

class FuzzDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDifferentialTest, RandomConfigurationsMatchOracle) {
  const std::uint64_t seed = GetParam();
  Pcg32 rng(seed, 0x66757a7aULL);  // "fuzz"

  // Random dataset shape.
  std::size_t n = 10 + rng.NextBounded(70);
  std::size_t m_min = 1 + rng.NextBounded(8);
  std::size_t m_max = m_min + rng.NextBounded(12);
  double domain = 10.0 + rng.NextDouble() * 100.0;
  double sigma = 1.0 + rng.NextDouble() * 8.0;
  bool planar = rng.NextDouble() < 0.3;

  ObjectSet set;
  {
    ObjectSet raw =
        testing::MakeRandomObjects(n, m_min, m_max, domain, seed, sigma);
    if (planar) {
      for (const Object& o : raw.objects()) {
        Object copy = o;
        for (Point& p : copy.points) p.z = 0.0;
        set.Add(std::move(copy));
      }
    } else {
      set = std::move(raw);
    }
  }

  MioEngine engine(set);
  // Several queries against one engine: exercises label and grid caches
  // across radii and mode switches.
  for (int q = 0; q < 6; ++q) {
    double r = 0.5 + rng.NextDouble() * 12.0;
    QueryOptions opt;
    opt.threads = 1 + static_cast<int>(rng.NextBounded(4));
    opt.k = 1 + rng.NextBounded(5);
    opt.use_labels = rng.NextDouble() < 0.5;
    opt.record_labels = rng.NextDouble() < 0.7;
    opt.reuse_grid = rng.NextDouble() < 0.5;
    opt.lb_strategy = rng.NextDouble() < 0.5
                          ? LbStrategy::kGreedyDivideObjects
                          : LbStrategy::kHashPartitionPoints;
    opt.ub_strategy = rng.NextDouble() < 0.5
                          ? UbStrategy::kCostBasedGreedy
                          : UbStrategy::kGreedyDivideObjects;

    std::vector<std::uint32_t> exact = testing::OracleScores(set, r);
    std::vector<ScoredObject> want = TopKFromScores(exact, opt.k);

    QueryResult res = engine.Query(r, opt);
    ASSERT_EQ(res.topk.size(), want.size())
        << "seed=" << seed << " q=" << q << " r=" << r;
    for (std::size_t idx = 0; idx < want.size(); ++idx) {
      EXPECT_EQ(res.topk[idx].score, want[idx].score)
          << "seed=" << seed << " q=" << q << " r=" << r << " k=" << opt.k
          << " threads=" << opt.threads << " labels=" << opt.use_labels
          << " reuse=" << opt.reuse_grid << " pos=" << idx;
      EXPECT_EQ(exact[res.topk[idx].id], res.topk[idx].score)
          << "returned id's true score mismatch, seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mio
