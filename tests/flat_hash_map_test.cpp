#include "common/flat_hash_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.hpp"
#include "geo/cell_key.hpp"

namespace mio {
namespace {

struct IntHash {
  std::size_t operator()(int v) const {
    // Deliberately weak mixing to stress probing/clustering.
    return static_cast<std::size_t>(v) * 2654435761u;
  }
};

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap<int, std::string, IntHash> map;
  EXPECT_TRUE(map.empty());
  map[1] = "one";
  map[2] = "two";
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), "one");
  EXPECT_EQ(map.Find(3), nullptr);
  EXPECT_TRUE(map.Contains(2));
  EXPECT_FALSE(map.Contains(99));
}

TEST(FlatHashMapTest, OperatorBracketDefaultConstructs) {
  FlatHashMap<int, int, IntHash> map;
  EXPECT_EQ(map[5], 0);
  map[5] += 7;
  EXPECT_EQ(map[5], 7);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, GrowsThroughManyInserts) {
  FlatHashMap<int, int, IntHash> map;
  std::map<int, int> ref;
  Pcg32 rng(3);
  for (int i = 0; i < 20000; ++i) {
    int key = static_cast<int>(rng.NextBounded(50000));
    map[key] = i;
    ref[key] = i;
  }
  EXPECT_EQ(map.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), v);
  }
  // Negative lookups.
  for (int k = 50001; k < 50100; ++k) EXPECT_EQ(map.Find(k), nullptr);
}

TEST(FlatHashMapTest, ForEachVisitsEverythingOnce) {
  FlatHashMap<int, int, IntHash> map;
  for (int i = 0; i < 500; ++i) map[i * 3] = i;
  std::map<int, int> seen;
  map.ForEach([&](int k, int v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(seen[i * 3], i);
}

TEST(FlatHashMapTest, ReserveAvoidsRehash) {
  FlatHashMap<int, int, IntHash> map;
  map.Reserve(10000);
  std::size_t bytes = map.TableBytes();
  for (int i = 0; i < 10000; ++i) map[i] = i;
  EXPECT_EQ(map.TableBytes(), bytes);  // no growth happened
  EXPECT_EQ(map.size(), 10000u);
}

TEST(FlatHashMapTest, CellKeyUsage) {
  FlatHashMap<CellKey, int, CellKeyHash> map;
  for (int x = -10; x <= 10; ++x) {
    for (int y = -10; y <= 10; ++y) {
      map[CellKey{x, y, x + y}] = x * 100 + y;
    }
  }
  EXPECT_EQ(map.size(), 21u * 21u);
  ASSERT_NE(map.Find(CellKey{-3, 4, 1}), nullptr);
  EXPECT_EQ(*map.Find(CellKey{-3, 4, 1}), -296);
  EXPECT_EQ(map.Find(CellKey{-3, 4, 2}), nullptr);
}

TEST(FlatHashMapTest, CollidingKeysProbeCorrectly) {
  // All keys hash to the same bucket modulo table size.
  struct ConstHash {
    std::size_t operator()(int) const { return 42; }
  };
  FlatHashMap<int, int, ConstHash> map;
  for (int i = 0; i < 100; ++i) map[i] = i * i;
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(map.Find(i), nullptr);
    EXPECT_EQ(*map.Find(i), i * i);
  }
  EXPECT_EQ(map.Find(1000), nullptr);
}

}  // namespace
}  // namespace mio
