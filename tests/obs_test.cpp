// Tests for the observability layer: span tracer (nesting, per-thread
// tracks, ring overflow, Chrome-trace export), metrics registry (shard
// merge, log2 bucketing), the JSON writer/validator, the stats sink
// document, and the load-balance summary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/query_result.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_sink.hpp"
#include "obs/trace.hpp"

namespace mio {
namespace obs {
namespace {

/// Every tracer test runs against the same process-wide singleton, so
/// each starts from a cleared, enabled tracer and disables it on exit.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Clear();
    Tracer::Instance().SetEnabled(true);
  }
  void TearDown() override {
    Tracer::Instance().SetEnabled(false);
    Tracer::Instance().Clear();
  }
};

// The recording tests need the span sites compiled in; under
// -DMIO_TRACING=OFF the macros expand to nothing and there is nothing
// to record (which DisabledOverheadIsNearZero still checks).
#ifndef MIO_TRACING_DISABLED

TEST_F(TracerTest, RecordsCompleteSpans) {
  {
    MIO_TRACE_SPAN("outer");
    MIO_TRACE_SPAN_CAT("inner", "testcat");
  }
  std::vector<TraceEvent> events = Tracer::Instance().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is sorted by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[1].cat, "testcat");
  EXPECT_GE(events[0].dur_ns, events[1].dur_ns);
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
}

TEST_F(TracerTest, NestingDepthIsRecorded) {
  {
    MIO_TRACE_SPAN("level0");
    {
      MIO_TRACE_SPAN("level1");
      { MIO_TRACE_SPAN("level2"); }
    }
  }
  std::vector<TraceEvent> events = Tracer::Instance().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 2);
  // Children are contained within the parent span.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[2].start_ns + events[2].dur_ns);
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer::Instance().SetEnabled(false);
  { MIO_TRACE_SPAN("invisible"); }
  EXPECT_TRUE(Tracer::Instance().Snapshot().empty());
}

TEST_F(TracerTest, PerThreadTracks) {
  const int threads = 4;
#pragma omp parallel num_threads(threads)
  {
    MIO_TRACE_SPAN("worker");
  }
  std::vector<TraceEvent> events = Tracer::Instance().Snapshot();
  // OpenMP may give fewer threads than asked for, but every recorded
  // span must land on its own track.
  ASSERT_GE(events.size(), 1u);
  std::set<int> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), events.size());
  EXPECT_GE(Tracer::Instance().NumThreads(), tids.size());
}

TEST_F(TracerTest, RingOverflowCountsDropped) {
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 100; ++i) {
    MIO_TRACE_SPAN("spin");
  }
  EXPECT_GE(Tracer::Instance().DroppedEvents(), 100u);
  EXPECT_LE(Tracer::Instance().Snapshot().size(), Tracer::kRingCapacity);
  Tracer::Instance().Clear();
  EXPECT_EQ(Tracer::Instance().DroppedEvents(), 0u);
  EXPECT_TRUE(Tracer::Instance().Snapshot().empty());
}

TEST_F(TracerTest, ChromeTraceJsonIsValidAndComplete) {
  {
    MIO_TRACE_SPAN_CAT("phase_a", "query");
    MIO_TRACE_SPAN_CAT("phase_b", "verify");
  }
  std::string doc = Tracer::Instance().ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateJson(doc, &error)) << error;
  // Chrome trace_event schema essentials.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"phase_a\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"verify\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":"), std::string::npos);
}

#endif  // MIO_TRACING_DISABLED

TEST_F(TracerTest, DisabledOverheadIsNearZero) {
  // Smoke check for the "disabled tracing is ~free" claim: a span site
  // with tracing off must be within a loose constant factor of an empty
  // loop. Generous bound — CI machines are noisy.
  Tracer::Instance().SetEnabled(false);
  const int iters = 2000000;
  volatile std::uint64_t sink = 0;
  Timer plain;
  for (int i = 0; i < iters; ++i) sink = sink + 1;
  double plain_s = plain.ElapsedSeconds();
  Timer spanned;
  for (int i = 0; i < iters; ++i) {
    MIO_TRACE_SPAN("off");
    sink = sink + 1;
  }
  double spanned_s = spanned.ElapsedSeconds();
  EXPECT_LT(spanned_s, plain_s * 20.0 + 0.05);
  EXPECT_TRUE(Tracer::Instance().Snapshot().empty());
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetMetrics(); }
  void TearDown() override {
    SetMetricsEnabled(true);
    ResetMetrics();
  }
};

TEST_F(MetricsTest, CountersAccumulate) {
  Add(Counter::kPostingScans);
  Add(Counter::kPostingScans, 4);
  MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_EQ(snap.counters[static_cast<int>(Counter::kPostingScans)], 5u);
  ResetMetrics();
  EXPECT_TRUE(SnapshotMetrics().Empty());
}

TEST_F(MetricsTest, ShardsMergeAcrossThreads) {
  const int threads = 4;
  const int per_thread = 1000;
#pragma omp parallel num_threads(threads)
  {
#pragma omp for
    for (int i = 0; i < threads * per_thread; ++i) {
      Add(Counter::kVerifyPoints);
      Observe(Histogram::kVerifyCandsPerPoint,
              static_cast<std::uint64_t>(i % 7));
    }
  }
  MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_EQ(snap.counters[static_cast<int>(Counter::kVerifyPoints)],
            static_cast<std::uint64_t>(threads * per_thread));
  const HistogramSnapshot& h =
      snap.histograms[static_cast<int>(Histogram::kVerifyCandsPerPoint)];
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(threads * per_thread));
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 6u);
}

TEST_F(MetricsTest, HistogramBucketing) {
  // Bucket 0 <- 0; bucket b <- [2^(b-1), 2^b).
  Observe(Histogram::kKernelBatchSize, 0);
  Observe(Histogram::kKernelBatchSize, 1);
  Observe(Histogram::kKernelBatchSize, 2);
  Observe(Histogram::kKernelBatchSize, 3);
  Observe(Histogram::kKernelBatchSize, 4);
  Observe(Histogram::kKernelBatchSize, 1023);
  Observe(Histogram::kKernelBatchSize, 1024);
  MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot& h =
      snap.histograms[static_cast<int>(Histogram::kKernelBatchSize)];
  EXPECT_EQ(h.buckets[0], 1u);   // 0
  EXPECT_EQ(h.buckets[1], 1u);   // 1
  EXPECT_EQ(h.buckets[2], 2u);   // 2, 3
  EXPECT_EQ(h.buckets[3], 1u);   // 4
  EXPECT_EQ(h.buckets[10], 1u);  // 1023
  EXPECT_EQ(h.buckets[11], 1u);  // 1024
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(h.sum) / 7.0);
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  SetMetricsEnabled(false);
  Add(Counter::kLbCellOrs, 10);
  Observe(Histogram::kLbUnionBits, 42);
  SetMetricsEnabled(true);
  EXPECT_TRUE(SnapshotMetrics().Empty());
}

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a \"b\"\n\\c");
  w.Key("i").Int(-7);
  w.Key("u").UInt(18446744073709551615ull);
  w.Key("d").Double(0.25);
  w.Key("nan").Double(std::numeric_limits<double>::quiet_NaN());
  w.Key("t").Bool(true);
  w.Key("n").Null();
  w.Key("arr").BeginArray();
  w.Int(1);
  w.BeginObject();
  w.Key("x").Int(2);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  std::string doc = std::move(w).Take();
  std::string error;
  EXPECT_TRUE(ValidateJson(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find("\"s\":\"a \\\"b\\\"\\n\\\\c\""), std::string::npos);
  EXPECT_NE(doc.find("\"u\":18446744073709551615"), std::string::npos);
  EXPECT_NE(doc.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(doc.find("\"arr\":[1,{\"x\":2}]"), std::string::npos);
}

TEST(JsonValidatorTest, AcceptsWellFormed) {
  EXPECT_TRUE(ValidateJson("{}"));
  EXPECT_TRUE(ValidateJson("[]"));
  EXPECT_TRUE(ValidateJson("[1,2.5,-3e+7,\"x\",true,false,null,{\"a\":[]}]"));
  EXPECT_TRUE(ValidateJson("\"lone string\""));
  EXPECT_TRUE(ValidateJson("  {\"k\" : \"\\u00e9\"}  "));
}

TEST(JsonValidatorTest, RejectsMalformed) {
  EXPECT_FALSE(ValidateJson(""));
  EXPECT_FALSE(ValidateJson("{"));
  EXPECT_FALSE(ValidateJson("{\"a\":1,}"));
  EXPECT_FALSE(ValidateJson("[1 2]"));
  EXPECT_FALSE(ValidateJson("{\"a\" 1}"));
  EXPECT_FALSE(ValidateJson("01"));
  EXPECT_FALSE(ValidateJson("\"unterminated"));
  EXPECT_FALSE(ValidateJson("\"bad\\q escape\""));
  EXPECT_FALSE(ValidateJson("nul"));
  EXPECT_FALSE(ValidateJson("{} extra"));
  std::string error;
  EXPECT_FALSE(ValidateJson("[1,", &error));
  EXPECT_FALSE(error.empty());
}

TEST(StatsSinkTest, DocumentIsValidJsonWithExpectedSections) {
  QueryStats stats;
  stats.total_seconds = 1.5;
  stats.phases.grid_mapping = 0.5;
  stats.phases.verification = 0.75;
  stats.num_candidates = 10;
  stats.num_verified = 4;
  stats.distance_computations = 1234;
  stats.index_memory_bytes = 4096;
  stats.memory.Add("small_grid", 1024);
  stats.verify_thread_seconds = {0.3, 0.45};

  RunInfo info;
  info.bench = "obs_test";
  info.dataset = "synthetic";
  info.algo = "bigrid";
  info.r = 4.0;
  info.k = 2;
  info.threads = 2;
  info.scale = "quick";
  info.wall_seconds = 1.6;

  ResetMetrics();
  Add(Counter::kPostingScans, 3);
  Observe(Histogram::kKernelBatchSize, 32);
  MetricsSnapshot metrics = SnapshotMetrics();

  std::string doc = StatsJson(stats, info, &metrics);
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find("\"schema\":\"mio-stats-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"obs_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"kernel_tier\""), std::string::npos);
  EXPECT_NE(doc.find("\"phases\""), std::string::npos);
  EXPECT_NE(doc.find("\"verify_load_balance\""), std::string::npos);
  EXPECT_NE(doc.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(doc.find("\"memory\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"posting_scans\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"kernel_batch_size\""), std::string::npos);
  EXPECT_NE(doc.find("\"git\""), std::string::npos);
  ResetMetrics();
}

TEST(StatsSinkTest, OmitsMetricsWhenNull) {
  QueryStats stats;
  RunInfo info;
  info.bench = "obs_test";
  std::string doc = StatsJson(stats, info, nullptr);
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error;
  EXPECT_EQ(doc.find("\"metrics\""), std::string::npos);
}

TEST(ThreadLoadTest, ComputesSummary) {
  ThreadLoadReport rep = ComputeThreadLoad({0.2, 0.4, 0.6});
  EXPECT_DOUBLE_EQ(rep.min_seconds, 0.2);
  EXPECT_DOUBLE_EQ(rep.max_seconds, 0.6);
  EXPECT_DOUBLE_EQ(rep.mean_seconds, 0.4);
  EXPECT_DOUBLE_EQ(rep.imbalance, 1.5);

  ThreadLoadReport empty = ComputeThreadLoad({});
  EXPECT_DOUBLE_EQ(empty.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_seconds, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace mio
