// Tests for the observability layer: span tracer (nesting, per-thread
// tracks, ring overflow, Chrome-trace export), metrics registry (shard
// merge, log2 bucketing), the JSON writer/validator, the stats sink
// document, and the load-balance summary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/query_result.hpp"
#include "obs/exit_flush.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/stats_sink.hpp"
#include "obs/trace.hpp"

namespace mio {
namespace obs {
namespace {

/// Every tracer test runs against the same process-wide singleton, so
/// each starts from a cleared, enabled tracer and disables it on exit.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Clear();
    Tracer::Instance().SetEnabled(true);
  }
  void TearDown() override {
    Tracer::Instance().SetEnabled(false);
    Tracer::Instance().Clear();
  }
};

// The recording tests need the span sites compiled in; under
// -DMIO_TRACING=OFF the macros expand to nothing and there is nothing
// to record (which DisabledOverheadIsNearZero still checks).
#ifndef MIO_TRACING_DISABLED

TEST_F(TracerTest, RecordsCompleteSpans) {
  {
    MIO_TRACE_SPAN("outer");
    MIO_TRACE_SPAN_CAT("inner", "testcat");
  }
  std::vector<TraceEvent> events = Tracer::Instance().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is sorted by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[1].cat, "testcat");
  EXPECT_GE(events[0].dur_ns, events[1].dur_ns);
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
}

TEST_F(TracerTest, NestingDepthIsRecorded) {
  {
    MIO_TRACE_SPAN("level0");
    {
      MIO_TRACE_SPAN("level1");
      { MIO_TRACE_SPAN("level2"); }
    }
  }
  std::vector<TraceEvent> events = Tracer::Instance().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 2);
  // Children are contained within the parent span.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[2].start_ns + events[2].dur_ns);
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer::Instance().SetEnabled(false);
  { MIO_TRACE_SPAN("invisible"); }
  EXPECT_TRUE(Tracer::Instance().Snapshot().empty());
}

TEST_F(TracerTest, PerThreadTracks) {
  const int threads = 4;
#pragma omp parallel num_threads(threads)
  {
    MIO_TRACE_SPAN("worker");
  }
  std::vector<TraceEvent> events = Tracer::Instance().Snapshot();
  // OpenMP may give fewer threads than asked for, but every recorded
  // span must land on its own track.
  ASSERT_GE(events.size(), 1u);
  std::set<int> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), events.size());
  EXPECT_GE(Tracer::Instance().NumThreads(), tids.size());
}

TEST_F(TracerTest, RingOverflowCountsDropped) {
  for (std::size_t i = 0; i < Tracer::kRingCapacity + 100; ++i) {
    MIO_TRACE_SPAN("spin");
  }
  EXPECT_GE(Tracer::Instance().DroppedEvents(), 100u);
  EXPECT_LE(Tracer::Instance().Snapshot().size(), Tracer::kRingCapacity);
  Tracer::Instance().Clear();
  EXPECT_EQ(Tracer::Instance().DroppedEvents(), 0u);
  EXPECT_TRUE(Tracer::Instance().Snapshot().empty());
}

TEST_F(TracerTest, ChromeTraceJsonIsValidAndComplete) {
  {
    MIO_TRACE_SPAN_CAT("phase_a", "query");
    MIO_TRACE_SPAN_CAT("phase_b", "verify");
  }
  std::string doc = Tracer::Instance().ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateJson(doc, &error)) << error;
  // Chrome trace_event schema essentials.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"phase_a\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"verify\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":"), std::string::npos);
}

#endif  // MIO_TRACING_DISABLED

TEST_F(TracerTest, DisabledOverheadIsNearZero) {
  // Smoke check for the "disabled tracing is ~free" claim: a span site
  // with tracing off must be within a loose constant factor of an empty
  // loop. Generous bound — CI machines are noisy.
  Tracer::Instance().SetEnabled(false);
  const int iters = 2000000;
  volatile std::uint64_t sink = 0;
  Timer plain;
  for (int i = 0; i < iters; ++i) sink = sink + 1;
  double plain_s = plain.ElapsedSeconds();
  Timer spanned;
  for (int i = 0; i < iters; ++i) {
    MIO_TRACE_SPAN("off");
    sink = sink + 1;
  }
  double spanned_s = spanned.ElapsedSeconds();
  EXPECT_LT(spanned_s, plain_s * 20.0 + 0.05);
  EXPECT_TRUE(Tracer::Instance().Snapshot().empty());
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetMetrics(); }
  void TearDown() override {
    SetMetricsEnabled(true);
    ResetMetrics();
  }
};

TEST_F(MetricsTest, CountersAccumulate) {
  Add(Counter::kPostingScans);
  Add(Counter::kPostingScans, 4);
  MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_EQ(snap.counters[static_cast<int>(Counter::kPostingScans)], 5u);
  ResetMetrics();
  EXPECT_TRUE(SnapshotMetrics().Empty());
}

TEST_F(MetricsTest, ShardsMergeAcrossThreads) {
  const int threads = 4;
  const int per_thread = 1000;
#pragma omp parallel num_threads(threads)
  {
#pragma omp for
    for (int i = 0; i < threads * per_thread; ++i) {
      Add(Counter::kVerifyPoints);
      Observe(Histogram::kVerifyCandsPerPoint,
              static_cast<std::uint64_t>(i % 7));
    }
  }
  MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_EQ(snap.counters[static_cast<int>(Counter::kVerifyPoints)],
            static_cast<std::uint64_t>(threads * per_thread));
  const HistogramSnapshot& h =
      snap.histograms[static_cast<int>(Histogram::kVerifyCandsPerPoint)];
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(threads * per_thread));
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 6u);
}

TEST_F(MetricsTest, HistogramBucketing) {
  // Bucket 0 <- 0; bucket b <- [2^(b-1), 2^b).
  Observe(Histogram::kKernelBatchSize, 0);
  Observe(Histogram::kKernelBatchSize, 1);
  Observe(Histogram::kKernelBatchSize, 2);
  Observe(Histogram::kKernelBatchSize, 3);
  Observe(Histogram::kKernelBatchSize, 4);
  Observe(Histogram::kKernelBatchSize, 1023);
  Observe(Histogram::kKernelBatchSize, 1024);
  MetricsSnapshot snap = SnapshotMetrics();
  const HistogramSnapshot& h =
      snap.histograms[static_cast<int>(Histogram::kKernelBatchSize)];
  EXPECT_EQ(h.buckets[0], 1u);   // 0
  EXPECT_EQ(h.buckets[1], 1u);   // 1
  EXPECT_EQ(h.buckets[2], 2u);   // 2, 3
  EXPECT_EQ(h.buckets[3], 1u);   // 4
  EXPECT_EQ(h.buckets[10], 1u);  // 1023
  EXPECT_EQ(h.buckets[11], 1u);  // 1024
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(h.sum) / 7.0);
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  SetMetricsEnabled(false);
  Add(Counter::kLbCellOrs, 10);
  Observe(Histogram::kLbUnionBits, 42);
  SetMetricsEnabled(true);
  EXPECT_TRUE(SnapshotMetrics().Empty());
}

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a \"b\"\n\\c");
  w.Key("i").Int(-7);
  w.Key("u").UInt(18446744073709551615ull);
  w.Key("d").Double(0.25);
  w.Key("nan").Double(std::numeric_limits<double>::quiet_NaN());
  w.Key("t").Bool(true);
  w.Key("n").Null();
  w.Key("arr").BeginArray();
  w.Int(1);
  w.BeginObject();
  w.Key("x").Int(2);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  std::string doc = std::move(w).Take();
  std::string error;
  EXPECT_TRUE(ValidateJson(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find("\"s\":\"a \\\"b\\\"\\n\\\\c\""), std::string::npos);
  EXPECT_NE(doc.find("\"u\":18446744073709551615"), std::string::npos);
  EXPECT_NE(doc.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(doc.find("\"arr\":[1,{\"x\":2}]"), std::string::npos);
}

TEST(JsonValidatorTest, AcceptsWellFormed) {
  EXPECT_TRUE(ValidateJson("{}"));
  EXPECT_TRUE(ValidateJson("[]"));
  EXPECT_TRUE(ValidateJson("[1,2.5,-3e+7,\"x\",true,false,null,{\"a\":[]}]"));
  EXPECT_TRUE(ValidateJson("\"lone string\""));
  EXPECT_TRUE(ValidateJson("  {\"k\" : \"\\u00e9\"}  "));
}

TEST(JsonValidatorTest, RejectsMalformed) {
  EXPECT_FALSE(ValidateJson(""));
  EXPECT_FALSE(ValidateJson("{"));
  EXPECT_FALSE(ValidateJson("{\"a\":1,}"));
  EXPECT_FALSE(ValidateJson("[1 2]"));
  EXPECT_FALSE(ValidateJson("{\"a\" 1}"));
  EXPECT_FALSE(ValidateJson("01"));
  EXPECT_FALSE(ValidateJson("\"unterminated"));
  EXPECT_FALSE(ValidateJson("\"bad\\q escape\""));
  EXPECT_FALSE(ValidateJson("nul"));
  EXPECT_FALSE(ValidateJson("{} extra"));
  std::string error;
  EXPECT_FALSE(ValidateJson("[1,", &error));
  EXPECT_FALSE(error.empty());
}

TEST(StatsSinkTest, DocumentIsValidJsonWithExpectedSections) {
  QueryStats stats;
  stats.total_seconds = 1.5;
  stats.phases.grid_mapping = 0.5;
  stats.phases.verification = 0.75;
  stats.num_candidates = 10;
  stats.num_verified = 4;
  stats.distance_computations = 1234;
  stats.index_memory_bytes = 4096;
  stats.memory.Add("small_grid", 1024);
  stats.verify_thread_seconds = {0.3, 0.45};

  RunInfo info;
  info.bench = "obs_test";
  info.dataset = "synthetic";
  info.algo = "bigrid";
  info.r = 4.0;
  info.k = 2;
  info.threads = 2;
  info.scale = "quick";
  info.wall_seconds = 1.6;

  ResetMetrics();
  Add(Counter::kPostingScans, 3);
  Observe(Histogram::kKernelBatchSize, 32);
  MetricsSnapshot metrics = SnapshotMetrics();

  std::string doc = StatsJson(stats, info, &metrics);
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find("\"schema\":\"mio-stats-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"obs_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"kernel_tier\""), std::string::npos);
  EXPECT_NE(doc.find("\"phases\""), std::string::npos);
  EXPECT_NE(doc.find("\"verify_load_balance\""), std::string::npos);
  EXPECT_NE(doc.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(doc.find("\"memory\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"posting_scans\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"kernel_batch_size\""), std::string::npos);
  EXPECT_NE(doc.find("\"git\""), std::string::npos);
  ResetMetrics();
}

TEST(StatsSinkTest, OmitsMetricsWhenNull) {
  QueryStats stats;
  RunInfo info;
  info.bench = "obs_test";
  std::string doc = StatsJson(stats, info, nullptr);
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error;
  EXPECT_EQ(doc.find("\"metrics\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram bucket edges + percentile interpolation
// ---------------------------------------------------------------------------

TEST_F(MetricsTest, BucketOfEdgeValues) {
  using detail::BucketOf;
  EXPECT_EQ(BucketOf(0), 0);
  EXPECT_EQ(BucketOf(1), 1);
  // Powers of two open a new bucket; 2^k - 1 closes the previous one.
  for (int k = 1; k < 39; ++k) {
    EXPECT_EQ(BucketOf(std::uint64_t{1} << k), k + 1) << k;
    EXPECT_EQ(BucketOf((std::uint64_t{1} << k) - 1), k) << k;
  }
  // Everything at or beyond 2^40 clamps into the top bucket.
  EXPECT_EQ(BucketOf(std::uint64_t{1} << 40), HistogramSnapshot::kBuckets - 1);
  EXPECT_EQ(BucketOf(UINT64_MAX), HistogramSnapshot::kBuckets - 1);
}

TEST_F(MetricsTest, HistogramPercentileEdges) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);

  // All-zero observations: bucket 0 holds exactly the value 0.
  for (int i = 0; i < 5; ++i) Observe(Histogram::kLbKeyListLen, 0);
  HistogramSnapshot zeros = SnapshotMetrics()
      .histograms[static_cast<int>(Histogram::kLbKeyListLen)];
  EXPECT_DOUBLE_EQ(zeros.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(zeros.Percentile(0.99), 0.0);
  ResetMetrics();

  // A single observation is reported exactly regardless of p (the
  // interpolated mid-bucket estimate is clamped to the observed range).
  Observe(Histogram::kLbKeyListLen, 4);
  HistogramSnapshot one = SnapshotMetrics()
      .histograms[static_cast<int>(Histogram::kLbKeyListLen)];
  EXPECT_DOUBLE_EQ(one.Percentile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(one.Percentile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(one.Percentile(1.0), 4.0);
  ResetMetrics();

  // Top-bucket observations stay inside [min, max] even though the
  // bucket's nominal range extends to 2^40 and beyond.
  Observe(Histogram::kLbKeyListLen, UINT64_MAX);
  Observe(Histogram::kLbKeyListLen, UINT64_MAX);
  HistogramSnapshot top = SnapshotMetrics()
      .histograms[static_cast<int>(Histogram::kLbKeyListLen)];
  double p50 = top.Percentile(0.5);
  EXPECT_GE(p50, static_cast<double>(top.min));
  EXPECT_LE(p50, static_cast<double>(top.max));
}

TEST_F(MetricsTest, HistogramPercentileInterpolatesInsideBucket) {
  // Values 1..7: bucket 1 <- {1}, bucket 2 <- {2,3}, bucket 3 <- {4..7}.
  for (std::uint64_t v = 1; v <= 7; ++v) {
    Observe(Histogram::kUbUnionBits, v);
  }
  HistogramSnapshot h = SnapshotMetrics()
      .histograms[static_cast<int>(Histogram::kUbUnionBits)];
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);   // min
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 7.0);   // max
  // target rank 3.5 lands in bucket 3 ([4,8)) with cum=3 below it:
  // 4 + (3.5-3)/4 * (8-4) = 4.5.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 4.5);
  // Percentiles are monotone in p.
  double prev = 0.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(StatsSinkTest, VectorPercentileInterpolation) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  // R-7: h = p*(n-1); p=0.5 over 4 values interpolates halfway.
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({10.0, 20.0, 30.0, 40.0, 50.0}, 0.9), 46.0);
  // Unsorted input is handled (sorts a copy).
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(StatsSinkTest, HistogramJsonCarriesPercentiles) {
  ResetMetrics();
  for (std::uint64_t v = 1; v <= 7; ++v) Observe(Histogram::kKernelBatchSize, v);
  MetricsSnapshot metrics = SnapshotMetrics();
  QueryStats stats;
  RunInfo info;
  info.bench = "obs_test";
  std::string doc = StatsJson(stats, info, &metrics);
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error;
  EXPECT_NE(doc.find("\"p50\""), std::string::npos);
  EXPECT_NE(doc.find("\"p90\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
  ResetMetrics();
}

// ---------------------------------------------------------------------------
// PMU counters (obs/perf_counters.hpp)
// ---------------------------------------------------------------------------

/// Saves the resolved tier and forces the timing fallback for the test
/// body, so assertions hold on both PMU and non-PMU hosts.
class PmuTimingTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = ActivePmuTier();
    ForcePmuTier(PmuTier::kTiming);
  }
  void TearDown() override { ForcePmuTier(saved_); }
  PmuTier saved_ = PmuTier::kTiming;
};

TEST(PmuCountsTest, EventNamesAreStable) {
  EXPECT_STREQ(PmuEventName(PmuEvent::kCycles), "cycles");
  EXPECT_STREQ(PmuEventName(PmuEvent::kInstructions), "instructions");
  EXPECT_STREQ(PmuEventName(PmuEvent::kCacheReferences), "cache_references");
  EXPECT_STREQ(PmuEventName(PmuEvent::kCacheMisses), "cache_misses");
  EXPECT_STREQ(PmuEventName(PmuEvent::kBranchMisses), "branch_misses");
  EXPECT_STREQ(PmuEventName(PmuEvent::kTaskClockNs), "task_clock_ns");
}

TEST(PmuCountsTest, ArithmeticAndDeltaClamping) {
  PmuCounts a;
  EXPECT_TRUE(a.Empty());
  a.Set(PmuEvent::kCycles, 100);
  a.Set(PmuEvent::kInstructions, 250);
  a.valid = true;
  EXPECT_FALSE(a.Empty());

  PmuCounts b;
  b.Set(PmuEvent::kCycles, 40);
  b.Set(PmuEvent::kInstructions, 300);  // > a's: the delta must clamp to 0
  PmuCounts d = a.DeltaSince(b);
  EXPECT_EQ(d.Get(PmuEvent::kCycles), 60u);
  EXPECT_EQ(d.Get(PmuEvent::kInstructions), 0u);

  PmuCounts sum;
  sum += a;
  sum += b;  // b.valid == false; the sum stays valid because a was
  EXPECT_EQ(sum.Get(PmuEvent::kCycles), 140u);
  EXPECT_TRUE(sum.valid);
}

TEST(PmuCountsTest, DerivedRatesHandleZeroDenominators) {
  PmuCounts c;
  EXPECT_DOUBLE_EQ(c.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(c.CacheMissRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.BranchMissesPerKiloInstructions(), 0.0);
  c.Set(PmuEvent::kCycles, 200);
  c.Set(PmuEvent::kInstructions, 500);
  c.Set(PmuEvent::kCacheReferences, 1000);
  c.Set(PmuEvent::kCacheMisses, 50);
  c.Set(PmuEvent::kBranchMisses, 5);
  EXPECT_DOUBLE_EQ(c.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(c.CacheMissRate(), 0.05);
  EXPECT_DOUBLE_EQ(c.BranchMissesPerKiloInstructions(), 10.0);
}

TEST(PmuCountsTest, EnvDisableGrammar) {
  EXPECT_FALSE(PmuEnvDisables(nullptr));  // unset: probe the hardware
  EXPECT_TRUE(PmuEnvDisables("off"));
  EXPECT_TRUE(PmuEnvDisables("0"));
  EXPECT_TRUE(PmuEnvDisables("false"));
  EXPECT_TRUE(PmuEnvDisables("no"));
  EXPECT_TRUE(PmuEnvDisables("timing"));
  EXPECT_FALSE(PmuEnvDisables("on"));
  EXPECT_FALSE(PmuEnvDisables("1"));
  EXPECT_FALSE(PmuEnvDisables(""));
}

TEST_F(PmuTimingTierTest, TimingTierFillsOnlyTaskClock) {
  EXPECT_EQ(ActivePmuTier(), PmuTier::kTiming);
  EXPECT_STREQ(PmuTierName(ActivePmuTier()), "timing");
  PmuCounts begin = ReadPmuCounts();
  EXPECT_FALSE(begin.valid);
  EXPECT_EQ(begin.Get(PmuEvent::kCycles), 0u);
  EXPECT_GT(begin.Get(PmuEvent::kTaskClockNs), 0u);
  // Busy a little so the clock visibly advances.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  PmuCounts delta = ReadPmuCounts().DeltaSince(begin);
  EXPECT_GT(delta.Get(PmuEvent::kTaskClockNs), 0u);
  EXPECT_EQ(delta.Get(PmuEvent::kCycles), 0u);
}

TEST_F(PmuTimingTierTest, PhaseScopeAccumulatesIntoSink) {
  PmuCounts sink;
  {
    PmuPhaseScope scope(&sink);
    volatile double burn = 0.0;
    for (int i = 0; i < 100000; ++i) burn = burn + 1.0;
  }
  EXPECT_GT(sink.Get(PmuEvent::kTaskClockNs), 0u);
  EXPECT_FALSE(sink.valid);  // timing tier never reads hardware events
  // Null sink: must be a safe no-op.
  PmuPhaseScope noop(nullptr);
}

TEST_F(PmuTimingTierTest, StatsJsonMarksTimingTier) {
  QueryStats stats;
  stats.hardware.verification.Set(PmuEvent::kTaskClockNs, 1234567);
  stats.total_points = 100;
  RunInfo info;
  info.bench = "obs_test";
  std::string doc = StatsJson(stats, info, nullptr);
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error;
  EXPECT_NE(doc.find("\"hardware\""), std::string::npos);
  EXPECT_NE(doc.find("\"pmu_tier\":\"timing\""), std::string::npos);
  EXPECT_NE(doc.find("\"task_clock_ns\":1234567"), std::string::npos);
  // Hardware-only fields are omitted on the timing tier.
  EXPECT_EQ(doc.find("\"ipc\""), std::string::npos);
  EXPECT_EQ(doc.find("\"cycles_per_point\""), std::string::npos);
}

TEST(PmuStatsJsonTest, HardwareSectionOmittedWhenNeverSampled) {
  QueryStats stats;  // all-zero hardware counts
  RunInfo info;
  info.bench = "obs_test";
  std::string doc = StatsJson(stats, info, nullptr);
  EXPECT_EQ(doc.find("\"hardware\""), std::string::npos);
}

TEST(PmuStatsJsonTest, HardwareTierEmitsDerivedRates) {
  // Synthesise a hardware-tier reading regardless of the host's PMU.
  QueryStats stats;
  stats.total_points = 1000;
  stats.num_verified = 10;
  stats.hardware.verification.Set(PmuEvent::kCycles, 50000);
  stats.hardware.verification.Set(PmuEvent::kInstructions, 100000);
  stats.hardware.verification.Set(PmuEvent::kCacheReferences, 2000);
  stats.hardware.verification.Set(PmuEvent::kCacheMisses, 100);
  stats.hardware.verification.valid = true;
  RunInfo info;
  info.bench = "obs_test";
  std::string doc = StatsJson(stats, info, nullptr);
  std::string error;
  ASSERT_TRUE(ValidateJson(doc, &error)) << error;
  EXPECT_NE(doc.find("\"cycles\":50000"), std::string::npos);
  EXPECT_NE(doc.find("\"ipc\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"cycles_per_point\":50"), std::string::npos);
  EXPECT_NE(doc.find("\"cycles_per_candidate\":5000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exit-time observability flush (obs/exit_flush.hpp)
// ---------------------------------------------------------------------------

class ExitFlushTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmExitFlush();
    dir_ = std::filesystem::temp_directory_path() /
           ("mio_exit_flush_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    DisarmExitFlush();
    Tracer::Instance().SetEnabled(false);
    Tracer::Instance().Clear();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string PathFor(const char* name) { return (dir_ / name).string(); }
  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  std::filesystem::path dir_;
};

TEST_F(ExitFlushTest, FlushWritesTruncationMarkedArtifacts) {
  Tracer::Instance().SetEnabled(true);
  Tracer::Instance().Clear();
  { MIO_TRACE_SPAN("interrupted_phase"); }

  ExitFlushConfig cfg;
  cfg.trace_path = PathFor("trace.json");
  cfg.stats_path = PathFor("stats.json");
  cfg.stats_document = "{\"schema\":\"mio-stats-v1\",\"truncated\":true}";
  ArmExitFlush(cfg);
  EXPECT_TRUE(ExitFlushArmed());

  FlushObservabilityNow();
  EXPECT_FALSE(ExitFlushArmed());

  std::string trace = Slurp(cfg.trace_path);
  std::string error;
  ASSERT_TRUE(ValidateJson(trace, &error)) << error;
  EXPECT_NE(trace.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(trace.find("interrupted_phase"), std::string::npos);

  std::string stats = Slurp(cfg.stats_path);
  ASSERT_FALSE(stats.empty());
  EXPECT_NE(stats.find("\"truncated\":true"), std::string::npos);
}

TEST_F(ExitFlushTest, FlushIsIdempotentAndDisarmable) {
  ExitFlushConfig cfg;
  cfg.stats_path = PathFor("stats.json");
  cfg.stats_document = "{\"truncated\":true}";
  ArmExitFlush(cfg);
  DisarmExitFlush();
  FlushObservabilityNow();  // disarmed: must write nothing
  EXPECT_FALSE(std::filesystem::exists(cfg.stats_path));

  ArmExitFlush(cfg);
  FlushObservabilityNow();
  EXPECT_TRUE(std::filesystem::exists(cfg.stats_path));
  std::filesystem::remove(cfg.stats_path);
  FlushObservabilityNow();  // already flushed: no re-write
  EXPECT_FALSE(std::filesystem::exists(cfg.stats_path));
}

TEST(ThreadLoadTest, ComputesSummary) {
  ThreadLoadReport rep = ComputeThreadLoad({0.2, 0.4, 0.6});
  EXPECT_DOUBLE_EQ(rep.min_seconds, 0.2);
  EXPECT_DOUBLE_EQ(rep.max_seconds, 0.6);
  EXPECT_DOUBLE_EQ(rep.mean_seconds, 0.4);
  EXPECT_DOUBLE_EQ(rep.imbalance, 1.5);

  ThreadLoadReport empty = ComputeThreadLoad({});
  EXPECT_DOUBLE_EQ(empty.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_seconds, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace mio
