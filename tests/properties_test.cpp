// Cross-cutting invariants of the MIO problem and the bitset algebra —
// properties that must hold for any input, checked on randomised sweeps.
#include <gtest/gtest.h>

#include "bitset/ewah.hpp"
#include "bitset/roaring.hpp"
#include "core/mio_engine.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

// ---------------------------------------------------------------------------
// Problem-level properties
// ---------------------------------------------------------------------------

class MioPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ObjectSet MakeSet() const {
    return testing::MakeRandomObjects(40, 3, 10, 30.0, GetParam(), 5.0);
  }
};

TEST_P(MioPropertyTest, ScoresAreMonotoneInR) {
  // Growing r can only add interactions: tau_r(o) <= tau_r'(o) for r <= r',
  // object-wise — and hence the winner's score is monotone too.
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> prev(set.size(), 0);
  for (double r : {1.0, 2.5, 4.0, 6.0, 9.0}) {
    std::vector<std::uint32_t> cur = testing::OracleScores(set, r);
    for (ObjectId i = 0; i < set.size(); ++i) {
      EXPECT_GE(cur[i], prev[i]) << "object " << i << " r=" << r;
    }
    prev = std::move(cur);
  }
}

TEST_P(MioPropertyTest, EngineWinnerMonotoneInR) {
  ObjectSet set = MakeSet();
  MioEngine engine(set);
  std::uint32_t prev = 0;
  for (double r : {1.0, 2.5, 4.0, 6.0, 9.0}) {
    std::uint32_t best = engine.Query(r).best().score;
    EXPECT_GE(best, prev) << "r=" << r;
    prev = best;
  }
}

TEST_P(MioPropertyTest, ScoreSumIsEvenAndBounded) {
  // tau counts symmetric pairs: the sum over all objects is twice the
  // interacting-pair count, so it is even and at most n(n-1).
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> tau = testing::OracleScores(set, 5.0);
  std::uint64_t sum = 0;
  for (std::uint32_t t : tau) sum += t;
  EXPECT_EQ(sum % 2, 0u);
  EXPECT_LE(sum, static_cast<std::uint64_t>(set.size()) * (set.size() - 1));
}

TEST_P(MioPropertyTest, DuplicatingTheWinnerRaisesEveryNeighbor) {
  // Appending an exact copy of the winner adds one interaction partner to
  // each of its partners (and the copy interacts with the winner).
  ObjectSet set = MakeSet();
  MioEngine engine(set);
  QueryResult before = engine.Query(5.0);
  if (before.best().score == 0) GTEST_SKIP();

  ObjectSet bigger;
  for (const Object& o : set.objects()) bigger.Add(o);
  bigger.Add(set[before.best().id]);
  MioEngine engine2(bigger);
  QueryResult after = engine2.Query(5.0);
  // The duplicated winner now also interacts with its twin.
  EXPECT_GE(after.best().score, before.best().score + 1);
}

TEST_P(MioPropertyTest, TopKIsPrefixOfTopKPlusOne) {
  ObjectSet set = MakeSet();
  MioEngine engine(set);
  QueryOptions opt3;
  opt3.k = 3;
  QueryOptions opt5;
  opt5.k = 5;
  std::vector<ScoredObject> top3 = engine.Query(5.0, opt3).topk;
  std::vector<ScoredObject> top5 = engine.Query(5.0, opt5).topk;
  ASSERT_GE(top5.size(), top3.size());
  for (std::size_t i = 0; i < top3.size(); ++i) {
    EXPECT_EQ(top3[i].score, top5[i].score) << i;  // scores agree prefix-wise
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MioPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Bitset algebra laws (differentially, EWAH and Roaring)
// ---------------------------------------------------------------------------

class BitsetAlgebraTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void Fill(PlainBitset* p, double density, std::size_t universe,
            std::uint64_t salt) const {
    Pcg32 rng(GetParam() * 1000 + salt);
    for (std::size_t i = 0; i < universe; ++i) {
      if (rng.NextDouble() < density) p->Set(i);
    }
  }
};

TEST_P(BitsetAlgebraTest, EwahLaws) {
  PlainBitset pa, pb, pc;
  Fill(&pa, 0.1, 5000, 1);
  Fill(&pb, 0.3, 5000, 2);
  Fill(&pc, 0.02, 9000, 3);
  Ewah a = Ewah::FromPlain(pa), b = Ewah::FromPlain(pb),
       c = Ewah::FromPlain(pc);

  // Commutativity and associativity of OR.
  EXPECT_TRUE(Ewah::Or(a, b) == Ewah::Or(b, a));
  EXPECT_TRUE(Ewah::Or(Ewah::Or(a, b), c) == Ewah::Or(a, Ewah::Or(b, c)));
  // Distributivity: a & (b | c) == (a & b) | (a & c).
  EXPECT_TRUE(Ewah::And(a, Ewah::Or(b, c)) ==
              Ewah::Or(Ewah::And(a, b), Ewah::And(a, c)));
  // Inclusion-exclusion on cardinalities.
  EXPECT_EQ(Ewah::Or(a, b).Count() + Ewah::And(a, b).Count(),
            a.Count() + b.Count());
  // AndNot decomposition: a == (a & b) | (a & ~b).
  EXPECT_TRUE(Ewah::Or(Ewah::And(a, b), Ewah::AndNot(a, b)) == a);
  // Xor as symmetric difference.
  EXPECT_TRUE(Ewah::Xor(a, b) ==
              Ewah::Or(Ewah::AndNot(a, b), Ewah::AndNot(b, a)));
  // Idempotence.
  EXPECT_TRUE(Ewah::Or(a, a) == a);
  EXPECT_TRUE(Ewah::And(a, a) == a);
  EXPECT_EQ(Ewah::AndNot(a, a).Count(), 0u);
}

TEST_P(BitsetAlgebraTest, RoaringLaws) {
  PlainBitset pa, pb;
  Fill(&pa, 0.05, 150000, 4);
  Fill(&pb, 0.2, 100000, 5);
  Roaring a = Roaring::FromPlain(pa), b = Roaring::FromPlain(pb);

  EXPECT_TRUE(Roaring::Or(a, b) == Roaring::Or(b, a));
  EXPECT_EQ(Roaring::Or(a, b).Count() + Roaring::And(a, b).Count(),
            a.Count() + b.Count());
  EXPECT_TRUE(Roaring::Or(Roaring::And(a, b), Roaring::AndNot(a, b)) == a);
  EXPECT_TRUE(Roaring::And(a, a) == a);
  EXPECT_EQ(Roaring::AndNot(a, a).Count(), 0u);
}

TEST_P(BitsetAlgebraTest, CodecsAgreeWithEachOther) {
  PlainBitset pa, pb;
  Fill(&pa, 0.15, 20000, 6);
  Fill(&pb, 0.08, 30000, 7);
  Ewah ea = Ewah::FromPlain(pa), eb = Ewah::FromPlain(pb);
  Roaring ra = Roaring::FromPlain(pa), rb = Roaring::FromPlain(pb);

  EXPECT_TRUE(Ewah::Or(ea, eb).ToPlain() == Roaring::Or(ra, rb).ToPlain());
  EXPECT_TRUE(Ewah::And(ea, eb).ToPlain() == Roaring::And(ra, rb).ToPlain());
  EXPECT_TRUE(Ewah::AndNot(ea, eb).ToPlain() ==
              Roaring::AndNot(ra, rb).ToPlain());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetAlgebraTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace mio
