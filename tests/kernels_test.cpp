// Geometry kernel layer (geo/kernels.hpp): every dispatch tier is
// differentially fuzzed against the scalar reference over random batches
// — including empty batches, sub-lane-width remainders, boundary-exact
// distances, planar data, and denormal/huge coordinates — and the full
// query pipeline is re-run under each tier against the NL oracle to show
// the tiers are interchangeable end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/cpu_features.hpp"
#include "core/mio_engine.hpp"
#include "geo/kernels.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

using kernel_detail::AnyWithinAvx2;
using kernel_detail::AnyWithinScalar;
using kernel_detail::AnyWithinSse2;
using kernel_detail::CountWithinAvx2;
using kernel_detail::CountWithinScalar;
using kernel_detail::CountWithinSse2;

/// Tiers whose per-tier entry points may run on this machine.
std::vector<KernelTier> RunnableTiers() {
  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  if (static_cast<int>(BestSupportedTier()) >=
      static_cast<int>(KernelTier::kSse2)) {
    tiers.push_back(KernelTier::kSse2);
  }
  if (BestSupportedTier() == KernelTier::kAvx2) {
    tiers.push_back(KernelTier::kAvx2);
  }
  return tiers;
}

std::ptrdiff_t AnyForTier(KernelTier tier, const Point& q, const double* xs,
                          const double* ys, const double* zs, std::size_t n,
                          double r2) {
  switch (tier) {
    case KernelTier::kSse2:
      return AnyWithinSse2(q, xs, ys, zs, n, r2);
    case KernelTier::kAvx2:
      return AnyWithinAvx2(q, xs, ys, zs, n, r2);
    default:
      return AnyWithinScalar(q, xs, ys, zs, n, r2);
  }
}

std::size_t CountForTier(KernelTier tier, const Point& q, const double* xs,
                         const double* ys, const double* zs, std::size_t n,
                         double r2) {
  switch (tier) {
    case KernelTier::kSse2:
      return CountWithinSse2(q, xs, ys, zs, n, r2);
    case KernelTier::kAvx2:
      return CountWithinAvx2(q, xs, ys, zs, n, r2);
    default:
      return CountWithinScalar(q, xs, ys, zs, n, r2);
  }
}

struct Batch {
  Point q;
  SoaPoints pts;
  double r2;
};

void ExpectTiersAgree(const Batch& b, const char* what) {
  const double* xs = b.pts.xs.data();
  const double* ys = b.pts.ys.data();
  const double* zs = b.pts.zs.data();
  std::size_t n = b.pts.size();
  std::ptrdiff_t want_any = AnyWithinScalar(b.q, xs, ys, zs, n, b.r2);
  std::size_t want_count = CountWithinScalar(b.q, xs, ys, zs, n, b.r2);
  for (KernelTier tier : RunnableTiers()) {
    EXPECT_EQ(AnyForTier(tier, b.q, xs, ys, zs, n, b.r2), want_any)
        << what << " tier=" << KernelTierName(tier) << " n=" << n;
    EXPECT_EQ(CountForTier(tier, b.q, xs, ys, zs, n, b.r2), want_count)
        << what << " tier=" << KernelTierName(tier) << " n=" << n;
  }
}

TEST(KernelTierTest, NamesRoundTrip) {
  for (KernelTier t :
       {KernelTier::kScalar, KernelTier::kSse2, KernelTier::kAvx2}) {
    KernelTier parsed;
    ASSERT_TRUE(ParseKernelTier(KernelTierName(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  KernelTier unused;
  EXPECT_FALSE(ParseKernelTier("neon", &unused));
  EXPECT_FALSE(ParseKernelTier("", &unused));
}

TEST(KernelTierTest, SetKernelTierClampsToSupported) {
  KernelTier prev = ActiveKernelTier();
  EXPECT_EQ(SetKernelTier(KernelTier::kScalar), KernelTier::kScalar);
  EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
  // Requesting the best (or anything above) clamps to the best.
  KernelTier best = BestSupportedTier();
  EXPECT_EQ(SetKernelTier(KernelTier::kAvx2), best == KernelTier::kAvx2
                                                  ? KernelTier::kAvx2
                                                  : best);
  SetKernelTier(prev);
}

TEST(KernelsTest, EmptyBatchHasNoHit) {
  Batch b;
  b.q = Point{1.0, 2.0, 3.0};
  b.r2 = 100.0;
  ExpectTiersAgree(b, "empty");
  EXPECT_EQ(AnyWithin(b.q, nullptr, nullptr, nullptr, 0, b.r2), -1);
  EXPECT_EQ(CountWithin(b.q, nullptr, nullptr, nullptr, 0, b.r2), 0u);
}

TEST(KernelsTest, SubLaneWidthRemainders) {
  // n = 1..7 covers every remainder class of the 2-lane and 4-lane loops.
  Pcg32 rng(7, 1);
  for (std::size_t n = 1; n <= 7; ++n) {
    Batch b;
    b.q = Point{rng.NextDouble(-5, 5), rng.NextDouble(-5, 5),
                rng.NextDouble(-5, 5)};
    std::vector<Point> pts;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(Point{rng.NextDouble(-5, 5), rng.NextDouble(-5, 5),
                          rng.NextDouble(-5, 5)});
    }
    b.pts.Assign(pts);
    b.r2 = rng.NextDouble(0.1, 30.0);
    ExpectTiersAgree(b, "remainder");
  }
}

TEST(KernelsTest, BoundaryExactDistanceIsAHitInEveryTier) {
  // dist((0,0,0), (3,4,0)) == 5 exactly; r2 = 25 is exactly
  // representable, so every tier must report the boundary point as a hit.
  Batch b;
  b.q = Point{0.0, 0.0, 0.0};
  std::vector<Point> pts(9, Point{100.0, 100.0, 100.0});  // far misses
  pts.push_back(Point{3.0, 4.0, 0.0});                    // exact boundary
  b.pts.Assign(pts);
  b.r2 = 25.0;
  ExpectTiersAgree(b, "boundary");
  EXPECT_EQ(AnyWithinScalar(b.q, b.pts.xs.data(), b.pts.ys.data(),
                            b.pts.zs.data(), b.pts.size(), b.r2),
            9);
}

TEST(KernelsTest, PlanarDataAgrees) {
  Pcg32 rng(11, 2);
  for (int rep = 0; rep < 20; ++rep) {
    Batch b;
    b.q = Point{rng.NextDouble(0, 20), rng.NextDouble(0, 20), 0.0};
    std::vector<Point> pts;
    std::size_t n = rng.NextBounded(64);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(Point{rng.NextDouble(0, 20), rng.NextDouble(0, 20), 0.0});
    }
    b.pts.Assign(pts);
    b.r2 = rng.NextDouble(0.5, 50.0);
    ExpectTiersAgree(b, "planar");
  }
}

TEST(KernelsTest, DenormalAndHugeCoordinatesAgree) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double huge = 1e154;  // dx*dx overflows to inf
  Batch b;
  b.q = Point{0.0, 0.0, 0.0};
  std::vector<Point> pts = {
      Point{denorm, denorm, denorm},        // hit at any positive r2
      Point{huge, 0.0, 0.0},                // inf distance: never a hit
      Point{-huge, huge, -huge},            // inf distance
      Point{denorm * 4, -denorm * 2, 0.0},  // subnormal arithmetic
      Point{1e-300, 1e-300, 1e-300},        // d2 underflows toward 0
  };
  b.pts.Assign(pts);
  b.r2 = 1e-3;
  ExpectTiersAgree(b, "denormal/huge");
  b.r2 = std::numeric_limits<double>::max();
  ExpectTiersAgree(b, "denormal/huge maxr");
}

TEST(KernelsTest, DifferentialFuzzAcrossTiers) {
  // PCG32-seeded random batches: mixed magnitudes, duplicate points,
  // hits at random depths. Exact index/count equality demanded per tier.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Pcg32 rng(seed, 0x6b65726eULL);  // "kern"
    std::size_t n = rng.NextBounded(200);
    double span = rng.NextDouble() < 0.2 ? 1e-6 : rng.NextDouble(1.0, 50.0);
    Batch b;
    b.q = Point{rng.NextDouble(-span, span), rng.NextDouble(-span, span),
                rng.NextDouble(-span, span)};
    std::vector<Point> pts;
    for (std::size_t i = 0; i < n; ++i) {
      Point p{rng.NextDouble(-span, span), rng.NextDouble(-span, span),
              rng.NextDouble(-span, span)};
      pts.push_back(p);
      if (rng.NextDouble() < 0.1) pts.push_back(p);  // duplicates
    }
    b.pts.Assign(pts);
    double r = rng.NextDouble(0.0, 2.0 * span);
    b.r2 = r * r;
    ExpectTiersAgree(b, "fuzz");
  }
}

// ---------------------------------------------------------------------------
// Full-pipeline agreement: the BIGrid-vs-NL oracle under each tier.
// ---------------------------------------------------------------------------

class KernelPipelineTest : public ::testing::Test {
 protected:
  void TearDown() override { SetKernelTier(BestSupportedTier()); }
};

TEST_F(KernelPipelineTest, OracleSuiteAgreesUnderScalarAndBestTier) {
  ObjectSet set = testing::MakeRandomObjects(60, 2, 10, 60.0, 99);
  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  if (BestSupportedTier() != KernelTier::kScalar) {
    tiers.push_back(BestSupportedTier());
  }
  for (double r : {1.5, 4.0, 9.0}) {
    // Oracle computed under the scalar tier.
    SetKernelTier(KernelTier::kScalar);
    std::vector<std::uint32_t> exact = testing::OracleScores(set, r);

    for (KernelTier tier : tiers) {
      ASSERT_EQ(SetKernelTier(tier), tier);
      // The NL oracle itself must be tier-invariant.
      EXPECT_EQ(testing::OracleScores(set, r), exact)
          << "NL tier=" << KernelTierName(tier) << " r=" << r;
      for (std::size_t k : {std::size_t{1}, std::size_t{5}}) {
        MioEngine engine(set);
        QueryOptions opt;
        opt.k = k;
        QueryResult res = engine.Query(r, opt);
        std::vector<ScoredObject> want = TopKFromScores(exact, k);
        ASSERT_EQ(res.topk.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(res.topk[i].score, want[i].score)
              << "tier=" << KernelTierName(tier) << " r=" << r << " k=" << k
              << " pos=" << i;
          EXPECT_EQ(exact[res.topk[i].id], res.topk[i].score)
              << "tier=" << KernelTierName(tier) << " r=" << r;
        }
      }
    }
  }
}

TEST_F(KernelPipelineTest, TierResultsAreBitIdentical) {
  // Stronger than score agreement: the full top-k lists (ids and scores)
  // must be byte-identical across tiers, labels on and off.
  ObjectSet set = testing::MakeRandomObjects(40, 3, 9, 40.0, 123);
  for (KernelTier tier : RunnableTiers()) {
    if (SetKernelTier(tier) != tier) continue;
    for (bool labels : {false, true}) {
      SetKernelTier(KernelTier::kScalar);
      MioEngine scalar_engine(set);
      QueryOptions opt;
      opt.k = 7;
      opt.record_labels = labels;
      QueryResult want = scalar_engine.Query(3.5, opt);

      SetKernelTier(tier);
      MioEngine tier_engine(set);
      QueryResult got = tier_engine.Query(3.5, opt);

      ASSERT_EQ(got.topk.size(), want.topk.size());
      for (std::size_t i = 0; i < want.topk.size(); ++i) {
        EXPECT_EQ(got.topk[i].id, want.topk[i].id)
            << "tier=" << KernelTierName(tier) << " labels=" << labels;
        EXPECT_EQ(got.topk[i].score, want.topk[i].score);
      }
      EXPECT_EQ(got.stats.distance_computations,
                want.stats.distance_computations)
          << "comps diverge: tier=" << KernelTierName(tier);
    }
  }
}

}  // namespace
}  // namespace mio
