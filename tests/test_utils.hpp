// Shared helpers for the mio test suite: deterministic random datasets and
// the brute-force oracle every algorithm is differentially tested against.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/nested_loop.hpp"
#include "common/random.hpp"
#include "object/object_set.hpp"

namespace mio {
namespace testing {

/// Random object collection: n objects of m_min..m_max points each,
/// clustered enough (cluster_sigma vs domain) that interactions exist at
/// single-digit thresholds.
inline ObjectSet MakeRandomObjects(std::size_t n, std::size_t m_min,
                                   std::size_t m_max, double domain,
                                   std::uint64_t seed,
                                   double cluster_sigma = 5.0,
                                   bool with_times = false,
                                   double time_span = 100.0) {
  Pcg32 rng(seed, 0x7465737473ULL);  // "tests"
  ObjectSet set;
  for (std::size_t i = 0; i < n; ++i) {
    double cx = rng.NextDouble(0.0, domain);
    double cy = rng.NextDouble(0.0, domain);
    double cz = rng.NextDouble(0.0, domain);
    std::size_t m =
        m_min + rng.NextBounded(static_cast<std::uint32_t>(m_max - m_min + 1));
    Object obj;
    for (std::size_t j = 0; j < m; ++j) {
      obj.points.push_back(Point{cx + cluster_sigma * rng.NextGaussian(),
                                 cy + cluster_sigma * rng.NextGaussian(),
                                 cz + cluster_sigma * rng.NextGaussian()});
      if (with_times) obj.times.push_back(rng.NextDouble(0.0, time_span));
    }
    set.Add(std::move(obj));
  }
  return set;
}

/// The exact score vector by brute force (NL with early break).
inline std::vector<std::uint32_t> OracleScores(const ObjectSet& objects,
                                               double r) {
  return NestedLoopScores(objects, r, /*threads=*/1);
}

/// Maximum score in a score vector.
inline std::uint32_t MaxScore(const std::vector<std::uint32_t>& scores) {
  std::uint32_t best = 0;
  for (std::uint32_t s : scores) best = std::max(best, s);
  return best;
}

}  // namespace testing
}  // namespace mio
