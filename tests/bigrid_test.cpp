// Structural tests of the BIGrid index: cell contents, key lists,
// postings, lazy neighbourhood bitsets, and serial/parallel build
// equivalence.
#include "core/bigrid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "test_utils.hpp"

namespace mio {
namespace {

TEST(BiGridTest, WidthsFollowDefinitions) {
  ObjectSet set = testing::MakeRandomObjects(5, 3, 5, 20.0, 1);
  BiGrid grid(set, 4.3);
  EXPECT_DOUBLE_EQ(grid.small_width(), SmallGridWidth(4.3));
  EXPECT_DOUBLE_EQ(grid.large_width(), 5.0);
}

TEST(BiGridTest, SmallCellBitsMatchBruteForce) {
  ObjectSet set = testing::MakeRandomObjects(20, 5, 10, 25.0, 2);
  double r = 5.0;
  BiGrid grid(set, r);
  grid.Build();

  // Recompute cell membership by hand.
  std::map<std::tuple<int, int, int>, std::set<ObjectId>> want;
  double w = SmallGridWidth(r);
  for (ObjectId i = 0; i < set.size(); ++i) {
    for (const Point& p : set[i].points) {
      CellKey k = KeyForWidth(p, w);
      want[{k.x, k.y, k.z}].insert(i);
    }
  }
  EXPECT_EQ(grid.NumSmallCells(), want.size());
  for (const auto& [kt, objs] : want) {
    const SmallCell* cell =
        grid.FindSmall(CellKey{std::get<0>(kt), std::get<1>(kt), std::get<2>(kt)});
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->bits.Count(), objs.size());
    EXPECT_EQ(cell->num_objects, objs.size());
    for (ObjectId o : objs) EXPECT_TRUE(cell->bits.Test(o));
  }
}

TEST(BiGridTest, KeyListsAreExactlyMultiObjectCells) {
  ObjectSet set = testing::MakeRandomObjects(15, 5, 10, 20.0, 3);
  double r = 4.0;
  BiGrid grid(set, r);
  grid.Build();

  double w = SmallGridWidth(r);
  std::map<std::tuple<int, int, int>, std::set<ObjectId>> cells;
  for (ObjectId i = 0; i < set.size(); ++i) {
    for (const Point& p : set[i].points) {
      CellKey k = KeyForWidth(p, w);
      cells[{k.x, k.y, k.z}].insert(i);
    }
  }
  for (ObjectId i = 0; i < set.size(); ++i) {
    std::set<std::tuple<int, int, int>> want;
    for (const auto& [kt, objs] : cells) {
      if (objs.size() >= 2 && objs.count(i)) want.insert(kt);
    }
    std::set<std::tuple<int, int, int>> got;
    for (const CellKey& k : grid.KeyList(i)) got.insert({k.x, k.y, k.z});
    EXPECT_EQ(got, want) << "object " << i;
    EXPECT_EQ(grid.KeyList(i).size(), got.size()) << "duplicate keys";
  }
}

TEST(BiGridTest, LargeCellPostingsHoldEveryPoint) {
  ObjectSet set = testing::MakeRandomObjects(10, 4, 8, 15.0, 4);
  double r = 3.0;
  BiGrid grid(set, r);
  grid.Build();

  std::size_t total_postings = 0;
  for (ObjectId i = 0; i < set.size(); ++i) {
    for (const Point& p : set[i].points) {
      CellKey k = KeyForWidth(p, grid.large_width());
      const LargeCell* cell = grid.FindLarge(k);
      ASSERT_NE(cell, nullptr);
      EXPECT_TRUE(cell->bits.Test(i));
      PostingView posting = cell->Posting(i);
      bool present = false;
      for (std::size_t pi = 0; pi < posting.size; ++pi) {
        if (posting[pi] == p) present = true;
      }
      EXPECT_TRUE(present);
    }
  }
  grid.ForEachLargeCell([&](const CellKey&, LargeCell& cell) {
    total_postings += cell.NumPostingPoints();
    // Posting object ids ascend (build order).
    EXPECT_TRUE(std::is_sorted(cell.post_obj.begin(), cell.post_obj.end()));
  });
  EXPECT_EQ(total_postings, set.Stats().nm);
}

TEST(BiGridTest, PostingOfAbsentObjectIsEmpty) {
  ObjectSet set = testing::MakeRandomObjects(3, 2, 2, 5.0, 5);
  BiGrid grid(set, 2.0);
  grid.Build();
  grid.ForEachLargeCell([&](const CellKey&, LargeCell& cell) {
    EXPECT_TRUE(cell.Posting(9999).empty());
  });
}

TEST(BiGridTest, EnsureAdjIsNeighborhoodUnion) {
  ObjectSet set = testing::MakeRandomObjects(12, 4, 8, 12.0, 6);
  double r = 3.0;
  BiGrid grid(set, r);
  grid.Build();

  CellKey key = KeyForWidth(set[0].points[0], grid.large_width());
  LargeCell& cell = grid.EnsureAdj(key);
  ASSERT_TRUE(cell.adj_computed);

  PlainBitset want;
  ForEachNeighbor(key, true, [&](const CellKey& nk) {
    if (const LargeCell* nc = grid.FindLarge(nk)) {
      want.OrWith(nc->bits.ToPlain());
    }
  });
  EXPECT_TRUE(cell.adj.ToPlain() == want);
  EXPECT_EQ(cell.adj_count, want.Count());
  // Second call is a memo hit (same object, no recompute).
  EXPECT_EQ(&grid.EnsureAdj(key), &cell);
}

TEST(BiGridTest, NoEmptyCells) {
  ObjectSet set = testing::MakeRandomObjects(10, 3, 5, 30.0, 7);
  BiGrid grid(set, 4.0);
  grid.Build();
  grid.ForEachLargeCell([&](const CellKey&, LargeCell& cell) {
    EXPECT_GT(cell.NumPostingPoints(), 0u);
    EXPECT_GT(cell.bits.Count(), 0u);
  });
}

TEST(BiGridTest, ParallelBuildMatchesSerial) {
  ObjectSet set = testing::MakeRandomObjects(30, 5, 12, 25.0, 8);
  double r = 4.5;
  BiGrid serial(set, r);
  serial.Build(nullptr, true);
  for (int threads : {2, 4}) {
    BiGrid parallel(set, r);
    parallel.BuildParallel(threads, nullptr, true);
    EXPECT_EQ(parallel.NumSmallCells(), serial.NumSmallCells());
    EXPECT_EQ(parallel.NumLargeCells(), serial.NumLargeCells());

    // Key lists agree as sets per object.
    for (ObjectId i = 0; i < set.size(); ++i) {
      auto as_set = [](const std::vector<CellKey>& keys) {
        std::set<std::tuple<int, int, int>> s;
        for (const CellKey& k : keys) s.insert({k.x, k.y, k.z});
        return s;
      };
      EXPECT_EQ(as_set(parallel.KeyList(i)), as_set(serial.KeyList(i)))
          << "object " << i << " threads " << threads;
    }
    // Large cells agree bit-for-bit and posting-for-posting.
    serial.ForEachLargeCell([&](const CellKey& k, LargeCell& scell) {
      const LargeCell* pcell = parallel.FindLarge(k);
      ASSERT_NE(pcell, nullptr);
      EXPECT_TRUE(pcell->bits == scell.bits);
      EXPECT_EQ(pcell->NumPostingPoints(), scell.NumPostingPoints());
    });
    // Groups cover every point exactly once.
    for (ObjectId i = 0; i < set.size(); ++i) {
      std::size_t covered = 0;
      for (const PointGroup& g : parallel.LargeGroups(i)) {
        covered += g.point_idx.size();
      }
      EXPECT_EQ(covered, set[i].NumPoints());
    }
  }
}

TEST(BiGridTest, MemoryBreakdownIsPopulated) {
  ObjectSet set = testing::MakeRandomObjects(20, 5, 10, 20.0, 9);
  BiGrid grid(set, 4.0);
  grid.Build();
  MemoryBreakdown mb = grid.MemoryUsage();
  EXPECT_GT(mb.Total(), 0u);
  EXPECT_GE(mb.parts.size(), 3u);
}

TEST(BiGridTest, CompressionStatsCoverAllCells) {
  ObjectSet set = testing::MakeRandomObjects(20, 5, 10, 20.0, 10);
  BiGrid grid(set, 4.0);
  grid.Build();
  BitsetCompressionStats stats = grid.CompressionStats();
  EXPECT_EQ(stats.num_bitsets, grid.NumSmallCells() + grid.NumLargeCells());
  EXPECT_GT(stats.uncompressed_bytes, 0u);
}

TEST(BiGridTest, BuildWithLabelsSkipsPrunedPoints) {
  ObjectSet set = testing::MakeRandomObjects(8, 4, 6, 15.0, 11);
  LabelSet labels = LabelSet::MakeAllOnes(set);
  // Prune every point of object 0.
  for (auto& l : labels.labels[0]) l &= ~label::kMap;
  BiGrid grid(set, 4.0);
  grid.Build(&labels);
  // Object 0 must appear in no large cell.
  grid.ForEachLargeCell([&](const CellKey&, LargeCell& cell) {
    EXPECT_FALSE(cell.bits.Test(0));
  });
  EXPECT_TRUE(grid.KeyList(0).empty());
}

}  // namespace
}  // namespace mio
