// Tests for the workload layer: spec parsing (defaults inheritance,
// repeat cycling, error reporting) and end-to-end RunWorkload — qlog
// record contents, label reuse across ceil(r) classes, and deterministic
// tail-sampling via the workload.query_delay fault site.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/qlog.hpp"
#include "test_utils.hpp"
#include "workload/workload_runner.hpp"
#include "workload/workload_spec.hpp"

namespace mio {
namespace {

// --- Spec parser ------------------------------------------------------------

TEST(WorkloadSpec, ParsesDirectivesAndDefaults) {
  Result<WorkloadSpec> spec = ParseWorkloadSpec(
      "# a workload\n"
      "name urban-mix\n"
      "dataset data/urban.bin\n"
      "sample 0.5 seed=7\n"
      "defaults k=2 threads=4 labels=on deadline_ms=250\n"
      "query r=4\n"
      "query r=4.2 threads=8 k=1 labels=off record=on\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const WorkloadSpec& s = spec.value();
  EXPECT_EQ(s.name, "urban-mix");
  EXPECT_EQ(s.dataset, "data/urban.bin");
  EXPECT_DOUBLE_EQ(s.sample_rate, 0.5);
  EXPECT_EQ(s.sample_seed, 7u);
  ASSERT_EQ(s.queries.size(), 2u);

  // First query inherits all defaults; labels=on implies record=on.
  EXPECT_DOUBLE_EQ(s.queries[0].r, 4.0);
  EXPECT_EQ(s.queries[0].k, 2u);
  EXPECT_EQ(s.queries[0].threads, 4);
  EXPECT_TRUE(s.queries[0].use_labels);
  EXPECT_TRUE(s.queries[0].record_labels);
  EXPECT_DOUBLE_EQ(s.queries[0].deadline_ms, 250.0);

  // Second overrides threads/k/labels but keeps the deadline default.
  EXPECT_DOUBLE_EQ(s.queries[1].r, 4.2);
  EXPECT_EQ(s.queries[1].k, 1u);
  EXPECT_EQ(s.queries[1].threads, 8);
  EXPECT_FALSE(s.queries[1].use_labels);
  EXPECT_TRUE(s.queries[1].record_labels);
  EXPECT_DOUBLE_EQ(s.queries[1].deadline_ms, 250.0);
}

TEST(WorkloadSpec, RepeatCyclesThroughRadii) {
  Result<WorkloadSpec> spec = ParseWorkloadSpec(
      "name cycle\n"
      "repeat 7 r=3,4.5,9\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const std::vector<WorkloadQuery>& q = spec.value().queries;
  ASSERT_EQ(q.size(), 7u);
  const double expect[] = {3.0, 4.5, 9.0, 3.0, 4.5, 9.0, 3.0};
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_DOUBLE_EQ(q[i].r, expect[i]) << "query " << i;
  }
}

TEST(WorkloadSpec, ErrorsCarryTheLineNumber) {
  struct Case {
    const char* text;
    const char* line;  // expected "line N" marker in the message
  } cases[] = {
      {"query r=4\nquery\n", "line 2"},             // query without r
      {"defaults r=4\n", "line 1"},                 // r not allowed here
      {"query r=4 k=0\n", "line 1"},                // k must be positive
      {"query r=4 threads=nope\n", "line 1"},       // not a number
      {"repeat 0 r=3\n", "line 1"},                 // zero repeat count
      {"repeat 3\n", "line 1"},                     // repeat without r list
      {"name only\n", ""},                          // no queries at all
      {"query r=4 labels=maybe\n", "line 1"},       // bad on/off value
      {"bogus-directive 1\n", "line 1"},            // unknown directive
  };
  for (const Case& c : cases) {
    Result<WorkloadSpec> spec = ParseWorkloadSpec(c.text);
    ASSERT_FALSE(spec.ok()) << c.text;
    if (c.line[0] != '\0') {
      EXPECT_NE(spec.status().message().find(c.line), std::string::npos)
          << c.text << " -> " << spec.status().message();
    }
  }
}

TEST(WorkloadSpec, LoadFromMissingFileFails) {
  EXPECT_FALSE(LoadWorkloadSpec("/nonexistent/spec.workload").ok());
}

// --- Runner -----------------------------------------------------------------

class WorkloadRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Reset();
    obs::SetMetricsEnabled(true);
    obs::ResetMetrics();
    dir_ = std::filesystem::temp_directory_path() /
           ("mio_workload_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }

  /// Names of the q*.trace.json files currently in `dir`.
  static std::vector<std::string> TraceFilesIn(const std::string& dir) {
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  std::filesystem::path dir_;
};

TEST_F(WorkloadRunTest, WritesOneValidRecordPerQuery) {
  ObjectSet objects =
      testing::MakeRandomObjects(60, 3, 6, /*domain=*/100.0, /*seed=*/11);
  Result<WorkloadSpec> spec = ParseWorkloadSpec(
      "name unit-mix\n"
      "defaults k=1 threads=1 labels=on\n"
      "repeat 8 r=3,4.5\n");
  ASSERT_TRUE(spec.ok());

  WorkloadRunOptions opts;
  opts.dataset_name = "random-60";
  opts.qlog_path = PathFor("run.jsonl");
  Result<WorkloadRunSummary> run = RunWorkload(objects, spec.value(), opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().queries, 8u);
  EXPECT_EQ(run.value().qlog_records, 8u);
  EXPECT_EQ(run.value().failed, 0u);

  Result<std::vector<obs::QlogRecord>> loaded = obs::LoadQlogFile(opts.qlog_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 8u);
  for (std::size_t i = 0; i < loaded.value().size(); ++i) {
    const obs::QlogRecord& rec = loaded.value()[i];
    EXPECT_EQ(rec.query_index, i);
    EXPECT_EQ(rec.workload, "unit-mix");
    EXPECT_EQ(rec.dataset, "random-60");
    EXPECT_EQ(rec.algo, "bigrid-label");
    EXPECT_EQ(rec.objects, 60u);
    EXPECT_EQ(rec.ceil_r, i % 2 == 0 ? 3 : 5);  // ceil(3)=3, ceil(4.5)=5
    EXPECT_GT(rec.wall_seconds, 0.0);
    EXPECT_EQ(rec.status, "OK");
    EXPECT_TRUE(rec.complete);
  }
}

TEST_F(WorkloadRunTest, LabelsHitAfterFirstQueryPerCeilClass) {
  ObjectSet objects =
      testing::MakeRandomObjects(60, 3, 6, /*domain=*/100.0, /*seed=*/11);
  Result<WorkloadSpec> spec = ParseWorkloadSpec(
      "name label-reuse\n"
      "defaults labels=on\n"
      "repeat 9 r=3,4.5,9\n");
  ASSERT_TRUE(spec.ok());

  WorkloadRunOptions opts;
  opts.qlog_path = PathFor("run.jsonl");
  Result<WorkloadRunSummary> run = RunWorkload(objects, spec.value(), opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  Result<std::vector<obs::QlogRecord>> loaded = obs::LoadQlogFile(opts.qlog_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 9u);
  // Three ceil(r) classes cycling: the first visit of each class records
  // labels, every revisit hits.
  for (std::size_t i = 0; i < 9; ++i) {
    const obs::QlogRecord& rec = loaded.value()[i];
    if (i < 3) {
      EXPECT_EQ(rec.label_outcome, "recorded") << "query " << i;
    } else {
      EXPECT_TRUE(rec.LabelHit()) << "query " << i << ": "
                                  << rec.label_outcome;
    }
  }

  // The counters agree: 6 hits, 3 misses.
  obs::MetricsSnapshot m = obs::SnapshotMetrics();
  EXPECT_EQ(m.counters[static_cast<std::size_t>(obs::Counter::kLabelCacheHits)],
            6u);
  EXPECT_EQ(
      m.counters[static_cast<std::size_t>(obs::Counter::kLabelCacheMisses)],
      3u);

  // And the report aggregates to a 2/3 hit rate in every class.
  obs::QlogReport report = obs::BuildQlogReport(loaded.value(), 3);
  ASSERT_EQ(report.ceil_classes.size(), 3u);
  for (const obs::QlogCeilClassStats& cls : report.ceil_classes) {
    EXPECT_EQ(cls.queries, 3u);
    EXPECT_EQ(cls.recorded, 1u);
    EXPECT_EQ(cls.hits, 2u);
    EXPECT_NEAR(cls.HitRate(), 2.0 / 3.0, 1e-12);
  }
}

TEST_F(WorkloadRunTest, SamplingShrinksTheDataset) {
  ObjectSet objects =
      testing::MakeRandomObjects(80, 3, 5, /*domain=*/100.0, /*seed=*/3);
  Result<WorkloadSpec> spec = ParseWorkloadSpec(
      "name sampled\n"
      "sample 0.25 seed=9\n"
      "query r=3\n");
  ASSERT_TRUE(spec.ok());
  WorkloadRunOptions opts;
  opts.qlog_path = PathFor("run.jsonl");
  Result<WorkloadRunSummary> run = RunWorkload(objects, spec.value(), opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Result<std::vector<obs::QlogRecord>> loaded = obs::LoadQlogFile(opts.qlog_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_LT(loaded.value()[0].objects, 80u);
  EXPECT_GT(loaded.value()[0].objects, 0u);
}

TEST_F(WorkloadRunTest, EmptyDatasetFails) {
  ObjectSet empty;
  Result<WorkloadSpec> spec = ParseWorkloadSpec("query r=3\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(RunWorkload(empty, spec.value(), WorkloadRunOptions{}).ok());
}

#ifndef MIO_TRACING_DISABLED
TEST_F(WorkloadRunTest, FaultForcedSlowQueryIsTheOnlyTrace) {
  ObjectSet objects =
      testing::MakeRandomObjects(40, 3, 5, /*domain=*/100.0, /*seed=*/5);
  Result<WorkloadSpec> spec = ParseWorkloadSpec(
      "name tail\n"
      "repeat 6 r=3\n");
  ASSERT_TRUE(spec.ok());

  // Arm a 50ms busy-wait on the 4th query; with slowest_n=1 it must be
  // the single surviving trace regardless of ambient timing noise.
  ASSERT_TRUE(fault::Arm("workload.query_delay", "nth=4").ok());

  WorkloadRunOptions opts;
  opts.qlog_path = PathFor("run.jsonl");
  opts.trace_dir = PathFor("traces");
  opts.tail.slowest_n = 1;
  Result<WorkloadRunSummary> run = RunWorkload(objects, spec.value(), opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(run.value().tail_indices, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(run.value().traces_written, 1u);
  EXPECT_EQ(TraceFilesIn(opts.trace_dir),
            (std::vector<std::string>{obs::TailTraceFileName(3)}));

  // The qlog agrees the delayed query is the slowest one.
  Result<std::vector<obs::QlogRecord>> loaded = obs::LoadQlogFile(opts.qlog_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 6u);
  const std::vector<obs::QlogRecord>& recs = loaded.value();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (i == 3) continue;
    EXPECT_GT(recs[3].wall_seconds, recs[i].wall_seconds) << "query " << i;
  }
  EXPECT_GE(recs[3].wall_seconds, 0.05);
}

TEST_F(WorkloadRunTest, ThresholdKeepsEveryForcedSlowQuery) {
  ObjectSet objects =
      testing::MakeRandomObjects(40, 3, 5, /*domain=*/100.0, /*seed=*/5);
  Result<WorkloadSpec> spec = ParseWorkloadSpec(
      "name tail-threshold\n"
      "repeat 5 r=3\n");
  ASSERT_TRUE(spec.ok());

  // Delay every query past a 40ms threshold; slowest-N stays disabled.
  ASSERT_TRUE(fault::Arm("workload.query_delay", "always").ok());

  WorkloadRunOptions opts;
  opts.trace_dir = PathFor("traces");
  opts.tail.threshold_seconds = 0.04;
  Result<WorkloadRunSummary> run = RunWorkload(objects, spec.value(), opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Every query was delayed past the threshold: all five keep traces and
  // nothing is ever evicted (threshold members are permanent).
  EXPECT_EQ(run.value().tail_indices,
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(run.value().traces_written, 5u);
  EXPECT_EQ(run.value().traces_evicted, 0u);
  EXPECT_EQ(TraceFilesIn(opts.trace_dir).size(), 5u);
}
#endif  // MIO_TRACING_DISABLED

TEST_F(WorkloadRunTest, NoTraceDirMeansNoFilesButTailIsTracked) {
  ObjectSet objects =
      testing::MakeRandomObjects(40, 3, 5, /*domain=*/100.0, /*seed=*/5);
  Result<WorkloadSpec> spec = ParseWorkloadSpec("repeat 4 r=3\n");
  ASSERT_TRUE(spec.ok());
  WorkloadRunOptions opts;
  opts.tail.slowest_n = 2;
  Result<WorkloadRunSummary> run = RunWorkload(objects, spec.value(), opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().tail_indices.size(), 2u);
  EXPECT_EQ(run.value().traces_written, 0u);
}

}  // namespace
}  // namespace mio
