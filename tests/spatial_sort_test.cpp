#include "object/spatial_sort.hpp"

#include <gtest/gtest.h>

#include "baseline/nested_loop.hpp"
#include "bitset/bitset_stats.hpp"
#include "core/bigrid.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

TEST(SpatialSortTest, PreservesMultisetOfObjects) {
  ObjectSet set = testing::MakeRandomObjects(50, 3, 8, 100.0, 1);
  ObjectSet sorted = SortObjectsSpatially(set);
  ASSERT_EQ(sorted.size(), set.size());
  EXPECT_EQ(sorted.Stats().nm, set.Stats().nm);
  // Every original object appears exactly once (match by first point,
  // which is unique for continuous random data).
  std::vector<double> orig, got;
  for (const Object& o : set.objects()) orig.push_back(o.points[0].x);
  for (const Object& o : sorted.objects()) got.push_back(o.points[0].x);
  std::sort(orig.begin(), orig.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(orig, got);
}

TEST(SpatialSortTest, ScoresInvariantUnderReorder) {
  ObjectSet set = testing::MakeRandomObjects(40, 4, 8, 30.0, 2);
  ObjectSet sorted = SortObjectsSpatially(set);
  std::vector<std::uint32_t> a = NestedLoopScores(set, 5.0);
  std::vector<std::uint32_t> b = NestedLoopScores(sorted, 5.0);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // same multiset of scores, ids permuted
}

TEST(SpatialSortTest, NeighborsGetNearbyIds) {
  // Two well-separated clusters with interleaved original ids: after the
  // sort, each cluster's objects must occupy a contiguous id range.
  ObjectSet set;
  for (int i = 0; i < 10; ++i) {
    double base = (i % 2 == 0) ? 0.0 : 1000.0;  // interleave clusters
    set.Add(Object{{{base + i * 0.1, 0, 0}}, {}});
  }
  ObjectSet sorted = SortObjectsSpatially(set);
  // First five ids in one cluster, last five in the other.
  bool first_low = sorted[0].points[0].x < 500.0;
  for (ObjectId i = 0; i < 5; ++i) {
    EXPECT_EQ(sorted[i].points[0].x < 500.0, first_low) << i;
    EXPECT_EQ(sorted[5 + i].points[0].x < 500.0, !first_low) << i;
  }
}

TEST(SpatialSortTest, ImprovesBitsetCompression) {
  // Clustered data with shuffled ids: sorting must not worsen (and should
  // typically improve) the compressed footprint of BIGrid cell bitsets.
  ObjectSet clustered = testing::MakeRandomObjects(400, 4, 8, 400.0, 3, 2.0);
  // Shuffle ids deterministically.
  ObjectSet shuffled;
  Pcg32 rng(9);
  std::vector<ObjectId> order(clustered.size());
  for (ObjectId i = 0; i < clustered.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(static_cast<std::uint32_t>(i))]);
  }
  for (ObjectId i : order) shuffled.Add(clustered[i]);

  auto compressed_bytes = [](const ObjectSet& s) {
    BiGrid grid(s, 4.0);
    grid.Build();
    return grid.CompressionStats().compressed_bytes;
  };
  std::size_t shuffled_bytes = compressed_bytes(shuffled);
  std::size_t sorted_bytes = compressed_bytes(SortObjectsSpatially(shuffled));
  EXPECT_LE(sorted_bytes, shuffled_bytes);
}

TEST(SpatialSortTest, EdgeCases) {
  EXPECT_EQ(SortObjectsSpatially(ObjectSet{}).size(), 0u);
  ObjectSet one;
  one.Add(Object{{{1, 2, 3}}, {}});
  ObjectSet sorted = SortObjectsSpatially(one);
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_TRUE(sorted[0].points[0] == Point({1, 2, 3}));
  // All objects at the same location: any order is fine, nothing crashes.
  ObjectSet same;
  for (int i = 0; i < 5; ++i) same.Add(Object{{{7, 7, 7}}, {}});
  EXPECT_EQ(SortObjectsSpatially(same).size(), 5u);
}

}  // namespace
}  // namespace mio
