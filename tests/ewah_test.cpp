// Differential tests of the EWAH codec against PlainBitset, plus
// compression-behaviour checks (runs of zeros/ones must compress).
#include "bitset/ewah.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "bitset/bitset_stats.hpp"
#include "bitset/plain_bitset.hpp"
#include "common/random.hpp"

namespace mio {
namespace {

TEST(EwahTest, StartsEmpty) {
  Ewah b;
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.SizeInBits(), 0u);
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(12345));
}

TEST(EwahTest, AscendingSetAndTest) {
  Ewah b;
  std::vector<std::size_t> idx = {0, 1, 63, 64, 65, 200, 1000, 100000};
  for (std::size_t i : idx) b.Set(i);
  for (std::size_t i : idx) EXPECT_TRUE(b.Test(i)) << i;
  EXPECT_FALSE(b.Test(2));
  EXPECT_FALSE(b.Test(999));
  EXPECT_FALSE(b.Test(100001));
  EXPECT_EQ(b.Count(), idx.size());
  EXPECT_EQ(b.SizeInBits(), 100001u);
}

TEST(EwahTest, SetIsIdempotent) {
  Ewah b;
  b.Set(100);
  b.Set(100);
  b.Set(100);
  EXPECT_EQ(b.Count(), 1u);
}

TEST(EwahTest, SparseBitsetCompresses) {
  Ewah b;
  b.Set(0);
  b.Set(1000000);  // ~15 KiB of zero run in between
  EXPECT_LT(b.CompressedBytes(), 100u);
  EXPECT_GT(b.UncompressedBytes(), 100000u);
}

TEST(EwahTest, DenseRunCompresses) {
  // 64k consecutive ones: the word-aligned interior must fold into a run.
  Ewah b;
  for (std::size_t i = 0; i < 65536; ++i) b.Set(i);
  EXPECT_EQ(b.Count(), 65536u);
  EXPECT_LT(b.CompressedBytes(), 64u);
}

TEST(EwahTest, OutOfOrderSetUsesSlowPathCorrectly) {
  Ewah b;
  b.Set(10000);  // creates a long zero run
  b.Set(5);      // patches inside the run (decompress-recompress path)
  b.Set(7000);
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(7000));
  EXPECT_TRUE(b.Test(10000));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(EwahTest, InPlaceSetIntoLiteralWord) {
  Ewah b;
  b.Set(3);
  b.Set(10);  // same word: literal or-in, no structure change
  EXPECT_TRUE(b.Test(3));
  EXPECT_TRUE(b.Test(10));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(EwahTest, SetInsideRunOfOnesIsNoop) {
  Ewah b;
  for (std::size_t i = 0; i < 200; ++i) b.Set(i);
  std::size_t bytes = b.CompressedBytes();
  b.Set(64);  // inside the ones run
  EXPECT_EQ(b.CompressedBytes(), bytes);
  EXPECT_EQ(b.Count(), 200u);
}

TEST(EwahTest, PlainRoundTrip) {
  Pcg32 rng(11);
  PlainBitset plain;
  for (int i = 0; i < 500; ++i) plain.Set(rng.NextBounded(10000));
  Ewah compressed = Ewah::FromPlain(plain);
  EXPECT_EQ(compressed.Count(), plain.Count());
  EXPECT_TRUE(compressed.ToPlain() == plain);
}

TEST(EwahTest, ForEachSetBitMatchesPlain) {
  Pcg32 rng(13);
  Ewah b;
  PlainBitset ref;
  std::size_t last = 0;
  for (int i = 0; i < 300; ++i) {
    last += 1 + rng.NextBounded(500);
    b.Set(last);
    ref.Set(last);
  }
  std::vector<std::size_t> got;
  b.ForEachSetBit([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, ref.SetBits());
}

TEST(EwahTest, ResetClears) {
  Ewah b;
  b.Set(100);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.SizeInBits(), 0u);
  b.Set(3);
  EXPECT_EQ(b.Count(), 1u);
}

TEST(EwahTest, EqualityIsLogical) {
  Ewah a, b;
  a.Set(5);
  b.Set(5);
  b.Set(100000);  // differs
  EXPECT_FALSE(a == b);
  a.Set(100000);
  EXPECT_TRUE(a == b);
}

// --- logical op correctness, differential against PlainBitset -------------

struct OpCase {
  std::uint64_t seed;
  double density_a;
  double density_b;
  std::size_t universe;
};

class EwahOpsTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(EwahOpsTest, MatchesPlainBitsetSemantics) {
  const OpCase& c = GetParam();
  Pcg32 rng(c.seed);
  PlainBitset pa, pb;
  Ewah ea, eb;
  // Build both representations with ascending sets (the supported fast
  // path) at the parameterised densities.
  for (std::size_t i = 0; i < c.universe; ++i) {
    if (rng.NextDouble() < c.density_a) {
      pa.Set(i);
      ea.Set(i);
    }
    if (rng.NextDouble() < c.density_b) {
      pb.Set(i);
      eb.Set(i);
    }
  }
  ASSERT_TRUE(ea.ToPlain() == pa);
  ASSERT_TRUE(eb.ToPlain() == pb);

  {
    Ewah got = Ewah::Or(ea, eb);
    PlainBitset want = pa;
    want.OrWith(pb);
    EXPECT_TRUE(got.ToPlain() == want) << "OR seed=" << c.seed;
    EXPECT_EQ(got.Count(), want.Count());
  }
  {
    Ewah got = Ewah::And(ea, eb);
    PlainBitset want = pa;
    want.AndWith(pb);
    EXPECT_TRUE(got.ToPlain() == want) << "AND seed=" << c.seed;
  }
  {
    Ewah got = Ewah::AndNot(ea, eb);
    PlainBitset want = pa;
    want.AndNotWith(pb);
    EXPECT_TRUE(got.ToPlain() == want) << "ANDNOT seed=" << c.seed;
  }
  {
    Ewah got = Ewah::Xor(ea, eb);
    PlainBitset want = pa;
    want.XorWith(pb);
    EXPECT_TRUE(got.ToPlain() == want) << "XOR seed=" << c.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, EwahOpsTest,
    ::testing::Values(
        OpCase{1, 0.0, 0.0, 1000},      // both empty
        OpCase{2, 0.001, 0.001, 20000}, // very sparse
        OpCase{3, 0.01, 0.5, 5000},     // sparse vs dense
        OpCase{4, 0.5, 0.5, 5000},      // dense
        OpCase{5, 0.99, 0.99, 5000},    // near-full (ones runs)
        OpCase{6, 0.2, 0.0, 3000},      // one side empty
        OpCase{7, 1.0, 0.3, 2000},      // full side
        OpCase{8, 0.05, 0.05, 100000},  // large sparse
        OpCase{9, 0.3, 0.7, 777},       // non-word-aligned universe
        OpCase{10, 0.5, 0.5, 64},       // single word
        OpCase{11, 0.5, 0.5, 65}));     // word boundary + 1

TEST(EwahOpsTest, DifferentSizesTreatMissingAsZero) {
  Ewah small, big;
  small.Set(3);
  big.Set(3);
  big.Set(100000);
  Ewah o = Ewah::Or(small, big);
  EXPECT_EQ(o.Count(), 2u);
  Ewah a = Ewah::And(small, big);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(3));
  Ewah d = Ewah::AndNot(big, small);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(100000));
}

TEST(EwahOpsTest, OrWithAccumulatorPattern) {
  // The BIGrid lower bound ORs many cell bitsets into an accumulator.
  Pcg32 rng(21);
  Ewah acc;
  PlainBitset ref;
  for (int cell = 0; cell < 50; ++cell) {
    Ewah cell_bits;
    std::size_t base = rng.NextBounded(5000);
    for (int j = 0; j < 20; ++j) {
      std::size_t idx = base + j * (1 + rng.NextBounded(10));
      cell_bits.Set(idx);
      ref.Set(idx);
    }
    acc.OrWith(cell_bits);
  }
  EXPECT_TRUE(acc.ToPlain() == ref);
}

TEST(EwahStatsTest, CompressionStatsAggregate) {
  BitsetCompressionStats stats;
  Ewah sparse;
  sparse.Set(0);
  sparse.Set(1000000);
  stats.Add(sparse);
  EXPECT_EQ(stats.num_bitsets, 1u);
  EXPECT_GT(stats.SavingsRatio(), 0.99);

  BitsetCompressionStats other;
  other.Add(sparse);
  stats.Merge(other);
  EXPECT_EQ(stats.num_bitsets, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace mio
