// Parallel phases must agree with the serial pipeline for every strategy
// and thread count, label mode included.
#include <gtest/gtest.h>

#include "core/bigrid.hpp"
#include "core/lower_bound.hpp"
#include "core/mio_engine.hpp"
#include "core/parallel_phases.hpp"
#include "core/partition.hpp"
#include "core/upper_bound.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

TEST(GreedyAssignTest, BalancesUniformWeights) {
  std::vector<std::uint64_t> weights(100, 5);
  std::vector<int> assign = GreedyAssign(weights, 4);
  PartitionQuality q = EvaluatePartition(weights, assign, 4);
  EXPECT_EQ(q.max_load, q.min_load);  // perfectly balanced
  EXPECT_DOUBLE_EQ(q.imbalance, 0.0);
}

TEST(GreedyAssignTest, HandlesSkewReasonably) {
  // One huge item plus many small ones: greedy puts the huge one alone.
  std::vector<std::uint64_t> weights = {1000};
  for (int i = 0; i < 50; ++i) weights.push_back(10);
  std::vector<int> assign = GreedyAssign(weights, 4);
  int huge_part = assign[0];
  std::uint64_t huge_part_rest = 0;
  for (std::size_t i = 1; i < weights.size(); ++i) {
    if (assign[i] == huge_part) huge_part_rest += weights[i];
  }
  EXPECT_LE(huge_part_rest, 20u);  // almost nothing shares its core
}

TEST(GreedyAssignTest, SinglePartTrivial) {
  std::vector<std::uint64_t> weights = {3, 1, 4};
  EXPECT_EQ(GreedyAssign(weights, 1), (std::vector<int>{0, 0, 0}));
  EXPECT_FALSE(EvaluatePartition(weights, GreedyAssign(weights, 1), 1)
                   .ToString()
                   .empty());
}

struct ParallelCase {
  int threads;
  double r;
  std::uint64_t seed;
};

class ParallelPhaseTest : public ::testing::TestWithParam<ParallelCase> {
 protected:
  ObjectSet MakeSet() const {
    return testing::MakeRandomObjects(50, 4, 12, 30.0, GetParam().seed, 5.0);
  }
};

TEST_P(ParallelPhaseTest, LowerBoundingStrategiesMatchSerial) {
  const ParallelCase& c = GetParam();
  ObjectSet set = MakeSet();
  BiGrid grid(set, c.r);
  grid.Build(nullptr, true);

  LowerBoundResult serial = LowerBounding(grid, true);
  for (LbStrategy strategy : {LbStrategy::kGreedyDivideObjects,
                              LbStrategy::kHashPartitionPoints}) {
    LowerBoundResult par =
        ParallelLowerBounding(grid, strategy, c.threads, true);
    EXPECT_EQ(par.tau_low, serial.tau_low);
    EXPECT_EQ(par.tau_low_max, serial.tau_low_max);
    for (ObjectId i = 0; i < set.size(); ++i) {
      EXPECT_TRUE(par.lb_bitsets[i] == serial.lb_bitsets[i]) << i;
    }
  }
}

TEST_P(ParallelPhaseTest, UpperBoundingStrategiesMatchSerial) {
  const ParallelCase& c = GetParam();
  ObjectSet set = MakeSet();

  BiGrid sgrid(set, c.r);
  sgrid.Build();
  UpperBoundResult serial = UpperBounding(sgrid, 0, nullptr, nullptr, nullptr);

  for (UbStrategy strategy :
       {UbStrategy::kCostBasedGreedy, UbStrategy::kGreedyDivideObjects}) {
    BiGrid pgrid(set, c.r);
    pgrid.BuildParallel(c.threads, nullptr, true);
    UpperBoundResult par = ParallelUpperBounding(
        pgrid, 0, strategy, c.threads, nullptr, nullptr, nullptr);
    EXPECT_EQ(par.tau_upp, serial.tau_upp)
        << "strategy=" << static_cast<int>(strategy);
  }
}

TEST_P(ParallelPhaseTest, FullParallelQueryMatchesSerial) {
  const ParallelCase& c = GetParam();
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);
  std::uint32_t best = testing::MaxScore(exact);

  for (UbStrategy ub : {UbStrategy::kCostBasedGreedy,
                        UbStrategy::kGreedyDivideObjects}) {
    for (LbStrategy lb : {LbStrategy::kGreedyDivideObjects,
                          LbStrategy::kHashPartitionPoints}) {
      QueryOptions opt;
      opt.threads = c.threads;
      opt.lb_strategy = lb;
      opt.ub_strategy = ub;
      MioEngine engine(set);
      QueryResult res = engine.Query(c.r, opt);
      ASSERT_FALSE(res.topk.empty());
      EXPECT_EQ(res.best().score, best);
      EXPECT_EQ(exact[res.best().id], best);
    }
  }
}

TEST_P(ParallelPhaseTest, ParallelTopKMatchesOracle) {
  const ParallelCase& c = GetParam();
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);
  std::vector<ScoredObject> want = TopKFromScores(exact, 5);

  QueryOptions opt;
  opt.threads = c.threads;
  opt.k = 5;
  MioEngine engine(set);
  QueryResult res = engine.Query(c.r, opt);
  ASSERT_EQ(res.topk.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(res.topk[i].score, want[i].score) << "pos " << i;
    EXPECT_EQ(exact[res.topk[i].id], res.topk[i].score);
  }
}

TEST_P(ParallelPhaseTest, ParallelLabelRunsMatchOracle) {
  const ParallelCase& c = GetParam();
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);
  std::uint32_t best = testing::MaxScore(exact);

  QueryOptions opt;
  opt.threads = c.threads;
  opt.record_labels = true;
  opt.use_labels = true;
  MioEngine engine(set);
  QueryResult first = engine.Query(c.r, opt);
  QueryResult second = engine.Query(c.r, opt);
  EXPECT_EQ(first.best().score, best);
  EXPECT_EQ(second.best().score, best);
  EXPECT_EQ(exact[second.best().id], best);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndRadii, ParallelPhaseTest,
    ::testing::Values(ParallelCase{2, 4.0, 1}, ParallelCase{2, 8.0, 2},
                      ParallelCase{3, 5.5, 3}, ParallelCase{4, 4.0, 4},
                      ParallelCase{4, 10.0, 5}, ParallelCase{8, 6.0, 6}));

TEST(ParallelCrossModeTest, SerialLabelsUsableByParallelRunAndViceVersa) {
  ObjectSet set = testing::MakeRandomObjects(40, 4, 10, 25.0, 9, 5.0);
  double r = 5.0;
  std::uint32_t best = testing::MaxScore(testing::OracleScores(set, r));

  {
    // Record serially, consume in parallel.
    MioEngine engine(set);
    QueryOptions rec;
    rec.record_labels = true;
    engine.Query(r, rec);
    QueryOptions use;
    use.use_labels = true;
    use.threads = 4;
    EXPECT_EQ(engine.Query(r, use).best().score, best);
  }
  {
    // Record in parallel, consume serially.
    MioEngine engine(set);
    QueryOptions rec;
    rec.record_labels = true;
    rec.threads = 4;
    engine.Query(r, rec);
    QueryOptions use;
    use.use_labels = true;
    EXPECT_EQ(engine.Query(r, use).best().score, best);
  }
}

}  // namespace
}  // namespace mio
