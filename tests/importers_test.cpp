#include "io/importers.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace mio {
namespace {

class ImportersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mio_import_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Write(const std::string& name, const std::string& content) {
    std::string path = (dir_ / name).string();
    std::ofstream(path) << content;
    return path;
  }
  std::filesystem::path dir_;
};

TEST_F(ImportersTest, SwcBasicParse) {
  std::string path = Write("cell.swc",
                           "# NeuroMorpho-style header\n"
                           "# more comments\n"
                           "1 1 0.0 0.0 0.0 5.0 -1\n"
                           "2 3 1.5 0.5 0.0 0.5 1\n"
                           "  3 3 3.0 1.0 0.5 0.4 2\n");
  Result<Object> obj = LoadSwcFile(path);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  ASSERT_EQ(obj.value().points.size(), 3u);
  EXPECT_DOUBLE_EQ(obj.value().points[1].x, 1.5);
  EXPECT_DOUBLE_EQ(obj.value().points[2].z, 0.5);
}

TEST_F(ImportersTest, SwcRejectsMalformedAndEmpty) {
  EXPECT_FALSE(LoadSwcFile(Write("bad.swc", "1 1 nonsense\n")).ok());
  EXPECT_FALSE(LoadSwcFile(Write("empty.swc", "# only comments\n")).ok());
  EXPECT_FALSE(LoadSwcFile((dir_ / "missing.swc").string()).ok());
}

TEST_F(ImportersTest, SwcDirectoryLoadsSortedByName) {
  Write("b.swc", "1 1 10 0 0 1 -1\n");
  Write("a.swc", "1 1 0 0 0 1 -1\n2 3 1 0 0 1 1\n");
  Write("notes.txt", "ignore me");
  Result<ObjectSet> set = LoadSwcDirectory(dir_.string());
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().size(), 2u);
  EXPECT_EQ(set.value()[0].NumPoints(), 2u);  // a.swc first
  EXPECT_DOUBLE_EQ(set.value()[1].points[0].x, 10.0);
}

TEST_F(ImportersTest, SwcDirectoryEmptyFails) {
  EXPECT_FALSE(LoadSwcDirectory(dir_.string()).ok());
}

TEST_F(ImportersTest, CsvGroupsByIdInFirstAppearanceOrder) {
  std::string path = Write("tracks.csv",
                           "id,x,y\n"
                           "bird7,0.0,0.0\n"
                           "bird3,5.0,5.0\n"
                           "bird7,1.0,0.5\n"
                           "bird3,6.0,5.5\n"
                           "bird7,2.0,1.0\n");
  Result<ObjectSet> set = LoadTrajectoryCsv(path);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().size(), 2u);
  EXPECT_EQ(set.value()[0].NumPoints(), 3u);  // bird7 appeared first
  EXPECT_EQ(set.value()[1].NumPoints(), 2u);
  EXPECT_DOUBLE_EQ(set.value()[0].points[2].x, 2.0);
  EXPECT_TRUE(set.value().IsPlanar());  // no z column -> z = 0
}

TEST_F(ImportersTest, CsvCustomColumnsWithZAndTime) {
  std::string path = Write("fixes.csv",
                           "timestamp;lon;lat;alt;animal\n"
                           "100;1.0;2.0;30.0;fox\n"
                           "101;1.5;2.5;31.0;fox\n");
  TrajectoryCsvOptions opt;
  opt.delimiter = ';';
  opt.id_column = "animal";
  opt.x_column = "lon";
  opt.y_column = "lat";
  opt.z_column = "alt";
  opt.time_column = "timestamp";
  Result<ObjectSet> set = LoadTrajectoryCsv(path, opt);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().size(), 1u);
  const Object& fox = set.value()[0];
  ASSERT_TRUE(fox.HasTimes());
  EXPECT_DOUBLE_EQ(fox.points[1].z, 31.0);
  EXPECT_DOUBLE_EQ(fox.times[0], 100.0);
}

TEST_F(ImportersTest, CsvSplitsLongTrajectories) {
  std::string content = "id,x,y\n";
  for (int i = 0; i < 25; ++i) {
    content += "t," + std::to_string(i) + ".0,0.0\n";
  }
  TrajectoryCsvOptions opt;
  opt.max_points_per_object = 10;
  Result<ObjectSet> set = LoadTrajectoryCsv(Write("long.csv", content), opt);
  ASSERT_TRUE(set.ok());
  // 25 fixes at <=10 per object: 10 + 10 + 5.
  ASSERT_EQ(set.value().size(), 3u);
  EXPECT_EQ(set.value()[0].NumPoints(), 10u);
  EXPECT_EQ(set.value()[2].NumPoints(), 5u);
  EXPECT_DOUBLE_EQ(set.value()[2].points[0].x, 20.0);
}

TEST_F(ImportersTest, CsvErrorCases) {
  EXPECT_FALSE(LoadTrajectoryCsv((dir_ / "missing.csv").string()).ok());
  EXPECT_FALSE(LoadTrajectoryCsv(Write("empty.csv", "")).ok());
  EXPECT_FALSE(
      LoadTrajectoryCsv(Write("noid.csv", "a,b\n1,2\n")).ok());  // no id/x/y
  EXPECT_FALSE(
      LoadTrajectoryCsv(Write("short.csv", "id,x,y\nt,1\n")).ok());
  EXPECT_FALSE(
      LoadTrajectoryCsv(Write("badnum.csv", "id,x,y\nt,abc,2\n")).ok());
  TrajectoryCsvOptions opt;
  opt.time_column = "nope";
  EXPECT_FALSE(
      LoadTrajectoryCsv(Write("not.csv", "id,x,y\nt,1,2\n"), opt).ok());
}

}  // namespace
}  // namespace mio
