// Round-trip and failure-injection tests for dataset files and the
// external-memory label store.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/labels.hpp"
#include "io/dataset_io.hpp"
#include "io/label_store.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mio_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

void ExpectSameDataset(const ObjectSet& a, const ObjectSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (ObjectId i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].NumPoints(), b[i].NumPoints());
    for (std::size_t j = 0; j < a[i].points.size(); ++j) {
      EXPECT_DOUBLE_EQ(a[i].points[j].x, b[i].points[j].x);
      EXPECT_DOUBLE_EQ(a[i].points[j].y, b[i].points[j].y);
      EXPECT_DOUBLE_EQ(a[i].points[j].z, b[i].points[j].z);
    }
    ASSERT_EQ(a[i].times.size(), b[i].times.size());
    for (std::size_t j = 0; j < a[i].times.size(); ++j) {
      EXPECT_DOUBLE_EQ(a[i].times[j], b[i].times[j]);
    }
  }
}

TEST_F(IoTest, TextRoundTrip) {
  ObjectSet set = testing::MakeRandomObjects(10, 3, 8, 20.0, 1);
  std::string path = PathFor("data.txt");
  ASSERT_TRUE(SaveDatasetText(set, path).ok());
  Result<ObjectSet> loaded = LoadDatasetText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDataset(set, loaded.value());
}

TEST_F(IoTest, TextRoundTripWithTimes) {
  ObjectSet set = testing::MakeRandomObjects(5, 3, 5, 20.0, 2, 5.0, true);
  std::string path = PathFor("data_t.txt");
  ASSERT_TRUE(SaveDatasetText(set, path).ok());
  Result<ObjectSet> loaded = LoadDatasetText(path);
  ASSERT_TRUE(loaded.ok());
  ExpectSameDataset(set, loaded.value());
}

TEST_F(IoTest, BinaryRoundTrip) {
  ObjectSet set = testing::MakeRandomObjects(20, 2, 10, 30.0, 3, 5.0, true);
  std::string path = PathFor("data.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, path).ok());
  Result<ObjectSet> loaded = LoadDatasetBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDataset(set, loaded.value());
}

TEST_F(IoTest, LoadMissingFileReportsIOError) {
  EXPECT_FALSE(LoadDatasetText(PathFor("absent.txt")).ok());
  EXPECT_FALSE(LoadDatasetBinary(PathFor("absent.bin")).ok());
}

TEST_F(IoTest, BinaryCorruptionDetected) {
  ObjectSet set = testing::MakeRandomObjects(5, 4, 4, 20.0, 4);
  std::string path = PathFor("corrupt.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, path).ok());
  // Flip one byte in the middle of the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(60);
    char byte = 0x5A;
    f.write(&byte, 1);
  }
  Result<ObjectSet> loaded = LoadDatasetBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, TextBadHeaderDetected) {
  std::string path = PathFor("bad.txt");
  std::ofstream(path) << "not-a-dataset at all\n";
  Result<ObjectSet> loaded = LoadDatasetText(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, TextTruncationDetected) {
  std::string path = PathFor("trunc.txt");
  std::ofstream(path) << "mio-dataset v1 2 0\nobject 3\n1 2 3\n";
  EXPECT_FALSE(LoadDatasetText(path).ok());
}

// --- label store -----------------------------------------------------------

TEST_F(IoTest, LabelStoreRoundTrip) {
  ObjectSet set = testing::MakeRandomObjects(8, 3, 6, 20.0, 5);
  LabelSet labels = LabelSet::MakeAllOnes(set);
  labels.labels[2][1] = label::kMap;          // some pruning happened
  labels.labels[5][0] &= ~label::kVerify;

  LabelStore store(PathFor("labels"));
  EXPECT_FALSE(store.Has(5));
  ASSERT_TRUE(store.Save(5, labels).ok());
  EXPECT_TRUE(store.Has(5));

  Result<LabelSet> loaded = store.Load(5, set);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().labels, labels.labels);
}

TEST_F(IoTest, LabelStoreShapeMismatchRejected) {
  ObjectSet set = testing::MakeRandomObjects(8, 3, 6, 20.0, 6);
  LabelSet labels = LabelSet::MakeAllOnes(set);
  LabelStore store(PathFor("labels2"));
  ASSERT_TRUE(store.Save(7, labels).ok());

  ObjectSet other = testing::MakeRandomObjects(9, 3, 6, 20.0, 7);
  Result<LabelSet> loaded = store.Load(7, other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, LabelStoreCorruptionDetected) {
  ObjectSet set = testing::MakeRandomObjects(4, 5, 5, 20.0, 8);
  LabelSet labels = LabelSet::MakeAllOnes(set);
  LabelStore store(PathFor("labels3"));
  ASSERT_TRUE(store.Save(3, labels).ok());
  {
    // Flip (not overwrite) a payload byte so the change is guaranteed to
    // differ from the original regardless of file layout.
    std::fstream f(store.PathFor(3),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(40);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(40);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(store.Load(3, set).ok());
}

TEST_F(IoTest, LabelStoreClearRemovesFiles) {
  ObjectSet set = testing::MakeRandomObjects(3, 2, 2, 10.0, 9);
  LabelStore store(PathFor("labels4"));
  ASSERT_TRUE(store.Save(4, LabelSet::MakeAllOnes(set)).ok());
  ASSERT_TRUE(store.Save(8, LabelSet::MakeAllOnes(set)).ok());
  store.Clear();
  EXPECT_FALSE(store.Has(4));
  EXPECT_FALSE(store.Has(8));
}

TEST_F(IoTest, LabelStoreKeysAreIndependent) {
  ObjectSet set = testing::MakeRandomObjects(3, 2, 2, 10.0, 10);
  LabelSet l4 = LabelSet::MakeAllOnes(set);
  LabelSet l5 = LabelSet::MakeAllOnes(set);
  l5.labels[0][0] = 0;
  LabelStore store(PathFor("labels5"));
  ASSERT_TRUE(store.Save(4, l4).ok());
  ASSERT_TRUE(store.Save(5, l5).ok());
  EXPECT_EQ(store.Load(4, set).value().labels, l4.labels);
  EXPECT_EQ(store.Load(5, set).value().labels, l5.labels);
}

TEST(LabelSetTest, Counters) {
  ObjectSet set;
  set.Add(Object{{{0, 0, 0}, {1, 1, 1}}, {}});
  LabelSet labels = LabelSet::MakeAllOnes(set);
  EXPECT_EQ(labels.CountMapPruned(), 0u);
  EXPECT_EQ(labels.CountAnyPruned(), 0u);
  labels.labels[0][0] &= ~label::kMap;
  labels.labels[0][1] &= ~label::kVerify;
  EXPECT_EQ(labels.CountMapPruned(), 1u);
  EXPECT_EQ(labels.CountAnyPruned(), 2u);
  EXPECT_GT(labels.MemoryUsageBytes(), 0u);
}

TEST(LabelSetTest, EmptySetReturnsAllOnes) {
  LabelSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Get(3, 7), label::kAll);
}

}  // namespace
}  // namespace mio
