// Differential tests of the Roaring codec against PlainBitset, mirroring
// the EWAH suite (the two codecs must agree with the reference on every
// operation) plus Roaring-specific container-boundary cases.
#include "bitset/roaring.hpp"

#include <gtest/gtest.h>

#include "bitset/plain_bitset.hpp"
#include "common/random.hpp"

namespace mio {
namespace {

TEST(RoaringTest, StartsEmpty) {
  Roaring r;
  EXPECT_EQ(r.Count(), 0u);
  EXPECT_TRUE(r.Empty());
  EXPECT_FALSE(r.Test(0));
  EXPECT_EQ(r.NumContainers(), 0u);
}

TEST(RoaringTest, SetTestAnyOrder) {
  Roaring r;
  // Random order — the capability EWAH lacks.
  for (std::size_t i : {70000u, 5u, 65535u, 65536u, 5u, 131072u, 1u}) {
    r.Set(i);
  }
  EXPECT_EQ(r.Count(), 6u);
  EXPECT_TRUE(r.Test(5));
  EXPECT_TRUE(r.Test(65535));
  EXPECT_TRUE(r.Test(65536));
  EXPECT_TRUE(r.Test(70000));
  EXPECT_TRUE(r.Test(131072));
  EXPECT_FALSE(r.Test(6));
  EXPECT_FALSE(r.Test(65537));
  EXPECT_EQ(r.NumContainers(), 3u);  // chunks 0, 1, 2
}

TEST(RoaringTest, ArrayUpgradesToBitmapAtThreshold) {
  Roaring r;
  for (std::size_t i = 0; i < 5000; ++i) r.Set(i * 13 % 65536);
  // 5000 > 4096 distinct values forces the bitmap form; correctness holds.
  EXPECT_EQ(r.NumContainers(), 1u);
  EXPECT_EQ(r.Count(), 5000u);
  EXPECT_TRUE(r.Test(13));
  EXPECT_FALSE(r.Test(2));  // 2 is not a multiple of 13 mod 65536 hit
}

TEST(RoaringTest, PlainRoundTrip) {
  Pcg32 rng(4);
  PlainBitset plain;
  for (int i = 0; i < 3000; ++i) plain.Set(rng.NextBounded(300000));
  Roaring r = Roaring::FromPlain(plain);
  EXPECT_EQ(r.Count(), plain.Count());
  EXPECT_TRUE(r.ToPlain() == plain);
}

TEST(RoaringTest, ForEachSetBitAscending) {
  Roaring r;
  std::vector<std::size_t> idx = {200000, 3, 65536, 70000, 64};
  for (std::size_t i : idx) r.Set(i);
  std::vector<std::size_t> got;
  r.ForEachSetBit([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<std::size_t>{3, 64, 65536, 70000, 200000}));
}

struct RoaringOpCase {
  std::uint64_t seed;
  double density_a;
  double density_b;
  std::size_t universe;
};

class RoaringOpsTest : public ::testing::TestWithParam<RoaringOpCase> {};

TEST_P(RoaringOpsTest, MatchesPlainBitsetSemantics) {
  const RoaringOpCase& c = GetParam();
  Pcg32 rng(c.seed);
  PlainBitset pa, pb;
  Roaring ra, rb;
  for (std::size_t i = 0; i < c.universe; ++i) {
    if (rng.NextDouble() < c.density_a) {
      pa.Set(i);
      ra.Set(i);
    }
    if (rng.NextDouble() < c.density_b) {
      pb.Set(i);
      rb.Set(i);
    }
  }
  ASSERT_TRUE(ra.ToPlain() == pa);
  ASSERT_TRUE(rb.ToPlain() == pb);

  {
    PlainBitset want = pa;
    want.OrWith(pb);
    EXPECT_TRUE(Roaring::Or(ra, rb).ToPlain() == want) << "OR " << c.seed;
  }
  {
    PlainBitset want = pa;
    want.AndWith(pb);
    EXPECT_TRUE(Roaring::And(ra, rb).ToPlain() == want) << "AND " << c.seed;
  }
  {
    PlainBitset want = pa;
    want.AndNotWith(pb);
    EXPECT_TRUE(Roaring::AndNot(ra, rb).ToPlain() == want)
        << "ANDNOT " << c.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, RoaringOpsTest,
    ::testing::Values(
        RoaringOpCase{1, 0.0, 0.0, 1000},
        RoaringOpCase{2, 0.001, 0.001, 400000},  // arrays across chunks
        RoaringOpCase{3, 0.01, 0.4, 150000},     // array vs bitmap mixes
        RoaringOpCase{4, 0.5, 0.5, 100000},      // bitmap-bitmap
        RoaringOpCase{5, 0.95, 0.95, 70000},     // dense
        RoaringOpCase{6, 0.2, 0.0, 80000},       // one side empty
        RoaringOpCase{7, 0.08, 0.06, 65536},     // exactly one chunk
        RoaringOpCase{8, 0.07, 0.07, 65537}));   // chunk boundary + 1

TEST(RoaringOpsTest, AndDropsEmptyContainers) {
  Roaring a, b;
  a.Set(10);
  a.Set(70000);
  b.Set(11);
  b.Set(70000);
  Roaring c = Roaring::And(a, b);
  EXPECT_EQ(c.Count(), 1u);
  EXPECT_EQ(c.NumContainers(), 1u);  // chunk 0 intersection empty: dropped
}

TEST(RoaringOpsTest, CompressionOnSparseData) {
  Roaring sparse;
  sparse.Set(0);
  sparse.Set(1u << 20);
  // Two tiny array containers instead of 128 KiB of words.
  EXPECT_LT(sparse.CompressedBytes(), 64u);
}

TEST(RoaringOpsTest, BitmapDowngradesAfterAnd) {
  Roaring a, b;
  for (std::size_t i = 0; i < 10000; ++i) a.Set(i);
  for (std::size_t i = 9990; i < 20000; ++i) b.Set(i);
  Roaring c = Roaring::And(a, b);  // 10 elements: must be array form again
  EXPECT_EQ(c.Count(), 10u);
  EXPECT_LT(c.CompressedBytes(), 200u);
}

}  // namespace
}  // namespace mio
