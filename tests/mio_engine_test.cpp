// End-to-end engine tests: BIGrid (all modes) must agree with the NL
// oracle on the winner's score, and the top-k variant with the oracle's
// full ranking.
#include "core/mio_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/query_result.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

struct EngineCase {
  std::size_t n;
  std::size_t m_min, m_max;
  double domain;
  double cluster_sigma;
  double r;
  std::uint64_t seed;
};

class EngineOracleTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  ObjectSet MakeSet() const {
    const EngineCase& c = GetParam();
    return testing::MakeRandomObjects(c.n, c.m_min, c.m_max, c.domain, c.seed,
                                      c.cluster_sigma);
  }
};

TEST_P(EngineOracleTest, SerialMatchesOracle) {
  const EngineCase& c = GetParam();
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);
  std::uint32_t best = testing::MaxScore(exact);

  MioEngine engine(set);
  QueryResult res = engine.Query(c.r);
  ASSERT_FALSE(res.topk.empty());
  EXPECT_EQ(res.best().score, best);
  EXPECT_EQ(exact[res.best().id], best);  // the returned id really scores best
  EXPECT_GT(res.stats.total_seconds, 0.0);
}

TEST_P(EngineOracleTest, TopKMatchesOracleRanking) {
  const EngineCase& c = GetParam();
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);

  for (std::size_t k : {2u, 5u, 10u}) {
    if (k > set.size()) continue;
    QueryOptions opt;
    opt.k = k;
    MioEngine engine(set);
    QueryResult res = engine.Query(c.r, opt);
    ASSERT_EQ(res.topk.size(), k);

    std::vector<ScoredObject> want = TopKFromScores(exact, k);
    for (std::size_t idx = 0; idx < k; ++idx) {
      // Scores must match position-wise (ids may differ on ties).
      EXPECT_EQ(res.topk[idx].score, want[idx].score)
          << "k=" << k << " pos=" << idx;
      // Each returned id's true score must equal its reported score.
      EXPECT_EQ(exact[res.topk[idx].id], res.topk[idx].score);
    }
    // Descending order.
    for (std::size_t idx = 1; idx < k; ++idx) {
      EXPECT_GE(res.topk[idx - 1].score, res.topk[idx].score);
    }
  }
}

TEST_P(EngineOracleTest, LabelRunsMatchOracleAndFirstRun) {
  const EngineCase& c = GetParam();
  ObjectSet set = MakeSet();
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);
  std::uint32_t best = testing::MaxScore(exact);

  MioEngine engine(set);
  QueryOptions opt;
  opt.record_labels = true;
  opt.use_labels = true;

  QueryResult first = engine.Query(c.r, opt);   // records labels
  ASSERT_TRUE(engine.HasLabelsFor(c.r));
  QueryResult second = engine.Query(c.r, opt);  // uses labels
  QueryResult third = engine.Query(c.r, opt);   // again (stable)

  EXPECT_EQ(first.best().score, best);
  EXPECT_EQ(second.best().score, best);
  EXPECT_EQ(third.best().score, best);
  EXPECT_EQ(exact[second.best().id], best);
}

TEST_P(EngineOracleTest, LabelsTransferAcrossSameCeilRadii) {
  const EngineCase& c = GetParam();
  ObjectSet set = MakeSet();
  double r1 = c.r;                 // records labels for ceil(r)
  double r2 = c.r - 0.4;           // same ceiling (r in the sweep is >= 1)
  if (std::ceil(r1) != std::ceil(r2) || r2 <= 0) GTEST_SKIP();

  MioEngine engine(set);
  QueryOptions opt;
  opt.record_labels = true;
  opt.use_labels = true;
  engine.Query(r1, opt);
  ASSERT_TRUE(engine.HasLabelsFor(r2));

  QueryResult res = engine.Query(r2, opt);
  std::vector<std::uint32_t> exact = testing::OracleScores(set, r2);
  EXPECT_EQ(res.best().score, testing::MaxScore(exact));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineOracleTest,
    ::testing::Values(
        EngineCase{30, 5, 15, 25.0, 5.0, 4.0, 1},
        EngineCase{30, 5, 15, 25.0, 5.0, 6.5, 2},
        EngineCase{30, 5, 15, 25.0, 5.0, 10.0, 3},
        EngineCase{60, 2, 6, 40.0, 3.0, 3.0, 4},
        EngineCase{15, 30, 50, 15.0, 7.0, 2.0, 5},   // dense
        EngineCase{80, 3, 8, 400.0, 2.0, 5.0, 6},    // sparse
        EngineCase{40, 4, 12, 30.0, 6.0, 1.3, 7}));  // ceil boundary

TEST(EngineEdgeTest, EmptyDataset) {
  ObjectSet empty;
  MioEngine engine(empty);
  QueryResult res = engine.Query(5.0);
  EXPECT_TRUE(res.topk.empty());
}

TEST(EngineEdgeTest, InvalidRadius) {
  ObjectSet set = testing::MakeRandomObjects(5, 2, 4, 10.0, 1);
  MioEngine engine(set);
  EXPECT_TRUE(engine.Query(0.0).topk.empty());
  EXPECT_TRUE(engine.Query(-3.0).topk.empty());
}

TEST(EngineEdgeTest, SingleObjectScoresZero) {
  ObjectSet set = testing::MakeRandomObjects(1, 10, 10, 10.0, 2);
  MioEngine engine(set);
  QueryResult res = engine.Query(5.0);
  ASSERT_EQ(res.topk.size(), 1u);
  EXPECT_EQ(res.best().id, 0u);
  EXPECT_EQ(res.best().score, 0u);
}

TEST(EngineEdgeTest, NoInteractionsAnywhere) {
  // Objects spaced far beyond r: every score is 0; any id is acceptable.
  ObjectSet set;
  for (int i = 0; i < 10; ++i) {
    set.Add(Object{{{i * 1000.0, 0, 0}}, {}});
  }
  MioEngine engine(set);
  QueryResult res = engine.Query(5.0);
  ASSERT_FALSE(res.topk.empty());
  EXPECT_EQ(res.best().score, 0u);
}

TEST(EngineEdgeTest, EveryoneInteractsWithEveryone) {
  ObjectSet set = testing::MakeRandomObjects(20, 3, 5, 2.0, 3, 0.5);
  MioEngine engine(set);
  QueryResult res = engine.Query(50.0);
  EXPECT_EQ(res.best().score, 19u);
}

TEST(EngineEdgeTest, KLargerThanNClamps) {
  ObjectSet set = testing::MakeRandomObjects(5, 2, 4, 10.0, 4);
  QueryOptions opt;
  opt.k = 100;
  MioEngine engine(set);
  EXPECT_EQ(engine.Query(4.0, opt).topk.size(), 5u);
}

TEST(EngineEdgeTest, IdenticalObjectsTie) {
  Object proto{{{1, 1, 1}, {2, 2, 2}}, {}};
  ObjectSet set;
  set.Add(proto);
  set.Add(proto);
  set.Add(proto);
  MioEngine engine(set);
  QueryResult res = engine.Query(1.0);
  EXPECT_EQ(res.best().score, 2u);
}

TEST(EngineStatsTest, StatsAreConsistent) {
  ObjectSet set = testing::MakeRandomObjects(40, 5, 10, 25.0, 5);
  MioEngine engine(set);
  QueryOptions opt;
  opt.collect_compression_stats = true;
  QueryResult res = engine.Query(5.0, opt);
  const QueryStats& st = res.stats;
  EXPECT_GT(st.cells_small, 0u);
  EXPECT_GT(st.cells_large, 0u);
  EXPECT_GE(st.num_candidates, st.num_verified);
  EXPECT_GE(st.num_candidates, 1u);
  EXPECT_GT(st.index_memory_bytes, 0u);
  EXPECT_GT(st.compression.num_bitsets, 0u);
  EXPECT_GE(st.phases.Total(), 0.0);
  EXPECT_LE(st.phases.Total(), st.total_seconds + 1e-6);
}

TEST(EngineStatsTest, VerificationIsPrunedVsAllObjects) {
  // On clustered data the candidate set should be far smaller than n, and
  // verification should stop well before exhausting the queue.
  ObjectSet set = testing::MakeRandomObjects(200, 3, 6, 150.0, 6, 2.0);
  MioEngine engine(set);
  QueryResult res = engine.Query(4.0);
  EXPECT_LT(res.stats.num_verified, set.size());
}

TEST(EngineDeterminismTest, RepeatedQueriesIdentical) {
  ObjectSet set = testing::MakeRandomObjects(50, 4, 10, 30.0, 7);
  MioEngine engine(set);
  QueryResult a = engine.Query(5.0);
  QueryResult b = engine.Query(5.0);
  EXPECT_EQ(a.best().id, b.best().id);
  EXPECT_EQ(a.best().score, b.best().score);
}

}  // namespace
}  // namespace mio
