// Cross-implementation agreement: NL, NL-kd, SG and the theoretical
// algorithm must produce identical exact score vectors on any input.
#include <gtest/gtest.h>

#include "baseline/nested_loop.hpp"
#include "baseline/nl_kdtree.hpp"
#include "baseline/simple_grid.hpp"
#include "baseline/theoretical.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

struct AgreementCase {
  std::size_t n;
  std::size_t m_min, m_max;
  double domain;
  double r;
  std::uint64_t seed;
};

class BaselineAgreementTest : public ::testing::TestWithParam<AgreementCase> {
};

TEST_P(BaselineAgreementTest, AllBaselinesAgree) {
  const AgreementCase& c = GetParam();
  ObjectSet set =
      testing::MakeRandomObjects(c.n, c.m_min, c.m_max, c.domain, c.seed);
  std::vector<std::uint32_t> nl = NestedLoopScores(set, c.r);
  EXPECT_EQ(NlKdScores(set, c.r), nl);
  EXPECT_EQ(SimpleGridScores(set, c.r), nl);
  TheoreticalIndex theo(set);
  EXPECT_EQ(theo.Scores(c.r), nl);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineAgreementTest,
    ::testing::Values(
        AgreementCase{30, 5, 15, 30.0, 4.0, 1},
        AgreementCase{30, 5, 15, 30.0, 10.0, 1},   // same data, larger r
        AgreementCase{50, 1, 3, 20.0, 2.0, 2},     // tiny objects
        AgreementCase{10, 40, 60, 15.0, 0.5, 3},   // dense, small r
        AgreementCase{40, 5, 10, 500.0, 4.0, 4},   // sparse: scores ~0
        AgreementCase{25, 5, 20, 25.0, 7.5, 5},    // fractional r
        AgreementCase{60, 2, 8, 40.0, 6.0, 6}));

TEST(NestedLoopTest, PairPredicateEarlyBreak) {
  Object a{{{0, 0, 0}, {100, 0, 0}}, {}};
  Object b{{{0.5, 0, 0}, {200, 0, 0}}, {}};
  std::size_t comps = 0;
  EXPECT_TRUE(ObjectsInteract(a, b, 1.0, &comps));
  EXPECT_EQ(comps, 1u);  // first pair hits; no further distances
  comps = 0;
  EXPECT_FALSE(ObjectsInteract(a, b, 0.1, &comps));
  EXPECT_EQ(comps, 4u);  // exhaustive when no pair is within r
}

TEST(NestedLoopTest, ScoresAreSymmetricCounts) {
  // Three collinear objects, spaced 5 apart: at r=5 each end interacts
  // with the middle, the middle with both.
  ObjectSet set;
  set.Add(Object{{{0, 0, 0}}, {}});
  set.Add(Object{{{5, 0, 0}}, {}});
  set.Add(Object{{{10, 0, 0}}, {}});
  std::vector<std::uint32_t> tau = NestedLoopScores(set, 5.0);
  EXPECT_EQ(tau, (std::vector<std::uint32_t>{1, 2, 1}));
  EXPECT_EQ(NestedLoopQuery(set, 5.0).best().id, 1u);
  EXPECT_EQ(NestedLoopQuery(set, 5.0).best().score, 2u);
}

TEST(NestedLoopTest, ParallelMatchesSerial) {
  ObjectSet set = testing::MakeRandomObjects(40, 5, 15, 30.0, 8);
  std::vector<std::uint32_t> serial = NestedLoopScores(set, 5.0, 1);
  for (int t : {2, 3, 4}) {
    EXPECT_EQ(NestedLoopScores(set, 5.0, t), serial) << "threads=" << t;
  }
}

TEST(SimpleGridTest, ParallelMatchesSerial) {
  ObjectSet set = testing::MakeRandomObjects(40, 5, 15, 30.0, 9);
  std::vector<std::uint32_t> serial = SimpleGridScores(set, 5.0, 1);
  for (int t : {2, 4}) {
    EXPECT_EQ(SimpleGridScores(set, 5.0, t), serial) << "threads=" << t;
  }
}

TEST(SimpleGridTest, ReportsGridMemory) {
  ObjectSet set = testing::MakeRandomObjects(20, 5, 10, 30.0, 10);
  std::size_t bytes = 0;
  SimpleGridScores(set, 5.0, 1, &bytes);
  EXPECT_GT(bytes, 0u);
}

TEST(TheoreticalTest, AnswersAnyRadiusAfterOnePreprocessing) {
  ObjectSet set = testing::MakeRandomObjects(25, 5, 10, 25.0, 11);
  TheoreticalIndex theo(set);
  EXPECT_GT(theo.preprocessing_seconds(), 0.0);
  for (double r : {1.0, 3.0, 5.0, 8.0, 20.0}) {
    EXPECT_EQ(theo.Scores(r), NestedLoopScores(set, r)) << "r=" << r;
  }
}

TEST(TheoreticalTest, MemoryIsQuadratic) {
  ObjectSet small = testing::MakeRandomObjects(20, 3, 3, 30.0, 12);
  ObjectSet large = testing::MakeRandomObjects(80, 3, 3, 30.0, 12);
  TheoreticalIndex ts(small), tl(large);
  // 4x the objects -> ~16x the array bytes.
  EXPECT_GT(tl.MemoryUsageBytes(), 10 * ts.MemoryUsageBytes());
}

TEST(TopKFromScoresTest, OrderingAndTies) {
  std::vector<std::uint32_t> scores = {5, 9, 9, 1, 7};
  auto top3 = TopKFromScores(scores, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].id, 1u);  // tie with 2 broken by lower id
  EXPECT_EQ(top3[1].id, 2u);
  EXPECT_EQ(top3[2].id, 4u);
  auto all = TopKFromScores(scores, 100);  // k > n clamps
  EXPECT_EQ(all.size(), 5u);
  auto top1 = TopKFromScores(scores, 0);  // k = 0 behaves as 1
  EXPECT_EQ(top1.size(), 1u);
}

}  // namespace
}  // namespace mio
