// R-tree substrate and the RT (MBR filter) baseline: structural tests,
// differential agreement with NL, and the dead-space property the paper
// uses to dismiss MBR indexing for point-set objects.
#include "rtree/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/rtree_mbr.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

std::vector<RTree::Entry> BoxesFor(const ObjectSet& set) {
  std::vector<RTree::Entry> entries;
  for (ObjectId i = 0; i < set.size(); ++i) {
    Aabb box;
    for (const Point& p : set[i].points) box.Extend(p);
    entries.push_back(RTree::Entry{box, i});
  }
  return entries;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree({});
  EXPECT_TRUE(tree.empty());
  int visits = 0;
  Aabb probe;
  probe.Extend(Point{0, 0, 0});
  tree.ForEachWithin(probe, 100.0, [&](std::uint32_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(RTreeTest, RangeProbeMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ObjectSet set = testing::MakeRandomObjects(200, 2, 6, 80.0, seed, 3.0);
    std::vector<RTree::Entry> entries = BoxesFor(set);
    RTree tree(entries, /*fanout=*/8);
    EXPECT_EQ(tree.size(), entries.size());

    Pcg32 rng(seed + 100);
    for (int q = 0; q < 20; ++q) {
      const RTree::Entry& probe = entries[rng.NextBounded(
          static_cast<std::uint32_t>(entries.size()))];
      double r = rng.NextDouble(0.5, 15.0);
      std::set<std::uint32_t> got;
      tree.ForEachWithin(probe.box, r, [&](std::uint32_t id) {
        got.insert(id);
        return true;
      });
      std::set<std::uint32_t> want;
      for (const RTree::Entry& e : entries) {
        if (e.box.MinSquaredDistanceTo(probe.box) <= r * r) want.insert(e.id);
      }
      EXPECT_EQ(got, want) << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(RTreeTest, EarlyStopHonored) {
  ObjectSet set = testing::MakeRandomObjects(100, 2, 4, 10.0, 7, 2.0);
  RTree tree(BoxesFor(set));
  int visits = 0;
  tree.ForEachWithin(tree.Bounds(), 1e9, [&](std::uint32_t) {
    ++visits;
    return visits < 5;  // stop after 5
  });
  EXPECT_EQ(visits, 5);
}

TEST(RTreeTest, BoundsCoverAllEntries) {
  ObjectSet set = testing::MakeRandomObjects(50, 2, 6, 60.0, 8);
  std::vector<RTree::Entry> entries = BoxesFor(set);
  RTree tree(entries);
  for (const RTree::Entry& e : entries) {
    EXPECT_DOUBLE_EQ(tree.Bounds().MinSquaredDistanceTo(e.box), 0.0);
  }
  EXPECT_GT(tree.MemoryUsageBytes(), 0u);
}

TEST(RtreeMbrTest, ElongatedObjectsHaveMostlyEmptyMbrs) {
  // Long thin diagonal trajectories: each MBR is huge vs its content —
  // the paper's "uselessly large rectangles with large empty spaces".
  ObjectSet diagonal;
  Pcg32 rng(5);
  for (int i = 0; i < 30; ++i) {
    Object o;
    double x0 = rng.NextDouble(0, 100), y0 = rng.NextDouble(0, 100);
    for (int j = 0; j < 40; ++j) {
      o.points.push_back(Point{x0 + j * 2.0, y0 + j * 2.0, j * 2.0});
    }
    diagonal.Add(std::move(o));
  }
  EXPECT_GT(MbrEmptinessFraction(diagonal, 4.0), 0.9);

  // Compact blobs fill their MBRs far better.
  ObjectSet blobs = testing::MakeRandomObjects(30, 40, 40, 50.0, 6, 2.0);
  EXPECT_LT(MbrEmptinessFraction(blobs, 4.0),
            MbrEmptinessFraction(diagonal, 4.0));
}

struct RtCase {
  std::size_t n;
  double r;
  std::uint64_t seed;
};

class RtreeMbrTest : public ::testing::TestWithParam<RtCase> {};

TEST_P(RtreeMbrTest, ScoresMatchNestedLoop) {
  const RtCase& c = GetParam();
  ObjectSet set = testing::MakeRandomObjects(c.n, 4, 10, 30.0, c.seed, 5.0);
  EXPECT_EQ(RtreeMbrScores(set, c.r), NestedLoopScores(set, c.r));
  EXPECT_EQ(RtreeMbrScores(set, c.r, /*threads=*/3),
            NestedLoopScores(set, c.r));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RtreeMbrTest,
                         ::testing::Values(RtCase{30, 4.0, 1},
                                           RtCase{30, 10.0, 2},
                                           RtCase{60, 2.0, 3},
                                           RtCase{20, 0.5, 4}));

TEST(RtreeMbrTest, FilterStatsExposeUselessness) {
  // Crossing diagonal trajectories through a shared region: every MBR
  // covers most of the domain, so the filter passes nearly every pair
  // although few pairs actually interact at small r.
  ObjectSet set;
  Pcg32 rng(9);
  for (int i = 0; i < 40; ++i) {
    Object o;
    // Random rising/falling diagonal across a shared domain: every MBR
    // spans most of the space, but two trajectories meet (if at all) at
    // a single crossing where their z phases rarely coincide.
    double dir = rng.NextDouble() < 0.5 ? 1.0 : -1.0;
    double y0 = rng.NextDouble(0.0, 300.0);
    for (int j = 0; j < 30; ++j) {
      o.points.push_back(Point{j * 10.0, y0 + dir * j * 10.0, j * 3.0});
    }
    set.Add(std::move(o));
  }
  MbrFilterStats stats;
  RtreeMbrScores(set, 0.5, 1, &stats);
  EXPECT_EQ(stats.total_pairs, 40u * 39u / 2);
  EXPECT_GT(stats.PassRate(), 0.5);  // filter passes most pairs
  EXPECT_LT(stats.interacting_pairs, stats.candidate_pairs / 10);
}

TEST(RtreeMbrTest, QueryWinnerAgrees) {
  ObjectSet set = testing::MakeRandomObjects(40, 4, 8, 25.0, 10);
  std::vector<std::uint32_t> exact = testing::OracleScores(set, 5.0);
  QueryResult res = RtreeMbrQuery(set, 5.0);
  EXPECT_EQ(res.best().score, testing::MaxScore(exact));
}

}  // namespace
}  // namespace mio
