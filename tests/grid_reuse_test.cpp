// Large-grid reuse across queries sharing ceil(r): answers must be
// identical with and without the cache, in every mode combination.
#include <gtest/gtest.h>

#include "core/mio_engine.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

class GridReuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_ = testing::MakeRandomObjects(50, 4, 10, 30.0, 11, 5.0);
  }
  std::uint32_t Oracle(double r) {
    return testing::MaxScore(testing::OracleScores(set_, r));
  }
  ObjectSet set_;
};

TEST_F(GridReuseTest, SecondQuerySameCeilingReusesAndAgrees) {
  MioEngine engine(set_);
  QueryOptions opt;
  opt.reuse_grid = true;
  QueryResult first = engine.Query(4.0, opt);
  EXPECT_FALSE(first.stats.reused_grid);  // nothing cached yet
  QueryResult second = engine.Query(4.0, opt);
  EXPECT_TRUE(second.stats.reused_grid);
  QueryResult third = engine.Query(3.2, opt);  // ceil(3.2) = 4: same grid
  EXPECT_TRUE(third.stats.reused_grid);

  EXPECT_EQ(first.best().score, Oracle(4.0));
  EXPECT_EQ(second.best().score, Oracle(4.0));
  EXPECT_EQ(third.best().score, Oracle(3.2));
}

TEST_F(GridReuseTest, DifferentCeilingBuildsFresh) {
  MioEngine engine(set_);
  QueryOptions opt;
  opt.reuse_grid = true;
  engine.Query(4.0, opt);
  QueryResult res = engine.Query(6.0, opt);  // ceil 6 != 4
  EXPECT_FALSE(res.stats.reused_grid);
  EXPECT_EQ(res.best().score, Oracle(6.0));
  // And the 6-grid is now cached too.
  EXPECT_TRUE(engine.Query(5.5, opt).stats.reused_grid);
}

TEST_F(GridReuseTest, ReuseMatchesNonReuseExactly) {
  for (double r : {2.5, 4.0, 7.3}) {
    MioEngine plain_engine(set_);
    QueryResult plain = plain_engine.Query(r);

    MioEngine reuse_engine(set_);
    QueryOptions opt;
    opt.reuse_grid = true;
    reuse_engine.Query(r, opt);                       // warm the cache
    QueryResult reused = reuse_engine.Query(r, opt);  // cached run
    ASSERT_TRUE(reused.stats.reused_grid);
    EXPECT_EQ(reused.best().score, plain.best().score) << r;
    EXPECT_EQ(reused.best().id, plain.best().id) << r;
  }
}

TEST_F(GridReuseTest, ReuseWithLabels) {
  std::uint32_t best = Oracle(4.0);
  MioEngine engine(set_);
  QueryOptions opt;
  opt.reuse_grid = true;
  opt.use_labels = true;
  opt.record_labels = true;
  EXPECT_EQ(engine.Query(4.0, opt).best().score, best);  // records both
  QueryResult res = engine.Query(4.0, opt);  // labels + cached grid
  EXPECT_TRUE(res.stats.reused_grid);
  EXPECT_EQ(res.best().score, best);
  // A labelled query must never poison the cache with a pruned grid:
  QueryResult clean = engine.Query(4.0, opt);
  EXPECT_EQ(clean.best().score, best);
  EXPECT_GE(clean.stats.cells_large, res.stats.cells_large);
}

TEST_F(GridReuseTest, ReuseAcrossThreadCounts) {
  std::uint32_t best = Oracle(4.0);
  MioEngine engine(set_);
  QueryOptions serial;
  serial.reuse_grid = true;
  engine.Query(4.0, serial);  // cache built by the serial path (1 shard)

  QueryOptions parallel = serial;
  parallel.threads = 4;
  QueryResult res = engine.Query(4.0, parallel);  // reused by 4 threads
  EXPECT_TRUE(res.stats.reused_grid);
  EXPECT_EQ(res.best().score, best);

  // And the other direction: parallel-built cache consumed serially.
  MioEngine engine2(set_);
  engine2.Query(4.0, parallel);
  QueryResult res2 = engine2.Query(4.0, serial);
  EXPECT_TRUE(res2.stats.reused_grid);
  EXPECT_EQ(res2.best().score, best);
}

TEST_F(GridReuseTest, TopKWithReuse) {
  std::vector<std::uint32_t> exact = testing::OracleScores(set_, 5.0);
  std::vector<ScoredObject> want = TopKFromScores(exact, 5);
  MioEngine engine(set_);
  QueryOptions opt;
  opt.reuse_grid = true;
  opt.k = 5;
  engine.Query(5.0, opt);
  QueryResult res = engine.Query(5.0, opt);
  ASSERT_TRUE(res.stats.reused_grid);
  ASSERT_EQ(res.topk.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(res.topk[i].score, want[i].score);
  }
}

TEST_F(GridReuseTest, ClearGridCacheForcesRebuild) {
  MioEngine engine(set_);
  QueryOptions opt;
  opt.reuse_grid = true;
  engine.Query(4.0, opt);
  engine.ClearGridCache();
  EXPECT_FALSE(engine.Query(4.0, opt).stats.reused_grid);
}

TEST_F(GridReuseTest, FineGrainedSweepStaysExact) {
  // The motivating workload: many fine-grained radii under one ceiling.
  MioEngine engine(set_);
  QueryOptions opt;
  opt.reuse_grid = true;
  opt.use_labels = true;
  opt.record_labels = true;
  for (double r : {4.0, 3.9, 3.7, 3.5, 3.3, 3.1}) {
    EXPECT_EQ(engine.Query(r, opt).best().score, Oracle(r)) << r;
  }
}

}  // namespace
}  // namespace mio
