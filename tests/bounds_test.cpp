// The sandwich property: for every object, tau_low <= tau <= tau_upp
// (Lemmas 1 and 2), and the pruning theorem never discards the answer.
#include <gtest/gtest.h>

#include "core/bigrid.hpp"
#include "core/lower_bound.hpp"
#include "core/upper_bound.hpp"
#include "core/verification.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

struct BoundsCase {
  std::size_t n;
  std::size_t m_min, m_max;
  double domain;
  double cluster_sigma;
  double r;
  std::uint64_t seed;
};

class BoundsTest : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(BoundsTest, LowerAndUpperSandwichExactScores) {
  const BoundsCase& c = GetParam();
  ObjectSet set = testing::MakeRandomObjects(c.n, c.m_min, c.m_max, c.domain,
                                             c.seed, c.cluster_sigma);
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);

  BiGrid grid(set, c.r);
  grid.Build();
  LowerBoundResult lb = LowerBounding(grid, false);
  UpperBoundResult ub = UpperBounding(grid, 0, nullptr, nullptr, nullptr);

  for (ObjectId i = 0; i < set.size(); ++i) {
    EXPECT_LE(lb.tau_low[i], exact[i]) << "object " << i << " r=" << c.r;
    EXPECT_GE(ub.tau_upp[i], exact[i]) << "object " << i << " r=" << c.r;
  }
  EXPECT_EQ(lb.tau_low_max,
            *std::max_element(lb.tau_low.begin(), lb.tau_low.end()));
}

TEST_P(BoundsTest, PruningKeepsTheAnswer) {
  const BoundsCase& c = GetParam();
  ObjectSet set = testing::MakeRandomObjects(c.n, c.m_min, c.m_max, c.domain,
                                             c.seed, c.cluster_sigma);
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);
  std::uint32_t best = testing::MaxScore(exact);

  BiGrid grid(set, c.r);
  grid.Build();
  LowerBoundResult lb = LowerBounding(grid, false);
  UpperBoundResult ub =
      UpperBounding(grid, lb.tau_low_max, nullptr, nullptr, nullptr);

  // Theorem 2: every object with the best exact score must survive.
  for (ObjectId i = 0; i < set.size(); ++i) {
    if (exact[i] == best) {
      EXPECT_NE(std::find(ub.candidates.begin(), ub.candidates.end(), i),
                ub.candidates.end())
          << "answer pruned: object " << i;
    }
  }
  // Candidate queue is sorted by descending upper bound.
  for (std::size_t idx = 1; idx < ub.candidates.size(); ++idx) {
    EXPECT_GE(ub.tau_upp[ub.candidates[idx - 1]],
              ub.tau_upp[ub.candidates[idx]]);
  }
}

TEST_P(BoundsTest, ExactScoreMatchesOracleForAllCandidates) {
  const BoundsCase& c = GetParam();
  ObjectSet set = testing::MakeRandomObjects(c.n, c.m_min, c.m_max, c.domain,
                                             c.seed, c.cluster_sigma);
  std::vector<std::uint32_t> exact = testing::OracleScores(set, c.r);

  BiGrid grid(set, c.r);
  grid.Build();
  UpperBoundResult ub = UpperBounding(grid, 0, nullptr, nullptr, nullptr);
  for (ObjectId i = 0; i < set.size(); ++i) {
    EXPECT_EQ(ExactScore(grid, i, nullptr, nullptr, nullptr, nullptr),
              exact[i])
        << "object " << i;
  }
  (void)ub;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundsTest,
    ::testing::Values(
        BoundsCase{25, 5, 15, 25.0, 5.0, 4.0, 1},
        BoundsCase{25, 5, 15, 25.0, 5.0, 7.0, 1},
        BoundsCase{25, 5, 15, 25.0, 5.0, 10.0, 1},
        BoundsCase{40, 2, 6, 30.0, 3.0, 2.5, 2},   // fractional r
        BoundsCase{15, 20, 40, 12.0, 6.0, 1.0, 3}, // dense, small r
        BoundsCase{50, 3, 8, 300.0, 2.0, 5.0, 4},  // sparse
        BoundsCase{30, 4, 10, 18.0, 8.0, 0.7, 5},  // r < 1 (ceil = 1)
        BoundsCase{20, 5, 10, 20.0, 4.0, 6.0, 6}));

TEST(TopKTrackerTest, ThresholdAndReplacement) {
  TopKTracker t(2);
  EXPECT_EQ(t.Threshold(), -1);
  t.Offer(0, 5);
  EXPECT_EQ(t.Threshold(), -1);  // not full yet
  t.Offer(1, 3);
  EXPECT_EQ(t.Threshold(), 3);
  t.Offer(2, 4);  // replaces score-3 entry
  EXPECT_EQ(t.Threshold(), 4);
  t.Offer(3, 1);  // too low: ignored
  auto sorted = t.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].score, 5u);
  EXPECT_EQ(sorted[1].score, 4u);
}

TEST(TopKTrackerTest, TiesKeepIncumbent) {
  TopKTracker t(1);
  t.Offer(7, 5);
  t.Offer(9, 5);  // same score: incumbent stays (arbitrary tie-break)
  EXPECT_EQ(t.Sorted()[0].id, 7u);
}

TEST(SortCandidatesTest, DescendingWithIdTies) {
  std::vector<std::uint32_t> upp = {3, 9, 9, 1};
  std::vector<ObjectId> cand = {0, 1, 2, 3};
  SortCandidates(upp, &cand);
  EXPECT_EQ(cand, (std::vector<ObjectId>{1, 2, 0, 3}));
}

}  // namespace
}  // namespace mio
