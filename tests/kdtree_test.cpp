// kd-tree differential tests against brute force, parameterised over
// dataset shapes (uniform, clustered, collinear — the degenerate cases
// trajectories produce).
#include "kdtree/kdtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/random.hpp"
#include "kdtree/closest_pair.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

std::vector<Point> UniformPoints(std::size_t n, double side,
                                 std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Point> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Point{rng.NextDouble(0, side), rng.NextDouble(0, side),
                        rng.NextDouble(0, side)});
  }
  return pts;
}

std::vector<Point> CollinearPoints(std::size_t n) {
  std::vector<Point> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Point{static_cast<double>(i), 2.0 * i, 0.0});
  }
  return pts;
}

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.ContainsWithin(Point{0, 0, 0}, 100.0));
  EXPECT_TRUE(std::isinf(tree.NearestDistance(Point{0, 0, 0})));
}

TEST(KdTreeTest, SinglePoint) {
  KdTree tree({Point{1, 2, 3}});
  EXPECT_TRUE(tree.ContainsWithin(Point{1, 2, 3}, 0.0));
  EXPECT_TRUE(tree.ContainsWithin(Point{2, 2, 3}, 1.0));
  EXPECT_FALSE(tree.ContainsWithin(Point{3, 2, 3}, 1.0));
  EXPECT_DOUBLE_EQ(tree.NearestDistance(Point{1, 2, 7}), 4.0);
}

struct TreeCase {
  std::size_t n;
  int kind;  // 0 uniform, 1 clustered, 2 collinear
  std::uint64_t seed;
};

class KdTreeParamTest : public ::testing::TestWithParam<TreeCase> {
 protected:
  std::vector<Point> MakePoints() const {
    const TreeCase& c = GetParam();
    switch (c.kind) {
      case 1: {
        ObjectSet set = testing::MakeRandomObjects(5, c.n / 5, c.n / 5, 40.0,
                                                   c.seed, 2.0);
        std::vector<Point> pts;
        for (const Object& o : set.objects()) {
          pts.insert(pts.end(), o.points.begin(), o.points.end());
        }
        return pts;
      }
      case 2:
        return CollinearPoints(c.n);
      default:
        return UniformPoints(c.n, 50.0, c.seed);
    }
  }
};

TEST_P(KdTreeParamTest, NearestMatchesBruteForce) {
  std::vector<Point> pts = MakePoints();
  KdTree tree(pts);
  Pcg32 rng(GetParam().seed + 99);
  for (int q = 0; q < 50; ++q) {
    Point query{rng.NextDouble(-10, 60), rng.NextDouble(-10, 60),
                rng.NextDouble(-10, 60)};
    double want = std::numeric_limits<double>::infinity();
    for (const Point& p : pts) want = std::min(want, Distance(p, query));
    EXPECT_NEAR(tree.NearestDistance(query), want, 1e-9);
  }
}

TEST_P(KdTreeParamTest, ContainsWithinMatchesBruteForce) {
  std::vector<Point> pts = MakePoints();
  KdTree tree(pts);
  Pcg32 rng(GetParam().seed + 7);
  for (int q = 0; q < 50; ++q) {
    Point query{rng.NextDouble(-10, 60), rng.NextDouble(-10, 60),
                rng.NextDouble(-10, 60)};
    double r = rng.NextDouble(0.1, 20.0);
    bool want = false;
    for (const Point& p : pts) {
      if (WithinDistance(p, query, r)) {
        want = true;
        break;
      }
    }
    EXPECT_EQ(tree.ContainsWithin(query, r), want);
  }
}

TEST_P(KdTreeParamTest, CollectWithinMatchesBruteForce) {
  std::vector<Point> pts = MakePoints();
  KdTree tree(pts);
  Pcg32 rng(GetParam().seed + 31);
  for (int q = 0; q < 20; ++q) {
    Point query{rng.NextDouble(0, 50), rng.NextDouble(0, 50),
                rng.NextDouble(0, 50)};
    double r = rng.NextDouble(1.0, 15.0);
    std::vector<std::uint32_t> got;
    tree.CollectWithin(query, r, &got);
    std::sort(got.begin(), got.end());
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (WithinDistance(pts[i], query, r)) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdTreeParamTest,
    ::testing::Values(TreeCase{100, 0, 1}, TreeCase{1000, 0, 2},
                      TreeCase{500, 1, 3}, TreeCase{100, 2, 4},
                      TreeCase{17, 0, 5},   // smaller than one leaf
                      TreeCase{16, 0, 6},   // exactly one leaf
                      TreeCase{2000, 1, 7}));

TEST(ClosestPairTest, MatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ObjectSet set = testing::MakeRandomObjects(2, 50, 120, 30.0, seed, 4.0);
    const Object& a = set[0];
    const Object& b = set[1];
    KdTree tree_b(b.points);
    double got = MinDistanceBetween(a, tree_b);
    double want = MinDistanceBruteForce(a, b);
    EXPECT_NEAR(got, want, 1e-9) << "seed=" << seed;
  }
}

TEST(ClosestPairTest, IdenticalObjectsHaveZeroDistance) {
  ObjectSet set = testing::MakeRandomObjects(1, 30, 30, 10.0, 9);
  KdTree tree(set[0].points);
  EXPECT_DOUBLE_EQ(MinDistanceBetween(set[0], tree), 0.0);
}

TEST(KdTreeTest, MemoryAccountingIsPositive) {
  KdTree tree(UniformPoints(500, 10.0, 3));
  EXPECT_GT(tree.MemoryUsageBytes(), 500 * sizeof(Point));
}

}  // namespace
}  // namespace mio
