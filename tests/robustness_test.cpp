// Robustness suite (docs/ROBUSTNESS.md): the fault-injection framework,
// the query guardrails (deadline / cancel / memory budget with the
// degradation ladder), hardened binary IO under a full corruption matrix,
// and corrupt-label-file recovery.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/guardrails.hpp"
#include "common/status.hpp"
#include "core/bigrid.hpp"
#include "core/lower_bound.hpp"
#include "core/mio_engine.hpp"
#include "core/upper_bound.hpp"
#include "core/verification.hpp"
#include "io/dataset_io.hpp"
#include "io/importers.hpp"
#include "io/label_store.hpp"
#include "obs/metrics.hpp"
#include "test_utils.hpp"

namespace mio {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: per-test temp dir + fault/metric hygiene.
// ---------------------------------------------------------------------------

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Reset();
    obs::SetMetricsEnabled(true);
    obs::ResetMetrics();
    dir_ = std::filesystem::temp_directory_path() /
           ("mio_robustness_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const char* data, std::size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data, static_cast<std::streamsize>(len));
}

/// Brute-force exact tau of one object: the count of other objects with
/// any point pair within r. Cheap enough for spot-checking one id even on
/// datasets too large for a full oracle sweep.
std::uint32_t BruteScoreOf(const ObjectSet& set, ObjectId id, double r) {
  const double r2 = r * r;
  std::uint32_t score = 0;
  for (ObjectId j = 0; j < set.size(); ++j) {
    if (j == id) continue;
    bool hit = false;
    for (const Point& p : set[id].points) {
      for (const Point& q : set[j].points) {
        const double dx = p.x - q.x, dy = p.y - q.y, dz = p.z - q.z;
        if (dx * dx + dy * dy + dz * dz <= r2) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) ++score;
  }
  return score;
}

// ---------------------------------------------------------------------------
// Fault-injection framework
// ---------------------------------------------------------------------------

class FaultInjectionTest : public RobustnessTest {
 protected:
  void SetUp() override {
    RobustnessTest::SetUp();
    if (!fault::kCompiledIn) {
      GTEST_SKIP() << "fault injection compiled out (MIO_FAULT_INJECTION=OFF)";
    }
  }
};

TEST_F(FaultInjectionTest, SiteRegistryCoversDocumentedSites) {
  const std::vector<std::string>& sites = fault::FaultSites();
  for (const char* expected :
       {"io.dataset.read", "io.dataset.write", "io.label.read",
        "io.label.write", "io.import.open", "alloc.bigrid"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << expected;
  }
}

TEST_F(FaultInjectionTest, SpecGrammar) {
  EXPECT_TRUE(fault::Arm("io.dataset.read", "always").ok());
  EXPECT_TRUE(fault::Arm("io.dataset.read", "p=0.25").ok());
  EXPECT_TRUE(fault::Arm("io.dataset.read", "nth=3").ok());
  EXPECT_TRUE(fault::Arm("io.dataset.read", "after=2").ok());
  EXPECT_EQ(fault::ArmedCount(), 4u);

  EXPECT_FALSE(fault::Arm("io.dataset.read", "sometimes").ok());
  EXPECT_FALSE(fault::Arm("io.dataset.read", "p=1.5").ok());
  EXPECT_FALSE(fault::Arm("io.dataset.read", "p=x").ok());
  EXPECT_FALSE(fault::Arm("io.dataset.read", "nth=0").ok());
  EXPECT_FALSE(fault::Arm("io.dataset.read", "nth=abc").ok());
  EXPECT_FALSE(fault::Arm("", "always").ok());
  EXPECT_EQ(fault::ArmedCount(), 4u);

  fault::Reset();
  EXPECT_EQ(fault::ArmedCount(), 0u);

  EXPECT_TRUE(fault::ArmFromSpec("io.label.write:always;alloc.bigrid:nth=2")
                  .ok());
  EXPECT_EQ(fault::ArmedCount(), 2u);
  EXPECT_FALSE(fault::ArmFromSpec("missing-colon-entry").ok());
}

TEST_F(FaultInjectionTest, DatasetWriteFaultFailsSave) {
  ObjectSet set = testing::MakeRandomObjects(5, 2, 4, 20.0, 1);
  ASSERT_TRUE(fault::Arm("io.dataset.write", "always").ok());
  const std::uint64_t before = fault::InjectedCount();
  Status st = SaveDatasetBinary(set, PathFor("faulted.bin"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_GT(fault::InjectedCount(), before);
  EXPECT_GE(obs::SnapshotMetrics().counters[static_cast<int>(
                obs::Counter::kFaultsInjected)],
            1u);
}

TEST_F(FaultInjectionTest, DatasetReadFaultFailsLoad) {
  ObjectSet set = testing::MakeRandomObjects(5, 2, 4, 20.0, 2);
  std::string path = PathFor("ok.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, path).ok());
  ASSERT_TRUE(fault::Arm("io.dataset.read", "always").ok());
  EXPECT_FALSE(LoadDatasetBinary(path).ok());
  fault::Reset();
  EXPECT_TRUE(LoadDatasetBinary(path).ok());  // the file itself is fine
}

TEST_F(FaultInjectionTest, NthTriggerFailsExactlyOnce) {
  ObjectSet set = testing::MakeRandomObjects(5, 2, 4, 20.0, 3);
  std::string path = PathFor("nth.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, path).ok());
  // The first read op (the version field) is spared; the second fails.
  ASSERT_TRUE(fault::Arm("io.dataset.read", "nth=2").ok());
  EXPECT_FALSE(LoadDatasetBinary(path).ok());  // consumes the nth=2 shot
  EXPECT_TRUE(LoadDatasetBinary(path).ok());   // one-shot: now exhausted
}

TEST_F(FaultInjectionTest, ProbabilityEndpointsAreDeterministic) {
  ObjectSet set = testing::MakeRandomObjects(5, 2, 4, 20.0, 4);
  std::string path = PathFor("prob.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, path).ok());
  ASSERT_TRUE(fault::Arm("io.dataset.read", "p=0.0").ok());
  EXPECT_TRUE(LoadDatasetBinary(path).ok());
  fault::Reset();
  ASSERT_TRUE(fault::Arm("io.dataset.read", "p=1.0").ok());
  EXPECT_FALSE(LoadDatasetBinary(path).ok());
}

TEST_F(FaultInjectionTest, WildcardMatchesEveryIoSite) {
  ObjectSet set = testing::MakeRandomObjects(5, 2, 4, 20.0, 5);
  ASSERT_TRUE(fault::Arm("io.*", "always").ok());
  EXPECT_EQ(fault::ArmedCount(), 1u);
  EXPECT_FALSE(SaveDatasetBinary(set, PathFor("w.bin")).ok());
  LabelStore store(PathFor("labels"));
  LabelSet labels = LabelSet::MakeAllOnes(set);
  EXPECT_FALSE(store.Save(3, labels).ok());
  EXPECT_FALSE(LoadSwcFile(PathFor("missing.swc")).ok());
}

TEST_F(FaultInjectionTest, ImportOpenFaultFailsExistingFile) {
  std::string path = PathFor("ok.swc");
  {
    std::ofstream out(path);
    out << "1 1 0.0 0.0 0.0 1.0 -1\n";
  }
  ASSERT_TRUE(LoadSwcFile(path).ok());
  ASSERT_TRUE(fault::Arm("io.import.open", "always").ok());
  Result<Object> r = LoadSwcFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(FaultInjectionTest, BigridAllocFaultTripsResourceExhausted) {
  ObjectSet set = testing::MakeRandomObjects(600, 3, 6, 40.0, 6);
  MioEngine engine(set);
  ASSERT_TRUE(fault::Arm("alloc.bigrid", "nth=1").ok());
  QueryResult res = engine.Query(3.0, {});
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.status.code(), StatusCode::kResourceExhausted);
  fault::Reset();
  QueryResult ok = engine.Query(3.0, {});
  EXPECT_TRUE(ok.complete);
  EXPECT_TRUE(ok.status.ok());
}

TEST_F(FaultInjectionTest, LabelWriteFaultIsBestEffortForQuery) {
  ObjectSet set = testing::MakeRandomObjects(200, 3, 6, 40.0, 7);
  MioEngine engine(set, PathFor("labels"));
  ASSERT_TRUE(fault::Arm("io.label.write", "always").ok());
  QueryOptions opt;
  opt.record_labels = true;
  QueryResult res = engine.Query(3.0, opt);
  // The persist is best-effort: the query still succeeds, labels stay in
  // the in-process cache, only the on-disk copy is lost.
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.status.ok());
  EXPECT_TRUE(engine.HasLabelsFor(3.0));
}

// ---------------------------------------------------------------------------
// Label-store bounded retries
// ---------------------------------------------------------------------------

std::uint64_t CounterValue(obs::Counter c) {
  return obs::SnapshotMetrics().counters[static_cast<std::size_t>(c)];
}

TEST_F(FaultInjectionTest, LabelSaveRetriesTransientWriteFault) {
  ObjectSet set = testing::MakeRandomObjects(6, 2, 4, 20.0, 11);
  LabelSet labels = LabelSet::MakeAllOnes(set);
  LabelStore store(PathFor("labels"));
  // One-shot fault: the first attempt's first write op fails, the retry
  // runs fault-free and succeeds.
  ASSERT_TRUE(fault::Arm("io.label.write", "nth=1").ok());
  EXPECT_TRUE(store.Save(3, labels).ok());
  EXPECT_GE(CounterValue(obs::Counter::kLabelRetryAttempts), 1u);
  EXPECT_EQ(CounterValue(obs::Counter::kLabelRetryExhausted), 0u);
  EXPECT_TRUE(store.Load(3, set).ok());
}

TEST_F(FaultInjectionTest, LabelLoadRetriesTransientReadFault) {
  ObjectSet set = testing::MakeRandomObjects(6, 2, 4, 20.0, 12);
  LabelSet labels = LabelSet::MakeAllOnes(set);
  LabelStore store(PathFor("labels"));
  ASSERT_TRUE(store.Save(4, labels).ok());
  ASSERT_TRUE(fault::Arm("io.label.read", "nth=1").ok());
  Result<LabelSet> loaded = store.Load(4, set);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GE(CounterValue(obs::Counter::kLabelRetryAttempts), 1u);
  EXPECT_EQ(CounterValue(obs::Counter::kLabelRetryExhausted), 0u);
}

TEST_F(FaultInjectionTest, LabelRetryExhaustionIsBoundedAndCounted) {
  ObjectSet set = testing::MakeRandomObjects(6, 2, 4, 20.0, 13);
  LabelSet labels = LabelSet::MakeAllOnes(set);
  LabelStore store(PathFor("labels"));
  ASSERT_TRUE(fault::Arm("io.label.write", "always").ok());
  Status st = store.Save(5, labels);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // Exactly two re-attempts (three tries total), then gives up.
  EXPECT_EQ(CounterValue(obs::Counter::kLabelRetryAttempts), 2u);
  EXPECT_EQ(CounterValue(obs::Counter::kLabelRetryExhausted), 1u);
}

TEST_F(FaultInjectionTest, LabelLoadDoesNotRetryNotFound) {
  ObjectSet set = testing::MakeRandomObjects(6, 2, 4, 20.0, 14);
  LabelStore store(PathFor("labels"));
  Result<LabelSet> loaded = store.Load(9, set);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CounterValue(obs::Counter::kLabelRetryAttempts), 0u);
  EXPECT_EQ(CounterValue(obs::Counter::kLabelRetryExhausted), 0u);
}

// ---------------------------------------------------------------------------
// QueryGuard / CancelToken / degradation planner units
// ---------------------------------------------------------------------------

TEST(QueryGuardTest, InertUntilArmed) {
  QueryGuard guard;
  EXPECT_FALSE(guard.active());
  EXPECT_FALSE(guard.tripped());
  EXPECT_FALSE(guard.Poll());
  EXPECT_TRUE(guard.status().ok());
  guard.SetDeadline(0.0);  // <= 0 keeps the deadline off
  EXPECT_FALSE(guard.active());
}

TEST(QueryGuardTest, DeadlineTrips) {
  QueryGuard guard;
  guard.SetDeadline(1e-6);
  EXPECT_TRUE(guard.active());
  while (!guard.Poll()) {
  }
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(guard.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryGuardTest, CancelTokenTrips) {
  CancelToken token;
  QueryGuard guard;
  guard.SetCancelToken(&token);
  EXPECT_TRUE(guard.active());
  EXPECT_FALSE(guard.Poll());
  token.Cancel();
  EXPECT_TRUE(guard.Poll());
  EXPECT_EQ(guard.code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_TRUE(guard.tripped());  // a tripped guard stays tripped
}

TEST(QueryGuardTest, FirstTripWins) {
  CancelToken token;
  token.Cancel();
  QueryGuard guard;
  guard.SetCancelToken(&token);
  EXPECT_TRUE(guard.TripResource());
  EXPECT_TRUE(guard.Poll());
  EXPECT_EQ(guard.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(DegradationPlanTest, UnlimitedBudgetPlansNothing) {
  DegradationInputs in;
  in.budget_bytes = 0;
  in.required_bytes = 1u << 30;
  in.label_bytes = 1u << 20;
  DegradationPlan plan = PlanDegradation(in);
  EXPECT_EQ(plan.level(), 0);
  EXPECT_FALSE(plan.abort);
}

TEST(DegradationPlanTest, LadderShedsInOrder) {
  DegradationInputs in;
  in.required_bytes = 1000;
  in.label_bytes = 100;
  in.cache_bytes = 200;
  in.lb_bitset_bytes = 400;

  in.budget_bytes = 1700;  // everything fits
  EXPECT_EQ(PlanDegradation(in).level(), 0);

  in.budget_bytes = 1650;  // shedding labels is enough
  DegradationPlan p1 = PlanDegradation(in);
  EXPECT_EQ(p1.level(), 1);
  EXPECT_TRUE(p1.shed_label_recording);
  EXPECT_FALSE(p1.drop_grid_cache);
  EXPECT_FALSE(p1.abort);

  in.budget_bytes = 1400;  // labels + cache must go
  DegradationPlan p2 = PlanDegradation(in);
  EXPECT_EQ(p2.level(), 2);
  EXPECT_TRUE(p2.shed_label_recording);
  EXPECT_TRUE(p2.drop_grid_cache);
  EXPECT_FALSE(p2.stream_verification);

  in.budget_bytes = 1000;  // only the bare grid fits
  DegradationPlan p3 = PlanDegradation(in);
  EXPECT_EQ(p3.level(), 3);
  EXPECT_TRUE(p3.stream_verification);
  EXPECT_FALSE(p3.abort);

  in.budget_bytes = 999;  // the grid alone does not fit
  DegradationPlan p4 = PlanDegradation(in);
  EXPECT_TRUE(p4.abort);
}

TEST(DegradationPlanTest, ZeroCostStepsAreSkipped) {
  DegradationInputs in;
  in.required_bytes = 1000;
  in.label_bytes = 0;  // nothing to shed at step 1
  in.cache_bytes = 500;
  in.budget_bytes = 1000;
  DegradationPlan plan = PlanDegradation(in);
  EXPECT_FALSE(plan.shed_label_recording);
  EXPECT_TRUE(plan.drop_grid_cache);
  EXPECT_FALSE(plan.abort);
}

// ---------------------------------------------------------------------------
// Engine guardrails: deadline, cancel, memory budget
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, DeadlineReturnsEarlyWithBestSoFar) {
  ObjectSet set = testing::MakeRandomObjects(2500, 8, 16, 70.0, 77);
  MioEngine engine(set);
  const double r = 2.5;
  QueryOptions opt;
  QueryResult full = engine.Query(r, opt);
  ASSERT_TRUE(full.complete);

  // Shrink the deadline until it trips; starting at half the unbounded
  // time keeps the trip inside real work on any machine speed.
  QueryResult res;
  double deadline_ms = full.stats.total_seconds * 1000.0 / 2.0;
  for (int i = 0; i < 24 && deadline_ms > 1e-4; ++i, deadline_ms /= 2.0) {
    opt.deadline_ms = deadline_ms;
    res = engine.Query(r, opt);
    if (!res.complete) break;
  }
  ASSERT_FALSE(res.complete) << "deadline never tripped";
  EXPECT_EQ(res.status.code(), StatusCode::kDeadlineExceeded);
  // Returns promptly: well within the unbounded run, and within the
  // deadline plus generous stride/CI slack.
  EXPECT_LT(res.stats.total_seconds, full.stats.total_seconds);
  EXPECT_LE(res.stats.total_seconds * 1000.0, opt.deadline_ms * 2.0 + 100.0);
  // Best-so-far soundness: any reported score is a valid lower bound of
  // that object's true tau, and cannot beat the proven optimum.
  if (!res.topk.empty()) {
    EXPECT_LE(res.topk[0].score, full.best().score);
    EXPECT_LE(res.topk[0].score, BruteScoreOf(set, res.topk[0].id, r));
  }
  EXPECT_GE(obs::SnapshotMetrics().counters[static_cast<int>(
                obs::Counter::kQueryDeadlineExceeded)],
            1u);
}

TEST_F(RobustnessTest, PreCancelledTokenStopsQueryImmediately) {
  ObjectSet set = testing::MakeRandomObjects(400, 4, 8, 40.0, 78);
  MioEngine engine(set);
  CancelToken token;
  token.Cancel();
  QueryOptions opt;
  opt.cancel = &token;
  QueryResult res = engine.Query(3.0, opt);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.status.code(), StatusCode::kCancelled);
  EXPECT_GE(obs::SnapshotMetrics().counters[static_cast<int>(
                obs::Counter::kQueryCancelled)],
            1u);
  token.Reset();
  QueryResult again = engine.Query(3.0, opt);
  EXPECT_TRUE(again.complete);
  EXPECT_TRUE(again.status.ok());
}

TEST_F(RobustnessTest, CancelFromAnotherThread) {
  ObjectSet set = testing::MakeRandomObjects(2500, 8, 16, 70.0, 79);
  MioEngine engine(set);
  const double r = 2.5;
  // The cancel lands mid-query on any realistic timing; retry with an
  // earlier cancel if a fast machine finishes first.
  QueryResult res;
  for (int attempt = 0; attempt < 8; ++attempt) {
    CancelToken token;
    QueryOptions opt;
    opt.cancel = &token;
    std::thread canceller([&token, attempt] {
      std::this_thread::sleep_for(std::chrono::microseconds(500 >> attempt));
      token.Cancel();
    });
    res = engine.Query(r, opt);
    canceller.join();
    if (!res.complete) break;
  }
  ASSERT_FALSE(res.complete) << "cancel never landed mid-query";
  EXPECT_EQ(res.status.code(), StatusCode::kCancelled);
  if (!res.topk.empty()) {
    EXPECT_LE(res.topk[0].score, BruteScoreOf(set, res.topk[0].id, r));
  }
}

TEST_F(RobustnessTest, TrippedGuardStopsVerificationWithoutPartialScores) {
  ObjectSet set = testing::MakeRandomObjects(300, 4, 8, 40.0, 80);
  BiGrid grid(set, 3.0, /*planar=*/false);
  grid.Build();
  QueryStats stats;
  UpperBoundResult ub =
      UpperBounding(grid, 0, nullptr, nullptr, &stats, nullptr);
  CancelToken token;
  token.Cancel();
  QueryGuard guard;
  guard.SetCancelToken(&token);
  // Already tripped on entry: no candidate may be offered, because every
  // in-flight score would be partial.
  std::vector<ScoredObject> topk = Verification(
      grid, ub, 1, nullptr, nullptr, nullptr, &stats, true, &guard);
  EXPECT_TRUE(topk.empty());
}

TEST_F(RobustnessTest, MemoryBudgetDegradationLadder) {
  ObjectSet set = testing::MakeRandomObjects(400, 4, 8, 40.0, 81);
  const double r = 3.0;
  const int ceil_r = 3;

  // Reference answer, plus the POST-BUILD grid footprint: the planner
  // projects against the grid as just built (before the b_adj memoisation
  // grows it), so budgets must be pinned to that number, not to the
  // end-of-query index_memory_bytes.
  MioEngine probe(set);
  QueryResult plain = probe.Query(r, {});
  ASSERT_TRUE(plain.complete);
  BiGrid probe_grid(set, r);
  probe_grid.Build();
  const std::size_t build_bytes = probe_grid.MemoryUsage().Total();
  ASSERT_GT(build_bytes, 0u);

  // Step 1: a budget with no headroom sheds label recording.
  {
    MioEngine engine(set);
    QueryOptions opt;
    opt.record_labels = true;
    opt.memory_budget_bytes = build_bytes;
    QueryResult res = engine.Query(r, opt);
    EXPECT_TRUE(res.complete);
    EXPECT_TRUE(res.status.ok());
    EXPECT_EQ(res.stats.degradation_level, 1);
    EXPECT_FALSE(engine.HasLabelsFor(r));  // recording was shed
    EXPECT_EQ(res.best().score, plain.best().score);
  }

  // Step 2: same squeeze with the grid cache as the only extra.
  {
    MioEngine engine(set);
    QueryOptions opt;
    opt.reuse_grid = true;
    opt.memory_budget_bytes = build_bytes;
    QueryResult res = engine.Query(r, opt);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.stats.degradation_level, 2);
    EXPECT_EQ(res.best().score, plain.best().score);
    // The cache was dropped, so a follow-up query cannot adopt a grid.
    QueryResult again = engine.Query(r, opt);
    EXPECT_FALSE(again.stats.reused_grid);
  }

  // Step 3: with labels in use, the kept lower-bound bitsets are the last
  // extra; shedding them falls back to streaming verification. Label
  // pruning shrinks the small grid, so the budget is pinned to the
  // labeled grid's own post-build footprint.
  {
    const std::string label_dir = PathFor("ladder_labels");
    MioEngine engine(set, label_dir);
    QueryOptions record;
    record.record_labels = true;
    ASSERT_TRUE(engine.Query(r, record).complete);
    ASSERT_TRUE(engine.HasLabelsFor(r));
    LabelStore store(label_dir);
    Result<LabelSet> labels = store.Load(ceil_r, set);
    ASSERT_TRUE(labels.ok()) << labels.status().ToString();
    BiGrid labeled_grid(set, r);
    labeled_grid.Build(&labels.value());
    const std::size_t labeled_build_bytes =
        labeled_grid.MemoryUsage().Total();
    QueryOptions opt;
    opt.use_labels = true;
    opt.reuse_grid = true;
    opt.memory_budget_bytes = labeled_build_bytes;
    QueryResult res = engine.Query(r, opt);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.stats.degradation_level, 3);
    EXPECT_EQ(res.best().score, plain.best().score);
  }

  // Past the ladder: a budget below the bare grid aborts.
  {
    MioEngine engine(set);
    QueryOptions opt;
    opt.memory_budget_bytes = 1;
    QueryResult res = engine.Query(r, opt);
    EXPECT_FALSE(res.complete);
    EXPECT_EQ(res.status.code(), StatusCode::kResourceExhausted);
  }

  EXPECT_GE(obs::SnapshotMetrics().counters[static_cast<int>(
                obs::Counter::kQueryDegraded)],
            3u);
}

TEST_F(RobustnessTest, GuardrailsUnderParallelQuery) {
  ObjectSet set = testing::MakeRandomObjects(600, 4, 8, 40.0, 82);
  MioEngine engine(set);
  QueryOptions opt;
  opt.threads = 2;
  CancelToken token;
  token.Cancel();
  opt.cancel = &token;
  QueryResult res = engine.Query(3.0, opt);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.status.code(), StatusCode::kCancelled);
  token.Reset();
  QueryResult ok = engine.Query(3.0, opt);
  EXPECT_TRUE(ok.complete);
  EXPECT_TRUE(ok.status.ok());
}

// ---------------------------------------------------------------------------
// Exit-code mapping (the CLI's contract with scripts)
// ---------------------------------------------------------------------------

TEST(ExitCodeTest, DistinctNonZeroCodesPerFailureClass) {
  EXPECT_EQ(ExitCodeFor(StatusCode::kOk), 0);
  const StatusCode failures[] = {
      StatusCode::kInvalidArgument,  StatusCode::kIOError,
      StatusCode::kCorruption,       StatusCode::kNotFound,
      StatusCode::kOutOfRange,       StatusCode::kUnimplemented,
      StatusCode::kInternal,         StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted, StatusCode::kCancelled,
  };
  std::vector<int> seen;
  for (StatusCode c : failures) {
    int code = ExitCodeFor(c);
    EXPECT_GT(code, 1) << "codes 0/1 are reserved";  // 1 = generic failure
    EXPECT_LT(code, 126) << "shell-reserved range";
    EXPECT_EQ(std::count(seen.begin(), seen.end(), code), 0)
        << "duplicate exit code " << code;
    seen.push_back(code);
  }
}

// ---------------------------------------------------------------------------
// Corrupt label file = cache miss (recompute + rewrite)
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, CorruptLabelFileIsRecomputedAndRewritten) {
  ObjectSet set = testing::MakeRandomObjects(150, 3, 6, 40.0, 90);
  const double r = 3.0;
  const std::string label_dir = PathFor("labels");

  {
    MioEngine writer(set, label_dir);
    QueryOptions opt;
    opt.record_labels = true;
    ASSERT_TRUE(writer.Query(r, opt).complete);
  }
  LabelStore store(label_dir);
  const int ceil_r = 3;
  ASSERT_TRUE(store.Has(ceil_r));
  ASSERT_TRUE(store.Load(ceil_r, set).ok());

  // Flip a byte in the middle of the file.
  std::vector<char> bytes = ReadAll(store.PathFor(ceil_r));
  ASSERT_GT(bytes.size(), 32u);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteAll(store.PathFor(ceil_r), bytes.data(), bytes.size());
  ASSERT_FALSE(store.Load(ceil_r, set).ok());

  // A fresh engine treats the corrupt file as a miss: the query succeeds
  // label-free, evicts the bad file, re-records, and rewrites it.
  MioEngine reader(set, label_dir);
  QueryOptions opt;
  opt.use_labels = true;
  opt.record_labels = true;
  QueryResult res = reader.Query(r, opt);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.status.ok());
  EXPECT_GE(obs::SnapshotMetrics().counters[static_cast<int>(
                obs::Counter::kLabelsCorruptRecovered)],
            1u);
  Result<LabelSet> reloaded = store.Load(ceil_r, set);
  EXPECT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  // And the rewritten labels are actually usable.
  MioEngine reuser(set, label_dir);
  QueryResult reused = reuser.Query(r, opt);
  EXPECT_TRUE(reused.complete);
  EXPECT_EQ(reused.best().score, res.best().score);
}

// ---------------------------------------------------------------------------
// Hardened binary loader: corruption matrix
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, BinaryTruncationAtEveryOffsetFailsDescriptively) {
  ObjectSet set = testing::MakeRandomObjects(6, 2, 5, 20.0, 11, 5.0, true);
  std::string good = PathFor("good.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, good).ok());
  std::vector<char> bytes = ReadAll(good);
  ASSERT_GT(bytes.size(), 17u);

  std::string path = PathFor("trunc.bin");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(path, bytes.data(), len);
    Result<ObjectSet> r = LoadDatasetBinary(path);
    ASSERT_FALSE(r.ok()) << "truncated to " << len << " bytes loaded";
    EXPECT_TRUE(r.status().code() == StatusCode::kCorruption ||
                r.status().code() == StatusCode::kIOError)
        << r.status().ToString();
    EXPECT_FALSE(r.status().message().empty());
  }
}

TEST_F(RobustnessTest, BinaryBitFlipAtEveryOffsetIsDetected) {
  ObjectSet set = testing::MakeRandomObjects(6, 2, 5, 20.0, 12, 5.0, true);
  std::string good = PathFor("good.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, good).ok());
  const std::vector<char> bytes = ReadAll(good);

  std::string path = PathFor("flip.bin");
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    std::vector<char> mutated = bytes;
    mutated[off] ^= 0x40;
    WriteAll(path, mutated.data(), mutated.size());
    Result<ObjectSet> r = LoadDatasetBinary(path);
    EXPECT_FALSE(r.ok()) << "bit flip at offset " << off << " loaded";
  }
}

TEST_F(RobustnessTest, BinaryBadMagicAndVersion) {
  ObjectSet set = testing::MakeRandomObjects(3, 2, 3, 20.0, 13);
  std::string path = PathFor("hdr.bin");
  ASSERT_TRUE(SaveDatasetBinary(set, path).ok());
  std::vector<char> bytes = ReadAll(path);

  std::vector<char> bad_magic = bytes;
  std::memcpy(bad_magic.data(), "NOPE", 4);
  WriteAll(path, bad_magic.data(), bad_magic.size());
  Result<ObjectSet> r1 = LoadDatasetBinary(path);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("bad magic"), std::string::npos);

  std::vector<char> bad_version = bytes;
  std::uint32_t v = 999;
  std::memcpy(bad_version.data() + 4, &v, sizeof(v));
  WriteAll(path, bad_version.data(), bad_version.size());
  Result<ObjectSet> r2 = LoadDatasetBinary(path);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("version"), std::string::npos);
}

TEST_F(RobustnessTest, AbsurdDeclaredObjectCountFailsBeforeAllocating) {
  // Handcraft a header declaring 2^60 objects in a tiny file: the loader
  // must reject it from the size bound, never reserve for it.
  std::string path = PathFor("absurd_n.bin");
  std::ofstream out(path, std::ios::binary);
  out.write("MIOD", 4);
  std::uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  std::uint64_t n = 1ull << 60;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  std::uint8_t has_times = 0;
  out.write(reinterpret_cast<const char*>(&has_times), sizeof(has_times));
  std::uint64_t fake_checksum = 0;
  out.write(reinterpret_cast<const char*>(&fake_checksum),
            sizeof(fake_checksum));
  out.close();

  Result<ObjectSet> r = LoadDatasetBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("exceeds file size"), std::string::npos);
}

TEST_F(RobustnessTest, AbsurdDeclaredPointCountFailsBeforeAllocating) {
  std::string path = PathFor("absurd_m.bin");
  std::ofstream out(path, std::ios::binary);
  out.write("MIOD", 4);
  std::uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  std::uint64_t n = 1;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  std::uint8_t has_times = 0;
  out.write(reinterpret_cast<const char*>(&has_times), sizeof(has_times));
  std::uint64_t num_points = 1ull << 55;
  out.write(reinterpret_cast<const char*>(&num_points), sizeof(num_points));
  std::uint64_t fake_checksum = 0;
  out.write(reinterpret_cast<const char*>(&fake_checksum),
            sizeof(fake_checksum));
  out.close();

  Result<ObjectSet> r = LoadDatasetBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("exceeds remaining file size"),
            std::string::npos);
}

TEST_F(RobustnessTest, TextLoaderCapsTrustedReserve) {
  // A text header may declare any point count; the loader must not
  // pre-reserve for it. Truncated data then fails parsing, promptly.
  std::string path = PathFor("absurd.txt");
  {
    std::ofstream out(path);
    out << "mio-dataset v1 1 0\n";
    out << "object 99999999999999\n";
    out << "0.0 0.0 0.0\n";
  }
  Result<ObjectSet> r = LoadDatasetText(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace mio
