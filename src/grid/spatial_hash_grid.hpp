// Generic uniform spatial hash grid over (object, point) entries. This is
// the substrate of the SG baseline (paper §V-A: a TOUCH-style grid join
// specialised for MIO): cell width r, so candidate partners of a point lie
// in its cell or the 26 neighbours. Cells are created on demand — no empty
// cells, no replication (the same main-memory requirements the paper states
// for BIGrid).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "geo/cell_key.hpp"
#include "geo/point.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Hash grid mapping each point to exactly one cell of a fixed width.
class SpatialHashGrid {
 public:
  /// One stored point with its owning object.
  struct Entry {
    ObjectId obj;
    Point p;
  };

  explicit SpatialHashGrid(double cell_width) : width_(cell_width) {}

  /// Inserts every point of every object.
  void Build(const ObjectSet& objects);

  /// Inserts a single point.
  void Insert(ObjectId obj, const Point& p);

  double cell_width() const { return width_; }
  std::size_t NumCells() const { return cells_.size(); }
  std::size_t NumEntries() const { return num_entries_; }

  /// Entries in the cell containing `key`, or nullptr if the cell is empty.
  const std::vector<Entry>* CellAt(const CellKey& key) const;

  /// Invokes f(entry) for every entry in the 27-cell neighbourhood of p.
  /// f returns true to continue, false to stop early.
  template <typename F>
  void ForEachEntryNear(const Point& p, F&& f) const {
    CellKey centre = KeyForWidth(p, width_);
    bool stop = false;
    ForEachNeighbor(centre, /*include_self=*/true, [&](const CellKey& k) {
      if (stop) return;
      auto it = cells_.find(k);
      if (it == cells_.end()) return;
      for (const Entry& e : it->second) {
        if (!f(e)) {
          stop = true;
          return;
        }
      }
    });
  }

  std::size_t MemoryUsageBytes() const;

 private:
  double width_;
  std::unordered_map<CellKey, std::vector<Entry>, CellKeyHash> cells_;
  std::size_t num_entries_ = 0;
};

}  // namespace mio
