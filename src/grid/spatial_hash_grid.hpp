// Generic uniform spatial hash grid over (object, point) entries. This is
// the substrate of the SG baseline (paper §V-A: a TOUCH-style grid join
// specialised for MIO): cell width r, so candidate partners of a point lie
// in its cell or the 26 neighbours. Cells are created on demand — no empty
// cells, no replication (the same main-memory requirements the paper states
// for BIGrid).
//
// Cell contents are stored structure-of-arrays, grouped into runs of
// consecutive same-object insertions (the Build order inserts objects in
// ascending id, so a run is exactly one object's points in the cell).
// The SG scan then evaluates each run with one batch distance-kernel call
// (geo/kernels.hpp) — the same SoA-plus-kernel shape as BIGrid postings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/cell_key.hpp"
#include "geo/point.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Hash grid mapping each point to exactly one cell of a fixed width.
class SpatialHashGrid {
 public:
  /// One stored point with its owning object (materialised view; the
  /// backing storage is SoA).
  struct Entry {
    ObjectId obj;
    Point p;
  };

  /// One run of consecutive same-object points inside a cell, as SoA
  /// coordinate spans for the batch kernels.
  struct Run {
    ObjectId obj;
    const double* xs;
    const double* ys;
    const double* zs;
    std::size_t size;
  };

  /// Cell storage: coordinate arrays plus run offsets (run_obj/run_start
  /// parallel, offsets into xs/ys/zs).
  struct Cell {
    std::vector<ObjectId> run_obj;
    std::vector<std::uint32_t> run_start;
    std::vector<double> xs, ys, zs;

    std::size_t size() const { return xs.size(); }
    std::size_t NumRuns() const { return run_obj.size(); }

    Run RunAt(std::size_t i) const {
      std::uint32_t begin = run_start[i];
      std::uint32_t end = i + 1 < run_start.size()
                              ? run_start[i + 1]
                              : static_cast<std::uint32_t>(xs.size());
      return Run{run_obj[i], xs.data() + begin, ys.data() + begin,
                 zs.data() + begin, end - begin};
    }

    /// Entry in insertion order (runs are contiguous and ordered).
    Entry operator[](std::size_t i) const {
      std::size_t run = 0;
      while (run + 1 < run_start.size() && run_start[run + 1] <= i) ++run;
      return Entry{run_obj[run], Point{xs[i], ys[i], zs[i]}};
    }
  };

  explicit SpatialHashGrid(double cell_width) : width_(cell_width) {}

  /// Inserts every point of every object.
  void Build(const ObjectSet& objects);

  /// Inserts a single point.
  void Insert(ObjectId obj, const Point& p);

  double cell_width() const { return width_; }
  std::size_t NumCells() const { return cells_.size(); }
  std::size_t NumEntries() const { return num_entries_; }

  /// The cell containing `key`, or nullptr if the cell is empty.
  const Cell* CellAt(const CellKey& key) const;

  /// Invokes f(cell) for every non-empty cell in the 27-cell
  /// neighbourhood of p. f returns true to continue, false to stop early.
  template <typename F>
  void ForEachCellNear(const Point& p, F&& f) const {
    CellKey centre = KeyForWidth(p, width_);
    bool stop = false;
    ForEachNeighbor(centre, /*include_self=*/true, [&](const CellKey& k) {
      if (stop) return;
      auto it = cells_.find(k);
      if (it == cells_.end()) return;
      if (!f(it->second)) stop = true;
    });
  }

  /// Invokes f(entry) for every entry in the 27-cell neighbourhood of p.
  /// f returns true to continue, false to stop early. (Entry-granular
  /// convenience view over ForEachCellNear.)
  template <typename F>
  void ForEachEntryNear(const Point& p, F&& f) const {
    ForEachCellNear(p, [&](const Cell& cell) {
      for (std::size_t r = 0; r < cell.NumRuns(); ++r) {
        Run run = cell.RunAt(r);
        for (std::size_t i = 0; i < run.size; ++i) {
          if (!f(Entry{run.obj, Point{run.xs[i], run.ys[i], run.zs[i]}})) {
            return false;
          }
        }
      }
      return true;
    });
  }

  std::size_t MemoryUsageBytes() const;

 private:
  double width_;
  std::unordered_map<CellKey, Cell, CellKeyHash> cells_;
  std::size_t num_entries_ = 0;
};

}  // namespace mio
