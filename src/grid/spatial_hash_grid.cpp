#include "grid/spatial_hash_grid.hpp"

#include "common/memory_tracker.hpp"

namespace mio {

void SpatialHashGrid::Build(const ObjectSet& objects) {
  cells_.reserve(objects.Stats().nm / 4 + 1);
  for (ObjectId i = 0; i < objects.size(); ++i) {
    for (const Point& p : objects[i].points) Insert(i, p);
  }
}

void SpatialHashGrid::Insert(ObjectId obj, const Point& p) {
  cells_[KeyForWidth(p, width_)].push_back(Entry{obj, p});
  ++num_entries_;
}

const std::vector<SpatialHashGrid::Entry>* SpatialHashGrid::CellAt(
    const CellKey& key) const {
  auto it = cells_.find(key);
  if (it == cells_.end()) return nullptr;
  return &it->second;
}

std::size_t SpatialHashGrid::MemoryUsageBytes() const {
  std::size_t bytes = UnorderedMapBytes(cells_);
  for (const auto& [_, entries] : cells_) {
    bytes += entries.capacity() * sizeof(Entry);
  }
  return bytes;
}

}  // namespace mio
