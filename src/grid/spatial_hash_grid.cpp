#include "grid/spatial_hash_grid.hpp"

#include "common/memory_tracker.hpp"

namespace mio {

void SpatialHashGrid::Build(const ObjectSet& objects) {
  cells_.reserve(objects.Stats().nm / 4 + 1);
  for (ObjectId i = 0; i < objects.size(); ++i) {
    for (const Point& p : objects[i].points) Insert(i, p);
  }
}

void SpatialHashGrid::Insert(ObjectId obj, const Point& p) {
  Cell& cell = cells_[KeyForWidth(p, width_)];
  if (cell.run_obj.empty() || cell.run_obj.back() != obj) {
    cell.run_obj.push_back(obj);
    cell.run_start.push_back(static_cast<std::uint32_t>(cell.xs.size()));
  }
  cell.xs.push_back(p.x);
  cell.ys.push_back(p.y);
  cell.zs.push_back(p.z);
  ++num_entries_;
}

const SpatialHashGrid::Cell* SpatialHashGrid::CellAt(
    const CellKey& key) const {
  auto it = cells_.find(key);
  if (it == cells_.end()) return nullptr;
  return &it->second;
}

std::size_t SpatialHashGrid::MemoryUsageBytes() const {
  std::size_t bytes = UnorderedMapBytes(cells_);
  for (const auto& [_, cell] : cells_) {
    bytes += cell.run_obj.capacity() * sizeof(ObjectId) +
             cell.run_start.capacity() * sizeof(std::uint32_t) +
             (cell.xs.capacity() + cell.ys.capacity() + cell.zs.capacity()) *
                 sizeof(double);
  }
  return bytes;
}

}  // namespace mio
