#include "rtree/rtree.hpp"

#include <algorithm>
#include <cmath>

namespace mio {
namespace {

double CenterAxis(const Aabb& box, int axis) {
  switch (axis) {
    case 0:
      return 0.5 * (box.min.x + box.max.x);
    case 1:
      return 0.5 * (box.min.y + box.max.y);
    default:
      return 0.5 * (box.min.z + box.max.z);
  }
}

}  // namespace

RTree::RTree(std::vector<Entry> entries, std::size_t fanout)
    : entries_(std::move(entries)),
      num_entries_(entries_.size()),
      fanout_(std::max<std::size_t>(fanout, 2)) {
  if (entries_.empty()) return;

  // STR: sort by x-centre, slice, sort slices by y, tile, sort tiles by z.
  // With ~n^(1/3) slices per axis the leaves tile space in fanout-sized
  // runs of spatially close entries.
  std::size_t n = entries_.size();
  std::size_t leaves = (n + fanout_ - 1) / fanout_;
  std::size_t slices =
      static_cast<std::size_t>(std::ceil(std::cbrt(static_cast<double>(leaves))));
  slices = std::max<std::size_t>(slices, 1);

  auto by_axis = [&](int axis) {
    return [axis](const Entry& a, const Entry& b) {
      return CenterAxis(a.box, axis) < CenterAxis(b.box, axis);
    };
  };
  std::sort(entries_.begin(), entries_.end(), by_axis(0));
  std::size_t per_slice = (n + slices - 1) / slices;
  for (std::size_t s = 0; s * per_slice < n; ++s) {
    std::size_t lo = s * per_slice;
    std::size_t hi = std::min(lo + per_slice, n);
    std::sort(entries_.begin() + lo, entries_.begin() + hi, by_axis(1));
    std::size_t per_tile = (hi - lo + slices - 1) / slices;
    for (std::size_t t = 0; lo + t * per_tile < hi; ++t) {
      std::size_t tlo = lo + t * per_tile;
      std::size_t thi = std::min(tlo + per_tile, hi);
      std::sort(entries_.begin() + tlo, entries_.begin() + thi, by_axis(2));
    }
  }

  // Pack leaves over the STR order.
  std::vector<std::int32_t> level;
  for (std::size_t begin = 0; begin < n; begin += fanout_) {
    Node leaf;
    leaf.begin = static_cast<std::uint32_t>(begin);
    leaf.end = static_cast<std::uint32_t>(std::min(begin + fanout_, n));
    for (std::uint32_t e = leaf.begin; e < leaf.end; ++e) {
      leaf.box.Extend(entries_[e].box);
    }
    level.push_back(static_cast<std::int32_t>(nodes_.size()));
    nodes_.push_back(leaf);
  }

  // Pack upper levels until one root remains.
  while (level.size() > 1) {
    std::vector<std::int32_t> parents;
    for (std::size_t begin = 0; begin < level.size(); begin += fanout_) {
      Node parent;
      std::size_t end = std::min(begin + fanout_, level.size());
      std::int32_t head = -1;
      for (std::size_t c = end; c-- > begin;) {
        nodes_[level[c]].next_sibling = head;
        head = level[c];
        parent.box.Extend(nodes_[level[c]].box);
      }
      parent.first_child = head;
      parents.push_back(static_cast<std::int32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(parents);
  }
  root_ = level.front();
}

const Aabb& RTree::Bounds() const {
  static const Aabb kEmpty;
  if (root_ < 0) return kEmpty;
  return nodes_[root_].box;
}

std::size_t RTree::MemoryUsageBytes() const {
  return entries_.capacity() * sizeof(Entry) + nodes_.capacity() * sizeof(Node);
}

}  // namespace mio
