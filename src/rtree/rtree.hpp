// Static R-tree over axis-aligned boxes, bulk-loaded with Sort-Tile-
// Recursive (STR) packing. Substrate for the MBR baseline: the paper
// argues (§II-B) that "building minimum bounding rectangle based indices,
// e.g., R-trees, is not effective, because they would make uselessly
// large rectangles with large empty spaces" for point-set objects — the
// RT baseline built on this tree lets the bench harness demonstrate that
// claim quantitatively instead of taking it on faith.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/aabb.hpp"

namespace mio {

/// Immutable R-tree over (box, payload-id) entries; STR bulk load.
class RTree {
 public:
  struct Entry {
    Aabb box;
    std::uint32_t id = 0;
  };

  /// Builds over the given entries (empty input yields an empty tree).
  explicit RTree(std::vector<Entry> entries, std::size_t fanout = 16);

  std::size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Invokes f(id) for every entry whose box is within distance r of
  /// `query` (i.e. min box-to-box distance <= r). f returns false to stop.
  template <typename F>
  void ForEachWithin(const Aabb& query, double r, F&& f) const {
    if (nodes_.empty()) return;
    double r2 = r * r;
    // Explicit stack: object trees can be deep at tiny fanout.
    std::vector<std::int32_t> stack{root_};
    while (!stack.empty()) {
      std::int32_t idx = stack.back();
      stack.pop_back();
      const Node& node = nodes_[idx];
      if (node.box.MinSquaredDistanceTo(query) > r2) continue;
      if (node.IsLeaf()) {
        for (std::uint32_t e = node.begin; e < node.end; ++e) {
          if (entries_[e].box.MinSquaredDistanceTo(query) <= r2) {
            if (!f(entries_[e].id)) return;
          }
        }
      } else {
        for (std::int32_t c = node.first_child; c >= 0;
             c = nodes_[c].next_sibling) {
          stack.push_back(c);
        }
      }
    }
  }

  /// Root bounding box (invalid when empty).
  const Aabb& Bounds() const;

  std::size_t MemoryUsageBytes() const;

 private:
  struct Node {
    Aabb box;
    std::uint32_t begin = 0;          // leaf: entry range
    std::uint32_t end = 0;
    std::int32_t first_child = -1;    // internal: intrusive child list
    std::int32_t next_sibling = -1;
    bool IsLeaf() const { return first_child < 0; }
  };

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t num_entries_ = 0;
  std::size_t fanout_;
};

}  // namespace mio
