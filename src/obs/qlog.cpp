#include "obs/qlog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/json.hpp"
#include "obs/stats_sink.hpp"

namespace mio {
namespace obs {

namespace {

constexpr const char* kQlogSchema = "mio-qlog-v1";

/// Canonical label-outcome names. Kept in sync with LabelOutcomeName()
/// in core/query_result.cpp (the obs layer cannot include core headers);
/// a test asserts the two lists match.
constexpr const char* kLabelOutcomes[] = {"off", "hit_memory", "hit_disk",
                                          "recorded", "miss"};

bool IsLabelOutcome(const std::string& name) {
  for (const char* o : kLabelOutcomes) {
    if (name == o) return true;
  }
  return false;
}

/// The five phase names, in pipeline order — shared by the writer, the
/// validator, and the report.
constexpr const char* kPhaseNames[] = {"label_input", "grid_mapping",
                                       "lower_bounding", "upper_bounding",
                                       "verification"};

double* PhaseField(QlogRecord* rec, std::size_t i) {
  double* fields[] = {&rec->phase_label_input, &rec->phase_grid_mapping,
                      &rec->phase_lower_bounding, &rec->phase_upper_bounding,
                      &rec->phase_verification};
  return fields[i];
}

const double* PhaseField(const QlogRecord* rec, std::size_t i) {
  return PhaseField(const_cast<QlogRecord*>(rec), i);
}

// --- Validation helpers ------------------------------------------------------

Status Missing(const char* section, const char* field) {
  return Status::InvalidArgument(std::string("qlog: missing or wrong-typed ") +
                                 section + "." + field);
}

Status RequireNumber(const JsonValue& obj, const char* section,
                     const char* field) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->IsNumber()) return Missing(section, field);
  return Status::OK();
}

Status RequireString(const JsonValue& obj, const char* section,
                     const char* field) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->IsString()) return Missing(section, field);
  return Status::OK();
}

Status RequireBool(const JsonValue& obj, const char* section,
                   const char* field) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->IsBool()) return Missing(section, field);
  return Status::OK();
}

Result<const JsonValue*> RequireObject(const JsonValue& root,
                                       const char* field) {
  const JsonValue* v = root.Find(field);
  if (v == nullptr || !v->IsObject()) {
    return Status::InvalidArgument(
        std::string("qlog: missing or wrong-typed section ") + field);
  }
  return v;
}

/// Full structural check of a parsed qlog document. Shared by
/// ValidateQlogLine and ParseQlogRecord so a record can never parse
/// without also validating.
Status CheckQlogDocument(const JsonValue& doc) {
  if (!doc.IsObject()) {
    return Status::InvalidArgument("qlog: record is not a JSON object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->AsString() != kQlogSchema) {
    return Status::InvalidArgument(std::string("qlog: schema is not ") +
                                   kQlogSchema);
  }
  MIO_RETURN_NOT_OK(RequireNumber(doc, "", "query_index"));
  MIO_RETURN_NOT_OK(RequireString(doc, "", "workload"));
  MIO_RETURN_NOT_OK(RequireString(doc, "", "dataset"));
  MIO_RETURN_NOT_OK(RequireString(doc, "", "algo"));
  MIO_RETURN_NOT_OK(RequireNumber(doc, "", "wall_seconds"));
  MIO_RETURN_NOT_OK(RequireNumber(doc, "", "total_seconds"));

  Result<const JsonValue*> params = RequireObject(doc, "params");
  MIO_RETURN_NOT_OK(params.status());
  for (const char* f : {"r", "ceil_r", "k", "threads"}) {
    MIO_RETURN_NOT_OK(RequireNumber(*params.value(), "params", f));
  }

  Result<const JsonValue*> phases = RequireObject(doc, "phases");
  MIO_RETURN_NOT_OK(phases.status());
  for (const char* f : kPhaseNames) {
    MIO_RETURN_NOT_OK(RequireNumber(*phases.value(), "phases", f));
  }
  MIO_RETURN_NOT_OK(RequireNumber(*phases.value(), "phases", "total"));

  Result<const JsonValue*> funnel = RequireObject(doc, "funnel");
  MIO_RETURN_NOT_OK(funnel.status());
  for (const char* f :
       {"objects", "candidates", "verified", "distance_computations"}) {
    MIO_RETURN_NOT_OK(RequireNumber(*funnel.value(), "funnel", f));
  }

  Result<const JsonValue*> winner = RequireObject(doc, "winner");
  MIO_RETURN_NOT_OK(winner.status());
  MIO_RETURN_NOT_OK(RequireNumber(*winner.value(), "winner", "id"));
  MIO_RETURN_NOT_OK(RequireNumber(*winner.value(), "winner", "score"));

  Result<const JsonValue*> labels = RequireObject(doc, "labels");
  MIO_RETURN_NOT_OK(labels.status());
  MIO_RETURN_NOT_OK(RequireString(*labels.value(), "labels", "outcome"));
  MIO_RETURN_NOT_OK(RequireNumber(*labels.value(), "labels", "points_pruned"));
  if (!IsLabelOutcome(labels.value()->GetString("outcome"))) {
    return Status::InvalidArgument("qlog: unknown labels.outcome \"" +
                                   labels.value()->GetString("outcome") + "\"");
  }

  Result<const JsonValue*> outcome = RequireObject(doc, "outcome");
  MIO_RETURN_NOT_OK(outcome.status());
  MIO_RETURN_NOT_OK(RequireString(*outcome.value(), "outcome", "status"));
  MIO_RETURN_NOT_OK(RequireBool(*outcome.value(), "outcome", "complete"));
  MIO_RETURN_NOT_OK(
      RequireNumber(*outcome.value(), "outcome", "degradation_level"));
  if (outcome.value()->GetString("status").empty()) {
    return Status::InvalidArgument("qlog: empty outcome.status");
  }

  Result<const JsonValue*> env = RequireObject(doc, "env");
  MIO_RETURN_NOT_OK(env.status());
  MIO_RETURN_NOT_OK(RequireString(*env.value(), "env", "pmu_tier"));
  MIO_RETURN_NOT_OK(RequireString(*env.value(), "env", "kernel_tier"));

  Result<const JsonValue*> memory = RequireObject(doc, "memory");
  MIO_RETURN_NOT_OK(memory.status());
  MIO_RETURN_NOT_OK(RequireNumber(*memory.value(), "memory", "index_bytes"));
  MIO_RETURN_NOT_OK(RequireNumber(*memory.value(), "memory", "peak_bytes"));

  Result<const JsonValue*> trace = RequireObject(doc, "trace");
  MIO_RETURN_NOT_OK(trace.status());
  MIO_RETURN_NOT_OK(RequireNumber(*trace.value(), "trace", "dropped_spans"));

  // The "batch" section is optional (absent on sequential queries) but
  // must be well-formed when present.
  const JsonValue* batch = doc.Find("batch");
  if (batch != nullptr) {
    if (!batch->IsObject()) {
      return Status::InvalidArgument("qlog: wrong-typed section batch");
    }
    MIO_RETURN_NOT_OK(RequireNumber(*batch, "batch", "id"));
    MIO_RETURN_NOT_OK(RequireNumber(*batch, "batch", "size"));
  }
  return Status::OK();
}

}  // namespace

std::string QlogRecordToJsonLine(const QlogRecord& rec) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kQlogSchema);
  w.Key("query_index").UInt(rec.query_index);
  w.Key("workload").String(rec.workload);
  w.Key("dataset").String(rec.dataset);
  w.Key("algo").String(rec.algo);
  w.Key("params").BeginObject();
  w.Key("r").Double(rec.r);
  w.Key("ceil_r").Int(rec.ceil_r);
  w.Key("k").UInt(rec.k);
  w.Key("threads").Int(rec.threads);
  w.EndObject();
  w.Key("wall_seconds").Double(rec.wall_seconds);
  w.Key("total_seconds").Double(rec.total_seconds);
  w.Key("phases").BeginObject();
  double phase_total = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    double v = *PhaseField(&rec, i);
    w.Key(kPhaseNames[i]).Double(v);
    phase_total += v;
  }
  w.Key("total").Double(phase_total);
  w.EndObject();
  w.Key("funnel").BeginObject();
  w.Key("objects").UInt(rec.objects);
  w.Key("candidates").UInt(rec.candidates);
  w.Key("verified").UInt(rec.verified);
  w.Key("distance_computations").UInt(rec.distance_computations);
  w.EndObject();
  w.Key("winner").BeginObject();
  w.Key("id").UInt(rec.winner_id);
  w.Key("score").UInt(rec.winner_score);
  w.EndObject();
  w.Key("labels").BeginObject();
  w.Key("outcome").String(rec.label_outcome);
  w.Key("points_pruned").UInt(rec.points_pruned_by_labels);
  w.EndObject();
  w.Key("outcome").BeginObject();
  w.Key("status").String(rec.status);
  w.Key("complete").Bool(rec.complete);
  w.Key("degradation_level").UInt(rec.degradation_level);
  w.EndObject();
  w.Key("env").BeginObject();
  w.Key("pmu_tier").String(rec.pmu_tier);
  w.Key("kernel_tier").String(rec.kernel_tier);
  w.EndObject();
  w.Key("memory").BeginObject();
  w.Key("index_bytes").UInt(rec.index_memory_bytes);
  w.Key("peak_bytes").UInt(rec.peak_memory_bytes);
  w.EndObject();
  w.Key("trace").BeginObject();
  w.Key("dropped_spans").UInt(rec.trace_dropped_spans);
  w.EndObject();
  if (rec.batch_size > 0) {
    w.Key("batch").BeginObject();
    w.Key("id").UInt(rec.batch_id);
    w.Key("size").UInt(rec.batch_size);
    w.EndObject();
  }
  w.EndObject();
  return std::move(w).Take();
}

Status ValidateQlogLine(std::string_view line) {
  JsonValue doc;
  std::string error;
  if (!ParseJson(line, &doc, &error)) {
    return Status::InvalidArgument("qlog: bad JSON: " + error);
  }
  return CheckQlogDocument(doc);
}

Status ParseQlogRecord(std::string_view line, QlogRecord* out) {
  JsonValue doc;
  std::string error;
  if (!ParseJson(line, &doc, &error)) {
    return Status::InvalidArgument("qlog: bad JSON: " + error);
  }
  MIO_RETURN_NOT_OK(CheckQlogDocument(doc));
  QlogRecord rec;
  rec.query_index = doc.GetUInt("query_index");
  rec.workload = doc.GetString("workload");
  rec.dataset = doc.GetString("dataset");
  rec.algo = doc.GetString("algo");
  const JsonValue* params = doc.Find("params");
  rec.r = params->GetDouble("r");
  rec.ceil_r = static_cast<int>(params->GetUInt("ceil_r"));
  rec.k = params->GetUInt("k");
  rec.threads = static_cast<int>(params->GetUInt("threads", 1));
  rec.wall_seconds = doc.GetDouble("wall_seconds");
  rec.total_seconds = doc.GetDouble("total_seconds");
  const JsonValue* phases = doc.Find("phases");
  for (std::size_t i = 0; i < 5; ++i) {
    *PhaseField(&rec, i) = phases->GetDouble(kPhaseNames[i]);
  }
  const JsonValue* funnel = doc.Find("funnel");
  rec.objects = funnel->GetUInt("objects");
  rec.candidates = funnel->GetUInt("candidates");
  rec.verified = funnel->GetUInt("verified");
  rec.distance_computations = funnel->GetUInt("distance_computations");
  const JsonValue* winner = doc.Find("winner");
  rec.winner_id = winner->GetUInt("id");
  rec.winner_score = winner->GetUInt("score");
  const JsonValue* labels = doc.Find("labels");
  rec.label_outcome = labels->GetString("outcome");
  rec.points_pruned_by_labels = labels->GetUInt("points_pruned");
  const JsonValue* outcome = doc.Find("outcome");
  rec.status = outcome->GetString("status");
  rec.complete = outcome->GetBool("complete");
  rec.degradation_level =
      static_cast<std::uint32_t>(outcome->GetUInt("degradation_level"));
  const JsonValue* env = doc.Find("env");
  rec.pmu_tier = env->GetString("pmu_tier");
  rec.kernel_tier = env->GetString("kernel_tier");
  const JsonValue* memory = doc.Find("memory");
  rec.index_memory_bytes = memory->GetUInt("index_bytes");
  rec.peak_memory_bytes = memory->GetUInt("peak_bytes");
  rec.trace_dropped_spans = doc.Find("trace")->GetUInt("dropped_spans");
  if (const JsonValue* batch = doc.Find("batch")) {
    rec.batch_id = batch->GetUInt("id");
    rec.batch_size = batch->GetUInt("size");
  }
  *out = std::move(rec);
  return Status::OK();
}

Result<std::vector<QlogRecord>> LoadQlogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("qlog: cannot open: " + path);
  }
  std::vector<QlogRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    QlogRecord rec;
    Status st = ParseQlogRecord(line, &rec);
    if (!st.ok()) {
      return Status(st.code(), path + ":" + std::to_string(lineno) + ": " +
                                   st.message());
    }
    records.push_back(std::move(rec));
  }
  if (in.bad()) {
    return Status::IOError("qlog: read error: " + path);
  }
  return records;
}

// --- QlogWriter --------------------------------------------------------------

QlogWriter::~QlogWriter() { (void)Close(); }

Status QlogWriter::Open(const std::string& path, bool append) {
  MIO_RETURN_NOT_OK(Close());
  if (path == "-") {
    file_ = stdout;
    owns_file_ = false;
    return Status::OK();
  }
  file_ = std::fopen(path.c_str(), append ? "a" : "w");
  if (file_ == nullptr) {
    return Status::IOError("qlog: cannot open: " + path);
  }
  owns_file_ = true;
  return Status::OK();
}

Status QlogWriter::Append(const QlogRecord& rec) {
  if (file_ == nullptr) {
    return Status::InvalidArgument("qlog: writer is not open");
  }
  std::string line = QlogRecordToJsonLine(rec);
  // The serialiser is total over QlogRecord fields, so this only fires on
  // a programming error (e.g. an outcome string not from the enum) — but
  // an invalid line in a qlog poisons every downstream consumer, so check.
  MIO_RETURN_NOT_OK(ValidateQlogLine(line));
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::IOError("qlog: short write");
  }
  // Flush per record: a killed workload keeps every completed query.
  if (std::fflush(file_) != 0) {
    return Status::IOError("qlog: flush failed");
  }
  ++records_;
  return Status::OK();
}

Status QlogWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  std::FILE* f = file_;
  bool owns = owns_file_;
  file_ = nullptr;
  owns_file_ = false;
  if (owns) {
    if (std::fclose(f) != 0) return Status::IOError("qlog: close failed");
  } else {
    if (std::fflush(f) != 0) return Status::IOError("qlog: flush failed");
  }
  return Status::OK();
}

// --- TailSampler -------------------------------------------------------------

TailSampler::Decision TailSampler::Offer(std::uint64_t index,
                                         double wall_seconds) {
  Decision d;
  if (!enabled()) return d;
  if (cfg_.threshold_seconds > 0.0 && wall_seconds >= cfg_.threshold_seconds) {
    permanent_.insert(index);
    d.export_trace = true;
  }
  if (cfg_.slowest_n > 0) {
    slowest_.emplace(wall_seconds, index);
    if (slowest_.size() > cfg_.slowest_n) {
      auto fastest = slowest_.begin();
      std::uint64_t evicted = fastest->second;
      slowest_.erase(fastest);
      if (evicted == index) {
        // The new query itself fell straight out of the slowest-N set;
        // only a threshold hit keeps its trace.
      } else {
        d.export_trace = true;  // the new query joined the slowest-N
        if (permanent_.count(evicted) == 0) d.evict.push_back(evicted);
      }
    } else {
      d.export_trace = true;
    }
  }
  return d;
}

std::vector<std::uint64_t> TailSampler::TailIndices() const {
  std::vector<std::uint64_t> out(permanent_.begin(), permanent_.end());
  for (const auto& [seconds, index] : slowest_) {
    (void)seconds;
    if (permanent_.count(index) == 0) out.push_back(index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string TailTraceFileName(std::uint64_t query_index) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "q%06llu.trace.json",
                static_cast<unsigned long long>(query_index));
  return buf;
}

// --- Report ------------------------------------------------------------------

namespace {

QlogLatencySummary SummarizeLatency(std::vector<double> values) {
  QlogLatencySummary s;
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  for (double v : values) s.sum += v;
  s.mean = s.sum / static_cast<double>(values.size());
  // Percentile sorts a copy per call; fine at report scale.
  s.p50 = Percentile(values, 0.50);
  s.p95 = Percentile(values, 0.95);
  s.p99 = Percentile(values, 0.99);
  return s;
}

/// Path of a slow query's trace file if it exists under `trace_dir`
/// (tail sampling only keeps files for tail queries), else "".
std::string ResolveTraceFile(const std::string& trace_dir,
                             std::uint64_t query_index) {
  if (trace_dir.empty()) return "";
  std::string path = trace_dir;
  if (path.back() != '/') path.push_back('/');
  path += TailTraceFileName(query_index);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::fclose(f);
  return path;
}

}  // namespace

QlogReport BuildQlogReport(const std::vector<QlogRecord>& records,
                           std::size_t slowest_n) {
  QlogReport report;
  report.num_queries = records.size();

  std::vector<double> wall;
  wall.reserve(records.size());
  std::vector<double> batched_wall;
  std::vector<double> sequential_wall;
  std::vector<std::vector<double>> phase_values(5);
  std::map<int, QlogCeilClassStats> classes;
  for (const QlogRecord& rec : records) {
    wall.push_back(rec.wall_seconds);
    if (rec.Batched()) {
      batched_wall.push_back(rec.wall_seconds);
    } else {
      sequential_wall.push_back(rec.wall_seconds);
    }
    if (!rec.complete) ++report.incomplete;
    if (rec.degradation_level > 0) ++report.degraded;
    for (std::size_t i = 0; i < 5; ++i) {
      phase_values[i].push_back(*PhaseField(&rec, i));
    }
    QlogCeilClassStats& cls = classes[rec.ceil_r];
    cls.ceil_r = rec.ceil_r;
    ++cls.queries;
    if (rec.LabelHit()) {
      ++cls.hits;
    } else if (rec.label_outcome == "recorded") {
      ++cls.recorded;
    } else if (rec.label_outcome == "miss") {
      ++cls.misses;
    }
  }
  report.latency = SummarizeLatency(wall);
  report.batched_queries = batched_wall.size();
  report.batched_latency = SummarizeLatency(std::move(batched_wall));
  report.sequential_latency = SummarizeLatency(std::move(sequential_wall));

  double phase_sum = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    QlogPhaseAggregate agg;
    agg.name = kPhaseNames[i];
    for (double v : phase_values[i]) agg.total_seconds += v;
    agg.p50 = Percentile(phase_values[i], 0.50);
    agg.p99 = Percentile(phase_values[i], 0.99);
    phase_sum += agg.total_seconds;
    report.phases.push_back(std::move(agg));
  }
  for (QlogPhaseAggregate& agg : report.phases) {
    agg.share = phase_sum > 0.0 ? agg.total_seconds / phase_sum : 0.0;
  }

  for (auto& [ceil_r, cls] : classes) {
    report.ceil_classes.push_back(cls);  // std::map: already ceil_r-sorted
  }

  // Slowest-N table: wall-descending, ties toward the later index — the
  // same order the TailSampler retains, so the table's head lines up with
  // the kept trace files.
  std::vector<const QlogRecord*> by_wall;
  by_wall.reserve(records.size());
  for (const QlogRecord& rec : records) by_wall.push_back(&rec);
  std::sort(by_wall.begin(), by_wall.end(),
            [](const QlogRecord* a, const QlogRecord* b) {
              if (a->wall_seconds != b->wall_seconds) {
                return a->wall_seconds > b->wall_seconds;
              }
              return a->query_index > b->query_index;
            });
  std::size_t n = std::min(slowest_n, by_wall.size());
  for (std::size_t i = 0; i < n; ++i) {
    const QlogRecord* rec = by_wall[i];
    QlogSlowQuery slow;
    slow.query_index = rec->query_index;
    slow.wall_seconds = rec->wall_seconds;
    slow.r = rec->r;
    slow.status = rec->status;
    slow.label_outcome = rec->label_outcome;
    report.slowest.push_back(std::move(slow));
  }
  return report;
}

std::string QlogReportToJson(const QlogReport& report,
                             const std::string& trace_dir) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("mio-qlog-report-v1");
  w.Key("num_queries").UInt(report.num_queries);
  w.Key("incomplete").UInt(report.incomplete);
  w.Key("degraded").UInt(report.degraded);
  w.Key("latency").BeginObject();
  w.Key("min").Double(report.latency.min);
  w.Key("max").Double(report.latency.max);
  w.Key("mean").Double(report.latency.mean);
  w.Key("p50").Double(report.latency.p50);
  w.Key("p95").Double(report.latency.p95);
  w.Key("p99").Double(report.latency.p99);
  w.Key("sum").Double(report.latency.sum);
  w.EndObject();
  w.Key("batched_queries").UInt(report.batched_queries);
  if (report.batched_queries > 0) {
    auto emit_split = [&](const char* key, const QlogLatencySummary& s) {
      w.Key(key).BeginObject();
      w.Key("p50").Double(s.p50);
      w.Key("p95").Double(s.p95);
      w.Key("p99").Double(s.p99);
      w.Key("mean").Double(s.mean);
      w.Key("sum").Double(s.sum);
      w.EndObject();
    };
    emit_split("latency_batched", report.batched_latency);
    emit_split("latency_sequential", report.sequential_latency);
  }
  w.Key("phases").BeginObject();
  for (const QlogPhaseAggregate& agg : report.phases) {
    w.Key(agg.name).BeginObject();
    w.Key("total_seconds").Double(agg.total_seconds);
    w.Key("share").Double(agg.share);
    w.Key("p50").Double(agg.p50);
    w.Key("p99").Double(agg.p99);
    w.EndObject();
  }
  w.EndObject();
  w.Key("label_reuse").BeginArray();
  for (const QlogCeilClassStats& cls : report.ceil_classes) {
    w.BeginObject();
    w.Key("ceil_r").Int(cls.ceil_r);
    w.Key("queries").UInt(cls.queries);
    w.Key("hits").UInt(cls.hits);
    w.Key("recorded").UInt(cls.recorded);
    w.Key("misses").UInt(cls.misses);
    w.Key("hit_rate").Double(cls.HitRate());
    w.EndObject();
  }
  w.EndArray();
  w.Key("slowest").BeginArray();
  for (const QlogSlowQuery& slow : report.slowest) {
    w.BeginObject();
    w.Key("query_index").UInt(slow.query_index);
    w.Key("wall_seconds").Double(slow.wall_seconds);
    w.Key("r").Double(slow.r);
    w.Key("status").String(slow.status);
    w.Key("label_outcome").String(slow.label_outcome);
    std::string trace = ResolveTraceFile(trace_dir, slow.query_index);
    if (!trace.empty()) w.Key("trace_file").String(trace);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

std::string FormatQlogReport(const QlogReport& report,
                             const std::string& trace_dir) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "qlog report: %zu queries (%zu incomplete, %zu degraded)\n",
                report.num_queries, report.incomplete, report.degraded);
  out += buf;
  const QlogLatencySummary& lat = report.latency;
  std::snprintf(buf, sizeof(buf),
                "  wall latency: p50 %.6fs  p95 %.6fs  p99 %.6fs  "
                "(min %.6f, mean %.6f, max %.6f, sum %.3f)\n",
                lat.p50, lat.p95, lat.p99, lat.min, lat.mean, lat.max,
                lat.sum);
  out += buf;
  if (report.batched_queries > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  batched:      %zu queries  p50 %.6fs  p99 %.6fs  "
                  "(mean %.6f, sum %.3f)\n",
                  report.batched_queries, report.batched_latency.p50,
                  report.batched_latency.p99, report.batched_latency.mean,
                  report.batched_latency.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  sequential:   %zu queries  p50 %.6fs  p99 %.6fs  "
                  "(mean %.6f, sum %.3f)\n",
                  report.num_queries - report.batched_queries,
                  report.sequential_latency.p50, report.sequential_latency.p99,
                  report.sequential_latency.mean,
                  report.sequential_latency.sum);
    out += buf;
  }
  out += "  phases (total seconds, share of phase time):\n";
  for (const QlogPhaseAggregate& agg : report.phases) {
    std::snprintf(buf, sizeof(buf),
                  "    %-15s %10.6fs  %5.1f%%  (p50 %.6f, p99 %.6f)\n",
                  agg.name.c_str(), agg.total_seconds, 100.0 * agg.share,
                  agg.p50, agg.p99);
    out += buf;
  }
  out += "  label reuse per ceil(r) class:\n";
  for (const QlogCeilClassStats& cls : report.ceil_classes) {
    std::snprintf(
        buf, sizeof(buf),
        "    ceil_r %-5d %6llu queries  hits %-6llu recorded %-6llu "
        "misses %-6llu hit rate %5.1f%%\n",
        cls.ceil_r, static_cast<unsigned long long>(cls.queries),
        static_cast<unsigned long long>(cls.hits),
        static_cast<unsigned long long>(cls.recorded),
        static_cast<unsigned long long>(cls.misses), 100.0 * cls.HitRate());
    out += buf;
  }
  out += "  slowest queries:\n";
  for (const QlogSlowQuery& slow : report.slowest) {
    std::snprintf(buf, sizeof(buf),
                  "    q%-6llu %.6fs  r=%-8g %-10s labels=%s",
                  static_cast<unsigned long long>(slow.query_index),
                  slow.wall_seconds, slow.r, slow.status.c_str(),
                  slow.label_outcome.c_str());
    out += buf;
    std::string trace = ResolveTraceFile(trace_dir, slow.query_index);
    if (!trace.empty()) {
      out += "  trace=";
      out += trace;
    }
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace mio
