// Structured stats sink: serialises one query execution — QueryStats
// (per-phase times, pruning counters, compression), the metrics-registry
// snapshot, the MemoryTracker peaks, and the active kernel tier — as a
// single JSON document. The CLI (--stats-json) and every bench harness
// (--json-out) emit this same schema ("mio-stats-v1"), so bench records
// are machine-comparable across commits (scripts/compare_bench.py).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/query_result.hpp"
#include "obs/metrics.hpp"

namespace mio {
namespace obs {

/// Identification of one measured run: which harness, which workload,
/// which parameters. Unset strings are emitted as "".
struct RunInfo {
  std::string bench;    ///< harness/tool name, e.g. "table2_breakdown"
  std::string dataset;  ///< preset or input-file name
  std::string algo;     ///< "bigrid", "bigrid-label", "nl", ...
  double r = 0.0;
  std::size_t k = 1;
  int threads = 1;
  std::string scale;           ///< "quick" / "full" / "" for file inputs
  double wall_seconds = 0.0;   ///< harness-side wall clock, 0 if unmeasured
};

/// `git describe` of the tree this binary was built from (configure-time;
/// "unknown" outside a git checkout).
const char* GitDescribe();

/// The full stats document. `metrics` may be null to omit the registry
/// section (e.g. when the caller could not reset it around the run).
std::string StatsJson(const QueryStats& stats, const RunInfo& info,
                      const MetricsSnapshot* metrics = nullptr);

/// As above, from a whole QueryResult: adds an "outcome" object with the
/// query Status, the `complete` flag, and the degradation level, so
/// incomplete or degraded runs are machine-detectable.
std::string StatsJson(const QueryResult& result, const RunInfo& info,
                      const MetricsSnapshot* metrics = nullptr);

/// Writes `contents` to `path` ("-" writes to stdout).
Status WriteTextFile(const std::string& path, const std::string& contents);

/// The p-quantile (p in [0,1]) of `values` with linear interpolation
/// between adjacent order statistics (the numpy/R-7 rule). Sorts a copy;
/// 0 on empty input. Shared by `mio profile` and the bench summaries.
double Percentile(std::vector<double> values, double p);

/// Shorthand for Percentile(values, 0.5).
double Median(std::vector<double> values);

}  // namespace obs
}  // namespace mio
