#include "obs/metrics.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

namespace mio {
namespace obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{true};
thread_local MetricShard* tl_shard = nullptr;

namespace {

struct ShardRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<MetricShard>> shards;
};

ShardRegistry& GetShardRegistry() {
  static ShardRegistry* r = new ShardRegistry();  // leaked: shutdown-safe
  return *r;
}

}  // namespace

MetricShard* RegisterShard() {
  ShardRegistry& reg = GetShardRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.shards.push_back(std::make_unique<MetricShard>());
  tl_shard = reg.shards.back().get();
  return tl_shard;
}

}  // namespace detail

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min);
  if (p >= 1.0) return static_cast<double>(max);
  // Rank of the requested quantile, 1-based: the smallest value v such
  // that at least `target` observations are <= v.
  double target = p * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    std::uint64_t n = buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= target) {
      if (b == 0) return 0.0;  // bucket 0 holds exactly the value 0
      double low = static_cast<double>(std::uint64_t{1} << (b - 1));
      // The top bucket is clamped (absorbs values >= 2^(kBuckets-1));
      // bound it by the tracked max instead of its nominal power of two.
      double high = b == kBuckets - 1
                        ? static_cast<double>(max) + 1.0
                        : static_cast<double>(std::uint64_t{1} << b);
      if (high < low + 1.0) high = low + 1.0;
      double fraction = (target - static_cast<double>(cum)) /
                        static_cast<double>(n);
      double v = low + fraction * (high - low);
      // Interpolation cannot leave the observed range.
      v = std::max(v, static_cast<double>(min));
      return std::min(v, static_cast<double>(max));
    }
    cum += n;
  }
  return static_cast<double>(max);
}

void SetMetricsEnabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

MetricsSnapshot SnapshotMetrics() {
  auto& reg = detail::GetShardRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snap;
  for (const auto& shard : reg.shards) {
    for (int c = 0; c < kNumCounters; ++c) {
      snap.counters[static_cast<std::size_t>(c)] +=
          shard->counters[static_cast<std::size_t>(c)];
    }
    for (int h = 0; h < kNumHistograms; ++h) {
      const detail::HistogramShard& src =
          shard->histograms[static_cast<std::size_t>(h)];
      if (src.count == 0) continue;
      HistogramSnapshot& dst = snap.histograms[static_cast<std::size_t>(h)];
      for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
        dst.buckets[static_cast<std::size_t>(b)] +=
            src.buckets[static_cast<std::size_t>(b)];
      }
      if (dst.count == 0 || src.min < dst.min) dst.min = src.min;
      if (src.max > dst.max) dst.max = src.max;
      dst.count += src.count;
      dst.sum += src.sum;
    }
  }
  return snap;
}

void ResetMetrics() {
  auto& reg = detail::GetShardRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& shard : reg.shards) *shard = detail::MetricShard{};
}

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kLbCellOrs:
      return "lb_cell_ors";
    case Counter::kUbCellOrs:
      return "ub_cell_ors";
    case Counter::kAdjBuilds:
      return "adj_builds";
    case Counter::kPostingScans:
      return "posting_scans";
    case Counter::kKernelBatches:
      return "kernel_batches";
    case Counter::kVerifyPoints:
      return "verify_points";
    case Counter::kVerifyPointsSettled:
      return "verify_points_settled";
    case Counter::kFaultsInjected:
      return "faults.injected";
    case Counter::kQueryDeadlineExceeded:
      return "query.deadline_exceeded";
    case Counter::kQueryCancelled:
      return "query.cancelled";
    case Counter::kQueryDegraded:
      return "query.degraded";
    case Counter::kLabelsCorruptRecovered:
      return "labels.corrupt_recovered";
    case Counter::kLabelRetryAttempts:
      return "labels.retry_attempts";
    case Counter::kLabelRetryExhausted:
      return "labels.retry_exhausted";
    case Counter::kLabelCacheHits:
      return "labels.cache_hits";
    case Counter::kLabelCacheMisses:
      return "labels.cache_misses";
    case Counter::kTraceDroppedSpans:
      return "trace.dropped_spans";
    case Counter::kVerifyOctantsPruned:
      return "verify_octants_pruned";
    case Counter::kBatchQueries:
      return "batch.queries";
    case Counter::kBatchClasses:
      return "batch.classes";
    case Counter::kBatchGridBuildsSaved:
      return "batch.grid_builds_saved";
    case Counter::kBatchPostingsBytesShared:
      return "batch.postings_bytes_shared";
    case Counter::kBatchCellsPartitioned:
      return "batch.cells_partitioned";
    case Counter::kCount_:
      break;
  }
  return "unknown";
}

const char* HistogramName(Histogram h) {
  switch (h) {
    case Histogram::kLbKeyListLen:
      return "lb_key_list_len";
    case Histogram::kLbUnionBits:
      return "lb_union_bits";
    case Histogram::kUbGroupsPerObject:
      return "ub_groups_per_object";
    case Histogram::kUbUnionBits:
      return "ub_union_bits";
    case Histogram::kVerifyCandsPerPoint:
      return "verify_cands_per_point";
    case Histogram::kKernelBatchSize:
      return "kernel_batch_size";
    case Histogram::kBatchArenaHighWater:
      return "batch.arena_high_water_bytes";
    case Histogram::kCount_:
      break;
  }
  return "unknown";
}

}  // namespace obs
}  // namespace mio
