#include "obs/stats_sink.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/memory_tracker.hpp"
#include "geo/kernels.hpp"
#include "obs/json.hpp"
#include "obs/perf_counters.hpp"

namespace mio {
namespace obs {

namespace {

void WritePhases(JsonWriter& w, const PhaseTimes& p) {
  w.Key("phases").BeginObject();
  w.Key("label_input").Double(p.label_input);
  w.Key("grid_mapping").Double(p.grid_mapping);
  w.Key("lower_bounding").Double(p.lower_bounding);
  w.Key("upper_bounding").Double(p.upper_bounding);
  w.Key("verification").Double(p.verification);
  w.Key("total").Double(p.Total());
  w.EndObject();
}

void WriteCounters(JsonWriter& w, const QueryStats& s) {
  w.Key("counters").BeginObject();
  w.Key("tau_low_max").UInt(s.tau_low_max);
  w.Key("num_candidates").UInt(s.num_candidates);
  w.Key("num_verified").UInt(s.num_verified);
  w.Key("distance_computations").UInt(s.distance_computations);
  w.Key("cells_small").UInt(s.cells_small);
  w.Key("cells_large").UInt(s.cells_large);
  w.Key("points_pruned_by_labels").UInt(s.points_pruned_by_labels);
  w.EndObject();
}

void WriteLoadBalance(JsonWriter& w, const QueryStats& s) {
  if (s.verify_thread_seconds.empty()) return;
  ThreadLoadReport report = ComputeThreadLoad(s.verify_thread_seconds);
  w.Key("verify_load_balance").BeginObject();
  w.Key("workers").UInt(s.verify_thread_seconds.size());
  w.Key("per_thread_seconds").BeginArray();
  for (double sec : s.verify_thread_seconds) w.Double(sec);
  w.EndArray();
  w.Key("min_seconds").Double(report.min_seconds);
  w.Key("max_seconds").Double(report.max_seconds);
  w.Key("mean_seconds").Double(report.mean_seconds);
  w.Key("imbalance").Double(report.imbalance);
  w.EndObject();
}

void WriteMemory(JsonWriter& w, const QueryStats& s) {
  w.Key("memory").BeginObject();
  w.Key("index_total_bytes").UInt(s.index_memory_bytes);
  w.Key("parts").BeginObject();
  for (const auto& [name, bytes] : s.memory.parts) {
    w.Key(name).UInt(bytes);
  }
  w.EndObject();
  // Process-wide current/peak per tag: outlives this query, so peaks from
  // earlier (larger) runs are preserved in every later snapshot.
  w.Key("tracker").BeginObject();
  for (const MemoryTracker::Entry& e : MemoryTracker::Instance().Snapshot()) {
    w.Key(e.tag).BeginObject();
    w.Key("current_bytes").UInt(e.current_bytes);
    w.Key("peak_bytes").UInt(e.peak_bytes);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

void WritePmuCounts(JsonWriter& w, const char* key, const PmuCounts& c) {
  if (c.Empty()) return;
  w.Key(key).BeginObject();
  for (int e = 0; e < kNumPmuEvents; ++e) {
    PmuEvent pe = static_cast<PmuEvent>(e);
    std::uint64_t v = c.Get(pe);
    if (v == 0 && !c.valid) continue;  // timing tier: task_clock_ns only
    w.Key(PmuEventName(pe)).UInt(v);
  }
  if (c.valid) {
    w.Key("ipc").Double(c.Ipc());
    w.Key("cache_miss_rate").Double(c.CacheMissRate());
    w.Key("branch_misses_per_ki").Double(c.BranchMissesPerKiloInstructions());
  }
  w.EndObject();
}

void WriteHardware(JsonWriter& w, const QueryStats& s) {
  PmuCounts total = s.hardware.Total();
  if (total.Empty()) return;  // never sampled (baselines, compiled out)
  w.Key("hardware").BeginObject();
  w.Key("pmu_tier").String(PmuTierName(ActivePmuTier()));
  w.Key("phases").BeginObject();
  WritePmuCounts(w, "label_input", s.hardware.label_input);
  WritePmuCounts(w, "grid_mapping", s.hardware.grid_mapping);
  WritePmuCounts(w, "lower_bounding", s.hardware.lower_bounding);
  WritePmuCounts(w, "upper_bounding", s.hardware.upper_bounding);
  WritePmuCounts(w, "verification", s.hardware.verification);
  WritePmuCounts(w, "total", total);
  w.EndObject();
  if (total.valid) {
    w.Key("derived").BeginObject();
    if (s.total_points > 0) {
      w.Key("cycles_per_point")
          .Double(static_cast<double>(total.Get(PmuEvent::kCycles)) /
                  static_cast<double>(s.total_points));
    }
    if (s.num_verified > 0) {
      w.Key("cycles_per_candidate")
          .Double(static_cast<double>(
                      s.hardware.verification.Get(PmuEvent::kCycles)) /
                  static_cast<double>(s.num_verified));
    }
    w.EndObject();
  }
  w.EndObject();
}

void WriteCompression(JsonWriter& w, const QueryStats& s) {
  if (s.compression.num_bitsets == 0) return;
  w.Key("compression").BeginObject();
  w.Key("num_bitsets").UInt(s.compression.num_bitsets);
  w.Key("compressed_bytes").UInt(s.compression.compressed_bytes);
  w.Key("uncompressed_bytes").UInt(s.compression.uncompressed_bytes);
  w.Key("savings_ratio").Double(s.compression.SavingsRatio());
  w.EndObject();
}

void WriteMetrics(JsonWriter& w, const MetricsSnapshot& m) {
  w.Key("metrics").BeginObject();
  w.Key("counters").BeginObject();
  for (int c = 0; c < kNumCounters; ++c) {
    std::uint64_t v = m.counters[static_cast<std::size_t>(c)];
    if (v == 0) continue;
    w.Key(CounterName(static_cast<Counter>(c))).UInt(v);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (int h = 0; h < kNumHistograms; ++h) {
    const HistogramSnapshot& hist = m.histograms[static_cast<std::size_t>(h)];
    if (hist.count == 0) continue;
    w.Key(HistogramName(static_cast<Histogram>(h))).BeginObject();
    w.Key("count").UInt(hist.count);
    w.Key("sum").UInt(hist.sum);
    w.Key("min").UInt(hist.min);
    w.Key("max").UInt(hist.max);
    w.Key("mean").Double(hist.Mean());
    w.Key("p50").Double(hist.Percentile(0.50));
    w.Key("p90").Double(hist.Percentile(0.90));
    w.Key("p99").Double(hist.Percentile(0.99));
    // Sparse bucket map: "log2_bucket" -> count, upper bound 2^b exclusive.
    w.Key("log2_buckets").BeginObject();
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      std::uint64_t n = hist.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      w.Key(std::to_string(b)).UInt(n);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace

const char* GitDescribe() {
#ifdef MIO_GIT_DESCRIBE
  return MIO_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

namespace {

// Shared body of both StatsJson overloads; `result` (nullable) adds the
// guardrail outcome section.
std::string StatsJsonImpl(const QueryStats& stats, const RunInfo& info,
                          const MetricsSnapshot* metrics,
                          const QueryResult* result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("mio-stats-v1");
  w.Key("git").String(GitDescribe());
  w.Key("bench").String(info.bench);
  w.Key("dataset").String(info.dataset);
  w.Key("algo").String(info.algo);
  w.Key("params").BeginObject();
  w.Key("r").Double(info.r);
  w.Key("k").UInt(info.k);
  w.Key("threads").Int(info.threads);
  w.Key("scale").String(info.scale);
  w.EndObject();
  w.Key("kernel_tier").String(KernelTierName(ActiveKernelTier()));
  w.Key("total_seconds").Double(stats.total_seconds);
  if (info.wall_seconds > 0.0) w.Key("wall_seconds").Double(info.wall_seconds);
  w.Key("threads_used").Int(stats.threads);
  w.Key("reused_grid").Bool(stats.reused_grid);
  w.Key("label_outcome").String(LabelOutcomeName(stats.label_outcome));
  if (result != nullptr) {
    w.Key("outcome").BeginObject();
    w.Key("status").String(StatusCodeName(result->status.code()));
    if (!result->status.ok()) {
      w.Key("message").String(result->status.message());
    }
    w.Key("complete").Bool(result->complete);
    w.Key("degradation_level").UInt(stats.degradation_level);
    w.EndObject();
  }
  WritePhases(w, stats.phases);
  WriteHardware(w, stats);
  WriteCounters(w, stats);
  WriteLoadBalance(w, stats);
  WriteMemory(w, stats);
  WriteCompression(w, stats);
  if (metrics != nullptr && !metrics->Empty()) WriteMetrics(w, *metrics);
  w.EndObject();
  return std::move(w).Take();
}

}  // namespace

std::string StatsJson(const QueryStats& stats, const RunInfo& info,
                      const MetricsSnapshot* metrics) {
  return StatsJsonImpl(stats, info, metrics, nullptr);
}

std::string StatsJson(const QueryResult& result, const RunInfo& info,
                      const MetricsSnapshot* metrics) {
  return StatsJsonImpl(result.stats, info, metrics, &result);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 1.0) return values.back();
  // R-7 / numpy 'linear': rank h = p*(n-1) interpolated between the two
  // surrounding order statistics.
  double h = p * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(std::floor(h));
  std::size_t hi = lo + 1 < values.size() ? lo + 1 : lo;
  double frac = h - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 0.5);
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    std::fputc('\n', stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace mio
