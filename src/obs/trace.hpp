// Hierarchical span tracer for the query pipeline. Spans are recorded
// into fixed-capacity thread-local ring buffers (no locks, no
// allocation on the hot path) and exported as Chrome trace_event JSON
// that loads in chrome://tracing and Perfetto — one track per OpenMP
// worker, so per-thread load imbalance (paper Fig. 9) is directly
// visible.
//
// Cost model:
//  - compile-time off: configure with -DMIO_TRACING=OFF and every
//    MIO_TRACE_SPAN site vanishes from the binary;
//  - runtime off (the default): a span is one relaxed atomic load and a
//    predicted branch;
//  - runtime on: two steady_clock reads plus one ring-buffer store.
//
// Enable at runtime with Tracer::Instance().SetEnabled(true), the
// MIO_TRACE=1 environment variable, or `mio query --trace-out=FILE`.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/perf_counters.hpp"

namespace mio {
namespace obs {

/// One completed span. `name` and `cat` must be string literals (or
/// otherwise outlive the tracer): the ring buffer stores the pointers.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t start_ns = 0;  ///< relative to the tracer epoch
  std::int64_t dur_ns = 0;
  int tid = 0;   ///< per-process thread track, in registration order
  int depth = 0;  ///< nesting level at the time the span opened (0 = root)
  /// Per-span PMU delta (hardware tier only): exported as trace_event
  /// args so Perfetto shows cycles/IPC/miss-rate per span. has_pmu is
  /// false on the timing tier — the span then carries only its duration.
  PmuCounts pmu;
  bool has_pmu = false;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when spans are being recorded. Relaxed load: the flag is a
/// sampling switch, not a synchronisation point.
inline bool TracingEnabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide span sink. Threads register a ring buffer on their first
/// span; buffers outlive their threads so snapshots stay valid.
class Tracer {
 public:
  /// Events kept per thread; older spans are overwritten (and counted as
  /// dropped) once a thread records more than this.
  static constexpr std::size_t kRingCapacity = 1 << 16;

  static Tracer& Instance();

  void SetEnabled(bool on);
  bool enabled() const { return TracingEnabled(); }

  /// Discards every recorded event (thread buffers are kept registered).
  void Clear();

  /// All recorded events, sorted by start time. Call at a quiescent
  /// point — concurrent in-flight spans may be missed or torn.
  std::vector<TraceEvent> Snapshot() const;

  /// Spans overwritten because a thread's ring filled up.
  std::uint64_t DroppedEvents() const;

  /// Number of threads that have recorded at least one span.
  std::size_t NumThreads() const;

  /// The Chrome trace_event document ({"traceEvents":[...]}) for the
  /// current contents, with one named track per recorded thread. Spans
  /// recorded on the hardware PMU tier carry args (cycles, instructions,
  /// ipc, cache_miss_rate, ...). `truncated` adds a top-level
  /// `"truncated": true` marker (the exit-flush path uses it to mark a
  /// document written before the query finished); ring overflow adds the
  /// same marker plus a `"dropped_spans": N` count on its own.
  std::string ToChromeTraceJson(bool truncated = false) const;

  /// Writes ToChromeTraceJson(truncated) to `path`.
  Status WriteChromeTrace(const std::string& path,
                          bool truncated = false) const;

 private:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
};

/// RAII span: opens on construction when tracing is enabled, records one
/// complete event on destruction. Use via the MIO_TRACE_SPAN macros.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "mio") {
    if (TracingEnabled()) Begin(name, cat);
  }
  ~TraceSpan() {
    if (name_ != nullptr) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name, const char* cat);
  void End();

  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t start_ns_ = 0;
  PmuCounts pmu_begin_;  ///< read at Begin on the hardware tier only
};

}  // namespace obs
}  // namespace mio

// MIO_TRACE_SPAN("name") / MIO_TRACE_SPAN_CAT("name", "category") open a
// span covering the rest of the enclosing scope.
#define MIO_OBS_CONCAT2(a, b) a##b
#define MIO_OBS_CONCAT(a, b) MIO_OBS_CONCAT2(a, b)

#ifndef MIO_TRACING_DISABLED
#define MIO_TRACE_SPAN(name) \
  ::mio::obs::TraceSpan MIO_OBS_CONCAT(mio_trace_span_, __LINE__)(name)
#define MIO_TRACE_SPAN_CAT(name, cat) \
  ::mio::obs::TraceSpan MIO_OBS_CONCAT(mio_trace_span_, __LINE__)(name, cat)
#else
#define MIO_TRACE_SPAN(name) \
  do {                       \
  } while (false)
#define MIO_TRACE_SPAN_CAT(name, cat) \
  do {                                \
  } while (false)
#endif
