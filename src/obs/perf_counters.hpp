// Hardware-counter (PMU) reader built on Linux perf_event_open: one
// grouped counter set per thread (cycles, instructions, cache
// references/misses, branch misses) plus a task-clock value, so the
// pipeline phases can report cycles-per-point, IPC, and cache-miss rates
// — the questions "where did the time go" spans cannot answer for a
// memory-bound workload.
//
// Tiers (resolved once per process, cheap relaxed load afterwards):
//  - hardware: the PMU group opened successfully on the probing thread;
//    every thread lazily opens its own group (per-thread contexts, so
//    OpenMP verify workers are counted individually);
//  - timing:   perf_event_open is unavailable (EPERM under seccomp,
//    ENOSYS, ENOENT on VMs without a PMU, MIO_PMU=off, or the
//    -DMIO_PMU_SUPPORT=OFF compile-out) — counters read as zero and only
//    the steady-clock task_clock_ns slot is filled, so every consumer
//    degrades to the span-tracer timing story instead of failing.
//
// Environment: MIO_PMU=off|0|false|timing forces the timing tier (no
// perf syscalls at all); unset or any other value probes the hardware.
#pragma once

#include <array>
#include <cstdint>

namespace mio {
namespace obs {

/// The grouped events, in read order. kTaskClockNs is always filled from
/// the monotonic clock (both tiers); the rest are hardware-tier only.
enum class PmuEvent : int {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
  kTaskClockNs,
  kCount_
};

inline constexpr int kNumPmuEvents = static_cast<int>(PmuEvent::kCount_);

/// Stable snake_case name used in every JSON surface ("cycles", ...).
const char* PmuEventName(PmuEvent e);

/// One counter reading (absolute) or difference of two readings (delta).
struct PmuCounts {
  std::array<std::uint64_t, kNumPmuEvents> v{};
  /// True when the hardware events were actually read (hardware tier and
  /// the calling thread's group opened). task_clock_ns is valid either way.
  bool valid = false;

  std::uint64_t Get(PmuEvent e) const {
    return v[static_cast<std::size_t>(e)];
  }
  void Set(PmuEvent e, std::uint64_t value) {
    v[static_cast<std::size_t>(e)] = value;
  }

  /// Element-wise accumulation; the sum is valid if any part was.
  PmuCounts& operator+=(const PmuCounts& o);

  /// this - begin, clamped at zero per event (counter wraps / scaling
  /// jitter must not produce huge unsigned deltas).
  PmuCounts DeltaSince(const PmuCounts& begin) const;

  /// True when every slot (including task_clock_ns) is zero.
  bool Empty() const;

  // Derived rates; all return 0 when the denominator is zero.
  double Ipc() const;                ///< instructions / cycles
  double CacheMissRate() const;      ///< cache_misses / cache_references
  double BranchMissesPerKiloInstructions() const;
};

/// The active measurement tier (see file comment).
enum class PmuTier : int { kTiming = 0, kHardware };

const char* PmuTierName(PmuTier t);

/// Resolves (once) and returns the process-wide tier: the MIO_PMU
/// environment variable, then a perf_event_open probe.
PmuTier ActivePmuTier();

/// Overrides the resolved tier (tests force the timing fallback without
/// touching the environment). Threads that already opened hardware
/// groups keep their fds but stop reading them under kTiming.
void ForcePmuTier(PmuTier t);

/// True when `value` (a MIO_PMU setting) selects the timing tier.
/// Exposed for tests; `nullptr` (unset) means "probe the hardware".
bool PmuEnvDisables(const char* value);

/// Reads the calling thread's counters. Hardware tier: opens the
/// per-thread group on first use (multiplexing-scaled group read);
/// timing tier or open failure: zeros with only task_clock_ns filled.
PmuCounts ReadPmuCounts();

/// RAII phase accumulator: reads on construction, adds the delta into
/// `*sink` on destruction. Null sink makes it a no-op.
class PmuPhaseScope {
 public:
  explicit PmuPhaseScope(PmuCounts* sink) : sink_(sink) {
    if (sink_ != nullptr) begin_ = ReadPmuCounts();
  }
  ~PmuPhaseScope() {
    if (sink_ != nullptr) *sink_ += ReadPmuCounts().DeltaSince(begin_);
  }

  PmuPhaseScope(const PmuPhaseScope&) = delete;
  PmuPhaseScope& operator=(const PmuPhaseScope&) = delete;

 private:
  PmuCounts* sink_;
  PmuCounts begin_;
};

}  // namespace obs
}  // namespace mio
