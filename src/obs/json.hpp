// Minimal JSON emission and syntax checking for the observability layer.
// The tracer, the stats sink, and the bench record emitter all produce
// JSON; this writer keeps them consistent (escaping, number formatting)
// without pulling in an external dependency, and the validator lets
// tests assert the documents are well-formed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mio {
namespace obs {

/// Streaming JSON writer. Call sequence is the document structure:
///   w.BeginObject(); w.Key("a").Int(1); w.EndObject();
/// Commas and quoting are handled internally; values written into an
/// object must be preceded by Key().
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The finished document. The writer is spent afterwards.
  std::string Take() && { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once it holds an element (so the
  /// next element needs a comma).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// Appends `s` with JSON string escaping (quotes, backslash, control
/// characters) — no surrounding quotes.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Strict well-formedness check of a complete JSON document. On failure
/// returns false and, when `error` is non-null, a short description with
/// the byte offset.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

}  // namespace obs
}  // namespace mio
