// Minimal JSON emission and syntax checking for the observability layer.
// The tracer, the stats sink, and the bench record emitter all produce
// JSON; this writer keeps them consistent (escaping, number formatting)
// without pulling in an external dependency, and the validator lets
// tests assert the documents are well-formed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mio {
namespace obs {

/// Streaming JSON writer. Call sequence is the document structure:
///   w.BeginObject(); w.Key("a").Int(1); w.EndObject();
/// Commas and quoting are handled internally; values written into an
/// object must be preceded by Key().
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The finished document. The writer is spent afterwards.
  std::string Take() && { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once it holds an element (so the
  /// next element needs a comma).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// Appends `s` with JSON string escaping (quotes, backslash, control
/// characters) — no surrounding quotes.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Strict well-formedness check of a complete JSON document. On failure
/// returns false and, when `error` is non-null, a short description with
/// the byte offset.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

/// Parsed JSON value tree — the read side of JsonWriter, used by the
/// qlog reader and tests that need field values, not just validity.
/// Numbers are kept as doubles (every value the writer emits fits; the
/// qlog counters stay exact up to 2^53).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsObject() const { return type_ == Type::kObject; }
  bool IsArray() const { return type_ == Type::kArray; }

  bool AsBool(bool fallback = false) const {
    return IsBool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return IsNumber() ? num_ : fallback;
  }
  std::uint64_t AsUInt(std::uint64_t fallback = 0) const;
  const std::string& AsString() const { return str_; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience member lookups (fallback when absent / wrong type).
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  std::uint64_t GetUInt(std::string_view key, std::uint64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback = "") const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& elements() const { return elements_; }

 private:
  friend struct JsonValueBuilder;  ///< parser-side mutation (json.cpp)

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< kObject
  std::vector<JsonValue> elements_;                         ///< kArray
};

/// Parses a complete JSON document into a value tree. Same grammar as
/// ValidateJson; string escapes (including \uXXXX and surrogate pairs)
/// are decoded to UTF-8. On failure returns false and, when `error` is
/// non-null, a short description with the byte offset.
bool ParseJson(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace obs
}  // namespace mio
