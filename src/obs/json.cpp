#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace mio {
namespace obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  AppendJsonEscaped(key, &out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  AppendJsonEscaped(value, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// ---------------------------------------------------------------------------
// Validator: recursive-descent over the JSON grammar (RFC 8259).
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(std::string* error) {
    SkipWs();
    if (!ParseValue()) {
      if (error != nullptr) {
        *error = err_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool ParseValue() {
    if (++depth_ > 256) return Fail("nesting too deep");
    SkipWs();
    char c;
    if (!Peek(&c)) return Fail("unexpected end of input");
    bool ok;
    switch (c) {
      case '{':
        ok = ParseObject();
        break;
      case '[':
        ok = ParseArray();
        break;
      case '"':
        ok = ParseString();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = ParseNumber();
    }
    --depth_;
    return ok;
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Peek(&c) || c != '"') return Fail("expected object key");
      if (!ParseString()) return false;
      SkipWs();
      if (!Peek(&c) || c != ':') return Fail("expected ':'");
      ++pos_;
      if (!ParseValue()) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return Parser(text).Parse(error);
}

}  // namespace obs
}  // namespace mio
