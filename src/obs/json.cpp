#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mio {
namespace obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  AppendJsonEscaped(key, &out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  AppendJsonEscaped(value, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// ---------------------------------------------------------------------------
// Validator and parser: one recursive descent over the JSON grammar
// (RFC 8259). ValidateJson passes a null sink (no allocation); ParseJson
// builds the JsonValue tree.
// ---------------------------------------------------------------------------

/// The parser's write access to JsonValue internals; not part of the
/// public API (declared friend in json.hpp, defined only here).
struct JsonValueBuilder {
  static void SetType(JsonValue* v, JsonValue::Type t) { v->type_ = t; }
  static void SetBool(JsonValue* v, bool b) {
    v->type_ = JsonValue::Type::kBool;
    v->bool_ = b;
  }
  static void SetNumber(JsonValue* v, double d) {
    v->type_ = JsonValue::Type::kNumber;
    v->num_ = d;
  }
  static std::string* MutableString(JsonValue* v) { return &v->str_; }
  static JsonValue* AddMember(JsonValue* v, std::string key) {
    v->members_.emplace_back(std::move(key), JsonValue{});
    return &v->members_.back().second;
  }
  static JsonValue* AddElement(JsonValue* v) {
    v->elements_.emplace_back();
    return &v->elements_.back();
  }
};

namespace {

/// Encodes one Unicode code point as UTF-8.
void AppendUtf8(std::uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(std::string* error, JsonValue* out = nullptr) {
    SkipWs();
    if (!ParseValue(out)) {
      if (error != nullptr) {
        *error = err_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth_ > 256) return Fail("nesting too deep");
    SkipWs();
    char c;
    if (!Peek(&c)) return Fail("unexpected end of input");
    bool ok;
    switch (c) {
      case '{':
        ok = ParseObject(out);
        break;
      case '[':
        ok = ParseArray(out);
        break;
      case '"':
        ok = ParseString(out != nullptr ? JsonValueBuilder::MutableString(out)
                                        : nullptr);
        if (ok && out != nullptr) {
          JsonValueBuilder::SetType(out, JsonValue::Type::kString);
        }
        break;
      case 't':
        ok = Literal("true");
        if (ok && out != nullptr) JsonValueBuilder::SetBool(out, true);
        break;
      case 'f':
        ok = Literal("false");
        if (ok && out != nullptr) JsonValueBuilder::SetBool(out, false);
        break;
      case 'n':
        ok = Literal("null");
        if (ok && out != nullptr) {
          JsonValueBuilder::SetType(out, JsonValue::Type::kNull);
        }
        break;
      default:
        ok = ParseNumber(out);
    }
    --depth_;
    return ok;
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    if (out != nullptr) {
      JsonValueBuilder::SetType(out, JsonValue::Type::kObject);
    }
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Peek(&c) || c != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(out != nullptr ? &key : nullptr)) return false;
      SkipWs();
      if (!Peek(&c) || c != ':') return Fail("expected ':'");
      ++pos_;
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        slot = JsonValueBuilder::AddMember(out, std::move(key));
      }
      if (!ParseValue(slot)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    if (out != nullptr) {
      JsonValueBuilder::SetType(out, JsonValue::Type::kArray);
    }
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        slot = JsonValueBuilder::AddElement(out);
      }
      if (!ParseValue(slot)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  /// Parses a string token; when `decoded` is non-null the unescaped
  /// contents are appended to it (\uXXXX and surrogate pairs as UTF-8).
  bool ParseString(std::string* decoded) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char e = text_[pos_];
        if (e == 'u') {
          std::uint32_t cp;
          if (!ParseHex4(pos_ + 1, &cp)) return Fail("bad \\u escape");
          pos_ += 4;
          // A high surrogate must pair with a following \uDC00-\uDFFF low
          // surrogate; combine into the supplementary-plane code point.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 6 < text_.size() &&
              text_[pos_ + 1] == '\\' && text_[pos_ + 2] == 'u') {
            std::uint32_t lo;
            if (ParseHex4(pos_ + 3, &lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              pos_ += 6;
            }
          }
          if (decoded != nullptr) AppendUtf8(cp, decoded);
        } else {
          char real;
          switch (e) {
            case '"': real = '"'; break;
            case '\\': real = '\\'; break;
            case '/': real = '/'; break;
            case 'b': real = '\b'; break;
            case 'f': real = '\f'; break;
            case 'n': real = '\n'; break;
            case 'r': real = '\r'; break;
            case 't': real = '\t'; break;
            default:
              return Fail("bad escape character");
          }
          if (decoded != nullptr) *decoded += real;
        }
      } else if (decoded != nullptr) {
        *decoded += static_cast<char>(c);
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  /// Reads 4 hex digits at `at` into `*cp`.
  bool ParseHex4(std::size_t at, std::uint32_t* cp) {
    if (at + 4 > text_.size()) return false;
    std::uint32_t v = 0;
    for (std::size_t i = at; i < at + 4; ++i) {
      unsigned char h = static_cast<unsigned char>(text_[i]);
      if (!std::isxdigit(h)) return false;
      v = v * 16 + static_cast<std::uint32_t>(
                       std::isdigit(h) ? h - '0' : std::tolower(h) - 'a' + 10);
    }
    *cp = v;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ <= start) return false;
    if (out != nullptr) {
      // The token was fully checked against the JSON grammar above, so
      // strtod on a NUL-terminated copy cannot fail.
      JsonValueBuilder::SetNumber(
          out, std::strtod(
                   std::string(text_.substr(start, pos_ - start)).c_str(),
                   nullptr));
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return Parser(text).Parse(error);
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  JsonValue parsed;
  if (!Parser(text).Parse(error, &parsed)) return false;
  *out = std::move(parsed);
  return true;
}

std::uint64_t JsonValue::AsUInt(std::uint64_t fallback) const {
  if (!IsNumber() || num_ < 0.0) return fallback;
  return static_cast<std::uint64_t>(num_ + 0.5);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!IsObject()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsDouble(fallback) : fallback;
}

std::uint64_t JsonValue::GetUInt(std::string_view key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsUInt(fallback) : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsBool(fallback) : fallback;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->IsString() ? v->AsString() : fallback;
}

}  // namespace obs
}  // namespace mio
