// Per-query structured logging (qlog) for workload runs. Where the
// stats sink (mio-stats-v1) serialises *one* query per process in full
// depth, the qlog is the workload-scale surface: one compact validated
// JSONL record per query ("mio-qlog-v1") — wall latency, per-phase
// seconds, the pruning funnel, the label-reuse outcome, the guardrail
// outcome, and resource footprints — cheap enough to append on every
// query of a long run.
//
// The same header also holds the tail-based trace sampler: tracing stays
// armed for every query, but the Chrome trace is only kept for queries
// exceeding a latency threshold or landing in the slowest-N, so the
// outliers that matter stay fully explainable while a 10k-query workload
// does not write 10k trace files.
//
// `mio run-workload` writes qlogs; `mio qlog report` aggregates them
// (p50/p95/p99 latency via the shared R-7 percentile helpers, per-phase
// aggregates, label hit rate per ceil(r) class, slowest-N pointers).
#pragma once

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace mio {
namespace obs {

/// One query's log record. String enums (`label_outcome`, `status`) are
/// carried as their canonical short names so the record round-trips
/// without pulling core headers into the obs layer; the workload runner
/// fills them from LabelOutcomeName / StatusCodeName.
struct QlogRecord {
  // Identity.
  std::uint64_t query_index = 0;  ///< position in the workload, 0-based
  std::string workload;           ///< workload-spec name ("" = unnamed)
  std::string dataset;
  std::string algo;               ///< "bigrid" / "bigrid-label"
  double r = 0.0;
  int ceil_r = 0;                 ///< the label-reuse equivalence class
  std::uint64_t k = 1;
  int threads = 1;

  // Timing. `wall_seconds` is the harness-side clock around the query;
  // `total_seconds` the engine-side clock (phases + glue).
  double wall_seconds = 0.0;
  double total_seconds = 0.0;
  double phase_label_input = 0.0;
  double phase_grid_mapping = 0.0;
  double phase_lower_bounding = 0.0;
  double phase_upper_bounding = 0.0;
  double phase_verification = 0.0;

  // Pruning funnel (objects -> upper-bound survivors -> verified).
  std::uint64_t objects = 0;
  std::uint64_t candidates = 0;
  std::uint64_t verified = 0;
  std::uint64_t distance_computations = 0;
  std::uint64_t winner_id = 0;
  std::uint64_t winner_score = 0;

  // Label reuse (LabelOutcomeName: off / hit_memory / hit_disk /
  // recorded / miss).
  std::string label_outcome = "off";
  std::uint64_t points_pruned_by_labels = 0;

  // Guardrail outcome (StatusCodeName).
  std::string status = "OK";
  bool complete = true;
  std::uint32_t degradation_level = 0;

  // Environment and resources.
  std::string pmu_tier;
  std::string kernel_tier;
  std::uint64_t index_memory_bytes = 0;
  std::uint64_t peak_memory_bytes = 0;
  std::uint64_t trace_dropped_spans = 0;

  // Batch execution (`mio run-workload --batch`). batch_size == 0 means
  // the query ran sequentially and the optional "batch" section is
  // omitted from the JSON line; a batched query carries its batch's id
  // and total member count so reports can split the two populations.
  std::uint64_t batch_id = 0;
  std::uint64_t batch_size = 0;

  /// True when the query ran as a QueryBatch member.
  bool Batched() const { return batch_size > 0; }

  /// True when the label lookup reused an existing set (memory or disk).
  bool LabelHit() const {
    return label_outcome == "hit_memory" || label_outcome == "hit_disk";
  }
};

/// Serialises one record as a single "mio-qlog-v1" JSON line (no
/// trailing newline). The output always passes ValidateQlogLine.
std::string QlogRecordToJsonLine(const QlogRecord& rec);

/// Schema check of one JSONL line: well-formed JSON, `"schema":
/// "mio-qlog-v1"`, every required section and field present with the
/// right type, and enum strings from their canonical sets.
Status ValidateQlogLine(std::string_view line);

/// Parses (and validates) one line back into a record.
Status ParseQlogRecord(std::string_view line, QlogRecord* out);

/// Reads a whole qlog file, validating every line; the line number is
/// included in any error.
Result<std::vector<QlogRecord>> LoadQlogFile(const std::string& path);

/// Append-oriented qlog file writer: one validated JSONL line per
/// Append(), flushed per record so a killed workload keeps every
/// completed query. "-" writes to stdout.
class QlogWriter {
 public:
  QlogWriter() = default;
  ~QlogWriter();
  QlogWriter(const QlogWriter&) = delete;
  QlogWriter& operator=(const QlogWriter&) = delete;

  /// Opens `path` (truncating, or appending with `append` — the bench
  /// collector appends workload records after the harness records).
  Status Open(const std::string& path, bool append = false);

  Status Append(const QlogRecord& rec);

  /// Flushes and closes; returns the first deferred write error.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  std::size_t records_written() const { return records_; }

 private:
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;  ///< false for "-" (stdout)
  std::size_t records_ = 0;
};

/// Tail-sampling policy: which queries keep their trace file.
struct TailSamplerConfig {
  /// Queries with wall latency >= this are tail, permanently (0 = off).
  double threshold_seconds = 0.0;
  /// The slowest N queries of the whole workload are tail; membership is
  /// provisional — a faster query is evicted when a slower one arrives
  /// (0 = off).
  std::size_t slowest_n = 0;

  bool enabled() const { return threshold_seconds > 0.0 || slowest_n > 0; }
};

/// Streaming decision-maker over per-query latencies. Offer() is called
/// once per query in workload order; the final tail set is exactly
///   {i : wall_i >= threshold}  ∪  slowest-N by (wall, index)
/// with ties broken toward the later index (deterministic — the check
/// scripts recompute the same set from the qlog).
class TailSampler {
 public:
  explicit TailSampler(TailSamplerConfig cfg) : cfg_(cfg) {}

  struct Decision {
    /// Export this query's trace now.
    bool export_trace = false;
    /// Previously-exported queries that just fell out of the slowest-N
    /// set: their trace files should be deleted.
    std::vector<std::uint64_t> evict;
  };

  Decision Offer(std::uint64_t index, double wall_seconds);

  bool enabled() const { return cfg_.enabled(); }

  /// Current tail set (sorted by index); final after the last Offer().
  std::vector<std::uint64_t> TailIndices() const;

 private:
  TailSamplerConfig cfg_;
  /// Current slowest-N members, ordered by (seconds, index) ascending —
  /// begin() is the next eviction candidate.
  std::set<std::pair<double, std::uint64_t>> slowest_;
  /// Threshold-exceeders: never evicted.
  std::unordered_set<std::uint64_t> permanent_;
};

/// Conventional trace-file name for a workload query, used by the
/// runner, the report, and the check scripts alike: "q000123.trace.json".
std::string TailTraceFileName(std::uint64_t query_index);

// --- Aggregation (`mio qlog report`) ---------------------------------------

/// Latency/seconds summary over one field of the records (R-7
/// percentiles, shared with `mio profile`).
struct QlogLatencySummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double sum = 0.0;
};

/// Per-phase aggregate: total seconds across the workload and the share
/// of the summed phase time.
struct QlogPhaseAggregate {
  std::string name;
  double total_seconds = 0.0;
  double share = 0.0;     ///< of the summed phase totals
  double p50 = 0.0;       ///< per-query median
  double p99 = 0.0;
};

/// Label-reuse effectiveness within one ceil(r) equivalence class.
struct QlogCeilClassStats {
  int ceil_r = 0;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;      ///< hit_memory + hit_disk
  std::uint64_t recorded = 0;  ///< misses that recorded a fresh set
  std::uint64_t misses = 0;    ///< misses with nothing recorded
  double HitRate() const {
    return queries > 0 ? static_cast<double>(hits) /
                             static_cast<double>(queries)
                       : 0.0;
  }
};

/// One slowest-N entry with enough identity to find the query again.
struct QlogSlowQuery {
  std::uint64_t query_index = 0;
  double wall_seconds = 0.0;
  double r = 0.0;
  std::string status;
  std::string label_outcome;
};

struct QlogReport {
  std::size_t num_queries = 0;
  std::size_t incomplete = 0;
  std::size_t degraded = 0;
  QlogLatencySummary latency;             ///< over wall_seconds
  std::vector<QlogPhaseAggregate> phases;
  std::vector<QlogCeilClassStats> ceil_classes;  ///< sorted by ceil_r
  std::vector<QlogSlowQuery> slowest;     ///< wall-descending, max N

  // Batched vs. sequential split (records with/without a "batch"
  // section). The per-population latency summaries are only meaningful
  // when the respective count is non-zero.
  std::size_t batched_queries = 0;
  QlogLatencySummary batched_latency;
  QlogLatencySummary sequential_latency;
};

/// Aggregates records (any order) into a report; `slowest_n` bounds the
/// slowest-queries table.
QlogReport BuildQlogReport(const std::vector<QlogRecord>& records,
                           std::size_t slowest_n = 5);

/// The machine-readable report ("mio-qlog-report-v1"). `trace_dir`
/// (optional) resolves slowest-N entries to existing trace files.
std::string QlogReportToJson(const QlogReport& report,
                             const std::string& trace_dir = "");

/// The human-readable report. Same trace_dir convention.
std::string FormatQlogReport(const QlogReport& report,
                             const std::string& trace_dir = "");

}  // namespace obs
}  // namespace mio
