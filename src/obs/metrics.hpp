// Pipeline metrics registry: monotonic counters and log2-scale
// histograms recording distributions the per-query QueryStats scalars
// cannot capture (key-list lengths, union cardinalities, kernel batch
// sizes, per-point candidate counts).
//
// Recording is atomic-free: each thread owns a cache-line-aligned shard
// (registered on first use, kept for the thread pool's lifetime) and a
// snapshot merges the shards under the registry lock. A disabled
// registry (SetMetricsEnabled(false)) reduces every recording site to
// one relaxed load and a predicted branch.
//
// Like the tracer, snapshots and resets are meant for quiescent points
// (between queries); concurrent recordings may straddle the merge.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace mio {
namespace obs {

/// Monotonic event counts. Extend here; names live in CounterName().
enum class Counter : int {
  kLbCellOrs = 0,        ///< small-cell bitset ORs during lower bounding
  kUbCellOrs,            ///< b_adj ORs during upper bounding
  kAdjBuilds,            ///< large-cell neighbourhood unions computed
  kPostingScans,         ///< posting lists scanned during verification
  kKernelBatches,        ///< dispatched (non-inline) batch kernel calls
  kVerifyPoints,         ///< points exactly verified
  kVerifyPointsSettled,  ///< verified points whose neighbourhood was
                         ///< already fully confirmed (no posting scan)
  kFaultsInjected,        ///< fault-injection sites that fired
  kQueryDeadlineExceeded, ///< queries stopped by their deadline
  kQueryCancelled,        ///< queries stopped by a cancel token
  kQueryDegraded,         ///< queries that shed work under memory budget
  kLabelsCorruptRecovered,  ///< corrupt label files recovered as cache miss
  kLabelRetryAttempts,      ///< label-store save/load retries performed
  kLabelRetryExhausted,     ///< label-store ops that failed every attempt
  kLabelCacheHits,          ///< label lookups served from cache or disk
  kLabelCacheMisses,        ///< label lookups with nothing reusable
  kTraceDroppedSpans,       ///< spans overwritten by tracer ring overflow
  kVerifyOctantsPruned,     ///< two-level octants skipped by the box prune
  kBatchQueries,            ///< queries submitted through QueryBatch
  kBatchClasses,            ///< distinct ceil(r) classes across batches
  kBatchGridBuildsSaved,    ///< batch members that reused a class grid
  kBatchPostingsBytesShared,  ///< posting bytes served from a shared grid
  kBatchCellsPartitioned,   ///< cells rewritten into the two-level layout
  kCount_
};

/// Value distributions, bucketed by log2. Names in HistogramName().
enum class Histogram : int {
  kLbKeyListLen = 0,      ///< small-grid key-list length per object
  kLbUnionBits,           ///< lower-bound union cardinality per object
  kUbGroupsPerObject,     ///< large-cell groups per object
  kUbUnionBits,           ///< upper-bound union cardinality per object
  kVerifyCandsPerPoint,   ///< unconfirmed candidates per verified point
  kKernelBatchSize,       ///< span length per dispatched kernel call
  kBatchArenaHighWater,   ///< verify-arena high-water bytes per batch
  kCount_
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount_);
inline constexpr int kNumHistograms = static_cast<int>(Histogram::kCount_);

const char* CounterName(Counter c);
const char* HistogramName(Histogram h);

/// Merged state of one histogram. Bucket 0 holds the value 0; bucket
/// b >= 1 holds values in [2^(b-1), 2^b).
struct HistogramSnapshot {
  static constexpr int kBuckets = 41;  // covers values up to 2^40-1

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningful only when count > 0
  std::uint64_t max = 0;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimated p-quantile (p in [0,1]) by linear interpolation inside the
  /// target log2 bucket's value range ([0,1) for bucket 0, [2^(b-1), 2^b)
  /// for b >= 1). Exact at bucket boundaries; 0 when empty.
  double Percentile(double p) const;
};

/// Snapshot of every counter and histogram, merged across thread shards.
struct MetricsSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistogramSnapshot, kNumHistograms> histograms{};

  bool Empty() const {
    for (std::uint64_t c : counters) {
      if (c != 0) return false;
    }
    for (const HistogramSnapshot& h : histograms) {
      if (h.count != 0) return false;
    }
    return true;
  }
};

namespace detail {

extern std::atomic<bool> g_metrics_enabled;

/// Log2 bucket index for a histogram value.
inline int BucketOf(std::uint64_t v) {
  if (v == 0) return 0;
  int b = std::bit_width(v);  // v in [2^(b-1), 2^b)
  return b < HistogramSnapshot::kBuckets ? b : HistogramSnapshot::kBuckets - 1;
}

struct HistogramShard {
  std::array<std::uint64_t, HistogramSnapshot::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = UINT64_MAX;
  std::uint64_t max = 0;

  void Observe(std::uint64_t v) {
    ++buckets[static_cast<std::size_t>(BucketOf(v))];
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
};

struct alignas(64) MetricShard {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistogramShard, kNumHistograms> histograms{};
};

extern thread_local MetricShard* tl_shard;
MetricShard* RegisterShard();

inline MetricShard& Shard() {
  MetricShard* s = tl_shard;
  return s != nullptr ? *s : *RegisterShard();
}

}  // namespace detail

inline bool MetricsEnabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool on);

/// Adds `v` to a counter on the calling thread's shard.
inline void Add(Counter c, std::uint64_t v = 1) {
  if (!MetricsEnabled()) return;
  detail::Shard().counters[static_cast<std::size_t>(c)] += v;
}

/// Records one histogram observation on the calling thread's shard.
inline void Observe(Histogram h, std::uint64_t v) {
  if (!MetricsEnabled()) return;
  detail::Shard().histograms[static_cast<std::size_t>(h)].Observe(v);
}

/// Merges every thread shard into one snapshot.
MetricsSnapshot SnapshotMetrics();

/// Zeroes every thread shard (shards stay registered).
void ResetMetrics();

}  // namespace obs
}  // namespace mio
