#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace mio {
namespace obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Per-thread span sink. Owned by the registry (not the thread), so a
/// snapshot taken after a thread exits still sees its spans.
struct ThreadBuffer {
  std::vector<TraceEvent> ring;
  std::size_t next = 0;          ///< ring write position
  std::uint64_t recorded = 0;    ///< lifetime pushes (>= ring occupancy)
  int tid = 0;
  int depth = 0;  ///< current span nesting on this thread
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  Clock::time_point epoch = Clock::now();
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

thread_local ThreadBuffer* tl_buffer = nullptr;

ThreadBuffer* RegisterThisThread() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto buf = std::make_unique<ThreadBuffer>();
  buf->tid = static_cast<int>(reg.buffers.size());
  buf->ring.resize(Tracer::kRingCapacity);
  tl_buffer = buf.get();
  reg.buffers.push_back(std::move(buf));
  return tl_buffer;
}

inline ThreadBuffer& Buffer() {
  ThreadBuffer* b = tl_buffer;
  return b != nullptr ? *b : *RegisterThisThread();
}

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now() - GetRegistry().epoch)
      .count();
}

}  // namespace

void TraceSpan::Begin(const char* name, const char* cat) {
  name_ = name;
  cat_ = cat;
  ThreadBuffer& buf = Buffer();
  ++buf.depth;
  // PMU read only on the hardware tier (one group read(2)); the timing
  // tier keeps spans at two clock reads.
  if (ActivePmuTier() == PmuTier::kHardware) pmu_begin_ = ReadPmuCounts();
  start_ns_ = NowNs();
}

void TraceSpan::End() {
  std::int64_t end_ns = NowNs();
  ThreadBuffer& buf = Buffer();
  int depth = --buf.depth;
  // A full ring means this store overwrites the oldest span. The drop is
  // visible both via Tracer::DroppedEvents (lifetime) and as the
  // trace.dropped_spans metrics counter (per-run, reset with the rest).
  if (buf.recorded >= Tracer::kRingCapacity) {
    Add(Counter::kTraceDroppedSpans);
  }
  TraceEvent& ev = buf.ring[buf.next];
  ev.name = name_;
  ev.cat = cat_;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  ev.tid = buf.tid;
  ev.depth = depth;
  ev.has_pmu = pmu_begin_.valid;
  if (ev.has_pmu) ev.pmu = ReadPmuCounts().DeltaSince(pmu_begin_);
  buf.next = (buf.next + 1) % Tracer::kRingCapacity;
  ++buf.recorded;
}

Tracer::Tracer() {
  const char* env = std::getenv("MIO_TRACE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  }
  GetRegistry();  // pin the epoch before the first span
}

Tracer& Tracer::Instance() {
  static Tracer* t = new Tracer();
  return *t;
}

void Tracer::SetEnabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void Tracer::Clear() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& buf : reg.buffers) {
    buf->next = 0;
    buf->recorded = 0;
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  Registry& reg = GetRegistry();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& buf : reg.buffers) {
      std::size_t count = static_cast<std::size_t>(
          std::min<std::uint64_t>(buf->recorded, kRingCapacity));
      // Oldest-first: a full ring starts at the write position.
      std::size_t start = buf->recorded > kRingCapacity ? buf->next : 0;
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(buf->ring[(start + i) % kRingCapacity]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // parents open before children
            });
  return out;
}

std::uint64_t Tracer::DroppedEvents() const {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t dropped = 0;
  for (const auto& buf : reg.buffers) {
    if (buf->recorded > kRingCapacity) dropped += buf->recorded - kRingCapacity;
  }
  return dropped;
}

std::size_t Tracer::NumThreads() const {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) {
    if (buf->recorded > 0) ++n;
  }
  return n;
}

std::string Tracer::ToChromeTraceJson(bool truncated) const {
  std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  // Named thread tracks so Perfetto shows "worker N" instead of bare ids.
  std::vector<int> tids;
  for (const TraceEvent& ev : events) tids.push_back(ev.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (int tid : tids) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("pid").Int(0);
    w.Key("tid").Int(tid);
    w.Key("name").String("thread_name");
    w.Key("args").BeginObject();
    w.Key("name").String("worker " + std::to_string(tid));
    w.EndObject();
    w.EndObject();
  }
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Key("ph").String("X");
    w.Key("pid").Int(0);
    w.Key("tid").Int(ev.tid);
    w.Key("name").String(ev.name);
    w.Key("cat").String(ev.cat);
    // Chrome's ts/dur are microseconds; fractional values keep ns detail.
    w.Key("ts").Double(static_cast<double>(ev.start_ns) / 1e3);
    w.Key("dur").Double(static_cast<double>(ev.dur_ns) / 1e3);
    if (ev.has_pmu) {
      w.Key("args").BeginObject();
      for (int e = 0; e < kNumPmuEvents; ++e) {
        PmuEvent pe = static_cast<PmuEvent>(e);
        if (pe == PmuEvent::kTaskClockNs) continue;  // dur already says it
        w.Key(PmuEventName(pe)).UInt(ev.pmu.Get(pe));
      }
      w.Key("ipc").Double(ev.pmu.Ipc());
      w.Key("cache_miss_rate").Double(ev.pmu.CacheMissRate());
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  // Ring overflow means the timeline is missing its oldest spans — mark
  // the export truncated just like an exit-flush partial write would be.
  std::uint64_t dropped = DroppedEvents();
  if (dropped > 0) w.Key("dropped_spans").UInt(dropped);
  if (truncated || dropped > 0) w.Key("truncated").Bool(true);
  w.EndObject();
  return std::move(w).Take();
}

Status Tracer::WriteChromeTrace(const std::string& path,
                                bool truncated) const {
  std::string json = ToChromeTraceJson(truncated);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace mio
