#include "obs/perf_counters.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#if defined(__linux__) && !defined(MIO_PMU_DISABLED)
#define MIO_PMU_HAVE_SYSCALL 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mio {
namespace obs {

namespace {

std::uint64_t MonotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Tier resolution state: kUnresolved until the first ActivePmuTier()
// call; afterwards holds a PmuTier value. Resolution is idempotent, so a
// rare double-resolve race is harmless.
constexpr int kUnresolved = -1;
std::atomic<int> g_tier{kUnresolved};

#if MIO_PMU_HAVE_SYSCALL

/// The hardware events of the group, in PmuEvent order.
constexpr std::uint64_t kHwConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES};
constexpr int kNumHwEvents = 5;

int OpenPerfEvent(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  // Kernel/hypervisor cycles are not ours to optimise, and excluding
  // them keeps the counters usable at perf_event_paranoid=2.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

/// Per-thread counter group. Owned by the thread (fds are closed when the
/// thread exits); reads are plain read(2) on the group leader.
struct PmuThreadContext {
  int leader_fd = -1;
  int sibling_fds[kNumHwEvents - 1] = {-1, -1, -1, -1};
  bool open_attempted = false;

  bool Open() {
    open_attempted = true;
    leader_fd = OpenPerfEvent(kHwConfigs[0], -1);
    if (leader_fd < 0) return false;
    for (int i = 1; i < kNumHwEvents; ++i) {
      int fd = OpenPerfEvent(kHwConfigs[i], leader_fd);
      if (fd < 0) {
        Close();
        return false;
      }
      sibling_fds[i - 1] = fd;
    }
    ioctl(leader_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }

  void Close() {
    for (int& fd : sibling_fds) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    if (leader_fd >= 0) close(leader_fd);
    leader_fd = -1;
  }

  ~PmuThreadContext() { Close(); }
};

thread_local PmuThreadContext tl_pmu;

/// Group read layout: nr, time_enabled, time_running, value[nr].
bool ReadGroup(PmuCounts* out) {
  PmuThreadContext& ctx = tl_pmu;
  if (!ctx.open_attempted && !ctx.Open()) return false;
  if (ctx.leader_fd < 0) return false;
  std::uint64_t buf[3 + kNumHwEvents];
  ssize_t n = read(ctx.leader_fd, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf)) || buf[0] != kNumHwEvents) {
    return false;
  }
  const std::uint64_t enabled = buf[1], running = buf[2];
  // Multiplexing compensation: with other perf users on the core, the
  // group only counts while scheduled; scale to the enabled window.
  const double scale =
      running > 0 && running < enabled
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  for (int i = 0; i < kNumHwEvents; ++i) {
    out->v[static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>(static_cast<double>(buf[3 + i]) * scale);
  }
  return true;
}

/// One-time probe on the calling thread: can a full group be opened?
bool ProbeHardware() {
  PmuThreadContext probe;
  bool ok = probe.Open();
  // The destructor closes the probe fds; the thread re-opens its own
  // context lazily on the first real read.
  return ok;
}

#else  // !MIO_PMU_HAVE_SYSCALL

bool ReadGroup(PmuCounts*) { return false; }
bool ProbeHardware() { return false; }

#endif

PmuTier ResolveTier() {
  if (PmuEnvDisables(std::getenv("MIO_PMU"))) return PmuTier::kTiming;
  return ProbeHardware() ? PmuTier::kHardware : PmuTier::kTiming;
}

}  // namespace

const char* PmuEventName(PmuEvent e) {
  switch (e) {
    case PmuEvent::kCycles:
      return "cycles";
    case PmuEvent::kInstructions:
      return "instructions";
    case PmuEvent::kCacheReferences:
      return "cache_references";
    case PmuEvent::kCacheMisses:
      return "cache_misses";
    case PmuEvent::kBranchMisses:
      return "branch_misses";
    case PmuEvent::kTaskClockNs:
      return "task_clock_ns";
    case PmuEvent::kCount_:
      break;
  }
  return "unknown";
}

PmuCounts& PmuCounts::operator+=(const PmuCounts& o) {
  for (int i = 0; i < kNumPmuEvents; ++i) {
    v[static_cast<std::size_t>(i)] += o.v[static_cast<std::size_t>(i)];
  }
  valid = valid || o.valid;
  return *this;
}

PmuCounts PmuCounts::DeltaSince(const PmuCounts& begin) const {
  PmuCounts d;
  for (int i = 0; i < kNumPmuEvents; ++i) {
    std::size_t s = static_cast<std::size_t>(i);
    d.v[s] = v[s] > begin.v[s] ? v[s] - begin.v[s] : 0;
  }
  d.valid = valid && begin.valid;
  return d;
}

bool PmuCounts::Empty() const {
  for (std::uint64_t x : v) {
    if (x != 0) return false;
  }
  return true;
}

double PmuCounts::Ipc() const {
  std::uint64_t cycles = Get(PmuEvent::kCycles);
  return cycles == 0 ? 0.0
                     : static_cast<double>(Get(PmuEvent::kInstructions)) /
                           static_cast<double>(cycles);
}

double PmuCounts::CacheMissRate() const {
  std::uint64_t refs = Get(PmuEvent::kCacheReferences);
  return refs == 0 ? 0.0
                   : static_cast<double>(Get(PmuEvent::kCacheMisses)) /
                         static_cast<double>(refs);
}

double PmuCounts::BranchMissesPerKiloInstructions() const {
  std::uint64_t ins = Get(PmuEvent::kInstructions);
  return ins == 0 ? 0.0
                  : 1000.0 * static_cast<double>(Get(PmuEvent::kBranchMisses)) /
                        static_cast<double>(ins);
}

const char* PmuTierName(PmuTier t) {
  return t == PmuTier::kHardware ? "hardware" : "timing";
}

PmuTier ActivePmuTier() {
  int t = g_tier.load(std::memory_order_relaxed);
  if (t == kUnresolved) {
    t = static_cast<int>(ResolveTier());
    int expected = kUnresolved;
    if (!g_tier.compare_exchange_strong(expected, t,
                                        std::memory_order_relaxed)) {
      t = expected;  // another thread resolved (or a test forced) first
    }
  }
  return static_cast<PmuTier>(t);
}

void ForcePmuTier(PmuTier t) {
  g_tier.store(static_cast<int>(t), std::memory_order_relaxed);
}

bool PmuEnvDisables(const char* value) {
  if (value == nullptr) return false;
  return std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0 ||
         std::strcmp(value, "false") == 0 || std::strcmp(value, "no") == 0 ||
         std::strcmp(value, "timing") == 0;
}

PmuCounts ReadPmuCounts() {
  PmuCounts c;
  c.Set(PmuEvent::kTaskClockNs, MonotonicNs());
  if (ActivePmuTier() == PmuTier::kHardware) {
    c.valid = ReadGroup(&c);
  }
  return c;
}

}  // namespace obs
}  // namespace mio
