// Exit-time observability flush: a backstop so `--trace-out` and
// `--stats-json` still produce valid, truncation-marked documents when
// the process leaves through an abnormal path (SIGINT/SIGTERM mid-query,
// a library std::exit, an unwound fatal error) instead of the normal
// emission at the end of the command.
//
// Protocol: the CLI arms the flusher with the output paths (and a
// pre-rendered minimal stats document) before running the query, and
// disarms it after the normal emission succeeds. If the process exits
// while armed:
//  - atexit: the trace ring is exported with a top-level
//    `"truncated": true` marker and the fallback stats document is
//    written — both full-fidelity, since atexit runs on a normal stack;
//  - SIGINT/SIGTERM: only the pre-rendered stats document is written
//    (open/write/close are async-signal-safe; JSON rendering is not),
//    then the signal is re-raised with default disposition so the exit
//    status stays honest.
#pragma once

#include <string>

namespace mio {
namespace obs {

struct ExitFlushConfig {
  std::string trace_path;  ///< "" = no trace flush
  std::string stats_path;  ///< "" = no stats flush ("-" writes stderr-safe fd 1)
  /// Complete JSON document written verbatim as the stats fallback. Must
  /// already carry its truncation marker (`"truncated": true`).
  std::string stats_document;
};

/// Arms (or re-arms) the flush; installs the atexit hook and the
/// SIGINT/SIGTERM handlers on first use.
void ArmExitFlush(ExitFlushConfig cfg);

/// Disarms after a successful normal emission; the exit hook becomes a
/// no-op. Signal handlers stay installed but do nothing while disarmed.
void DisarmExitFlush();

bool ExitFlushArmed();

/// Performs the armed flush immediately and disarms (idempotent). This is
/// the atexit path, exposed so tests can drive it without exiting.
void FlushObservabilityNow();

}  // namespace obs
}  // namespace mio
