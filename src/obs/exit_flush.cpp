#include "obs/exit_flush.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

#include "obs/stats_sink.hpp"
#include "obs/trace.hpp"

namespace mio {
namespace obs {

namespace {

// The armed configuration. The mutex serialises Arm/Disarm/Flush from
// normal code; the signal handler reads only the pre-staged raw buffers
// below and never takes the lock.
std::mutex g_mu;
ExitFlushConfig g_cfg;
std::atomic<bool> g_armed{false};
bool g_hooks_installed = false;

// Signal-handler view of the stats fallback: a stable byte buffer and
// path, published before g_armed flips true. Sized generously — the
// fallback document is a few hundred bytes of run identity.
constexpr std::size_t kSigBufCap = 4096;
char g_sig_stats_path[kSigBufCap];
char g_sig_stats_doc[kSigBufCap];
std::size_t g_sig_stats_len = 0;

void WriteAllFd(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = write(fd, data, len);
    if (n <= 0) return;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Async-signal-safe: open/write/close only, on pre-staged buffers.
void SignalHandler(int sig) {
  if (g_armed.load(std::memory_order_acquire) && g_sig_stats_len > 0) {
    int fd = g_sig_stats_path[0] == '-' && g_sig_stats_path[1] == '\0'
                 ? STDOUT_FILENO
                 : open(g_sig_stats_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      WriteAllFd(fd, g_sig_stats_doc, g_sig_stats_len);
      WriteAllFd(fd, "\n", 1);
      if (fd != STDOUT_FILENO) close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process reports
  // death-by-signal (scripts watching the exit status stay correct).
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void AtExitHook() { FlushObservabilityNow(); }

}  // namespace

void ArmExitFlush(ExitFlushConfig cfg) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (!g_hooks_installed) {
    std::atexit(AtExitHook);
    std::signal(SIGINT, SignalHandler);
    std::signal(SIGTERM, SignalHandler);
    g_hooks_installed = true;
  }
  // Stage the signal-path buffers before publishing the armed flag.
  g_sig_stats_len = 0;
  if (!cfg.stats_path.empty() && cfg.stats_path.size() < kSigBufCap &&
      cfg.stats_document.size() + 1 < kSigBufCap) {
    cfg.stats_path.copy(g_sig_stats_path, cfg.stats_path.size());
    g_sig_stats_path[cfg.stats_path.size()] = '\0';
    cfg.stats_document.copy(g_sig_stats_doc, cfg.stats_document.size());
    g_sig_stats_len = cfg.stats_document.size();
  }
  g_cfg = std::move(cfg);
  g_armed.store(true, std::memory_order_release);
}

void DisarmExitFlush() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed.store(false, std::memory_order_release);
  g_cfg = ExitFlushConfig{};
  g_sig_stats_len = 0;
}

bool ExitFlushArmed() { return g_armed.load(std::memory_order_acquire); }

void FlushObservabilityNow() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (!g_armed.load(std::memory_order_acquire)) return;
  g_armed.store(false, std::memory_order_release);
  g_sig_stats_len = 0;
  if (!g_cfg.trace_path.empty()) {
    (void)Tracer::Instance().WriteChromeTrace(g_cfg.trace_path,
                                              /*truncated=*/true);
  }
  if (!g_cfg.stats_path.empty() && !g_cfg.stats_document.empty()) {
    (void)WriteTextFile(g_cfg.stats_path, g_cfg.stats_document + "\n");
  }
  g_cfg = ExitFlushConfig{};
}

}  // namespace obs
}  // namespace mio
