// Batch geometry kernels: the verification hot path evaluates the
// interaction predicate dist(p, q) <= r over contiguous runs of candidate
// points, so the primitives here take structure-of-arrays coordinate
// spans (xs/ys/zs) and process a whole run per call — SSE2 two lanes or
// AVX2 four lanes at a time, with a portable scalar fallback.
//
// The implementation tier is selected once at startup via cpuid
// (AVX2+FMA -> SSE2 -> scalar) and can be overridden with the MIO_KERNEL
// environment variable (scalar | sse2 | avx2; clamped to what the CPU
// supports) or programmatically with SetKernelTier (tests).
//
// Every tier is bit-identical: all tiers evaluate the squared distance as
// (dx*dx + dy*dy) + dz*dz with one IEEE rounding per operation — the
// vector paths use explicit mul/add intrinsics (never FMA contraction),
// so each lane performs exactly the scalar computation and boundary-exact
// comparisons (dist == r) agree across tiers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/cpu_features.hpp"
#include "geo/point.hpp"

namespace mio {

namespace kernel_detail {

/// Spans at or below this length take the inline scalar path instead of
/// the dispatched vector kernels: BIGrid posting lists and grid/kd-tree
/// runs are typically a handful of points, and an out-of-line call plus
/// vector setup (broadcasts, tail handling) costs more than the whole
/// scan at these sizes. The bypass evaluates the identical expression,
/// so results stay bit-equal to every tier.
inline constexpr std::size_t kInlineBatchCutoff = 16;

std::ptrdiff_t AnyWithinDispatch(const Point& q, const double* xs,
                                 const double* ys, const double* zs,
                                 std::size_t n, double r2);
std::size_t CountWithinDispatch(const Point& q, const double* xs,
                                const double* ys, const double* zs,
                                std::size_t n, double r2);

}  // namespace kernel_detail

/// Index of the first point in the span with squared distance to q
/// <= r2, or -1 when none qualifies. All tiers return the lowest index,
/// so early-exit scans behave identically under every dispatch tier.
inline std::ptrdiff_t AnyWithin(const Point& q, const double* xs,
                                const double* ys, const double* zs,
                                std::size_t n, double r2) {
  if (n <= kernel_detail::kInlineBatchCutoff) {
    for (std::size_t i = 0; i < n; ++i) {
      double dx = q.x - xs[i];
      double dy = q.y - ys[i];
      double dz = q.z - zs[i];
      if ((dx * dx + dy * dy) + dz * dz <= r2) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return -1;
  }
  return kernel_detail::AnyWithinDispatch(q, xs, ys, zs, n, r2);
}

/// Number of points in the span with squared distance to q <= r2.
inline std::size_t CountWithin(const Point& q, const double* xs,
                               const double* ys, const double* zs,
                               std::size_t n, double r2) {
  if (n <= kernel_detail::kInlineBatchCutoff) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double dx = q.x - xs[i];
      double dy = q.y - ys[i];
      double dz = q.z - zs[i];
      if ((dx * dx + dy * dy) + dz * dz <= r2) ++count;
    }
    return count;
  }
  return kernel_detail::CountWithinDispatch(q, xs, ys, zs, n, r2);
}

/// The tier the dispatched kernels currently run at. Resolved on first
/// use: min(BestSupportedTier(), MIO_KERNEL override if set).
KernelTier ActiveKernelTier();

/// Forces the dispatch tier (clamped to BestSupportedTier()); returns the
/// tier actually activated. Not thread-safe against in-flight kernel
/// calls — intended for startup and single-threaded test code.
KernelTier SetKernelTier(KernelTier tier);

/// Structure-of-arrays mirror of a point sequence; the batch form the
/// kernels consume. Baselines build these once per query so their
/// pairwise predicates run through the same kernels as BIGrid.
struct SoaPoints {
  std::vector<double> xs, ys, zs;

  SoaPoints() = default;
  explicit SoaPoints(const std::vector<Point>& pts) { Assign(pts); }

  void Assign(const std::vector<Point>& pts) {
    xs.resize(pts.size());
    ys.resize(pts.size());
    zs.resize(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      xs[i] = pts[i].x;
      ys[i] = pts[i].y;
      zs[i] = pts[i].z;
    }
  }

  std::size_t size() const { return xs.size(); }
};

namespace kernel_detail {

// Per-tier entry points, exposed for the differential tests and the
// micro-benchmarks. The SSE2/AVX2 symbols exist on every build but fall
// back to the scalar kernel when the target ISA is not compiled in
// (non-x86); calling a vector kernel on a CPU without the ISA is
// undefined — gate on BestSupportedTier() first.
std::ptrdiff_t AnyWithinScalar(const Point& q, const double* xs,
                               const double* ys, const double* zs,
                               std::size_t n, double r2);
std::size_t CountWithinScalar(const Point& q, const double* xs,
                              const double* ys, const double* zs,
                              std::size_t n, double r2);
std::ptrdiff_t AnyWithinSse2(const Point& q, const double* xs,
                             const double* ys, const double* zs,
                             std::size_t n, double r2);
std::size_t CountWithinSse2(const Point& q, const double* xs,
                            const double* ys, const double* zs, std::size_t n,
                            double r2);
std::ptrdiff_t AnyWithinAvx2(const Point& q, const double* xs,
                             const double* ys, const double* zs,
                             std::size_t n, double r2);
std::size_t CountWithinAvx2(const Point& q, const double* xs,
                            const double* ys, const double* zs, std::size_t n,
                            double r2);

}  // namespace kernel_detail

}  // namespace mio
