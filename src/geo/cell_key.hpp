// Grid cell keys. A BIGrid cell key is the integer lattice coordinate of a
// point at a given cell width (paper Defs. 2-3): small-grid width r/sqrt(3)
// (two points in one cell are certainly within r — the cell diagonal is
// exactly r), large-grid width ceil(r) (points within r of a cell lie in
// the cell or its 26 neighbours; the ceiling makes the large grid shareable
// across every query with the same ceil(r), enabling the label reuse of
// §III-D).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>

#include "geo/point.hpp"

namespace mio {

/// Integer lattice coordinate of a grid cell.
struct CellKey {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;

  bool operator==(const CellKey& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
  bool operator<(const CellKey& o) const {
    if (x != o.x) return x < o.x;
    if (y != o.y) return y < o.y;
    return z < o.z;
  }

  std::string ToString() const;
};

/// Hash functor for CellKey (64-bit mix of the three lattice coords).
struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const {
    // Fibonacci-style 64-bit mixing of the packed coordinates.
    std::uint64_t h = (std::uint64_t(std::uint32_t(k.x)) << 32) ^
                      (std::uint64_t(std::uint32_t(k.y)) << 16) ^
                      std::uint64_t(std::uint32_t(k.z));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

/// Cell key of `p` at cell width `width` (floor lattice mapping).
inline CellKey KeyForWidth(const Point& p, double width) {
  return CellKey{static_cast<std::int32_t>(std::floor(p.x / width)),
                 static_cast<std::int32_t>(std::floor(p.y / width)),
                 static_cast<std::int32_t>(std::floor(p.z / width))};
}

/// Small-grid cell width for threshold r: r / sqrt(3) (paper Def. 2).
inline double SmallGridWidth(double r) { return r / std::sqrt(3.0); }

/// Small-grid cell width for planar (2-D, constant-z) data: r / sqrt(2).
/// The cell diagonal in the occupied plane is then exactly r, so the
/// same-cell-implies-interacting guarantee holds with larger (tighter
/// lower-bounding) cells — the straightforward 2-D treatment the paper's
/// footnote 1 leaves to the reader.
inline double SmallGridWidth2D(double r) { return r / std::sqrt(2.0); }

/// Large-grid cell width for threshold r: ceil(r) (paper Def. 3). For
/// sub-unit thresholds ceil(r) would still be 1, which the definition
/// intends (any r in (0,1] shares the width-1 grid).
inline double LargeGridWidth(double r) { return std::ceil(r); }

/// Invokes f(key) for the 26 neighbours of k, and for k itself when
/// `include_self`. Deterministic (z-fastest) order: label replay and
/// parallel partitioning rely on a stable enumeration.
template <typename F>
void ForEachNeighbor(const CellKey& k, bool include_self, F&& f) {
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      for (std::int32_t dz = -1; dz <= 1; ++dz) {
        if (!include_self && dx == 0 && dy == 0 && dz == 0) continue;
        f(CellKey{k.x + dx, k.y + dy, k.z + dz});
      }
    }
  }
}

/// Number of cells in a 3-D Moore neighbourhood including the centre.
inline constexpr int kNeighborhoodSize = 27;

}  // namespace mio
