// Spatial point type. The paper targets geo-spatial data: 3-D points, with
// 2-D handled as z = 0 (paper footnote 1).
#pragma once

#include <cmath>
#include <cstdint>

namespace mio {

/// A 3-D point with double coordinates. 2-D datasets set z = 0.
struct Point {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  bool operator==(const Point& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

/// Squared Euclidean distance (avoids the sqrt on hot comparison paths).
inline double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  double dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

/// Euclidean distance, as used by the paper's interaction predicate.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// The interaction predicate: dist(a, b) <= r, evaluated without sqrt.
inline bool WithinDistance(const Point& a, const Point& b, double r) {
  return SquaredDistance(a, b) <= r * r;
}

}  // namespace mio
