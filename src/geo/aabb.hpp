// Axis-aligned bounding boxes; used by the kd-tree pruning and the data
// generators (domain extents), not by BIGrid itself (the paper argues
// MBR-based indexing is ineffective for point-set objects, §II-B).
#pragma once

#include <limits>

#include "geo/point.hpp"

namespace mio {

/// Axis-aligned bounding box in 3-D.
struct Aabb {
  Point min{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  Point max{-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};

  /// True once at least one point has been folded in.
  bool Valid() const { return min.x <= max.x; }

  /// Grows the box to cover p.
  void Extend(const Point& p);
  /// Grows the box to cover another box.
  void Extend(const Aabb& other);

  /// Squared distance from p to the box (0 if inside).
  double SquaredDistanceTo(const Point& p) const;

  /// Minimal squared distance between two boxes (0 if overlapping).
  double MinSquaredDistanceTo(const Aabb& other) const;

  double ExtentX() const { return max.x - min.x; }
  double ExtentY() const { return max.y - min.y; }
  double ExtentZ() const { return max.z - min.z; }
};

}  // namespace mio
