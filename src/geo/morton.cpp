#include "geo/morton.hpp"

namespace mio {
namespace {

// Spreads the low 21 bits of v so that there are two zero bits between
// consecutive source bits ("bit interleave by 3").
std::uint64_t Part1By2(std::uint64_t v) {
  v &= 0x1fffffull;
  v = (v | (v << 32)) & 0x1f00000000ffffull;
  v = (v | (v << 16)) & 0x1f0000ff0000ffull;
  v = (v | (v << 8)) & 0x100f00f00f00f00full;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

std::uint64_t Compact1By2(std::uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ull;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00full;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffull;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffull;
  v = (v ^ (v >> 32)) & 0x1fffffull;
  return v;
}

constexpr std::uint32_t kOffset = 1u << 20;  // centres the signed range

}  // namespace

std::uint64_t MortonEncode3(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z) {
  return (Part1By2(z) << 2) | (Part1By2(y) << 1) | Part1By2(x);
}

void MortonDecode3(std::uint64_t code, std::uint32_t* x, std::uint32_t* y,
                   std::uint32_t* z) {
  *x = static_cast<std::uint32_t>(Compact1By2(code));
  *y = static_cast<std::uint32_t>(Compact1By2(code >> 1));
  *z = static_cast<std::uint32_t>(Compact1By2(code >> 2));
}

std::uint64_t MortonOfKey(const CellKey& k) {
  return MortonEncode3(static_cast<std::uint32_t>(k.x + kOffset),
                       static_cast<std::uint32_t>(k.y + kOffset),
                       static_cast<std::uint32_t>(k.z + kOffset));
}

}  // namespace mio
