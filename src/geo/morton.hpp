// 3-D Morton (Z-order) codes. Used to give grid cells a locality-preserving
// total order: the parallel partitioners walk cells in Morton order so each
// core receives spatially coherent work, and the label store writes points
// in a stable order.
#pragma once

#include <cstdint>

#include "geo/cell_key.hpp"

namespace mio {

/// Interleaves the low 21 bits of x, y, z into a 63-bit Morton code.
std::uint64_t MortonEncode3(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Inverse of MortonEncode3 (recovers the low 21 bits of each coordinate).
void MortonDecode3(std::uint64_t code, std::uint32_t* x, std::uint32_t* y,
                   std::uint32_t* z);

/// Morton code of a (possibly negative) cell key; coordinates are offset
/// into the unsigned range so ordering is consistent across the origin.
std::uint64_t MortonOfKey(const CellKey& k);

}  // namespace mio
