#include "geo/cell_key.hpp"

#include <cstdio>

namespace mio {

std::string CellKey::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%d,%d,%d)", x, y, z);
  return buf;
}

}  // namespace mio
