#include "geo/kernels.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "obs/metrics.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define MIO_X86_KERNELS 1
#include <immintrin.h>
#else
#define MIO_X86_KERNELS 0
#endif

namespace mio {
namespace kernel_detail {

// ---------------------------------------------------------------------------
// Scalar reference tier. Compiled with auto-vectorization disabled: this
// tier is the portable reference the SIMD tiers are validated (and
// benchmarked) against, so its codegen must not silently depend on what
// the host compiler vectorizes. Results are unaffected either way — GCC
// vectorizes IEEE-strictly — only the baseline's speed is pinned down.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#define MIO_NO_AUTOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define MIO_NO_AUTOVEC
#endif

MIO_NO_AUTOVEC
std::ptrdiff_t AnyWithinScalar(const Point& q, const double* xs,
                               const double* ys, const double* zs,
                               std::size_t n, double r2) {
  for (std::size_t i = 0; i < n; ++i) {
    double dx = q.x - xs[i];
    double dy = q.y - ys[i];
    double dz = q.z - zs[i];
    if ((dx * dx + dy * dy) + dz * dz <= r2) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MIO_NO_AUTOVEC
std::size_t CountWithinScalar(const Point& q, const double* xs,
                              const double* ys, const double* zs,
                              std::size_t n, double r2) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double dx = q.x - xs[i];
    double dy = q.y - ys[i];
    double dz = q.z - zs[i];
    if ((dx * dx + dy * dy) + dz * dz <= r2) ++count;
  }
  return count;
}

#if MIO_X86_KERNELS

// ---------------------------------------------------------------------------
// SSE2 tier — 2 doubles per lane group. Explicit mul/add intrinsics keep
// the per-lane arithmetic identical to the scalar tier (no contraction).
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) std::ptrdiff_t AnyWithinSse2(
    const Point& q, const double* xs, const double* ys, const double* zs,
    std::size_t n, double r2) {
  const __m128d qx = _mm_set1_pd(q.x);
  const __m128d qy = _mm_set1_pd(q.y);
  const __m128d qz = _mm_set1_pd(q.z);
  const __m128d vr2 = _mm_set1_pd(r2);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d dx = _mm_sub_pd(qx, _mm_loadu_pd(xs + i));
    __m128d dy = _mm_sub_pd(qy, _mm_loadu_pd(ys + i));
    __m128d dz = _mm_sub_pd(qz, _mm_loadu_pd(zs + i));
    __m128d d2 = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)),
        _mm_mul_pd(dz, dz));
    int mask = _mm_movemask_pd(_mm_cmple_pd(d2, vr2));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
    }
  }
  if (i < n) {
    std::ptrdiff_t tail = AnyWithinScalar(q, xs + i, ys + i, zs + i, n - i, r2);
    if (tail >= 0) return static_cast<std::ptrdiff_t>(i) + tail;
  }
  return -1;
}

__attribute__((target("sse2"))) std::size_t CountWithinSse2(
    const Point& q, const double* xs, const double* ys, const double* zs,
    std::size_t n, double r2) {
  const __m128d qx = _mm_set1_pd(q.x);
  const __m128d qy = _mm_set1_pd(q.y);
  const __m128d qz = _mm_set1_pd(q.z);
  const __m128d vr2 = _mm_set1_pd(r2);
  // Hits accumulate in-vector: the compare mask is all-ones (-1 as int64)
  // per hit lane, so subtracting it counts without a per-iteration
  // vector->GPR round trip. Two independent accumulators hide latency.
  __m128i acc0 = _mm_setzero_si128();
  __m128i acc1 = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128d dx0 = _mm_sub_pd(qx, _mm_loadu_pd(xs + i));
    __m128d dy0 = _mm_sub_pd(qy, _mm_loadu_pd(ys + i));
    __m128d dz0 = _mm_sub_pd(qz, _mm_loadu_pd(zs + i));
    __m128d d20 = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(dx0, dx0), _mm_mul_pd(dy0, dy0)),
        _mm_mul_pd(dz0, dz0));
    acc0 = _mm_sub_epi64(acc0, _mm_castpd_si128(_mm_cmple_pd(d20, vr2)));
    __m128d dx1 = _mm_sub_pd(qx, _mm_loadu_pd(xs + i + 2));
    __m128d dy1 = _mm_sub_pd(qy, _mm_loadu_pd(ys + i + 2));
    __m128d dz1 = _mm_sub_pd(qz, _mm_loadu_pd(zs + i + 2));
    __m128d d21 = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(dx1, dx1), _mm_mul_pd(dy1, dy1)),
        _mm_mul_pd(dz1, dz1));
    acc1 = _mm_sub_epi64(acc1, _mm_castpd_si128(_mm_cmple_pd(d21, vr2)));
  }
  for (; i + 2 <= n; i += 2) {
    __m128d dx = _mm_sub_pd(qx, _mm_loadu_pd(xs + i));
    __m128d dy = _mm_sub_pd(qy, _mm_loadu_pd(ys + i));
    __m128d dz = _mm_sub_pd(qz, _mm_loadu_pd(zs + i));
    __m128d d2 = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)),
        _mm_mul_pd(dz, dz));
    acc0 = _mm_sub_epi64(acc0, _mm_castpd_si128(_mm_cmple_pd(d2, vr2)));
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes),
                   _mm_add_epi64(acc0, acc1));
  std::size_t count = static_cast<std::size_t>(lanes[0] + lanes[1]);
  if (i < n) count += CountWithinScalar(q, xs + i, ys + i, zs + i, n - i, r2);
  return count;
}

// ---------------------------------------------------------------------------
// AVX2 tier — 4 doubles per lane group.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) std::ptrdiff_t AnyWithinAvx2(
    const Point& q, const double* xs, const double* ys, const double* zs,
    std::size_t n, double r2) {
  const __m256d qx = _mm256_set1_pd(q.x);
  const __m256d qy = _mm256_set1_pd(q.y);
  const __m256d qz = _mm256_set1_pd(q.z);
  const __m256d vr2 = _mm256_set1_pd(r2);
  std::size_t i = 0;
  // Miss path is the common case in verification scans: test two vectors
  // per iteration and branch on their OR, locating the exact first hit
  // only once something matched.
  for (; i + 8 <= n; i += 8) {
    __m256d dx0 = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i));
    __m256d dy0 = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i));
    __m256d dz0 = _mm256_sub_pd(qz, _mm256_loadu_pd(zs + i));
    __m256d d20 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx0, dx0), _mm256_mul_pd(dy0, dy0)),
        _mm256_mul_pd(dz0, dz0));
    __m256d dx1 = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i + 4));
    __m256d dy1 = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i + 4));
    __m256d dz1 = _mm256_sub_pd(qz, _mm256_loadu_pd(zs + i + 4));
    __m256d d21 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx1, dx1), _mm256_mul_pd(dy1, dy1)),
        _mm256_mul_pd(dz1, dz1));
    __m256d hit0 = _mm256_cmp_pd(d20, vr2, _CMP_LE_OQ);
    __m256d hit1 = _mm256_cmp_pd(d21, vr2, _CMP_LE_OQ);
    if (_mm256_movemask_pd(_mm256_or_pd(hit0, hit1)) != 0) {
      int mask0 = _mm256_movemask_pd(hit0);
      if (mask0 != 0) {
        return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask0);
      }
      return static_cast<std::ptrdiff_t>(i) + 4 +
             __builtin_ctz(_mm256_movemask_pd(hit1));
    }
  }
  for (; i + 4 <= n; i += 4) {
    __m256d dx = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i));
    __m256d dy = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i));
    __m256d dz = _mm256_sub_pd(qz, _mm256_loadu_pd(zs + i));
    __m256d d2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
        _mm256_mul_pd(dz, dz));
    int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(d2, vr2, _CMP_LE_OQ));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
    }
  }
  if (i < n) {
    std::ptrdiff_t tail = AnyWithinSse2(q, xs + i, ys + i, zs + i, n - i, r2);
    if (tail >= 0) return static_cast<std::ptrdiff_t>(i) + tail;
  }
  return -1;
}

__attribute__((target("avx2"))) std::size_t CountWithinAvx2(
    const Point& q, const double* xs, const double* ys, const double* zs,
    std::size_t n, double r2) {
  const __m256d qx = _mm256_set1_pd(q.x);
  const __m256d qy = _mm256_set1_pd(q.y);
  const __m256d qz = _mm256_set1_pd(q.z);
  const __m256d vr2 = _mm256_set1_pd(r2);
  // In-vector hit accumulation (see CountWithinSse2), two accumulators.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d dx0 = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i));
    __m256d dy0 = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i));
    __m256d dz0 = _mm256_sub_pd(qz, _mm256_loadu_pd(zs + i));
    __m256d d20 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx0, dx0), _mm256_mul_pd(dy0, dy0)),
        _mm256_mul_pd(dz0, dz0));
    acc0 = _mm256_sub_epi64(
        acc0, _mm256_castpd_si256(_mm256_cmp_pd(d20, vr2, _CMP_LE_OQ)));
    __m256d dx1 = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i + 4));
    __m256d dy1 = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i + 4));
    __m256d dz1 = _mm256_sub_pd(qz, _mm256_loadu_pd(zs + i + 4));
    __m256d d21 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx1, dx1), _mm256_mul_pd(dy1, dy1)),
        _mm256_mul_pd(dz1, dz1));
    acc1 = _mm256_sub_epi64(
        acc1, _mm256_castpd_si256(_mm256_cmp_pd(d21, vr2, _CMP_LE_OQ)));
  }
  for (; i + 4 <= n; i += 4) {
    __m256d dx = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i));
    __m256d dy = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i));
    __m256d dz = _mm256_sub_pd(qz, _mm256_loadu_pd(zs + i));
    __m256d d2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
        _mm256_mul_pd(dz, dz));
    acc0 = _mm256_sub_epi64(
        acc0, _mm256_castpd_si256(_mm256_cmp_pd(d2, vr2, _CMP_LE_OQ)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes),
                      _mm256_add_epi64(acc0, acc1));
  std::size_t count =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  if (i < n) count += CountWithinSse2(q, xs + i, ys + i, zs + i, n - i, r2);
  return count;
}

#else  // !MIO_X86_KERNELS — vector symbols forward to scalar so the
       // per-tier API links everywhere (BestSupportedTier() never selects
       // them on non-x86).

std::ptrdiff_t AnyWithinSse2(const Point& q, const double* xs,
                             const double* ys, const double* zs,
                             std::size_t n, double r2) {
  return AnyWithinScalar(q, xs, ys, zs, n, r2);
}
std::size_t CountWithinSse2(const Point& q, const double* xs,
                            const double* ys, const double* zs, std::size_t n,
                            double r2) {
  return CountWithinScalar(q, xs, ys, zs, n, r2);
}
std::ptrdiff_t AnyWithinAvx2(const Point& q, const double* xs,
                             const double* ys, const double* zs,
                             std::size_t n, double r2) {
  return AnyWithinScalar(q, xs, ys, zs, n, r2);
}
std::size_t CountWithinAvx2(const Point& q, const double* xs,
                            const double* ys, const double* zs, std::size_t n,
                            double r2) {
  return CountWithinScalar(q, xs, ys, zs, n, r2);
}

#endif  // MIO_X86_KERNELS

}  // namespace kernel_detail

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

using AnyFn = std::ptrdiff_t (*)(const Point&, const double*, const double*,
                                 const double*, std::size_t, double);
using CountFn = std::size_t (*)(const Point&, const double*, const double*,
                                const double*, std::size_t, double);

struct KernelOps {
  KernelTier tier;
  AnyFn any;
  CountFn count;
};

constexpr KernelOps kOpsTable[] = {
    {KernelTier::kScalar, kernel_detail::AnyWithinScalar,
     kernel_detail::CountWithinScalar},
    {KernelTier::kSse2, kernel_detail::AnyWithinSse2,
     kernel_detail::CountWithinSse2},
    {KernelTier::kAvx2, kernel_detail::AnyWithinAvx2,
     kernel_detail::CountWithinAvx2},
};

KernelTier ClampToSupported(KernelTier tier) {
  KernelTier best = BestSupportedTier();
  return static_cast<int>(tier) > static_cast<int>(best) ? best : tier;
}

/// Startup tier: the best supported, unless MIO_KERNEL names a valid
/// lower tier (an unsupported or unknown name falls back to detection).
KernelTier StartupTier() {
  const char* env = std::getenv("MIO_KERNEL");
  KernelTier tier = BestSupportedTier();
  if (env != nullptr) {
    KernelTier requested;
    if (ParseKernelTier(env, &requested)) tier = ClampToSupported(requested);
  }
  return tier;
}

std::atomic<const KernelOps*> g_ops{nullptr};

const KernelOps& Ops() {
  const KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = &kOpsTable[static_cast<int>(StartupTier())];
    g_ops.store(ops, std::memory_order_release);
  }
  return *ops;
}

}  // namespace

KernelTier ActiveKernelTier() { return Ops().tier; }

KernelTier SetKernelTier(KernelTier tier) {
  KernelTier effective = ClampToSupported(tier);
  g_ops.store(&kOpsTable[static_cast<int>(effective)],
              std::memory_order_release);
  return effective;
}

namespace kernel_detail {

// Batch-size metrics live here, on the dispatched (n > inline cutoff)
// path only: the inline small-batch bypass stays instrumentation-free so
// its few-nanosecond budget is untouched.
std::ptrdiff_t AnyWithinDispatch(const Point& q, const double* xs,
                                 const double* ys, const double* zs,
                                 std::size_t n, double r2) {
  obs::Add(obs::Counter::kKernelBatches);
  obs::Observe(obs::Histogram::kKernelBatchSize, n);
  return Ops().any(q, xs, ys, zs, n, r2);
}

std::size_t CountWithinDispatch(const Point& q, const double* xs,
                                const double* ys, const double* zs,
                                std::size_t n, double r2) {
  obs::Add(obs::Counter::kKernelBatches);
  obs::Observe(obs::Histogram::kKernelBatchSize, n);
  return Ops().count(q, xs, ys, zs, n, r2);
}

}  // namespace kernel_detail

}  // namespace mio
