#include "geo/aabb.hpp"

#include <algorithm>

namespace mio {

void Aabb::Extend(const Point& p) {
  min.x = std::min(min.x, p.x);
  min.y = std::min(min.y, p.y);
  min.z = std::min(min.z, p.z);
  max.x = std::max(max.x, p.x);
  max.y = std::max(max.y, p.y);
  max.z = std::max(max.z, p.z);
}

void Aabb::Extend(const Aabb& other) {
  if (!other.Valid()) return;
  Extend(other.min);
  Extend(other.max);
}

namespace {
inline double AxisGap(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}
}  // namespace

double Aabb::SquaredDistanceTo(const Point& p) const {
  double dx = AxisGap(p.x, min.x, max.x);
  double dy = AxisGap(p.y, min.y, max.y);
  double dz = AxisGap(p.z, min.z, max.z);
  return dx * dx + dy * dy + dz * dz;
}

double Aabb::MinSquaredDistanceTo(const Aabb& other) const {
  auto gap = [](double lo1, double hi1, double lo2, double hi2) {
    if (hi1 < lo2) return lo2 - hi1;
    if (hi2 < lo1) return lo1 - hi2;
    return 0.0;
  };
  double dx = gap(min.x, max.x, other.min.x, other.max.x);
  double dy = gap(min.y, max.y, other.min.y, other.max.y);
  double dz = gap(min.z, max.z, other.min.z, other.max.z);
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace mio
