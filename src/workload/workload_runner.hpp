// Workload executor: runs a WorkloadSpec's query sequence through one
// MioEngine (so label and grid caches persist across queries, as in the
// paper's BIGrid-label experiments), appending one mio-qlog-v1 record per
// query and keeping Chrome traces only for tail queries (latency
// threshold and/or slowest-N — see obs/qlog.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/qlog.hpp"
#include "object/object_set.hpp"
#include "workload/workload_spec.hpp"

namespace mio {

struct WorkloadRunOptions {
  /// Dataset display name stamped into qlog records ("" falls back to the
  /// spec's dataset path).
  std::string dataset_name;

  /// JSONL output path ("-" = stdout, "" = no qlog).
  std::string qlog_path;

  /// Directory for tail trace files (created if missing). "" disables
  /// trace export even when `tail` is configured.
  std::string trace_dir;

  /// Which queries keep a trace. Tracing is armed for *every* query (so
  /// any query can turn out to be tail), but only tail queries' traces
  /// reach disk, named q<index>.trace.json.
  obs::TailSamplerConfig tail;

  /// Label directory handed to the engine (external label residency);
  /// "" keeps labels in memory only.
  std::string label_dir;

  /// Fold the spec's query directives into one MioEngine::QueryBatch
  /// call instead of a sequential Query loop. Qlog records then carry a
  /// "batch" section (id + size) so `mio qlog report` can split batched
  /// vs. sequential latencies. Per-query trace export is disabled in
  /// batch mode (members run inside one engine call); the tail set is
  /// still computed from per-member engine timings.
  bool batch = false;

  /// Per-query progress lines on stderr.
  bool verbose = false;
};

struct WorkloadRunSummary {
  std::size_t queries = 0;
  std::size_t failed = 0;      ///< non-OK status (guardrail trips etc.)
  std::size_t incomplete = 0;  ///< complete == false
  double wall_seconds = 0.0;   ///< whole workload, including engine reuse
  std::size_t qlog_records = 0;
  std::vector<std::uint64_t> tail_indices;  ///< final tail set, sorted
  std::size_t traces_written = 0;           ///< files currently on disk
  std::size_t traces_evicted = 0;           ///< written then deleted
};

/// Runs the workload against `objects` (sampled per the spec first).
/// Queries run sequentially in spec order; an individual query's
/// guardrail trip is recorded in its qlog line, not fatal. Fails only on
/// setup/IO errors (spec-less datasets, unwritable qlog or trace dir).
Result<WorkloadRunSummary> RunWorkload(const ObjectSet& objects,
                                       const WorkloadSpec& spec,
                                       const WorkloadRunOptions& opts);

}  // namespace mio
