// Workload specification: a small line-oriented file describing a
// sequence of MIO queries to run against one dataset, so multi-query
// behaviour (label reuse across ceil(r) classes, tail latency, guardrail
// outcomes) is exercisable from the CLI (`mio run-workload`) and the
// check scripts without bespoke driver programs.
//
// Format (one directive per line, '#' starts a comment):
//
//   name urban-mix                  # workload name, stamped into the qlog
//   dataset data/urban.bin          # optional; the CLI flag overrides it
//   sample 0.5 seed=42              # optional object sampling (Fig. 6)
//   defaults k=1 threads=2 labels=on
//   query r=4
//   query r=4.2 threads=4           # per-query overrides of the defaults
//   repeat 34 r=3,4.5,9             # 34 cycles through the r list
//
// `repeat N r=a,b,c` appends N queries cycling through the listed radii —
// the one-line way to build a ~100-query workload that deliberately mixes
// ceil(r) classes so label reuse is exercised.
//
// Key=value settings (usable in `defaults`, `query`, and `repeat`):
//   r=F            query radius (required on `query`; list on `repeat`)
//   k=N            top-k
//   threads=N      OpenMP threads (<=1 serial)
//   labels=on|off  BIGrid-label: consult AND record labels
//   record=on|off  record_labels alone (labels=on implies record=on)
//   reuse_grid=on|off
//   deadline_ms=F  per-query wall budget (0 = unlimited)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace mio {

/// One query of a workload: radius plus the QueryOptions subset the spec
/// grammar exposes.
struct WorkloadQuery {
  double r = 0.0;
  std::size_t k = 1;
  int threads = 1;
  bool use_labels = false;
  bool record_labels = false;
  bool reuse_grid = false;
  double deadline_ms = 0.0;
};

struct WorkloadSpec {
  std::string name;               ///< "" = unnamed
  std::string dataset;            ///< optional dataset path
  double sample_rate = 1.0;       ///< 1.0 = full dataset
  std::uint64_t sample_seed = 42;
  std::vector<WorkloadQuery> queries;
};

/// Parses a spec document. Errors carry the 1-based line number.
Result<WorkloadSpec> ParseWorkloadSpec(std::string_view text);

/// Reads and parses a spec file; errors are prefixed with the path.
Result<WorkloadSpec> LoadWorkloadSpec(const std::string& path);

}  // namespace mio
