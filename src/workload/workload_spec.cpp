#include "workload/workload_spec.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mio {

namespace {

/// Splits a directive line into whitespace-separated tokens, dropping
/// everything from '#' on.
std::vector<std::string> Tokenize(const std::string& line) {
  std::string effective = line;
  std::size_t hash = effective.find('#');
  if (hash != std::string::npos) effective.resize(hash);
  std::istringstream in(effective);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

Status LineError(std::size_t lineno, const std::string& msg) {
  return Status::InvalidArgument("workload spec line " +
                                 std::to_string(lineno) + ": " + msg);
}

bool ParseOnOff(const std::string& value, bool* out) {
  if (value == "on" || value == "true" || value == "1") {
    *out = true;
    return true;
  }
  if (value == "off" || value == "false" || value == "0") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  return end != value.c_str() && *end == '\0';
}

bool ParseUInt(const std::string& value, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(value.c_str(), &end, 10);
  return end != value.c_str() && *end == '\0';
}

/// Applies one key=value setting to `q`. `r_list` (nullable) receives the
/// radii: `query` allows one, `repeat` a comma-separated list.
Status ApplySetting(const std::string& setting, WorkloadQuery* q,
                    std::vector<double>* r_list, std::size_t lineno) {
  std::size_t eq = setting.find('=');
  if (eq == std::string::npos) {
    return LineError(lineno, "expected key=value, got \"" + setting + "\"");
  }
  std::string key = setting.substr(0, eq);
  std::string value = setting.substr(eq + 1);
  if (key == "r") {
    if (r_list == nullptr) {
      return LineError(lineno, "r= is not allowed in defaults");
    }
    std::istringstream in(value);
    std::string item;
    while (std::getline(in, item, ',')) {
      double r = 0.0;
      if (!ParseDouble(item, &r) || r <= 0.0) {
        return LineError(lineno, "bad radius \"" + item + "\"");
      }
      r_list->push_back(r);
    }
    if (r_list->empty()) return LineError(lineno, "empty radius list");
    return Status::OK();
  }
  if (key == "k") {
    std::uint64_t k = 0;
    if (!ParseUInt(value, &k) || k == 0) {
      return LineError(lineno, "bad k \"" + value + "\"");
    }
    q->k = static_cast<std::size_t>(k);
    return Status::OK();
  }
  if (key == "threads") {
    std::uint64_t t = 0;
    if (!ParseUInt(value, &t) || t == 0) {
      return LineError(lineno, "bad threads \"" + value + "\"");
    }
    q->threads = static_cast<int>(t);
    return Status::OK();
  }
  if (key == "labels") {
    bool on = false;
    if (!ParseOnOff(value, &on)) {
      return LineError(lineno, "bad labels value \"" + value + "\"");
    }
    q->use_labels = on;
    q->record_labels = on;  // labels=on implies recording; record= refines
    return Status::OK();
  }
  if (key == "record") {
    bool on = false;
    if (!ParseOnOff(value, &on)) {
      return LineError(lineno, "bad record value \"" + value + "\"");
    }
    q->record_labels = on;
    return Status::OK();
  }
  if (key == "reuse_grid") {
    bool on = false;
    if (!ParseOnOff(value, &on)) {
      return LineError(lineno, "bad reuse_grid value \"" + value + "\"");
    }
    q->reuse_grid = on;
    return Status::OK();
  }
  if (key == "deadline_ms") {
    double d = 0.0;
    if (!ParseDouble(value, &d) || d < 0.0) {
      return LineError(lineno, "bad deadline_ms \"" + value + "\"");
    }
    q->deadline_ms = d;
    return Status::OK();
  }
  return LineError(lineno, "unknown setting \"" + key + "\"");
}

}  // namespace

Result<WorkloadSpec> ParseWorkloadSpec(std::string_view text) {
  WorkloadSpec spec;
  WorkloadQuery defaults;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    if (directive == "name") {
      if (tokens.size() != 2) return LineError(lineno, "name takes one token");
      spec.name = tokens[1];
    } else if (directive == "dataset") {
      if (tokens.size() != 2) {
        return LineError(lineno, "dataset takes one path");
      }
      spec.dataset = tokens[1];
    } else if (directive == "sample") {
      if (tokens.size() < 2) return LineError(lineno, "sample takes a rate");
      if (!ParseDouble(tokens[1], &spec.sample_rate) ||
          spec.sample_rate <= 0.0 || spec.sample_rate > 1.0) {
        return LineError(lineno, "sample rate must be in (0, 1]");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i].rfind("seed=", 0) == 0) {
          if (!ParseUInt(tokens[i].substr(5), &spec.sample_seed)) {
            return LineError(lineno, "bad seed \"" + tokens[i] + "\"");
          }
        } else {
          return LineError(lineno, "unknown sample option \"" + tokens[i] +
                                       "\"");
        }
      }
    } else if (directive == "defaults") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        MIO_RETURN_NOT_OK(
            ApplySetting(tokens[i], &defaults, nullptr, lineno));
      }
    } else if (directive == "query") {
      WorkloadQuery q = defaults;
      std::vector<double> r_list;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        MIO_RETURN_NOT_OK(ApplySetting(tokens[i], &q, &r_list, lineno));
      }
      if (r_list.size() != 1) {
        return LineError(lineno, "query needs exactly one r=");
      }
      q.r = r_list[0];
      spec.queries.push_back(q);
    } else if (directive == "repeat") {
      if (tokens.size() < 3) {
        return LineError(lineno, "repeat takes a count and settings");
      }
      std::uint64_t count = 0;
      if (!ParseUInt(tokens[1], &count) || count == 0) {
        return LineError(lineno, "bad repeat count \"" + tokens[1] + "\"");
      }
      WorkloadQuery q = defaults;
      std::vector<double> r_list;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        MIO_RETURN_NOT_OK(ApplySetting(tokens[i], &q, &r_list, lineno));
      }
      if (r_list.empty()) {
        return LineError(lineno, "repeat needs an r= list");
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        q.r = r_list[static_cast<std::size_t>(i % r_list.size())];
        spec.queries.push_back(q);
      }
    } else {
      return LineError(lineno, "unknown directive \"" + directive + "\"");
    }
  }
  if (spec.queries.empty()) {
    return Status::InvalidArgument("workload spec: no queries");
  }
  return spec;
}

Result<WorkloadSpec> LoadWorkloadSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open workload spec: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read error in workload spec: " + path);
  }
  Result<WorkloadSpec> spec = ParseWorkloadSpec(buf.str());
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

}  // namespace mio
