#include "workload/workload_runner.hpp"

#include <cstdio>
#include <filesystem>

#include "common/fault_injection.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/mio_engine.hpp"
#include "geo/cell_key.hpp"
#include "geo/kernels.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "object/sampling.hpp"

namespace mio {

namespace {

/// Sum of per-tag peaks from the process-wide tracker — an upper-bound
/// style footprint (tags peak at different times), stable across runs.
std::uint64_t TrackerPeakBytes() {
  std::uint64_t total = 0;
  for (const MemoryTracker::Entry& e : MemoryTracker::Instance().Snapshot()) {
    total += e.peak_bytes;
  }
  return total;
}

/// One query's qlog record — shared by the sequential and batch paths so
/// the two emit field-identical lines (batch adds the "batch" section).
obs::QlogRecord MakeQlogRecord(const WorkloadSpec& spec,
                               const std::string& dataset_name,
                               std::size_t objects, std::size_t index,
                               const WorkloadQuery& wq, const QueryResult& res,
                               double wall) {
  const QueryStats& stats = res.stats;
  obs::QlogRecord rec;
  rec.query_index = index;
  rec.workload = spec.name;
  rec.dataset = dataset_name;
  rec.algo = wq.use_labels ? "bigrid-label" : "bigrid";
  rec.r = wq.r;
  rec.ceil_r = static_cast<int>(LargeGridWidth(wq.r));
  rec.k = wq.k;
  rec.threads = stats.threads;
  rec.wall_seconds = wall;
  rec.total_seconds = stats.total_seconds;
  rec.phase_label_input = stats.phases.label_input;
  rec.phase_grid_mapping = stats.phases.grid_mapping;
  rec.phase_lower_bounding = stats.phases.lower_bounding;
  rec.phase_upper_bounding = stats.phases.upper_bounding;
  rec.phase_verification = stats.phases.verification;
  rec.objects = objects;
  rec.candidates = stats.num_candidates;
  rec.verified = stats.num_verified;
  rec.distance_computations = stats.distance_computations;
  if (!res.topk.empty()) {
    rec.winner_id = res.best().id;
    rec.winner_score = res.best().score;
  }
  rec.label_outcome = LabelOutcomeName(stats.label_outcome);
  rec.points_pruned_by_labels = stats.points_pruned_by_labels;
  rec.status = StatusCodeName(res.status.code());
  rec.complete = res.complete;
  rec.degradation_level = stats.degradation_level;
  rec.pmu_tier = obs::PmuTierName(obs::ActivePmuTier());
  rec.kernel_tier = KernelTierName(ActiveKernelTier());
  rec.index_memory_bytes = stats.index_memory_bytes;
  rec.peak_memory_bytes = TrackerPeakBytes();
  return rec;
}

}  // namespace

Result<WorkloadRunSummary> RunWorkload(const ObjectSet& objects,
                                       const WorkloadSpec& spec,
                                       const WorkloadRunOptions& opts) {
  WorkloadRunSummary summary;

  // Sampling (paper Fig. 6): the sampled set must outlive the engine.
  ObjectSet sampled;
  const ObjectSet* use = &objects;
  if (spec.sample_rate < 1.0) {
    sampled = SampleObjects(objects, spec.sample_rate, spec.sample_seed);
    use = &sampled;
  }
  if (use->empty()) {
    return Status::InvalidArgument("workload: dataset is empty after sampling");
  }

  obs::QlogWriter qlog;
  if (!opts.qlog_path.empty()) {
    MIO_RETURN_NOT_OK(qlog.Open(opts.qlog_path));
  }

  // Tail traces need tracing compiled in and a directory to land in.
  bool want_traces = opts.tail.enabled() && !opts.trace_dir.empty();
#ifdef MIO_TRACING_DISABLED
  want_traces = false;
#endif
  if (want_traces) {
    std::error_code ec;
    std::filesystem::create_directories(opts.trace_dir, ec);
    if (ec) {
      return Status::IOError("workload: cannot create trace dir: " +
                             opts.trace_dir);
    }
  }
  obs::TailSampler sampler(opts.tail);
  obs::Tracer& tracer = obs::Tracer::Instance();
  const bool tracer_was_enabled = tracer.enabled();

  const std::string dataset_name =
      !opts.dataset_name.empty() ? opts.dataset_name : spec.dataset;

  // One engine across the whole workload: label reuse across queries
  // sharing ceil(r) is the point of mixing radius classes.
  MioEngine engine(*use, opts.label_dir);

  Timer workload_timer;

  // --- Batch mode: fold every query directive into one QueryBatch ---------
  // The engine amortises grid builds / label lookups / verification
  // scratch per ceil(r) class; per-member qlog records are emitted
  // afterwards with engine-side timings (there is no per-member harness
  // wall clock inside a single engine call).
  if (opts.batch) {
    std::vector<BatchQuery> batch(spec.queries.size());
    for (std::size_t i = 0; i < spec.queries.size(); ++i) {
      const WorkloadQuery& wq = spec.queries[i];
      batch[i].r = wq.r;
      batch[i].options.threads = wq.threads;
      batch[i].options.k = wq.k;
      batch[i].options.use_labels = wq.use_labels;
      batch[i].options.record_labels = wq.record_labels;
      batch[i].options.reuse_grid = wq.reuse_grid;
      batch[i].options.deadline_ms = wq.deadline_ms;
    }
    // The tail-sampling fault site stays exercisable through the batch
    // path: the delay lands before the batch, inflating member 0's
    // workload-level share deterministically in fault-storm tests.
    if (MIO_FAULT_HIT("workload.query_delay")) {
      Timer delay;
      while (delay.ElapsedSeconds() < 0.05) {
      }
    }
    BatchResult bres = engine.QueryBatch(batch);
    for (std::size_t i = 0; i < spec.queries.size(); ++i) {
      const QueryResult& res = bres.results[i];
      const double wall = res.stats.total_seconds;
      if (!res.status.ok()) ++summary.failed;
      if (!res.complete) ++summary.incomplete;
      if (qlog.is_open()) {
        obs::QlogRecord rec = MakeQlogRecord(spec, dataset_name, use->size(),
                                             i, spec.queries[i], res, wall);
        rec.batch_id = 0;
        rec.batch_size = spec.queries.size();
        MIO_RETURN_NOT_OK(qlog.Append(rec));
      }
      if (sampler.enabled()) {
        (void)sampler.Offer(static_cast<std::uint64_t>(i), wall);
      }
      if (opts.verbose) {
        std::fprintf(stderr,
                     "workload %s q%zu/%zu r=%g wall=%.6fs status=%s (batch)\n",
                     spec.name.c_str(), i + 1, spec.queries.size(),
                     spec.queries[i].r, wall,
                     StatusCodeName(res.status.code()));
      }
    }
    summary.wall_seconds = workload_timer.ElapsedSeconds();
    summary.queries = spec.queries.size();
    summary.tail_indices = sampler.TailIndices();
    summary.qlog_records = qlog.records_written();
    MIO_RETURN_NOT_OK(qlog.Close());
    return summary;
  }

  for (std::size_t i = 0; i < spec.queries.size(); ++i) {
    const WorkloadQuery& wq = spec.queries[i];
    QueryOptions qopts;
    qopts.threads = wq.threads;
    qopts.k = wq.k;
    qopts.use_labels = wq.use_labels;
    qopts.record_labels = wq.record_labels;
    qopts.reuse_grid = wq.reuse_grid;
    qopts.deadline_ms = wq.deadline_ms;

    if (want_traces) {
      tracer.Clear();
      tracer.SetEnabled(true);
    }
    Timer wall_timer;
    // Fault site for deterministic tail-sampling tests: an armed
    // workload.query_delay busy-waits inside the timed region, forcing
    // this query into the tail.
    if (MIO_FAULT_HIT("workload.query_delay")) {
      Timer delay;
      while (delay.ElapsedSeconds() < 0.05) {
      }
    }
    QueryResult res = engine.Query(wq.r, qopts);
    const double wall = wall_timer.ElapsedSeconds();
    if (want_traces) tracer.SetEnabled(tracer_was_enabled);

    if (!res.status.ok()) ++summary.failed;
    if (!res.complete) ++summary.incomplete;

    if (qlog.is_open()) {
      obs::QlogRecord rec =
          MakeQlogRecord(spec, dataset_name, use->size(), i, wq, res, wall);
      rec.trace_dropped_spans = want_traces ? tracer.DroppedEvents() : 0;
      MIO_RETURN_NOT_OK(qlog.Append(rec));
    }

    if (want_traces) {
      obs::TailSampler::Decision d =
          sampler.Offer(static_cast<std::uint64_t>(i), wall);
      // Export before the next query's Clear() wipes the rings.
      if (d.export_trace) {
        std::filesystem::path path =
            std::filesystem::path(opts.trace_dir) / obs::TailTraceFileName(i);
        MIO_RETURN_NOT_OK(tracer.WriteChromeTrace(path.string()));
        ++summary.traces_written;
      }
      for (std::uint64_t evicted : d.evict) {
        std::filesystem::path path =
            std::filesystem::path(opts.trace_dir) /
            obs::TailTraceFileName(evicted);
        std::error_code ec;
        std::filesystem::remove(path, ec);  // best-effort
        ++summary.traces_evicted;
        if (summary.traces_written > 0) --summary.traces_written;
      }
    } else if (sampler.enabled()) {
      // No trace files, but still track the tail set (summary/testing).
      (void)sampler.Offer(static_cast<std::uint64_t>(i), wall);
    }

    if (opts.verbose) {
      std::fprintf(stderr,
                   "workload %s q%zu/%zu r=%g wall=%.6fs status=%s\n",
                   spec.name.c_str(), i + 1, spec.queries.size(), wq.r, wall,
                   StatusCodeName(res.status.code()));
    }
  }
  summary.wall_seconds = workload_timer.ElapsedSeconds();
  summary.queries = spec.queries.size();
  summary.tail_indices = sampler.TailIndices();
  summary.qlog_records = qlog.records_written();
  MIO_RETURN_NOT_OK(qlog.Close());
  return summary;
}

}  // namespace mio
