#include "datagen/neuron_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.hpp"

namespace mio {
namespace datagen {
namespace {

struct Vec3 {
  double x, y, z;
};

Vec3 RandomUnit(Pcg32& rng) {
  // Marsaglia: uniform on the sphere.
  double u = rng.NextDouble(-1.0, 1.0);
  double theta = rng.NextDouble(0.0, 2.0 * 3.14159265358979323846);
  double s = std::sqrt(std::max(0.0, 1.0 - u * u));
  return Vec3{s * std::cos(theta), s * std::sin(theta), u};
}

Vec3 Blend(const Vec3& a, const Vec3& b, double wa) {
  Vec3 v{wa * a.x + (1.0 - wa) * b.x, wa * a.y + (1.0 - wa) * b.y,
         wa * a.z + (1.0 - wa) * b.z};
  double len = std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
  if (len < 1e-12) return a;
  return Vec3{v.x / len, v.y / len, v.z / len};
}

/// One growth cone: current position + heading.
struct Cone {
  Point pos;
  Vec3 dir;
};

}  // namespace

ObjectSet MakeNeuronLike(const NeuronConfig& config) {
  Pcg32 rng(config.seed, 0x6e6575726f6eULL);  // "neuron"
  ObjectSet set;

  // Cluster centres: the spatial skew knob.
  std::vector<Point> clusters;
  for (int c = 0; c < std::max(config.num_clusters, 1); ++c) {
    clusters.push_back(Point{rng.NextDouble(0.0, config.volume_side),
                             rng.NextDouble(0.0, config.volume_side),
                             rng.NextDouble(0.0, config.volume_side)});
  }

  for (std::size_t i = 0; i < config.num_objects; ++i) {
    // Soma near a random cluster centre.
    const Point& c = clusters[rng.NextBounded(
        static_cast<std::uint32_t>(clusters.size()))];
    Point soma{c.x + config.cluster_sigma * rng.NextGaussian(),
               c.y + config.cluster_sigma * rng.NextGaussian(),
               c.z + config.cluster_sigma * rng.NextGaussian()};

    std::size_t target =
        config.points_per_object +
        static_cast<std::size_t>(0.4 * config.points_per_object *
                                 (rng.NextDouble() - 0.5));
    target = std::max<std::size_t>(target, 4);

    Object obj;
    obj.points.reserve(target);
    obj.points.push_back(soma);

    // Initial stems radiate from the soma; growth cones advance as
    // persistent random walks and occasionally bifurcate (capped so the
    // arbor stays tree-like rather than exploding).
    int stems = config.stems_min +
                static_cast<int>(rng.NextBounded(static_cast<std::uint32_t>(
                    config.stems_max - config.stems_min + 1)));
    std::vector<Cone> cones;
    for (int s = 0; s < stems; ++s) cones.push_back(Cone{soma, RandomUnit(rng)});

    std::size_t cone_cursor = 0;
    while (obj.points.size() < target && !cones.empty()) {
      Cone& cone = cones[cone_cursor % cones.size()];
      // Advance: persistent direction + angular noise.
      cone.dir = Blend(cone.dir, RandomUnit(rng), config.persistence);
      cone.pos.x += config.step_length * cone.dir.x;
      cone.pos.y += config.step_length * cone.dir.y;
      cone.pos.z += config.step_length * cone.dir.z;
      obj.points.push_back(cone.pos);

      if (cones.size() < 64 && rng.NextDouble() < config.branch_prob) {
        cones.push_back(Cone{cone.pos, RandomUnit(rng)});
      }
      ++cone_cursor;
    }
    set.Add(std::move(obj));
  }
  return set;
}

}  // namespace datagen
}  // namespace mio
