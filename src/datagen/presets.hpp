// Named dataset presets mirroring the paper's Table I. "Quick" sizes are
// laptop-scaled (used by the test suite and default benches); "full"
// restores the paper's n and m. The per-dataset r unit (micrometres for
// the neuron sets, metres for the bird sets) is baked into the generator
// geometry, so the paper's r in [4, 10] sweep is meaningful on all of
// them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "object/object_set.hpp"

namespace mio {
namespace datagen {

/// The five datasets of the paper's empirical study.
enum class Preset {
  kNeuron,   ///< Table I: n=776,    m=7960, unit um
  kNeuron2,  ///< Table I: n=5493,   m=848,  unit um
  kBird,     ///< Table I: n=143042, m=50,   unit m
  kBird2,    ///< Table I: n=29247,  m=100,  unit m
  kSyn,      ///< Table I: n=851519, m=52
};

/// Quick/full sizing of a preset.
enum class Scale { kQuick, kFull };

/// Parses "neuron", "neuron2", "bird", "bird2", "syn" (case-sensitive).
/// Returns false on unknown names.
bool ParsePreset(const std::string& name, Preset* out);

/// Canonical name of a preset.
std::string PresetName(Preset preset);

/// All five presets in the paper's order.
std::vector<Preset> AllPresets();

/// Generates a preset dataset (deterministic per preset+scale+seed).
ObjectSet MakePreset(Preset preset, Scale scale = Scale::kQuick,
                     std::uint64_t seed = 42);

/// The (n, m) this preset targets at this scale, for reporting.
void PresetTargetSize(Preset preset, Scale scale, std::size_t* n,
                      std::size_t* m);

}  // namespace datagen
}  // namespace mio
