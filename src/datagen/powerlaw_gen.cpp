#include "datagen/powerlaw_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.hpp"

namespace mio {
namespace datagen {

ObjectSet MakePowerLaw(const PowerLawConfig& config) {
  Pcg32 rng(config.seed, 0x73796eULL);  // "syn"
  ObjectSet set;

  // Hub sites and their Zipf weights: hub h has weight 1/(h+1)^alpha.
  int hubs = std::max(config.num_hubs, 1);
  std::vector<Point> centres;
  std::vector<double> cdf;
  double total = 0.0;
  for (int h = 0; h < hubs; ++h) {
    centres.push_back(Point{rng.NextDouble(0.0, config.domain_side),
                            rng.NextDouble(0.0, config.domain_side),
                            rng.NextDouble(0.0, config.domain_side)});
    total += 1.0 / std::pow(static_cast<double>(h + 1), config.zipf_exponent);
    cdf.push_back(total);
  }

  std::size_t background = static_cast<std::size_t>(
      config.background_fraction * static_cast<double>(config.num_objects));

  for (std::size_t i = 0; i < config.num_objects; ++i) {
    Point centre;
    if (i < background) {
      centre = Point{rng.NextDouble(0.0, config.domain_side),
                     rng.NextDouble(0.0, config.domain_side),
                     rng.NextDouble(0.0, config.domain_side)};
    } else {
      double u = rng.NextDouble() * total;
      std::size_t h = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      h = std::min(h, centres.size() - 1);
      const Point& c = centres[h];
      centre = Point{c.x + config.hub_sigma * rng.NextGaussian(),
                     c.y + config.hub_sigma * rng.NextGaussian(),
                     c.z + config.hub_sigma * rng.NextGaussian()};
    }
    Object obj;
    std::size_t m = std::max<std::size_t>(config.points_per_object, 1);
    obj.points.reserve(m);
    for (std::size_t p = 0; p < m; ++p) {
      obj.points.push_back(
          Point{centre.x + config.object_sigma * rng.NextGaussian(),
                centre.y + config.object_sigma * rng.NextGaussian(),
                centre.z + config.object_sigma * rng.NextGaussian()});
    }
    set.Add(std::move(obj));
  }
  return set;
}

}  // namespace datagen
}  // namespace mio
