// Synthetic neuron-morphology generator — the stand-in for the paper's
// NeuroMorpho rat-neuron datasets (Neuron, Neuron-2). Each object is a
// branching tree of 3-D sample points (a soma plus axon/dendrite-like
// stems grown as persistent random walks with stochastic bifurcation),
// packed into a shared tissue volume. This preserves the properties the
// paper's index exploits: objects with complex elongated shapes that make
// MBRs useless, strong spatial skew (dense neuropil regions vs. empty
// gaps), and interactions driven by close passes between neurites.
// Coordinates are in micrometres, matching the paper's unit for r.
#pragma once

#include <cstdint>

#include "object/object_set.hpp"

namespace mio {
namespace datagen {

/// Parameters for the neuron generator.
struct NeuronConfig {
  std::size_t num_objects = 200;     ///< n
  std::size_t points_per_object = 500;  ///< target m (+-20% jitter)
  std::uint64_t seed = 1;

  /// Tissue volume side length in micrometres. Smaller -> denser -> more
  /// interactions at a given r.
  double volume_side = 400.0;

  /// Number of soma clusters (cortical-column-like skew); somas scatter
  /// around cluster centres with `cluster_sigma`.
  int num_clusters = 6;
  double cluster_sigma = 45.0;

  /// Arbor shape: stems per soma, random-walk step, direction persistence
  /// in [0,1], branching probability per step.
  int stems_min = 2;
  int stems_max = 5;
  double step_length = 2.5;
  double persistence = 0.85;
  double branch_prob = 0.03;
};

/// Generates a neuron-like object collection (deterministic per seed).
ObjectSet MakeNeuronLike(const NeuronConfig& config);

}  // namespace datagen
}  // namespace mio
