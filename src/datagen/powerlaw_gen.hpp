// Synthetic power-law generator — the stand-in for the paper's Syn
// dataset, which was generated "so that its score distribution follows a
// power law, based on a human-brain network". Objects are small point
// clouds attached to hub sites whose populations follow a Zipf
// distribution: objects at a big hub interact with most of that hub's
// population (high score), objects at tiny hubs or in the scattered
// background interact with few — yielding the heavy-tailed score
// distribution the paper relies on.
#pragma once

#include <cstdint>

#include "object/object_set.hpp"

namespace mio {
namespace datagen {

/// Parameters for the power-law generator.
struct PowerLawConfig {
  std::size_t num_objects = 20000;     ///< n
  std::size_t points_per_object = 26;  ///< m
  std::uint64_t seed = 3;

  int num_hubs = 64;
  double zipf_exponent = 1.3;  ///< hub population skew
  /// Fraction of objects scattered uniformly instead of hub-attached.
  double background_fraction = 0.25;

  double domain_side = 5000.0;
  /// Spread of an object's own point cloud and of objects around a hub.
  double object_sigma = 1.5;
  double hub_sigma = 2.0;
};

/// Generates a power-law-score object collection.
ObjectSet MakePowerLaw(const PowerLawConfig& config);

}  // namespace datagen
}  // namespace mio
