#include "datagen/trajectory_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.hpp"

namespace mio {
namespace datagen {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// A 2-D correlated random walk of `len` steps starting at (x, y).
std::vector<Point> Walk(Pcg32& rng, double x, double y, std::size_t len,
                        double step_mean, double persistence) {
  std::vector<Point> path;
  path.reserve(len);
  double heading = rng.NextDouble(0.0, 2.0 * kPi);
  for (std::size_t i = 0; i < len; ++i) {
    path.push_back(Point{x, y, 0.0});
    heading += (1.0 - persistence) * rng.NextGaussian() * kPi;
    double step = step_mean * (0.5 + rng.NextDouble());
    x += step * std::cos(heading);
    y += step * std::sin(heading);
  }
  return path;
}

}  // namespace

ObjectSet MakeBirdLike(const BirdConfig& config) {
  Pcg32 rng(config.seed, 0x62697264ULL);  // "bird"
  ObjectSet set;
  const std::size_t m = std::max<std::size_t>(config.points_per_object, 2);

  // Migration corridors: long shared paths that flocked birds follow with
  // a lateral offset. Birds on the same corridor whose path windows
  // overlap and whose offsets differ by less than ~r interact — exactly
  // the leader-follower structure of the paper's Fig. 2, where the MIO
  // answer interacts with a large fraction of the set. Corridor
  // popularity is skewed (Zipf-ish), so one corridor carries most flocked
  // birds and its central trajectories become strong hubs.
  const int num_corridors = std::max(2, config.flock_size / 4);
  // A corridor is ~3 sub-trajectory windows long: random windows overlap
  // with high probability.
  const std::size_t corridor_len = 3 * m;
  std::vector<std::vector<Point>> corridors;
  std::vector<double> corridor_cdf;
  double total_weight = 0.0;
  for (int c = 0; c < num_corridors; ++c) {
    corridors.push_back(Walk(rng, rng.NextDouble(0.0, config.domain_side),
                             rng.NextDouble(0.0, config.domain_side),
                             corridor_len, config.step_mean,
                             config.persistence));
    total_weight += 1.0 / (c + 1.0);  // Zipf popularity
    corridor_cdf.push_back(total_weight);
  }

  std::size_t flocked = static_cast<std::size_t>(
      config.flock_fraction * static_cast<double>(config.num_objects));

  // Timestamps follow the corridor phase: birds at the same position
  // along a corridor are there at the same time, so co-moving birds are
  // close in space AND time (what the temporal variant analyses), while
  // a bird crossing another's path later is spatially close only.
  auto emit = [&](std::vector<Point> pts, double t_start) {
    Object obj;
    obj.points = std::move(pts);
    if (config.with_times) {
      obj.times.resize(obj.points.size());
      for (std::size_t i = 0; i < obj.times.size(); ++i) {
        obj.times[i] = t_start + static_cast<double>(i);
      }
    }
    set.Add(std::move(obj));
  };

  // Flocked sub-trajectories ride a corridor window with a per-bird
  // lateral offset and per-fix jitter.
  for (std::size_t b = 0; b < flocked; ++b) {
    double u = rng.NextDouble() * total_weight;
    std::size_t c = static_cast<std::size_t>(
        std::lower_bound(corridor_cdf.begin(), corridor_cdf.end(), u) -
        corridor_cdf.begin());
    c = std::min(c, corridors.size() - 1);
    const std::vector<Point>& path = corridors[c];

    std::size_t phase = rng.NextBounded(
        static_cast<std::uint32_t>(path.size() - m + 1));
    double ox = config.flock_radius * rng.NextGaussian();
    double oy = config.flock_radius * rng.NextGaussian();
    std::vector<Point> seg;
    seg.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      const Point& lp = path[phase + i];
      seg.push_back(Point{lp.x + ox + 0.6 * rng.NextGaussian(),
                          lp.y + oy + 0.6 * rng.NextGaussian(), 0.0});
    }
    emit(std::move(seg),
         static_cast<double>(phase) + config.time_jitter * rng.NextGaussian());
  }

  // Solo wanderers: spatially independent tracks (the sparse tail),
  // active somewhere inside the corridor time window.
  while (set.size() < config.num_objects) {
    double t_start = rng.NextDouble(
        0.0, static_cast<double>(corridor_len > m ? corridor_len - m : 1));
    emit(Walk(rng, rng.NextDouble(0.0, config.domain_side),
              rng.NextDouble(0.0, config.domain_side), m, config.step_mean,
              config.persistence),
         t_start);
  }
  return set;
}

}  // namespace datagen
}  // namespace mio
