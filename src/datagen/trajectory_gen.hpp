// Synthetic bird-trajectory generator — the stand-in for the paper's
// Movebank datasets (Bird, Bird-2). Flocks move as a leader doing a
// correlated random walk with followers offset around it (the
// leader-follower structure of the paper's Example 2, where the MIO
// answer interacts with ~30% of trajectories); solo wanderers provide the
// sparse background. Long tracks are cut into sub-trajectories of ~m
// fixes, the paper's own preparation ("dividing long trajectories so that
// each trajectory contains approximately m points"). Coordinates are in
// metres on a mostly-2-D domain (z = 0), timestamps one unit per fix.
#pragma once

#include <cstdint>

#include "object/object_set.hpp"

namespace mio {
namespace datagen {

/// Parameters for the trajectory generator.
struct BirdConfig {
  std::size_t num_objects = 2000;      ///< n (sub-trajectories)
  std::size_t points_per_object = 50;  ///< m (fixes per sub-trajectory)
  std::uint64_t seed = 2;

  /// Fraction of sub-trajectories belonging to flocks (the rest wander
  /// solo far apart — the sparse tail).
  double flock_fraction = 0.6;
  /// Birds per flock (leader + followers).
  int flock_size = 12;
  /// Lateral spread of followers around the leader path, metres.
  double flock_radius = 5.0;

  double domain_side = 20000.0;  ///< metres
  double step_mean = 15.0;       ///< metres per fix
  double persistence = 0.9;      ///< heading correlation

  bool with_times = false;  ///< attach timestamps (temporal variant)
  /// Per-bird timing offset (std-dev, in fix units) around the corridor
  /// phase: stragglers and early birds, so tightening delta in a temporal
  /// query progressively drops spatially-close-but-asynchronous pairs.
  double time_jitter = 15.0;
};

/// Generates a bird-trajectory-like object collection.
ObjectSet MakeBirdLike(const BirdConfig& config);

}  // namespace datagen
}  // namespace mio
