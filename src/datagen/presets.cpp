#include "datagen/presets.hpp"

#include "object/spatial_sort.hpp"

#include <cmath>

#include "datagen/neuron_gen.hpp"
#include "datagen/powerlaw_gen.hpp"
#include "datagen/trajectory_gen.hpp"

namespace mio {
namespace datagen {
namespace {

struct Sizes {
  std::size_t quick_n, quick_m, full_n, full_m;
};

Sizes SizesOf(Preset preset) {
  switch (preset) {
    case Preset::kNeuron:
      return {120, 400, 776, 7960};
    case Preset::kNeuron2:
      return {500, 80, 5493, 848};
    case Preset::kBird:
      return {4000, 25, 143042, 50};
    case Preset::kBird2:
      return {1200, 50, 29247, 100};
    case Preset::kSyn:
      return {20000, 26, 851519, 52};
  }
  return {100, 50, 100, 50};
}

}  // namespace

bool ParsePreset(const std::string& name, Preset* out) {
  if (name == "neuron") {
    *out = Preset::kNeuron;
  } else if (name == "neuron2") {
    *out = Preset::kNeuron2;
  } else if (name == "bird") {
    *out = Preset::kBird;
  } else if (name == "bird2") {
    *out = Preset::kBird2;
  } else if (name == "syn") {
    *out = Preset::kSyn;
  } else {
    return false;
  }
  return true;
}

std::string PresetName(Preset preset) {
  switch (preset) {
    case Preset::kNeuron:
      return "neuron";
    case Preset::kNeuron2:
      return "neuron2";
    case Preset::kBird:
      return "bird";
    case Preset::kBird2:
      return "bird2";
    case Preset::kSyn:
      return "syn";
  }
  return "unknown";
}

std::vector<Preset> AllPresets() {
  return {Preset::kNeuron, Preset::kNeuron2, Preset::kBird, Preset::kBird2,
          Preset::kSyn};
}

void PresetTargetSize(Preset preset, Scale scale, std::size_t* n,
                      std::size_t* m) {
  Sizes s = SizesOf(preset);
  *n = scale == Scale::kQuick ? s.quick_n : s.full_n;
  *m = scale == Scale::kQuick ? s.quick_m : s.full_m;
}

ObjectSet MakePreset(Preset preset, Scale scale, std::uint64_t seed) {
  std::size_t n = 0, m = 0;
  PresetTargetSize(preset, scale, &n, &m);

  switch (preset) {
    case Preset::kNeuron: {
      NeuronConfig cfg;
      cfg.num_objects = n;
      cfg.points_per_object = m;
      cfg.seed = seed;
      // Keep density comparable across scales: volume grows with the
      // cube root of the object count.
      cfg.volume_side = 70.0 * std::cbrt(static_cast<double>(n));
      cfg.num_clusters = static_cast<int>(n / 120 + 4);
      return SortObjectsSpatially(MakeNeuronLike(cfg));
    }
    case Preset::kNeuron2: {
      NeuronConfig cfg;
      cfg.num_objects = n;
      cfg.points_per_object = m;
      cfg.seed = seed + 1;
      cfg.volume_side = 32.0 * std::cbrt(static_cast<double>(n));
      cfg.num_clusters = static_cast<int>(n / 150 + 6);
      cfg.step_length = 2.0;
      return SortObjectsSpatially(MakeNeuronLike(cfg));
    }
    case Preset::kBird: {
      BirdConfig cfg;
      cfg.num_objects = n;
      cfg.points_per_object = m;
      cfg.seed = seed + 2;
      cfg.domain_side = 220.0 * std::sqrt(static_cast<double>(n));
      return SortObjectsSpatially(MakeBirdLike(cfg));
    }
    case Preset::kBird2: {
      BirdConfig cfg;
      cfg.num_objects = n;
      cfg.points_per_object = m;
      cfg.seed = seed + 3;
      cfg.domain_side = 260.0 * std::sqrt(static_cast<double>(n));
      cfg.flock_size = 16;
      cfg.flock_fraction = 0.6;
      cfg.flock_radius = 5.0;
      return SortObjectsSpatially(MakeBirdLike(cfg));
    }
    case Preset::kSyn: {
      PowerLawConfig cfg;
      cfg.num_objects = n;
      cfg.points_per_object = m;
      cfg.seed = seed + 4;
      cfg.num_hubs = static_cast<int>(n / 80 + 16);
      cfg.domain_side = 45.0 * std::cbrt(static_cast<double>(n)) * 4.0;
      return SortObjectsSpatially(MakePowerLaw(cfg));
    }
  }
  return ObjectSet{};
}

}  // namespace datagen
}  // namespace mio
