// Dataset (de)serialisation. Text format for interchange/inspection and a
// compact binary format for fast reload of generated datasets.
//
// Text format:
//   # comment lines allowed anywhere
//   mio-dataset v1 <n> <has_times: 0|1>
//   object <num_points>
//   x y z [t]          (one point per line)
//   ...
#pragma once

#include <string>

#include "common/status.hpp"
#include "object/object_set.hpp"

namespace mio {

Status SaveDatasetText(const ObjectSet& objects, const std::string& path);
Result<ObjectSet> LoadDatasetText(const std::string& path);

/// Binary format: magic "MIOD", u32 version, u64 n, u8 has_times, then per
/// object u64 num_points + raw doubles; FNV-1a checksum trailer.
Status SaveDatasetBinary(const ObjectSet& objects, const std::string& path);
Result<ObjectSet> LoadDatasetBinary(const std::string& path);

}  // namespace mio
