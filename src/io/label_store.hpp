// External-memory label store (paper §III-D): "the number of MIO queries
// issued cannot be bounded; for practical use, labels should be resident
// in external memory". One file per ceil(r); the load cost O(nm/B) is the
// Label-Input row of Table II.
//
// File format: magic "MIOL", u32 version, u32 ceil_r, u64 n, then per
// object u64 num_points + raw label bytes; FNV-1a checksum trailer.
// Corrupt or shape-mismatched files are reported (and ignored by the
// engine) rather than trusted.
#pragma once

#include <string>

#include "common/status.hpp"
#include "core/labels.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Directory-backed persistence for LabelSets, keyed by ceil(r).
class LabelStore {
 public:
  /// Creates the directory if missing.
  explicit LabelStore(std::string dir);

  /// True if a label file for this ceil(r) exists.
  bool Has(int ceil_r) const;

  /// Writes the label file. Transient failures (IO errors, short writes)
  /// are retried up to two more times with jittered exponential backoff;
  /// each re-attempt bumps the `labels.retry_attempts` counter, and a run
  /// that never succeeds bumps `labels.retry_exhausted`.
  Status Save(int ceil_r, const LabelSet& labels);

  /// Loads and validates against the dataset shape (object count and
  /// per-object point counts must match exactly). Retries IO errors and
  /// corruption (a short read is indistinguishable from a concurrent
  /// writer) with the same bounded backoff as Save; NotFound is returned
  /// immediately.
  Result<LabelSet> Load(int ceil_r, const ObjectSet& expected_shape) const;

  /// Removes the label file for one ceil(r) (no-op if absent). The engine
  /// uses this to evict a corrupt file so the next query rewrites it.
  void Remove(int ceil_r);

  /// Removes every stored label file.
  void Clear();

  std::string PathFor(int ceil_r) const;
  const std::string& dir() const { return dir_; }

 private:
  Status SaveOnce(int ceil_r, const LabelSet& labels);
  Result<LabelSet> LoadOnce(int ceil_r, const ObjectSet& expected_shape) const;

  std::string dir_;
};

}  // namespace mio
