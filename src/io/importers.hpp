// Importers for the file formats the paper's real datasets ship in, so a
// user with access to the originals can run this library on them directly:
//
//  * SWC — the neuron-morphology format used by NeuroMorpho.org (the
//    paper's Neuron / Neuron-2 source [4]): one sample point per line,
//    `id type x y z radius parent`, '#' comments. One file = one neuron
//    = one object.
//  * Trajectory CSV — Movebank-style (the paper's Bird / Bird-2 source
//    [11]): a header row naming columns, one fix per line; rows are
//    grouped into objects by an id column, optionally keeping timestamps
//    for the temporal variant.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Parses one SWC morphology into an Object (sample coordinates only;
/// radius and topology are irrelevant to MIO queries).
Result<Object> LoadSwcFile(const std::string& path);

/// Loads every `.swc` file under `dir` (sorted by filename for
/// deterministic object ids) into a collection. Fails if none is found.
Result<ObjectSet> LoadSwcDirectory(const std::string& dir);

/// Column selection for trajectory CSVs.
struct TrajectoryCsvOptions {
  std::string id_column = "id";      ///< groups rows into objects
  std::string x_column = "x";
  std::string y_column = "y";
  std::string z_column;              ///< empty: planar data (z = 0)
  std::string time_column;           ///< empty: no timestamps
  char delimiter = ',';
  /// Split each trajectory into sub-trajectories of at most this many
  /// fixes (0 = keep whole). The paper prepares Bird/Bird-2 by "dividing
  /// long trajectories so that each trajectory contains approximately m
  /// points".
  std::size_t max_points_per_object = 0;
};

/// Loads a delimited trajectory file. Rows sharing the id column become
/// one object (in file order); objects are emitted in first-appearance
/// order.
Result<ObjectSet> LoadTrajectoryCsv(const std::string& path,
                                    const TrajectoryCsvOptions& options = {});

}  // namespace mio
