#include "io/label_store.hpp"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>

#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace mio {
namespace {

constexpr char kMagic[4] = {'M', 'I', 'O', 'L'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

// Label IO shares disks with other tenants, so a failed read/write is
// retried a bounded number of times with exponential backoff. The jitter
// decorrelates concurrent retriers (each query process backs off on its
// own clock-seeded stream).
constexpr int kIoAttempts = 3;
constexpr auto kBackoffBase = std::chrono::milliseconds(1);

void BackoffSleep(int attempt) {
  thread_local std::minstd_rand rng(static_cast<std::uint32_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  auto base = kBackoffBase * (1 << attempt);
  std::uniform_int_distribution<std::int64_t> jitter(0, base.count());
  std::this_thread::sleep_for(base + std::chrono::milliseconds(jitter(rng)));
}

/// True for failures worth retrying: transient IO errors and short reads
/// (which surface as Corruption). NotFound is definitive — no file will
/// appear by waiting.
bool Retryable(const Status& s) {
  return s.code() == StatusCode::kIOError ||
         s.code() == StatusCode::kCorruption;
}

std::uint64_t Fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

LabelStore::LabelStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string LabelStore::PathFor(int ceil_r) const {
  return dir_ + "/labels_" + std::to_string(ceil_r) + ".bin";
}

bool LabelStore::Has(int ceil_r) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(ceil_r), ec);
}

Status LabelStore::SaveOnce(int ceil_r, const LabelSet& labels) {
  std::string path = PathFor(ceil_r);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);

  std::uint64_t checksum = kFnvOffset;
  auto write = [&](const void* data, std::size_t len) {
    if (MIO_FAULT_HIT("io.label.write")) out.setstate(std::ios::failbit);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
    checksum = Fnv1a(data, len, checksum);
  };

  out.write(kMagic, 4);
  std::uint32_t version = kVersion;
  write(&version, sizeof(version));
  std::uint32_t rc = static_cast<std::uint32_t>(ceil_r);
  write(&rc, sizeof(rc));
  double recorded_r = labels.recorded_r;
  write(&recorded_r, sizeof(recorded_r));
  std::uint64_t n = labels.labels.size();
  write(&n, sizeof(n));
  for (const auto& obj : labels.labels) {
    std::uint64_t num_points = obj.size();
    write(&num_points, sizeof(num_points));
    write(obj.data(), obj.size());
  }
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<LabelSet> LabelStore::LoadOnce(int ceil_r,
                                      const ObjectSet& expected_shape) const {
  std::string path = PathFor(ceil_r);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no label file: " + path);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic in " + path);
  }

  std::uint64_t checksum = kFnvOffset;
  auto read = [&](void* data, std::size_t len) -> bool {
    if (MIO_FAULT_HIT("io.label.read")) return false;  // simulated short read
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
    if (!in) return false;
    checksum = Fnv1a(data, len, checksum);
    return true;
  };

  std::uint32_t version = 0;
  std::uint32_t rc = 0;
  std::uint64_t n = 0;
  if (!read(&version, sizeof(version)) || version != kVersion) {
    return Status::Corruption("unsupported label version in " + path);
  }
  if (!read(&rc, sizeof(rc)) || rc != static_cast<std::uint32_t>(ceil_r)) {
    return Status::Corruption("ceil(r) mismatch in " + path);
  }
  double recorded_r = 0.0;
  if (!read(&recorded_r, sizeof(recorded_r))) {
    return Status::Corruption("truncated recorded_r in " + path);
  }
  if (!read(&n, sizeof(n)) || n != expected_shape.size()) {
    return Status::Corruption("object count mismatch in " + path);
  }

  LabelSet set;
  set.recorded_r = recorded_r;
  set.labels.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t num_points = 0;
    if (!read(&num_points, sizeof(num_points)) ||
        num_points != expected_shape[static_cast<ObjectId>(i)].NumPoints()) {
      return Status::Corruption("point count mismatch in " + path);
    }
    set.labels[i].resize(num_points);
    if (!read(set.labels[i].data(), num_points)) {
      return Status::Corruption("truncated labels in " + path);
    }
  }
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != checksum) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  return set;
}

Status LabelStore::Save(int ceil_r, const LabelSet& labels) {
  Status s = SaveOnce(ceil_r, labels);
  for (int attempt = 0; Retryable(s) && attempt < kIoAttempts - 1; ++attempt) {
    obs::Add(obs::Counter::kLabelRetryAttempts);
    BackoffSleep(attempt);
    s = SaveOnce(ceil_r, labels);
  }
  if (Retryable(s)) obs::Add(obs::Counter::kLabelRetryExhausted);
  return s;
}

Result<LabelSet> LabelStore::Load(int ceil_r,
                                  const ObjectSet& expected_shape) const {
  Result<LabelSet> r = LoadOnce(ceil_r, expected_shape);
  for (int attempt = 0;
       !r.ok() && Retryable(r.status()) && attempt < kIoAttempts - 1;
       ++attempt) {
    obs::Add(obs::Counter::kLabelRetryAttempts);
    BackoffSleep(attempt);
    r = LoadOnce(ceil_r, expected_shape);
  }
  if (!r.ok() && Retryable(r.status())) {
    obs::Add(obs::Counter::kLabelRetryExhausted);
  }
  return r;
}

void LabelStore::Remove(int ceil_r) {
  std::error_code ec;
  std::filesystem::remove(PathFor(ceil_r), ec);
}

void LabelStore::Clear() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().filename().string().rfind("labels_", 0) == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

}  // namespace mio
