#include "io/dataset_io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault_injection.hpp"

namespace mio {
namespace {

constexpr char kBinaryMagic[4] = {'M', 'I', 'O', 'D'};
constexpr std::uint32_t kBinaryVersion = 1;

std::uint64_t Fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

/// Upper bound on a single reserve() taken on faith from a declared count
/// in a text file (which has no up-front size accounting like the binary
/// format): larger declared counts still load, they just grow the vector
/// incrementally instead of pre-reserving unbounded memory.
constexpr std::size_t kMaxTrustedReserve = 1u << 20;

}  // namespace

// ---------------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------------

Status SaveDatasetText(const ObjectSet& objects, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  bool has_times = false;
  for (const Object& o : objects.objects()) {
    if (o.HasTimes()) {
      has_times = true;
      break;
    }
  }
  out << "mio-dataset v1 " << objects.size() << " " << (has_times ? 1 : 0)
      << "\n";
  out.precision(17);
  for (const Object& o : objects.objects()) {
    out << "object " << o.points.size() << "\n";
    for (std::size_t j = 0; j < o.points.size(); ++j) {
      out << o.points[j].x << " " << o.points[j].y << " " << o.points[j].z;
      if (has_times) out << " " << (o.HasTimes() ? o.times[j] : 0.0);
      out << "\n";
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ObjectSet> LoadDatasetText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::string line;
  auto next_content_line = [&](std::string* out_line) -> bool {
    while (std::getline(in, *out_line)) {
      if (!out_line->empty() && (*out_line)[0] != '#') return true;
    }
    return false;
  };

  if (!next_content_line(&line)) {
    return Status::Corruption("empty dataset file: " + path);
  }
  std::istringstream header(line);
  std::string magic, version;
  std::size_t n = 0;
  int has_times = 0;
  header >> magic >> version >> n >> has_times;
  if (magic != "mio-dataset" || version != "v1") {
    return Status::Corruption("bad header in " + path + ": " + line);
  }

  ObjectSet set;
  for (std::size_t i = 0; i < n; ++i) {
    if (!next_content_line(&line)) {
      return Status::Corruption("truncated dataset (object header)");
    }
    std::istringstream oh(line);
    std::string tag;
    std::size_t num_points = 0;
    oh >> tag >> num_points;
    if (tag != "object") {
      return Status::Corruption("expected object header, got: " + line);
    }
    Object obj;
    obj.points.reserve(std::min(num_points, kMaxTrustedReserve));
    if (has_times) obj.times.reserve(std::min(num_points, kMaxTrustedReserve));
    for (std::size_t j = 0; j < num_points; ++j) {
      if (!next_content_line(&line)) {
        return Status::Corruption("truncated dataset (points)");
      }
      std::istringstream ps(line);
      Point p;
      ps >> p.x >> p.y >> p.z;
      if (!ps) return Status::Corruption("bad point line: " + line);
      if (has_times) {
        double t = 0.0;
        ps >> t;
        obj.times.push_back(t);
      }
      obj.points.push_back(p);
    }
    set.Add(std::move(obj));
  }
  return set;
}

// ---------------------------------------------------------------------------
// Binary
// ---------------------------------------------------------------------------

Status SaveDatasetBinary(const ObjectSet& objects, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);

  std::uint64_t checksum = kFnvOffset;
  auto write = [&](const void* data, std::size_t len) {
    if (MIO_FAULT_HIT("io.dataset.write")) out.setstate(std::ios::failbit);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
    checksum = Fnv1a(data, len, checksum);
  };

  out.write(kBinaryMagic, 4);
  std::uint32_t version = kBinaryVersion;
  write(&version, sizeof(version));
  std::uint64_t n = objects.size();
  write(&n, sizeof(n));
  std::uint8_t has_times = 0;
  for (const Object& o : objects.objects()) {
    if (o.HasTimes()) has_times = 1;
  }
  write(&has_times, sizeof(has_times));
  for (const Object& o : objects.objects()) {
    std::uint64_t num_points = o.points.size();
    write(&num_points, sizeof(num_points));
    write(o.points.data(), o.points.size() * sizeof(Point));
    if (has_times) {
      std::vector<double> times = o.times;
      times.resize(o.points.size(), 0.0);
      write(times.data(), times.size() * sizeof(double));
    }
  }
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ObjectSet> LoadDatasetBinary(const std::string& path) {
  // Stat the file up front: every declared count below is validated
  // against the bytes actually present BEFORE any allocation sized by it,
  // so a corrupt header cannot drive an unbounded resize.
  std::error_code ec;
  const std::uint64_t file_size =
      static_cast<std::uint64_t>(std::filesystem::file_size(path, ec));
  if (ec) return Status::IOError("cannot stat: " + path);

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kBinaryMagic, 4) != 0) {
    return Status::Corruption("bad magic in " + path);
  }

  std::uint64_t consumed = 4;  // magic
  std::uint64_t checksum = kFnvOffset;
  auto read = [&](void* data, std::size_t len) -> bool {
    if (MIO_FAULT_HIT("io.dataset.read")) return false;  // simulated EIO
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
    if (!in) return false;
    consumed += len;
    checksum = Fnv1a(data, len, checksum);
    return true;
  };
  // Payload bytes left before the 8-byte checksum trailer.
  auto remaining = [&]() -> std::uint64_t {
    const std::uint64_t used = consumed + sizeof(std::uint64_t);
    return file_size > used ? file_size - used : 0;
  };

  std::uint32_t version = 0;
  std::uint64_t n = 0;
  std::uint8_t has_times = 0;
  if (!read(&version, sizeof(version)) || version != kBinaryVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  if (!read(&n, sizeof(n)) || !read(&has_times, sizeof(has_times))) {
    return Status::Corruption("truncated header in " + path);
  }
  // Each object costs at least its 8-byte point-count header.
  if (n > remaining() / sizeof(std::uint64_t)) {
    return Status::Corruption("declared object count " + std::to_string(n) +
                              " exceeds file size in " + path);
  }

  const std::uint64_t bytes_per_point =
      sizeof(Point) + (has_times ? sizeof(double) : 0);
  ObjectSet set;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t num_points = 0;
    if (!read(&num_points, sizeof(num_points))) {
      return Status::Corruption("truncated object header in " + path);
    }
    if (num_points > remaining() / bytes_per_point) {
      return Status::Corruption(
          "declared point count " + std::to_string(num_points) +
          " exceeds remaining file size in " + path);
    }
    Object obj;
    obj.points.resize(num_points);
    if (!read(obj.points.data(), num_points * sizeof(Point))) {
      return Status::Corruption("truncated points in " + path);
    }
    if (has_times) {
      obj.times.resize(num_points);
      if (!read(obj.times.data(), num_points * sizeof(double))) {
        return Status::Corruption("truncated times in " + path);
      }
    }
    set.Add(std::move(obj));
  }
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in) return Status::Corruption("truncated checksum trailer in " + path);
  if (stored != checksum) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  return set;
}

}  // namespace mio
