#include "io/importers.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/fault_injection.hpp"

namespace mio {

// ---------------------------------------------------------------------------
// SWC
// ---------------------------------------------------------------------------

Result<Object> LoadSwcFile(const std::string& path) {
  std::ifstream in(path);
  if (!in || MIO_FAULT_HIT("io.import.open")) {
    return Status::IOError("cannot open SWC file: " + path);
  }

  Object obj;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim leading whitespace; skip blanks and comments.
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream ls(line.substr(start));
    long id = 0;
    int type = 0;
    Point p;
    double radius = 0.0;
    long parent = 0;
    ls >> id >> type >> p.x >> p.y >> p.z >> radius >> parent;
    if (!ls) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": malformed SWC sample line");
    }
    obj.points.push_back(p);
  }
  if (obj.points.empty()) {
    return Status::Corruption("no sample points in SWC file: " + path);
  }
  return obj;
}

Result<ObjectSet> LoadSwcDirectory(const std::string& dir) {
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".swc") files.push_back(entry.path());
  }
  if (ec) return Status::IOError("cannot list directory: " + dir);
  if (files.empty()) return Status::NotFound("no .swc files under " + dir);
  std::sort(files.begin(), files.end());

  ObjectSet set;
  for (const auto& file : files) {
    Result<Object> obj = LoadSwcFile(file.string());
    if (!obj.ok()) return obj.status();
    set.Add(std::move(obj).value());
  }
  return set;
}

// ---------------------------------------------------------------------------
// Trajectory CSV
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, delim)) {
    // Trim surrounding whitespace/CR.
    std::size_t b = field.find_first_not_of(" \t\r");
    std::size_t e = field.find_last_not_of(" \t\r");
    out.push_back(b == std::string::npos ? "" : field.substr(b, e - b + 1));
  }
  return out;
}

}  // namespace

Result<ObjectSet> LoadTrajectoryCsv(const std::string& path,
                                    const TrajectoryCsvOptions& options) {
  std::ifstream in(path);
  if (!in || MIO_FAULT_HIT("io.import.open")) {
    return Status::IOError("cannot open CSV file: " + path);
  }

  std::string line;
  if (!std::getline(in, line)) return Status::Corruption("empty CSV: " + path);

  // Resolve column indices from the header.
  std::vector<std::string> header = SplitLine(line, options.delimiter);
  auto column = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  int id_col = column(options.id_column);
  int x_col = column(options.x_column);
  int y_col = column(options.y_column);
  int z_col = options.z_column.empty() ? -1 : column(options.z_column);
  int t_col = options.time_column.empty() ? -1 : column(options.time_column);
  if (id_col < 0 || x_col < 0 || y_col < 0) {
    return Status::InvalidArgument("missing id/x/y column in " + path);
  }
  if (!options.z_column.empty() && z_col < 0) {
    return Status::InvalidArgument("z column '" + options.z_column +
                                   "' not found in " + path);
  }
  if (!options.time_column.empty() && t_col < 0) {
    return Status::InvalidArgument("time column '" + options.time_column +
                                   "' not found in " + path);
  }

  // Group fixes by id, preserving row order within each track and the
  // first-appearance order of the tracks themselves.
  std::vector<std::string> track_order;
  std::unordered_map<std::string, Object> tracks;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    int max_needed = std::max({id_col, x_col, y_col, z_col, t_col});
    if (static_cast<int>(fields.size()) <= max_needed) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": too few columns");
    }
    const std::string& id = fields[id_col];
    auto [it, inserted] = tracks.try_emplace(id);
    if (inserted) track_order.push_back(id);

    char* end = nullptr;
    Point p;
    p.x = std::strtod(fields[x_col].c_str(), &end);
    if (end == fields[x_col].c_str()) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": bad x value");
    }
    p.y = std::strtod(fields[y_col].c_str(), nullptr);
    if (z_col >= 0) p.z = std::strtod(fields[z_col].c_str(), nullptr);
    it->second.points.push_back(p);
    if (t_col >= 0) {
      it->second.times.push_back(std::strtod(fields[t_col].c_str(), nullptr));
    }
  }

  ObjectSet set;
  for (const std::string& id : track_order) {
    Object& track = tracks[id];
    std::size_t cap = options.max_points_per_object;
    if (cap == 0 || track.points.size() <= cap) {
      set.Add(std::move(track));
      continue;
    }
    // The paper's preparation: divide long trajectories into ~m-point
    // sub-trajectories, each becoming its own object.
    for (std::size_t begin = 0; begin < track.points.size(); begin += cap) {
      std::size_t end = std::min(begin + cap, track.points.size());
      Object piece;
      piece.points.assign(track.points.begin() + begin,
                          track.points.begin() + end);
      if (!track.times.empty()) {
        piece.times.assign(track.times.begin() + begin,
                           track.times.begin() + end);
      }
      set.Add(std::move(piece));
    }
  }
  if (set.empty()) return Status::Corruption("no data rows in " + path);
  return set;
}

}  // namespace mio
