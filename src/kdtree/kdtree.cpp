#include "kdtree/kdtree.hpp"

#include <algorithm>
#include <numeric>

#include "geo/kernels.hpp"

namespace mio {

KdTree::KdTree(std::vector<Point> points) {
  ids_.resize(points.size());
  std::iota(ids_.begin(), ids_.end(), 0u);
  if (!points.empty()) {
    nodes_.reserve(2 * points.size() / kLeafSize + 2);
    root_ = BuildNode(&points, 0, static_cast<std::uint32_t>(points.size()));
  }
  // Scatter the reordered points into the SoA leaf storage.
  xs_.resize(points.size());
  ys_.resize(points.size());
  zs_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    xs_[i] = points[i].x;
    ys_[i] = points[i].y;
    zs_[i] = points[i].z;
  }
}

std::int32_t KdTree::BuildNode(std::vector<Point>* pts, std::uint32_t begin,
                               std::uint32_t end) {
  std::vector<Point>& points = *pts;
  Node node;
  for (std::uint32_t i = begin; i < end; ++i) node.box.Extend(points[i]);
  std::int32_t idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);

  if (end - begin <= kLeafSize) {
    nodes_[idx].begin = begin;
    nodes_[idx].end = end;
    return idx;
  }

  // Split on the widest axis at the median: balanced depth, and the exact
  // child boxes absorb any split-plane slack.
  const Aabb& box = nodes_[idx].box;
  int axis = 0;
  double ext = box.ExtentX();
  if (box.ExtentY() > ext) {
    axis = 1;
    ext = box.ExtentY();
  }
  if (box.ExtentZ() > ext) axis = 2;

  std::uint32_t mid = begin + (end - begin) / 2;
  auto coord = [axis](const Point& p) {
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  };
  // Keep points and ids_ in lock-step: sort an index permutation.
  std::vector<std::uint32_t> perm(end - begin);
  std::iota(perm.begin(), perm.end(), begin);
  std::nth_element(perm.begin(), perm.begin() + (mid - begin), perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return coord(points[a]) < coord(points[b]);
                   });
  std::vector<Point> tmp_pts(end - begin);
  std::vector<std::uint32_t> tmp_ids(end - begin);
  for (std::uint32_t i = 0; i < end - begin; ++i) {
    tmp_pts[i] = points[perm[i]];
    tmp_ids[i] = ids_[perm[i]];
  }
  std::copy(tmp_pts.begin(), tmp_pts.end(), points.begin() + begin);
  std::copy(tmp_ids.begin(), tmp_ids.end(), ids_.begin() + begin);

  std::int32_t left = BuildNode(pts, begin, mid);
  std::int32_t right = BuildNode(pts, mid, end);
  nodes_[idx].left = left;
  nodes_[idx].right = right;
  return idx;
}

bool KdTree::ContainsWithin(const Point& q, double r) const {
  if (root_ < 0) return false;
  return ContainsWithinRec(root_, q, r * r);
}

bool KdTree::ContainsWithinRec(std::int32_t node, const Point& q,
                               double r2) const {
  const Node& nd = nodes_[node];
  if (nd.box.SquaredDistanceTo(q) > r2) return false;
  if (nd.IsLeaf()) {
    return AnyWithin(q, xs_.data() + nd.begin, ys_.data() + nd.begin,
                     zs_.data() + nd.begin, nd.end - nd.begin, r2) >= 0;
  }
  // Descend into the closer child first: hits terminate the search.
  double dl = nodes_[nd.left].box.SquaredDistanceTo(q);
  double dr = nodes_[nd.right].box.SquaredDistanceTo(q);
  std::int32_t first = nd.left, second = nd.right;
  if (dr < dl) std::swap(first, second);
  return ContainsWithinRec(first, q, r2) || ContainsWithinRec(second, q, r2);
}

double KdTree::NearestDistance(const Point& q, double upper_bound) const {
  if (root_ < 0) return std::numeric_limits<double>::infinity();
  double best2 = upper_bound * upper_bound;
  bool capped = upper_bound != std::numeric_limits<double>::infinity();
  if (!capped) best2 = std::numeric_limits<double>::infinity();
  NearestRec(root_, q, &best2);
  return std::sqrt(best2);
}

void KdTree::NearestRec(std::int32_t node, const Point& q,
                        double* best2) const {
  const Node& nd = nodes_[node];
  if (nd.box.SquaredDistanceTo(q) > *best2) return;
  if (nd.IsLeaf()) {
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
      double d2 = SquaredDistance(PointAt(i), q);
      if (d2 < *best2) *best2 = d2;
    }
    return;
  }
  double dl = nodes_[nd.left].box.SquaredDistanceTo(q);
  double dr = nodes_[nd.right].box.SquaredDistanceTo(q);
  if (dl <= dr) {
    NearestRec(nd.left, q, best2);
    NearestRec(nd.right, q, best2);
  } else {
    NearestRec(nd.right, q, best2);
    NearestRec(nd.left, q, best2);
  }
}

void KdTree::CollectWithin(const Point& q, double r,
                           std::vector<std::uint32_t>* out) const {
  if (root_ < 0) return;
  CollectRec(root_, q, r * r, out);
}

void KdTree::CollectRec(std::int32_t node, const Point& q, double r2,
                        std::vector<std::uint32_t>* out) const {
  const Node& nd = nodes_[node];
  if (nd.box.SquaredDistanceTo(q) > r2) return;
  if (nd.IsLeaf()) {
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
      if (SquaredDistance(PointAt(i), q) <= r2) out->push_back(ids_[i]);
    }
    return;
  }
  CollectRec(nd.left, q, r2, out);
  CollectRec(nd.right, q, r2, out);
}

const Aabb& KdTree::Bounds() const {
  static const Aabb kEmpty;
  if (root_ < 0) return kEmpty;
  return nodes_[root_].box;
}

std::size_t KdTree::MemoryUsageBytes() const {
  return (xs_.capacity() + ys_.capacity() + zs_.capacity()) * sizeof(double) +
         ids_.capacity() * sizeof(std::uint32_t) +
         nodes_.capacity() * sizeof(Node);
}

}  // namespace mio
