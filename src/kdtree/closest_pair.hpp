// Closest point pair between two objects. The theoretical algorithm
// (paper Theorem 1) pre-computes, for every object, the sorted array of
// closest-pair distances to every other object; these helpers provide that
// primitive with kd-tree pruning.
#pragma once

#include "kdtree/kdtree.hpp"
#include "object/object.hpp"

namespace mio {

/// Minimum distance between any point of `probe` and the tree's point set,
/// with a running upper bound threaded through the NN searches.
double MinDistanceBetween(const Object& probe, const KdTree& tree);

/// Brute-force O(|a|*|b|) closest-pair distance (test oracle).
double MinDistanceBruteForce(const Object& a, const Object& b);

}  // namespace mio
