#include "kdtree/closest_pair.hpp"

#include <limits>

namespace mio {

double MinDistanceBetween(const Object& probe, const KdTree& tree) {
  double best = std::numeric_limits<double>::infinity();
  for (const Point& p : probe.points) {
    // The box check inside NearestDistance prunes whole probes whose
    // distance to the tree's bounds already exceeds the best found.
    double d = tree.NearestDistance(p, best);
    if (d < best) best = d;
    if (best == 0.0) break;
  }
  return best;
}

double MinDistanceBruteForce(const Object& a, const Object& b) {
  double best2 = std::numeric_limits<double>::infinity();
  for (const Point& pa : a.points) {
    for (const Point& pb : b.points) {
      double d2 = SquaredDistance(pa, pb);
      if (d2 < best2) best2 = d2;
    }
  }
  return std::sqrt(best2);
}

}  // namespace mio
