// Static 3-D kd-tree over a point array. Substrate for two of the paper's
// comparison algorithms: the NL kd-tree variant (footnote 9) and the
// theoretical algorithm's closest-pair pre-processing (§II-B, which cites
// Vaidya's O(n log n) all-nearest-neighbours bound).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geo/aabb.hpp"
#include "geo/point.hpp"

namespace mio {

/// Immutable kd-tree built once over a point set. Nodes carry exact
/// bounding boxes, giving tight pruning on the skewed, elongated objects
/// (neurites, trajectories) this system targets. Leaf points are stored
/// structure-of-arrays, so the early-exit leaf scan of ContainsWithin is
/// one batch distance-kernel call (geo/kernels.hpp) per leaf.
class KdTree {
 public:
  /// Builds over a copy of `points`. Empty input yields an empty tree.
  explicit KdTree(std::vector<Point> points);

  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  /// True iff some point lies within distance r of q (early-exit search).
  bool ContainsWithin(const Point& q, double r) const;

  /// Distance from q to its nearest point, pruned by `upper_bound`:
  /// returns a value > upper_bound (not necessarily the true minimum) when
  /// every point is farther than upper_bound.
  double NearestDistance(
      const Point& q,
      double upper_bound = std::numeric_limits<double>::infinity()) const;

  /// Appends the original indices of all points within r of q.
  void CollectWithin(const Point& q, double r,
                     std::vector<std::uint32_t>* out) const;

  /// Root bounding box (invalid box when empty).
  const Aabb& Bounds() const;

  std::size_t MemoryUsageBytes() const;

 private:
  struct Node {
    Aabb box;
    std::uint32_t begin = 0;  // leaf: range into points_
    std::uint32_t end = 0;
    std::int32_t left = -1;   // internal: children indices
    std::int32_t right = -1;
    bool IsLeaf() const { return left < 0; }
  };

  static constexpr std::size_t kLeafSize = 16;

  std::int32_t BuildNode(std::vector<Point>* pts, std::uint32_t begin,
                         std::uint32_t end);

  bool ContainsWithinRec(std::int32_t node, const Point& q, double r2) const;
  void NearestRec(std::int32_t node, const Point& q, double* best2) const;
  void CollectRec(std::int32_t node, const Point& q, double r2,
                  std::vector<std::uint32_t>* out) const;

  Point PointAt(std::size_t i) const { return Point{xs_[i], ys_[i], zs_[i]}; }

  // Reordered (build-order) coordinates, structure-of-arrays.
  std::vector<double> xs_, ys_, zs_;
  std::vector<std::uint32_t> ids_;  // point i was input[ids_[i]]
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace mio
