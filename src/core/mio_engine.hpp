// MioEngine — the public entry point of the library. Implements the
// paper's framework (Algorithm 2):
//
//   GRID-MAPPING -> LOWER-BOUNDING -> UPPER-BOUNDING -> VERIFICATION
//
// with optional label reuse across queries sharing ceil(r) (§III-D,
// "BIGrid-label"), the top-k variant (§III-C), and the multi-core phase
// implementations (§IV). The BIGrid is built online per query — the paper
// shows offline building is not viable (Appendix A) — so the engine keeps
// no spatial state between queries, only labels.
//
// Typical use:
//   mio::MioEngine engine(objects);
//   mio::QueryOptions opt;
//   opt.use_labels = opt.record_labels = true;   // BIGrid-label
//   mio::QueryResult res = engine.Query(4.0, opt);
//   res.best().id;       // o*
//   res.best().score;    // tau(o*)
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/bigrid.hpp"
#include "core/options.hpp"
#include "core/query_result.hpp"
#include "io/label_store.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Query processor over one (static, memory-resident) object collection.
class MioEngine {
 public:
  /// `objects` must outlive the engine. When `label_dir` is non-empty,
  /// recorded labels are persisted there and looked up on later queries
  /// (the external-memory label residency of §III-D); otherwise labels
  /// live only in the in-process cache.
  explicit MioEngine(const ObjectSet& objects, std::string label_dir = "");

  /// Runs one MIO query with threshold r > 0.
  QueryResult Query(double r, const QueryOptions& options = {});

  /// True if labels for ceil(r) are available (cache or disk).
  bool HasLabelsFor(double r) const;

  /// Drops cached and persisted labels.
  void ClearLabels();

  /// Drops cached large grids (the reuse_grid cache).
  void ClearGridCache() { grid_cache_.clear(); }

  const ObjectSet& objects() const { return objects_; }

  /// True when the engine detected a 2-D dataset at construction and is
  /// using the r/sqrt(2) small grid.
  bool planar() const { return planar_; }

 private:
  /// Looks up reusable labels for `ceil_r` and classifies the result
  /// (memory hit / disk hit / miss) into `*outcome`, bumping the
  /// labels.cache_hits / labels.cache_misses counters. A miss is later
  /// refined to kMissRecorded when this query records a fresh set.
  const LabelSet* LookupLabels(int ceil_r, double* load_seconds,
                               LabelOutcome* outcome);

  const ObjectSet& objects_;
  bool planar_ = false;
  std::unordered_map<int, LabelSet> label_cache_;
  std::unordered_map<int, std::shared_ptr<LargeGridData>> grid_cache_;
  std::unique_ptr<LabelStore> store_;
};

}  // namespace mio
