// MioEngine — the public entry point of the library. Implements the
// paper's framework (Algorithm 2):
//
//   GRID-MAPPING -> LOWER-BOUNDING -> UPPER-BOUNDING -> VERIFICATION
//
// with optional label reuse across queries sharing ceil(r) (§III-D,
// "BIGrid-label"), the top-k variant (§III-C), and the multi-core phase
// implementations (§IV). The BIGrid is built online per query — the paper
// shows offline building is not viable (Appendix A) — so the engine keeps
// no spatial state between queries, only labels.
//
// Typical use:
//   mio::MioEngine engine(objects);
//   mio::QueryOptions opt;
//   opt.use_labels = opt.record_labels = true;   // BIGrid-label
//   mio::QueryResult res = engine.Query(4.0, opt);
//   res.best().id;       // o*
//   res.best().score;    // tau(o*)
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/batch.hpp"
#include "core/bigrid.hpp"
#include "core/options.hpp"
#include "core/query_result.hpp"
#include "io/label_store.hpp"
#include "object/object_set.hpp"

namespace mio {

class VerifyArena;  // core/verification.hpp

/// Query processor over one (static, memory-resident) object collection.
class MioEngine {
 public:
  /// `objects` must outlive the engine. When `label_dir` is non-empty,
  /// recorded labels are persisted there and looked up on later queries
  /// (the external-memory label residency of §III-D); otherwise labels
  /// live only in the in-process cache.
  explicit MioEngine(const ObjectSet& objects, std::string label_dir = "");

  /// Runs one MIO query with threshold r > 0.
  QueryResult Query(double r, const QueryOptions& options = {});

  /// Runs a batch of queries, amortising work across members that share
  /// a ceil(r) class: one large-grid build, one label lookup, a shared
  /// two-level posting layout, and one verification arena per class (see
  /// core/batch.hpp). Results are parallel to `queries` and bit-identical
  /// to calling Query per member. Per-member guardrails still apply; a
  /// degrading member cannot poison its siblings.
  BatchResult QueryBatch(const std::vector<BatchQuery>& queries,
                         const BatchOptions& options = {});

  /// True if labels for ceil(r) are available (cache or disk).
  bool HasLabelsFor(double r) const;

  /// Drops cached and persisted labels.
  void ClearLabels();

  /// Drops cached large grids (the reuse_grid cache).
  ///
  /// Lifetime contract: the cache stores shared_ptr<LargeGridData>, and
  /// every consumer — a Query that adopted a cached grid, a QueryBatch
  /// class pinning its grid across members — holds its own shared_ptr
  /// for as long as it reads the grid. Clearing therefore only drops the
  /// cache's reference: a grid still held by an in-flight query or batch
  /// class stays alive until its last reader releases it, so a mid-batch
  /// clear (including the one issued by the memory-budget degradation
  /// ladder's drop_grid_cache step) can never dangle — it only forces
  /// later lookups to rebuild.
  void ClearGridCache() { grid_cache_.clear(); }

  const ObjectSet& objects() const { return objects_; }

  /// True when the engine detected a 2-D dataset at construction and is
  /// using the r/sqrt(2) small grid.
  bool planar() const { return planar_; }

 private:
  /// Batch-supplied context for one pipeline run: the hoisted per-class
  /// state QueryBatch threads through its members so class-wide work is
  /// not redone per query. Null fields fall back to the single-query
  /// behaviour.
  struct PipelineContext {
    /// Class grid to adopt (overrides the grid_cache_ lookup). Held by
    /// the caller for the whole class — see ClearGridCache's contract.
    std::shared_ptr<LargeGridData> shared_grid;

    /// Build the large grid from every point even when labels are in
    /// use, so the resulting grid is complete and shareable with
    /// label-free siblings (the same grid a cache hit would supply).
    bool build_complete_grid = false;

    /// When true, `labels`/`label_outcome` replace the per-query
    /// LookupLabels probe (the class-hoisted lookup).
    bool labels_resolved = false;
    const LabelSet* labels = nullptr;
    LabelOutcome label_outcome = LabelOutcome::kOff;

    /// False suppresses label recording (only one member per class
    /// records; its siblings replay the freshly recorded set).
    bool allow_record = true;

    /// Shared verification scratch, allocated once per class.
    VerifyArena* arena = nullptr;

    /// When non-null, receives the built (complete, untripped) large
    /// grid so the caller can share it with the remaining members.
    std::shared_ptr<LargeGridData>* grid_out = nullptr;
  };

  /// The Algorithm-2 pipeline behind Query and QueryBatch. `ctx` (null
  /// for single queries) supplies batch-hoisted state.
  QueryResult RunPipeline(double r, const QueryOptions& options,
                          const PipelineContext* ctx);

  /// Looks up reusable labels for `ceil_r` and classifies the result
  /// (memory hit / disk hit / miss) into `*outcome`, bumping the
  /// labels.cache_hits / labels.cache_misses counters. A miss is later
  /// refined to kMissRecorded when this query records a fresh set.
  const LabelSet* LookupLabels(int ceil_r, double* load_seconds,
                               LabelOutcome* outcome);

  const ObjectSet& objects_;
  bool planar_ = false;
  std::unordered_map<int, LabelSet> label_cache_;
  std::unordered_map<int, std::shared_ptr<LargeGridData>> grid_cache_;
  std::unique_ptr<LabelStore> store_;
};

}  // namespace mio
