// Batch query execution types (MioEngine::QueryBatch). A batch is a
// sequence of MIO queries evaluated together: members are grouped by
// ceil(r) class, each class builds its large grid once (through the
// engine's grid cache), hoists the label lookup, rewrites the class
// grid's postings into the two-level octant layout (core/bigrid.hpp),
// and shares one verification arena — so index construction, label
// probing, and scratch allocation are paid per class, not per query.
//
// Results are exact and bit-identical to running each member through
// MioEngine::Query: grid sharing, posting partitioning, and arena reuse
// change where work happens, never what is computed. Per-query
// guardrails (deadline/budget/cancel) still apply to each member
// individually, and a member that trips or degrades cannot poison its
// siblings — at worst the next member of the class rebuilds the grid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "core/query_result.hpp"

namespace mio {

/// One member of a batch: the radius plus the same per-query options
/// MioEngine::Query takes. `options.reuse_grid` is implied (class grids
/// are the point of batching); the other fields are honoured as-is.
struct BatchQuery {
  double r = 0.0;
  QueryOptions options;
};

struct BatchOptions {
  /// Rewrite each class grid's cell postings into the two-level octant
  /// layout after the first member builds it, so sibling scans prune
  /// whole octants (LargeCell::PartitionPostings).
  bool partition_postings = true;

  /// Cells with fewer posting points keep the flat layout (the offset
  /// directory would cost more than the scan it prunes).
  std::size_t partition_min_points = 32;
};

/// Batch-level accounting (also mirrored into the batch.* metrics).
struct BatchStats {
  std::size_t classes = 0;           ///< distinct ceil(r) classes
  std::size_t grid_builds = 0;       ///< large grids actually built
  std::size_t grid_builds_saved = 0; ///< members served by a class grid
  std::size_t cells_partitioned = 0; ///< cells rewritten to two-level
  std::uint64_t postings_bytes_shared = 0;  ///< posting bytes reused
  std::uint64_t arena_high_water_bytes = 0; ///< verify-arena footprint
};

/// Per-member results, parallel to the submitted query vector.
struct BatchResult {
  std::vector<QueryResult> results;
  BatchStats stats;
};

}  // namespace mio
