// Load-balancing partitioners for the parallel phases (paper §IV).
// Optimal multi-way partitioning is NP-complete (Theorem 3, via multi-way
// number partitioning), so the paper — and we — use greedy heuristics:
// each item goes to the currently least-loaded core, in input order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mio {

/// Greedy min-load assignment: items are visited in input order and each
/// goes to the part with the smallest cumulative weight. Returns
/// assignment[i] in [0, parts).
std::vector<int> GreedyAssign(const std::vector<std::uint64_t>& weights,
                              int parts);

/// Balance diagnostics for a partition (reported by bench_fig8 alongside
/// wall-clock, since partition quality is hardware-independent).
struct PartitionQuality {
  std::uint64_t max_load = 0;
  std::uint64_t min_load = 0;
  double imbalance = 0.0;  ///< (max - min) / mean, 0 = perfectly balanced

  std::string ToString() const;
};

PartitionQuality EvaluatePartition(const std::vector<std::uint64_t>& weights,
                                   const std::vector<int>& assignment,
                                   int parts);

}  // namespace mio
