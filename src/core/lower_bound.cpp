#include "core/lower_bound.hpp"

#include <algorithm>

#include "common/guardrails.hpp"
#include "obs/metrics.hpp"

namespace mio {

std::uint32_t LowerBoundResult::KthLargest(std::size_t k) const {
  if (tau_low.empty()) return 0;
  k = std::min(std::max<std::size_t>(k, 1), tau_low.size());
  std::vector<std::uint32_t> copy = tau_low;
  std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end(),
                   std::greater<>());
  return copy[k - 1];
}

LowerBoundResult LowerBounding(const BiGrid& grid, bool keep_bitsets,
                               QueryGuard* guard) {
  const std::size_t n = grid.objects().size();
  LowerBoundResult res;
  res.tau_low.assign(n, 0);
  if (keep_bitsets) res.lb_bitsets.resize(n);

  for (ObjectId i = 0; i < n; ++i) {
    if (guard != nullptr && (i % kGuardStrideObjects) == 0 && guard->Poll()) {
      break;  // partial tau_low entries remain valid lower bounds
    }
    Ewah acc;
    for (const CellKey& key : grid.KeyList(i)) {
      const SmallCell* cell = grid.FindSmall(key);
      acc.OrWith(cell->bits);
    }
    std::size_t count = acc.Count();
    obs::Add(obs::Counter::kLbCellOrs, grid.KeyList(i).size());
    obs::Observe(obs::Histogram::kLbKeyListLen, grid.KeyList(i).size());
    obs::Observe(obs::Histogram::kLbUnionBits, count);
    // The union contains o_i's own bit whenever the key list is non-empty
    // (its point put it there); Lemma 1's "-1" removes it.
    res.tau_low[i] =
        count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
    res.tau_low_max = std::max(res.tau_low_max, res.tau_low[i]);
    if (keep_bitsets) res.lb_bitsets[i] = std::move(acc);
  }
  return res;
}

}  // namespace mio
