// Point labels (paper Definition 4 and §III-D). A label is three bits per
// point, initialised to 111, recorded while processing an MIO query with
// threshold r and valid for every future query with the same ceil(r)
// (the large grid is identical for all such thresholds — that is why the
// large-grid width is the ceiling):
//
//   bit kMap    (paper "Labeling-1", pattern 0**): the point's large cell
//     held no other object (|b_adj| = 1) — the point can be skipped in
//     grid mapping entirely (Lemma 3).
//   bit kUpper  (paper "Labeling-2", pattern 10*): the point's OR into
//     b(o_i) changed nothing during upper-bounding (Observation 2) — skip
//     it in future upper-bounding.
//   bit kVerify (paper "Labeling-3", pattern 1*0): the candidate set
//     b = b_adj - b(o_i) was already empty at this point during
//     verification (Observation 3) — skip it in future verification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "object/object_set.hpp"

namespace mio {

namespace label {
inline constexpr std::uint8_t kMap = 1u << 0;
inline constexpr std::uint8_t kUpper = 1u << 1;
inline constexpr std::uint8_t kVerify = 1u << 2;
inline constexpr std::uint8_t kAll = kMap | kUpper | kVerify;
}  // namespace label

// Validity note (verified by this implementation's cross-radius tests):
// Labeling-1 and Labeling-2 are properties of the large grid alone, so
// they hold for every query sharing ceil(r). Labeling-3, however, is a
// property of the *run*: it marks points whose whole neighbourhood was
// already confirmed at the recorded threshold — at a different r' the
// confirmations happen through different point pairs, and a skipped point
// can be the only witness of an interaction. The kVerify bit is therefore
// honoured only when the query radius equals the recorded radius
// (`recorded_r`); kMap and kUpper transfer to the whole ceiling class.

/// Labels for every point of every object, for one ceil(r) value.
struct LabelSet {
  /// labels[i][j] is the label of point j of object i.
  std::vector<std::vector<std::uint8_t>> labels;

  /// The exact threshold the labels were recorded at; the kVerify bit is
  /// only applicable to queries with this r.
  double recorded_r = 0.0;

  bool empty() const { return labels.empty(); }

  /// Label of point j of object i (kAll when the set is empty).
  std::uint8_t Get(ObjectId i, std::size_t j) const {
    if (labels.empty()) return label::kAll;
    return labels[i][j];
  }

  /// All-ones labels shaped like `objects`.
  static LabelSet MakeAllOnes(const ObjectSet& objects);

  /// Number of points whose kMap bit is cleared (prunable everywhere).
  std::size_t CountMapPruned() const;
  /// Number of points with any bit cleared.
  std::size_t CountAnyPruned() const;

  std::size_t MemoryUsageBytes() const;
};

}  // namespace mio
