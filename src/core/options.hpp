// Query options for the MIO engine, including the parallel partitioning
// strategy knobs the paper compares in Fig. 8.
#pragma once

#include <cstddef>

namespace mio {

class CancelToken;  // common/guardrails.hpp

/// Parallel lower-bounding partitioning (paper §IV).
enum class LbStrategy {
  /// "LB-greedy-d": greedily divide O across cores by key-list size; no
  /// synchronisation, imperfect balance.
  kGreedyDivideObjects,
  /// "LB-hash-p": hash-partition each object's key list across cores with
  /// per-core local bitsets merged at the end; perfect balance, merge
  /// overhead.
  kHashPartitionPoints,
};

/// Parallel upper-bounding partitioning (paper §IV).
enum class UbStrategy {
  /// "UB-greedy-p": cost-based greedy assignment of the P_{i,K} point
  /// groups using Eq. (3); a cell's b_adj is computed by exactly one core.
  kCostBasedGreedy,
  /// "UB-greedy-d": greedily divide O by |P_i|; ignores the real per-point
  /// cost (the paper's strawman, consistently poor).
  kGreedyDivideObjects,
};

/// Options controlling one MIO query execution.
struct QueryOptions {
  /// Number of OpenMP threads; <= 1 runs the serial algorithms.
  int threads = 1;

  /// Top-k variant (paper §III-C discussion); 1 is the plain MIO query.
  std::size_t k = 1;

  /// BIGrid-label behaviour: consult the engine's label cache (and disk
  /// store) for ceil(r) and run the *-WITH-LABEL phases when present.
  bool use_labels = false;

  /// Record labels as a side effect when none exist yet for ceil(r)
  /// (the paper's BIGrid runs "output the labels of points for each
  /// parameter setting", footnote 8).
  bool record_labels = false;

  /// Cache and reuse the large grid (cells, memoised b_adj, point groups)
  /// across queries sharing ceil(r) — an engineering extension of the
  /// paper's observation that the large grid depends only on the ceiling.
  /// Off by default so measurements stay paper-faithful (the paper's
  /// BIGrid rebuilds both grids every query).
  bool reuse_grid = false;

  LbStrategy lb_strategy = LbStrategy::kGreedyDivideObjects;
  UbStrategy ub_strategy = UbStrategy::kCostBasedGreedy;

  /// Fill QueryStats::compression (walks every cell bitset; off by
  /// default to keep measured query time honest).
  bool collect_compression_stats = false;

  // --- Guardrails (docs/ROBUSTNESS.md) ----------------------------------
  // Limits are cooperative: the phase loops poll them on an amortised
  // stride, so a tripped query returns within one stride — carrying a
  // best-so-far answer with QueryResult::complete = false — rather than
  // at an exact instant.

  /// Wall-clock budget for the whole query in milliseconds; 0 = unlimited.
  double deadline_ms = 0.0;

  /// Soft cap on query memory. Under pressure the engine sheds optional
  /// work along the degradation ladder (skip label recording, drop the
  /// grid cache, stream verification) before aborting with
  /// kResourceExhausted; 0 = unlimited.
  std::size_t memory_budget_bytes = 0;

  /// Cooperative cancellation from another thread; must outlive the
  /// query. nullptr = not cancellable.
  const CancelToken* cancel = nullptr;
};

}  // namespace mio
