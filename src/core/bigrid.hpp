// BIGrid (paper §III-A): the hybrid of compressed Bitsets, Inverted lists
// and spatial Grids. Two uniform hash grids are built online per query:
//
//   small grid  — cell width r/sqrt(3) (r/sqrt(2) for planar data); each
//     cell holds one compressed bitset b(c) of the objects with a point in
//     the cell. Two points in one cell are certainly within r (the cell
//     diagonal is exactly r), so the small grid drives lower-bounding.
//   large grid  — cell width ceil(r); each cell holds its bitset b(c), a
//     lazily computed neighbourhood union b_adj(c) = OR of b over the cell
//     and its 26 neighbours, and an inverted list of postings (the points
//     of each object inside the cell). Points within r of a point in the
//     cell must lie in the 27-cell neighbourhood, so the large grid drives
//     upper-bounding and verification.
//
// Cells are created on demand (no empty cells), every point maps to
// exactly one cell per grid (no replication), and each build operation is
// O(1) amortised — GRID-MAPPING is O(nm) (paper Algorithm 3).
//
// Because the large grid depends only on ceil(r) (the observation behind
// the paper's label mechanism, §III-D), it is held in a shareable
// LargeGridData block: the engine can cache it — including the memoised
// b_adj bitsets and the P_{i,K} groups — and reuse it verbatim for every
// later query with the same ceiling, skipping half of grid mapping and
// all first-touch neighbourhood unions. This grid reuse is an engineering
// extension of the paper's "leveraging previous results" idea.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bitset/bitset_stats.hpp"
#include "bitset/ewah.hpp"
#include "common/flat_hash_map.hpp"
#include "common/memory_tracker.hpp"
#include "core/labels.hpp"
#include "geo/cell_key.hpp"
#include "object/object_set.hpp"

namespace mio {

class QueryGuard;  // common/guardrails.hpp

/// One small-grid cell: the compressed bitset plus the build-time
/// bookkeeping that feeds the key lists (Algorithm 3 lines 5-13).
struct SmallCell {
  Ewah bits;
  /// First object mapped into the cell; when a second distinct object
  /// arrives, this one retroactively receives the key in its key list.
  ObjectId first_obj = 0;
  /// Last object that touched the cell (dedups same-object points: the
  /// build iterates objects in ascending id order).
  ObjectId last_obj = static_cast<ObjectId>(-1);
  /// Number of distinct objects in the cell (|b| without a popcount).
  std::uint32_t num_objects = 0;
};

/// Structure-of-arrays view over one posting list: three parallel
/// coordinate spans, consumable directly by the batch kernels
/// (geo/kernels.hpp) with zero pointer chasing.
struct PostingView {
  const double* xs = nullptr;
  const double* ys = nullptr;
  const double* zs = nullptr;
  std::size_t size = 0;

  bool empty() const { return size == 0; }
  Point operator[](std::size_t i) const { return Point{xs[i], ys[i], zs[i]}; }
};

/// One large-grid cell: bitset, lazy neighbourhood bitset, and the
/// inverted list I(c) stored as postings grouped by object id (ascending,
/// because the build visits objects in id order). Posting coordinates are
/// kept structure-of-arrays (contiguous xs/ys/zs) so verification's inner
/// loop is one batch-kernel call per (point, candidate-object) pair.
///
/// Two-level layout (batch execution): PartitionPostings rewrites the
/// postings grouped by the octant (2x2x2 sub-cell) their point falls in,
/// with `part_runs` as a 9-entry run-offset directory and `part_box` the
/// tight per-octant point bounding boxes. Candidate scans then skip whole
/// octants whose box lies farther than r from the probe point, so only
/// the relevant partition's SoA spans are handed to the kernels. Within
/// one octant, runs stay ordered by ascending object id; an object may
/// own up to eight runs (one per occupied octant).
struct LargeCell {
  Ewah bits;

  Ewah adj;                      ///< b_adj(c); valid iff adj_computed
  bool adj_computed = false;
  std::uint32_t adj_count = 0;   ///< |b_adj(c)| memoised for Labeling-1

  ObjectId last_obj = static_cast<ObjectId>(-1);

  std::vector<ObjectId> post_obj;        ///< object ids (ascending per level)
  std::vector<std::uint32_t> post_start; ///< post_obj-parallel offsets
  std::vector<double> post_xs;           ///< concatenated posting xs
  std::vector<double> post_ys;           ///< concatenated posting ys
  std::vector<double> post_zs;           ///< concatenated posting zs

  /// Two-level offset directory: when non-empty (always 9 entries), runs
  /// [part_runs[o], part_runs[o+1]) of post_obj belong to octant o.
  /// Empty = flat single-level layout.
  std::vector<std::uint32_t> part_runs;
  /// part_runs-parallel tight AABBs, 6 doubles per octant
  /// (minx,miny,minz,maxx,maxy,maxz); only octants with runs are valid.
  /// Tight point boxes (not geometric octant boxes) make the distance
  /// prune exact: a skipped octant provably holds no point within r.
  std::vector<double> part_box;

  bool partitioned() const { return !part_runs.empty(); }

  /// Appends a point to object `obj`'s posting (obj must be >= the last
  /// object added — the ascending build order). Flat layout only.
  void AddPostingPoint(ObjectId obj, const Point& p);

  /// Posting list I(c)[obj], empty when the object has no points here.
  /// Flat layout only: a partitioned cell may hold several runs per
  /// object, so callers must iterate runs via part_runs/PostingAt.
  PostingView Posting(ObjectId obj) const;

  /// Posting list of post_obj[idx] (no binary search). Valid in both
  /// layouts — a partitioned cell's idx just names one octant-level run.
  PostingView PostingAt(std::size_t idx) const;

  /// Total points stored across all postings.
  std::size_t NumPostingPoints() const { return post_xs.size(); }

  /// Rewrites the postings into the two-level octant layout. Idempotent;
  /// cells with fewer than `min_points` points keep the flat layout (the
  /// directory would cost more than the scan it prunes). Must not run
  /// concurrently with readers of this cell.
  void PartitionPostings(const CellKey& key, double width,
                         std::size_t min_points);

  std::size_t MemoryUsageBytes() const;
};

/// Squared distance from p to octant o's point bounding box in
/// `part_box` (0 when p is inside). Exact prune for the two-level scan:
/// every point of the octant lies inside its box by construction, so
/// MinDist2 > r^2 implies no point of the octant is within r of p.
inline double MinDist2ToOctantBox(const Point& p, const double* part_box,
                                  int octant) {
  const double* box = part_box + octant * 6;
  double d2 = 0.0;
  double d = box[0] - p.x;
  if (d < 0.0) d = p.x - box[3];
  if (d > 0.0) d2 += d * d;
  d = box[1] - p.y;
  if (d < 0.0) d = p.y - box[4];
  if (d > 0.0) d2 += d * d;
  d = box[2] - p.z;
  if (d < 0.0) d = p.z - box[5];
  if (d > 0.0) d2 += d * d;
  return d2;
}

/// Per-object grouping of points by large-grid key (paper §IV: P_{i,K}),
/// the unit of the cost-based parallel partitioning.
struct PointGroup {
  CellKey key;
  std::vector<std::uint32_t> point_idx;
};

/// One grid shard: a flat open-addressing index (16-byte slots, cheap to
/// probe and to rehash) pointing into a stable deque pool of cells (fat
/// structs never move, so rehashing never copies them and cell pointers
/// stay valid across inserts).
template <typename Cell>
struct CellShard {
  // Slot values are index+1; 0 means absent.
  FlatHashMap<CellKey, std::uint32_t, CellKeyHash> index;
  std::deque<Cell> cells;

  Cell& GetOrCreate(const CellKey& k) {
    std::uint32_t& slot = index[k];
    if (slot == 0) {
      cells.emplace_back();
      slot = static_cast<std::uint32_t>(cells.size());
    }
    return cells[slot - 1];
  }
  Cell* Find(const CellKey& k) {
    std::uint32_t* slot = index.Find(k);
    return (slot != nullptr && *slot != 0) ? &cells[*slot - 1] : nullptr;
  }
  const Cell* Find(const CellKey& k) const {
    const std::uint32_t* slot = index.Find(k);
    return (slot != nullptr && *slot != 0) ? &cells[*slot - 1] : nullptr;
  }
  std::size_t size() const { return cells.size(); }
  template <typename F>
  void ForEach(F&& f) {
    index.ForEach(
        [&](const CellKey& k, std::uint32_t slot) { f(k, cells[slot - 1]); });
  }
  template <typename F>
  void ForEach(F&& f) const {
    index.ForEach([&](const CellKey& k, std::uint32_t slot) {
      f(k, static_cast<const Cell&>(cells[slot - 1]));
    });
  }
  std::size_t TableBytes() const {
    return index.TableBytes() + cells.size() * sizeof(Cell);
  }
};

/// The shareable half of a BIGrid: everything that depends only on
/// ceil(r) — the large-grid cells (with their lazily memoised b_adj) and
/// the per-object P_{i,K} groups. `complete` marks grids built from every
/// point (no label pruning); only complete grids may be cached, since a
/// labelled build omits points and its groups reference fewer cells.
struct LargeGridData {
  double width = 0.0;
  std::vector<CellShard<LargeCell>> shards;
  std::vector<std::vector<PointGroup>> groups;
  bool has_groups = false;
  bool complete = false;
};

/// Rewrites every large cell with >= `min_points` posting points into the
/// two-level octant layout (see LargeCell::PartitionPostings). Returns the
/// number of cells partitioned by this call (already-partitioned cells
/// are skipped). Used by QueryBatch on class grids shared across batch
/// members; must not run concurrently with queries reading the grid.
std::size_t PartitionLargeGridPostings(LargeGridData* grid,
                                       std::size_t min_points);

/// Bytes held by the SoA posting arrays across all cells of the grid —
/// the payload a batch class shares instead of rebuilding per member.
std::size_t LargeGridPostingBytes(const LargeGridData& grid);

/// The BIGrid index for one query threshold r over one object collection.
class BiGrid {
 public:
  /// Prepares an empty index; call Build (or the parallel builder) next.
  /// `objects` must outlive the BiGrid. `planar` selects the 2-D small
  /// grid (width r/sqrt(2)) for constant-z data — sound only when every
  /// point shares one z value (the engine auto-detects this). `reuse`
  /// (optional) adopts a cached large grid for the same ceiling; Build
  /// then maps only the small grid.
  BiGrid(const ObjectSet& objects, double r, bool planar = false,
         std::shared_ptr<LargeGridData> reuse = nullptr);

  /// GRID-MAPPING(O, r), serial (paper Algorithm 3). When `labels` is
  /// non-empty, points with a cleared kMap bit are skipped entirely
  /// (GRID-MAPPING-WITH-LABEL, Lemma 3). `build_groups` additionally
  /// materialises the P_{i,K} groups needed by the parallel phases.
  /// `guard` (optional) is polled on an amortised stride and checked
  /// against the "alloc.bigrid" fault site; a tripped guard abandons the
  /// build early (the grid is then incomplete and must be discarded).
  void Build(const LabelSet* labels = nullptr, bool build_groups = false,
             QueryGuard* guard = nullptr);

  /// Hash-partitioned parallel build (paper §IV, PARALLEL-GRID-MAPPING):
  /// each thread owns the cells whose key hashes to it, so no cell is
  /// written by two threads; the key lists are derived in a post-pass,
  /// which yields exactly the sets Algorithm 3 builds incrementally.
  void BuildParallel(int threads, const LabelSet* labels = nullptr,
                     bool build_groups = false, QueryGuard* guard = nullptr);

  const ObjectSet& objects() const { return *objects_; }
  double r() const { return r_; }
  double small_width() const { return small_width_; }
  double large_width() const { return large_->width; }

  const SmallCell* FindSmall(const CellKey& k) const;
  const LargeCell* FindLarge(const CellKey& k) const;
  LargeCell* FindLarge(const CellKey& k);

  /// o_i.L — small-grid keys of cells shared with at least one other
  /// object (exactly the cells that contribute to the lower bound).
  const std::vector<CellKey>& KeyList(ObjectId i) const {
    return key_lists_[i];
  }

  /// P_{i,K} groups; only populated when built with build_groups.
  const std::vector<PointGroup>& LargeGroups(ObjectId i) const {
    return large_->groups[i];
  }
  bool has_groups() const { return large_->has_groups; }

  /// Computes (memoises) b_adj of the cell with key k; returns the cell.
  /// Not thread-safe for the same cell — the parallel phases arrange for
  /// single-writer access per cell.
  LargeCell& EnsureAdj(const CellKey& k);

  /// Shares the ceil(r)-dependent half for reuse by later queries with
  /// the same ceiling (includes memoised b_adj and groups).
  std::shared_ptr<LargeGridData> ShareLargeGrid() const { return large_; }
  /// True when the large grid covers every point (cacheable).
  bool large_grid_complete() const { return large_->complete; }
  /// True when this index adopted a cached large grid.
  bool reused_large_grid() const { return reused_large_; }

  std::size_t NumSmallCells() const {
    std::size_t n = 0;
    for (const auto& shard : small_) n += shard.size();
    return n;
  }
  std::size_t NumLargeCells() const {
    std::size_t n = 0;
    for (const auto& shard : large_->shards) n += shard.size();
    return n;
  }

  /// Structure footprint (the paper's memory-usage figures).
  MemoryBreakdown MemoryUsage() const;

  /// Compression accounting over every cell bitset (paper footnote 4).
  BitsetCompressionStats CompressionStats() const;

  /// Iterates large cells (used by the parallel builder's post passes).
  template <typename F>
  void ForEachLargeCell(F&& f) {
    for (auto& shard : large_->shards) {
      shard.ForEach([&](const CellKey& key, LargeCell& cell) { f(key, cell); });
    }
  }

 private:
  using SmallMap = CellShard<SmallCell>;
  using LargeMap = CellShard<LargeCell>;

  // The grids are sharded by key hash: the serial build uses one shard;
  // the parallel build gives each thread exclusive ownership of one shard
  // per grid, so cell creation and bitset updates need no synchronisation.
  // Small and large shard counts may differ when a cached large grid
  // (built under a different thread count) is adopted.
  std::size_t ShardOfSmall(const CellKey& k) const {
    return small_.size() == 1 ? 0 : CellKeyHash{}(k) % small_.size();
  }
  std::size_t ShardOfLarge(const CellKey& k) const {
    return large_->shards.size() == 1
               ? 0
               : CellKeyHash{}(k) % large_->shards.size();
  }

  void MapPointSmall(ObjectId i, const Point& p, bool update_key_lists);
  void MapPointLarge(ObjectId i, const Point& p);
  void BuildGroupsFor(ObjectId i, const LabelSet* labels);
  void DeriveKeyListsFromCells(int threads);

  const ObjectSet* objects_;
  double r_;
  double small_width_;

  std::vector<SmallMap> small_;
  std::shared_ptr<LargeGridData> large_;
  bool reused_large_ = false;
  std::vector<std::vector<CellKey>> key_lists_;
};

}  // namespace mio
