#include "core/temporal.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "bitset/ewah.hpp"
#include "bitset/plain_bitset.hpp"
#include "common/timer.hpp"
#include "core/upper_bound.hpp"
#include "core/verification.hpp"
#include "geo/cell_key.hpp"

namespace mio {
namespace {

/// Spatial cell key extended with the temporal sub-domain index.
struct TemporalKey {
  CellKey cell;
  std::int64_t sub = 0;

  bool operator==(const TemporalKey& o) const {
    return cell == o.cell && sub == o.sub;
  }
};

struct TemporalKeyHash {
  std::size_t operator()(const TemporalKey& k) const {
    std::size_t h = CellKeyHash{}(k.cell);
    std::uint64_t s = static_cast<std::uint64_t>(k.sub) * 0x9e3779b97f4a7c15ULL;
    return h ^ (s + (h << 6) + (h >> 2));
  }
};

struct TSmallCell {
  Ewah bits;
  ObjectId first_obj = 0;
  ObjectId last_obj = static_cast<ObjectId>(-1);
  std::uint32_t num_objects = 0;
};

struct TPosting {
  Point p;
  double t;
};

struct TLargeCell {
  Ewah bits;
  ObjectId last_obj = static_cast<ObjectId>(-1);
  std::vector<ObjectId> post_obj;
  std::vector<std::uint32_t> post_start;
  std::vector<TPosting> post_points;

  void Add(ObjectId obj, const Point& p, double t) {
    if (post_obj.empty() || post_obj.back() != obj) {
      if (last_obj != obj || post_obj.empty()) bits.Set(obj);
      last_obj = obj;
      post_obj.push_back(obj);
      post_start.push_back(static_cast<std::uint32_t>(post_points.size()));
    }
    post_points.push_back(TPosting{p, t});
  }

  std::pair<std::uint32_t, std::uint32_t> Range(ObjectId obj) const {
    auto it = std::lower_bound(post_obj.begin(), post_obj.end(), obj);
    if (it == post_obj.end() || *it != obj) return {0, 0};
    std::size_t idx = static_cast<std::size_t>(it - post_obj.begin());
    std::uint32_t begin = post_start[idx];
    std::uint32_t end = idx + 1 < post_start.size()
                            ? post_start[idx + 1]
                            : static_cast<std::uint32_t>(post_points.size());
    return {begin, end};
  }
};

/// BIGrid over (space x time sub-domains) for one (r, delta) query.
class TemporalBiGrid {
 public:
  TemporalBiGrid(const ObjectSet& objects, double r, double delta)
      : objects_(objects),
        r_(r),
        delta_(delta),
        small_width_(SmallGridWidth(r)),
        large_width_(LargeGridWidth(r)) {
    if (delta_ == 0.0) BuildTimeIndex();
    Build();
  }

  std::int64_t SubdomainOf(double t) const {
    if (delta_ > 0.0) {
      return static_cast<std::int64_t>(std::floor(t / delta_));
    }
    return time_index_.at(t);  // delta = 0: one sub-domain per timestamp
  }

  /// Sub-domains a point in sub-domain s must probe: s-1..s+1 for
  /// delta > 0, s only for delta = 0 (Appendix B).
  void ForEachSubNeighbor(std::int64_t s, auto&& f) const {
    if (delta_ > 0.0) {
      for (std::int64_t d = -1; d <= 1; ++d) f(s + d);
    } else {
      f(s);
    }
  }

  const ObjectSet& objects_;
  double r_;
  double delta_;
  double small_width_;
  double large_width_;

  std::unordered_map<TemporalKey, TSmallCell, TemporalKeyHash> small_;
  std::unordered_map<TemporalKey, TLargeCell, TemporalKeyHash> large_;
  std::vector<std::vector<TemporalKey>> key_lists_;

 private:
  void BuildTimeIndex() {
    std::map<double, std::int64_t> ids;
    for (const Object& o : objects_.objects()) {
      for (double t : o.times) ids.emplace(t, 0);
    }
    std::int64_t next = 0;
    for (auto& [t, id] : ids) id = next++;
    time_index_ = std::move(ids);
  }

  void Build() {
    const std::size_t n = objects_.size();
    key_lists_.assign(n, {});
    for (ObjectId i = 0; i < n; ++i) {
      const Object& o = objects_[i];
      for (std::size_t j = 0; j < o.points.size(); ++j) {
        const Point& p = o.points[j];
        double t = o.times[j];
        std::int64_t s = SubdomainOf(t);

        TemporalKey ks{KeyForWidth(p, small_width_), s};
        TSmallCell& sc = small_[ks];
        if (sc.last_obj != i || sc.num_objects == 0) {
          sc.last_obj = i;
          sc.bits.Set(i);
          ++sc.num_objects;
          if (sc.num_objects == 1) {
            sc.first_obj = i;
          } else {
            if (sc.num_objects == 2) key_lists_[sc.first_obj].push_back(ks);
            key_lists_[i].push_back(ks);
          }
        }

        TemporalKey kl{KeyForWidth(p, large_width_), s};
        large_[kl].Add(i, p, t);
      }
    }
  }

  std::map<double, std::int64_t> time_index_;
};

/// Neighbourhood union over space x time; memoised per key.
class TemporalAdj {
 public:
  explicit TemporalAdj(const TemporalBiGrid& grid) : grid_(grid) {}

  const Ewah& Get(const TemporalKey& k) {
    auto it = memo_.find(k);
    if (it != memo_.end()) return it->second;
    Ewah acc;
    grid_.ForEachSubNeighbor(k.sub, [&](std::int64_t s) {
      ForEachNeighbor(k.cell, /*include_self=*/true, [&](const CellKey& ck) {
        auto cit = grid_.large_.find(TemporalKey{ck, s});
        if (cit != grid_.large_.end()) acc.OrWith(cit->second.bits);
      });
    });
    return memo_.emplace(k, std::move(acc)).first->second;
  }

 private:
  const TemporalBiGrid& grid_;
  std::unordered_map<TemporalKey, Ewah, TemporalKeyHash> memo_;
};

std::uint32_t TemporalExactScore(const TemporalBiGrid& grid, TemporalAdj& adj,
                                 ObjectId i, std::size_t* dist_comps) {
  const Object& o = grid.objects_[i];
  const double r2 = grid.r_ * grid.r_;
  PlainBitset acc(grid.objects_.size());
  acc.Set(i);

  for (std::size_t j = 0; j < o.points.size(); ++j) {
    const Point& p = o.points[j];
    double t = o.times[j];
    std::int64_t s = grid.SubdomainOf(t);
    TemporalKey key{KeyForWidth(p, grid.large_width_), s};

    PlainBitset b = adj.Get(key).ToPlain();
    b.AndNotWith(acc);
    std::size_t remaining = b.Count();
    if (remaining == 0) continue;

    auto scan = [&](const TemporalKey& tk) -> bool {
      auto cit = grid.large_.find(tk);
      if (cit == grid.large_.end()) return true;
      const TLargeCell& cell = cit->second;
      for (ObjectId obj : cell.post_obj) {
        if (!b.Test(obj)) continue;
        auto [begin, end] = cell.Range(obj);
        for (std::uint32_t idx = begin; idx < end; ++idx) {
          const TPosting& q = cell.post_points[idx];
          if (dist_comps != nullptr) ++*dist_comps;
          if (SquaredDistance(p, q.p) <= r2 &&
              std::abs(t - q.t) <= grid.delta_) {
            acc.Set(obj);
            b.Clear(obj);
            --remaining;
            break;
          }
        }
        if (remaining == 0) return false;
      }
      return true;
    };

    bool stop = false;
    grid.ForEachSubNeighbor(s, [&](std::int64_t ns) {
      if (stop) return;
      ForEachNeighbor(key.cell, /*include_self=*/true, [&](const CellKey& ck) {
        if (!stop) stop = !scan(TemporalKey{ck, ns});
      });
    });
  }
  std::size_t count = acc.Count();
  return count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
}

}  // namespace

QueryResult TemporalMioQuery(const ObjectSet& objects, double r, double delta,
                             std::size_t k) {
  QueryResult res;
  if (objects.empty() || r <= 0.0 || delta < 0.0) return res;
  k = std::min(std::max<std::size_t>(k, 1), objects.size());
  Timer total;

  // Build (GRID-MAPPING over space x time).
  Timer phase;
  TemporalBiGrid grid(objects, r, delta);
  res.stats.phases.grid_mapping = phase.ElapsedSeconds();
  res.stats.cells_small = grid.small_.size();
  res.stats.cells_large = grid.large_.size();

  const std::size_t n = objects.size();

  // Lower bounds from same-sub-domain small cells.
  phase.Restart();
  std::vector<std::uint32_t> tau_low(n, 0);
  std::uint32_t tau_low_kth = 0;
  for (ObjectId i = 0; i < n; ++i) {
    Ewah acc;
    for (const TemporalKey& key : grid.key_lists_[i]) {
      acc.OrWith(grid.small_.at(key).bits);
    }
    std::size_t count = acc.Count();
    tau_low[i] = count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
  }
  {
    std::vector<std::uint32_t> copy = tau_low;
    std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end(),
                     std::greater<>());
    tau_low_kth = copy[k - 1];
  }
  res.stats.tau_low_max = *std::max_element(tau_low.begin(), tau_low.end());
  res.stats.phases.lower_bounding = phase.ElapsedSeconds();

  // Upper bounds from the space x time neighbourhood unions.
  phase.Restart();
  TemporalAdj adj(grid);
  std::vector<std::uint32_t> tau_upp(n, 0);
  std::vector<ObjectId> candidates;
  for (ObjectId i = 0; i < n; ++i) {
    const Object& o = objects[i];
    Ewah acc;
    for (std::size_t j = 0; j < o.points.size(); ++j) {
      TemporalKey key{KeyForWidth(o.points[j], grid.large_width_),
                      grid.SubdomainOf(o.times[j])};
      acc.OrWith(adj.Get(key));
    }
    std::size_t count = acc.Count();
    tau_upp[i] = count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
    if (tau_upp[i] >= tau_low_kth) candidates.push_back(i);
  }
  SortCandidates(tau_upp, &candidates);
  res.stats.num_candidates = candidates.size();
  res.stats.phases.upper_bounding = phase.ElapsedSeconds();

  // Best-first verification with early termination.
  phase.Restart();
  TopKTracker tracker(k);
  for (ObjectId i : candidates) {
    if (static_cast<long long>(tau_upp[i]) <= tracker.Threshold()) break;
    std::uint32_t score =
        TemporalExactScore(grid, adj, i, &res.stats.distance_computations);
    ++res.stats.num_verified;
    tracker.Offer(i, score);
  }
  res.topk = tracker.Sorted();
  res.stats.phases.verification = phase.ElapsedSeconds();
  res.stats.total_seconds = total.ElapsedSeconds();
  return res;
}

std::vector<std::uint32_t> TemporalBruteForceScores(const ObjectSet& objects,
                                                    double r, double delta) {
  const std::size_t n = objects.size();
  const double r2 = r * r;
  std::vector<std::uint32_t> tau(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Object& a = objects[static_cast<ObjectId>(i)];
      const Object& b = objects[static_cast<ObjectId>(j)];
      bool hit = false;
      for (std::size_t pi = 0; pi < a.points.size() && !hit; ++pi) {
        for (std::size_t pj = 0; pj < b.points.size(); ++pj) {
          if (SquaredDistance(a.points[pi], b.points[pj]) <= r2 &&
              std::abs(a.times[pi] - b.times[pj]) <= delta) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        ++tau[i];
        ++tau[j];
      }
    }
  }
  return tau;
}

}  // namespace mio
