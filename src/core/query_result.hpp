// Result and statistics types shared by every MIO algorithm (BIGrid and
// the baselines), so benches and tests can compare them uniformly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bitset/bitset_stats.hpp"
#include "common/memory_tracker.hpp"
#include "common/status.hpp"
#include "object/object.hpp"
#include "obs/perf_counters.hpp"

namespace mio {

/// An object id with its exact MIO score tau.
struct ScoredObject {
  ObjectId id = 0;
  std::uint32_t score = 0;
};

/// Wall-clock per phase of the BIGrid pipeline (paper Table II rows).
/// Baselines fill only `verification` (their score computation).
struct PhaseTimes {
  double label_input = 0.0;
  double grid_mapping = 0.0;
  double lower_bounding = 0.0;
  double upper_bounding = 0.0;
  double verification = 0.0;

  double Total() const {
    return label_input + grid_mapping + lower_bounding + upper_bounding +
           verification;
  }
};

/// Hardware-counter deltas per pipeline phase (same rows as PhaseTimes).
/// On the timing PMU tier only task_clock_ns is populated; the parallel
/// phases additionally fold in the non-master OpenMP workers' counts, so
/// a phase's cycles cover all cores that worked on it.
struct PhaseHardware {
  obs::PmuCounts label_input;
  obs::PmuCounts grid_mapping;
  obs::PmuCounts lower_bounding;
  obs::PmuCounts upper_bounding;
  obs::PmuCounts verification;

  obs::PmuCounts Total() const {
    obs::PmuCounts t;
    t += label_input;
    t += grid_mapping;
    t += lower_bounding;
    t += upper_bounding;
    t += verification;
    return t;
  }
};

/// How one query's label lookup (§III-D, BIGrid-label) resolved. The
/// per-query qlog records and `mio explain` report this directly; the
/// aggregate view is the labels.cache_hits / labels.cache_misses metrics.
enum class LabelOutcome : std::uint8_t {
  kOff = 0,      ///< query ran without label reuse (use_labels = false)
  kHitMemory,    ///< reused labels already resident in the engine cache
  kHitDisk,      ///< reused labels loaded from the label store
  kMissRecorded, ///< nothing reusable; this query recorded a fresh set
  kMiss,         ///< nothing reusable and recording was off (or shed)
};

/// Canonical short name ("off", "hit_memory", ...), stable across the
/// qlog schema.
const char* LabelOutcomeName(LabelOutcome outcome);

/// Inverse of LabelOutcomeName; false when `name` is not an outcome.
bool ParseLabelOutcome(const std::string& name, LabelOutcome* out);

/// Everything the empirical study reports about one query execution.
struct QueryStats {
  PhaseTimes phases;
  double total_seconds = 0.0;

  /// Per-phase PMU deltas (obs/perf_counters.hpp); all-zero when the
  /// pipeline never sampled (baselines, PMU compiled out).
  PhaseHardware hardware;
  /// Total points in the dataset (n*m) — the denominator of the derived
  /// cycles-per-point rate.
  std::size_t total_points = 0;

  /// Index structure footprint (Figs. 5f-j, 6f-j).
  std::size_t index_memory_bytes = 0;
  MemoryBreakdown memory;

  // Pruning effectiveness counters.
  std::uint32_t tau_low_max = 0;       ///< best lower bound found
  std::size_t num_candidates = 0;      ///< |O_cand| after upper-bounding
  std::size_t num_verified = 0;        ///< objects exactly scored
  std::size_t distance_computations = 0;
  std::size_t cells_small = 0;
  std::size_t cells_large = 0;
  std::size_t points_pruned_by_labels = 0;

  BitsetCompressionStats compression;
  int threads = 1;
  /// True when the query adopted a cached large grid (reuse_grid mode).
  bool reused_grid = false;

  /// How the label lookup resolved for this query (kOff when labels were
  /// not requested).
  LabelOutcome label_outcome = LabelOutcome::kOff;

  /// Highest memory-budget degradation step applied (0 = none; 1 = label
  /// recording shed, 2 = grid cache dropped, 3 = streaming verification).
  std::uint8_t degradation_level = 0;

  /// Seconds each OpenMP worker spent scoring candidates (index = thread
  /// id inside the verification regions). Filled only by the parallel
  /// verifier; the min/max/imbalance summary checks the paper's
  /// load-balanced partitioning claims (Fig. 9).
  std::vector<double> verify_thread_seconds;
};

/// Load-balance summary over per-worker times.
struct ThreadLoadReport {
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;
  /// max/mean; 1.0 = perfectly balanced, 0 when no samples.
  double imbalance = 0.0;
};

ThreadLoadReport ComputeThreadLoad(const std::vector<double>& seconds);

/// Outcome of one MIO query: the top-k objects (k = 1 for the base query)
/// in descending score order, plus execution statistics.
struct QueryResult {
  std::vector<ScoredObject> topk;
  QueryStats stats;

  /// OK for a normal run; kDeadlineExceeded / kResourceExhausted /
  /// kCancelled when a guardrail stopped the query early.
  Status status;

  /// False when a guardrail tripped: `topk` then holds the best answer
  /// found so far — exact scores for verified candidates, otherwise the
  /// best lower bound — not the proven optimum.
  bool complete = true;

  /// The most interactive object o* (precondition: non-empty dataset).
  const ScoredObject& best() const { return topk.front(); }
};

/// Builds a top-k result from a full score vector (what the baselines
/// produce — they compute every score; paper §V-B notes their run time is
/// independent of k). Ties are broken by lower object id.
std::vector<ScoredObject> TopKFromScores(const std::vector<std::uint32_t>& scores,
                                         std::size_t k);

}  // namespace mio
