#include "core/verification.hpp"

#include <algorithm>

namespace mio {

// ---------------------------------------------------------------------------
// TopKTracker
// ---------------------------------------------------------------------------

long long TopKTracker::Threshold() const {
  if (entries_.size() < k_) return -1;
  long long worst = entries_.front().score;
  for (const ScoredObject& e : entries_) {
    worst = std::min(worst, static_cast<long long>(e.score));
  }
  return worst;
}

void TopKTracker::Offer(ObjectId id, std::uint32_t score) {
  if (entries_.size() < k_) {
    entries_.push_back(ScoredObject{id, score});
    return;
  }
  // Replace the worst entry if strictly beaten (ties keep the incumbent:
  // the paper breaks ties arbitrarily).
  std::size_t worst = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].score < entries_[worst].score) worst = i;
  }
  if (score > entries_[worst].score) entries_[worst] = ScoredObject{id, score};
}

std::vector<ScoredObject> TopKTracker::Sorted() const {
  std::vector<ScoredObject> out = entries_;
  std::sort(out.begin(), out.end(), [](const ScoredObject& a,
                                       const ScoredObject& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Exact score
// ---------------------------------------------------------------------------

void VerifyPoint(BiGrid& grid, ObjectId i, std::size_t point_idx,
                 PlainBitset* acc, LabelSet* record_labels,
                 std::size_t* dist_comps) {
  const Point& p = grid.objects()[i].points[point_idx];
  const double r2 = grid.r() * grid.r();
  CellKey key = KeyForWidth(p, grid.large_width());
  // With labels, some cells may have skipped upper-bounding entirely, so
  // b_adj may be missing here — compute it first (paper §III-D).
  LargeCell& cell = grid.EnsureAdj(key);

  // b <- b_adj(c) - b(o_i): candidates not yet confirmed.
  PlainBitset b = cell.adj.ToPlain();
  b.AndNotWith(*acc);
  std::size_t remaining = b.Count();
  if (remaining == 0) {
    if (record_labels != nullptr) {
      // Labeling-3: this point's whole neighbourhood is already
      // confirmed (Observation 3).
      record_labels->labels[i][point_idx] &=
          static_cast<std::uint8_t>(~label::kVerify);
    }
    return;
  }

  std::size_t comps = 0;
  // Scan the cell itself, then its neighbours, stopping as soon as no
  // candidate remains near p. Postings are only touched for set bits of
  // b (Algorithm 6 line 13).
  auto scan_cell = [&](const CellKey& ck) -> bool {  // false = stop
    const LargeCell* c = grid.FindLarge(ck);
    if (c == nullptr) return true;
    for (ObjectId obj : c->post_obj) {
      if (!b.Test(obj)) continue;
      for (const Point& q : c->Posting(obj)) {
        ++comps;
        if (SquaredDistance(p, q) <= r2) {
          acc->Set(obj);
          b.Clear(obj);
          --remaining;
          break;
        }
      }
      if (remaining == 0) return false;
    }
    return true;
  };

  if (scan_cell(key)) {
    bool stop = false;
    ForEachNeighbor(key, /*include_self=*/false, [&](const CellKey& nk) {
      if (!stop) stop = !scan_cell(nk);
    });
  }
  if (dist_comps != nullptr) *dist_comps += comps;
}

std::uint32_t ExactScore(BiGrid& grid, ObjectId i, const LabelSet* use_labels,
                         LabelSet* record_labels, const Ewah* lb_bitset,
                         std::size_t* dist_comps, bool use_verify_bit) {
  const Object& o = grid.objects()[i];

  // b(o_i): confirmed interaction partners (plus bit i). With labels it is
  // seeded from the lower-bound union — those objects are certain partners
  // (Lemma 1), so no posting scan needs to rediscover them.
  PlainBitset acc =
      lb_bitset != nullptr ? lb_bitset->ToPlain() : PlainBitset();
  acc.Set(i);

  for (std::size_t j = 0; j < o.points.size(); ++j) {
    if (use_labels != nullptr) {
      std::uint8_t l = use_labels->Get(i, j);
      // VERIFICATION-WITH-LABEL iterates only points labelled 1*1. The
      // kVerify bit is honoured only at the recorded radius (see
      // labels.hpp); kMap must always be honoured — pruned points were
      // never mapped into the grid.
      if ((l & label::kMap) == 0) continue;
      if (use_verify_bit && (l & label::kVerify) == 0) continue;
    }
    VerifyPoint(grid, i, j, &acc, record_labels, dist_comps);
  }

  std::size_t count = acc.Count();
  return count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
}

// ---------------------------------------------------------------------------
// Best-first verification
// ---------------------------------------------------------------------------

std::vector<ScoredObject> Verification(BiGrid& grid,
                                       const UpperBoundResult& ub,
                                       std::size_t k,
                                       const LabelSet* use_labels,
                                       LabelSet* record_labels,
                                       const std::vector<Ewah>* lb_bitsets,
                                       QueryStats* stats,
                                       bool use_verify_bit) {
  TopKTracker tracker(k);
  for (ObjectId i : ub.candidates) {
    // Early termination (Corollary 1): the queue is sorted by descending
    // upper bound, so once the front cannot beat the k-th best exact
    // score, neither can anything behind it.
    if (static_cast<long long>(ub.tau_upp[i]) <= tracker.Threshold()) break;
    const Ewah* lb =
        lb_bitsets != nullptr ? &(*lb_bitsets)[i] : nullptr;
    std::uint32_t score = ExactScore(
        grid, i, use_labels, record_labels, lb,
        stats != nullptr ? &stats->distance_computations : nullptr,
        use_verify_bit);
    if (stats != nullptr) ++stats->num_verified;
    tracker.Offer(i, score);
  }
  return tracker.Sorted();
}

}  // namespace mio
