#include "core/verification.hpp"

#include <algorithm>

#include "common/guardrails.hpp"
#include "geo/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mio {

// ---------------------------------------------------------------------------
// TopKTracker
// ---------------------------------------------------------------------------

void TopKTracker::RecomputeWorst() {
  worst_idx_ = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].score < entries_[worst_idx_].score) worst_idx_ = i;
  }
}

long long TopKTracker::Threshold() const {
  if (entries_.size() < k_) return -1;
  return static_cast<long long>(entries_[worst_idx_].score);
}

void TopKTracker::Offer(ObjectId id, std::uint32_t score) {
  if (entries_.size() < k_) {
    // Keep the worst index current during the fill so Threshold() is O(1)
    // the moment the tracker reaches capacity.
    if (entries_.empty() || score < entries_[worst_idx_].score) {
      worst_idx_ = entries_.size();
    }
    entries_.push_back(ScoredObject{id, score});
    return;
  }
  // Replace the worst entry if strictly beaten (ties keep the incumbent:
  // the paper breaks ties arbitrarily). Only a replacement invalidates the
  // cached worst index, so large-k sweeps stop paying k comparisons per
  // candidate that fails the threshold.
  if (score > entries_[worst_idx_].score) {
    entries_[worst_idx_] = ScoredObject{id, score};
    RecomputeWorst();
  }
}

std::vector<ScoredObject> TopKTracker::Sorted() const {
  std::vector<ScoredObject> out = entries_;
  std::sort(out.begin(), out.end(), [](const ScoredObject& a,
                                       const ScoredObject& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Exact score
// ---------------------------------------------------------------------------

void VerifyPoint(BiGrid& grid, ObjectId i, std::size_t point_idx,
                 PlainBitset* acc, PlainBitset* b_scratch,
                 LabelSet* record_labels, std::size_t* dist_comps) {
  const Point& p = grid.objects()[i].points[point_idx];
  const double r2 = grid.r() * grid.r();
  CellKey key = KeyForWidth(p, grid.large_width());
  // With labels, some cells may have skipped upper-bounding entirely, so
  // b_adj may be missing here — compute it first (paper §III-D).
  LargeCell& cell = grid.EnsureAdj(key);

  // b <- b_adj(c) - b(o_i): candidates not yet confirmed. Decoded into the
  // caller's scratch bitset, so steady-state verification allocates
  // nothing per point.
  PlainBitset& b = *b_scratch;
  cell.adj.DecodeInto(&b);
  b.AndNotWith(*acc);
  std::size_t remaining = b.Count();
  obs::Add(obs::Counter::kVerifyPoints);
  obs::Observe(obs::Histogram::kVerifyCandsPerPoint, remaining);
  if (remaining == 0) {
    obs::Add(obs::Counter::kVerifyPointsSettled);
    if (record_labels != nullptr) {
      // Labeling-3: this point's whole neighbourhood is already
      // confirmed (Observation 3).
      record_labels->labels[i][point_idx] &=
          static_cast<std::uint8_t>(~label::kVerify);
    }
    return;
  }

  std::size_t comps = 0;
  std::size_t postings = 0;
  std::size_t octants_pruned = 0;
  // Scan the cell itself, then its neighbours, stopping as soon as no
  // candidate remains near p. Postings are only touched for set bits of
  // b (Algorithm 6 line 13); each touched posting is one batch-kernel
  // call over its contiguous SoA coordinates.
  auto scan_runs = [&](const LargeCell* c, std::size_t run_begin,
                       std::size_t run_end) -> bool {  // false = stop
    for (std::size_t oi = run_begin; oi < run_end; ++oi) {
      ObjectId obj = c->post_obj[oi];
      if (!b.Test(obj)) continue;
      ++postings;
      PostingView posting = c->PostingAt(oi);
      std::ptrdiff_t hit =
          AnyWithin(p, posting.xs, posting.ys, posting.zs, posting.size, r2);
      if (hit >= 0) {
        comps += static_cast<std::size_t>(hit) + 1;
        acc->Set(obj);
        b.Clear(obj);
        if (--remaining == 0) return false;
      } else {
        comps += posting.size;
      }
    }
    return true;
  };
  auto scan_cell = [&](const CellKey& ck) -> bool {  // false = stop
    const LargeCell* c = grid.FindLarge(ck);
    if (c == nullptr) return true;
    if (!c->partitioned()) return scan_runs(c, 0, c->post_obj.size());
    // Two-level layout: visit only octants whose point box can reach p.
    // Pruned octants provably hold no point within r (the boxes are tight
    // over the points), so the confirmed set — and the exact score — is
    // identical to the flat scan.
    for (int o = 0; o < 8; ++o) {
      const std::size_t run_begin = c->part_runs[static_cast<std::size_t>(o)];
      const std::size_t run_end =
          c->part_runs[static_cast<std::size_t>(o) + 1];
      if (run_begin == run_end) continue;
      if (MinDist2ToOctantBox(p, c->part_box.data(), o) > r2) {
        ++octants_pruned;
        continue;
      }
      if (!scan_runs(c, run_begin, run_end)) return false;
    }
    return true;
  };

  if (scan_cell(key)) {
    bool stop = false;
    ForEachNeighbor(key, /*include_self=*/false, [&](const CellKey& nk) {
      if (!stop) stop = !scan_cell(nk);
    });
  }
  obs::Add(obs::Counter::kPostingScans, postings);
  if (octants_pruned > 0) {
    obs::Add(obs::Counter::kVerifyOctantsPruned, octants_pruned);
  }
  if (dist_comps != nullptr) *dist_comps += comps;
}

std::uint32_t ExactScore(BiGrid& grid, ObjectId i, const LabelSet* use_labels,
                         LabelSet* record_labels, const Ewah* lb_bitset,
                         std::size_t* dist_comps, bool use_verify_bit,
                         PlainBitset* b_scratch, QueryGuard* guard,
                         PlainBitset* acc_scratch) {
  const Object& o = grid.objects()[i];

  // b(o_i): confirmed interaction partners (plus bit i). With labels it is
  // seeded from the lower-bound union — those objects are certain partners
  // (Lemma 1), so no posting scan needs to rediscover them. The seed fully
  // overwrites `acc_scratch` (DecodeInto resets first), so arena reuse
  // across candidates is safe.
  PlainBitset local_acc;
  PlainBitset& acc = acc_scratch != nullptr ? *acc_scratch : local_acc;
  if (lb_bitset != nullptr) {
    lb_bitset->DecodeInto(&acc);
  } else {
    acc.Reset();
  }
  acc.Set(i);

  PlainBitset local_scratch;
  if (b_scratch == nullptr) b_scratch = &local_scratch;

  for (std::size_t j = 0; j < o.points.size(); ++j) {
    if (guard != nullptr && (j % kGuardStridePoints) == 0 && guard->Poll()) {
      break;  // partial score: the caller must discard it
    }
    if (use_labels != nullptr) {
      std::uint8_t l = use_labels->Get(i, j);
      // VERIFICATION-WITH-LABEL iterates only points labelled 1*1. The
      // kVerify bit is honoured only at the recorded radius (see
      // labels.hpp); kMap must always be honoured — pruned points were
      // never mapped into the grid.
      if ((l & label::kMap) == 0) continue;
      if (use_verify_bit && (l & label::kVerify) == 0) continue;
    }
    VerifyPoint(grid, i, j, &acc, b_scratch, record_labels, dist_comps);
  }

  std::size_t count = acc.Count();
  return count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
}

// ---------------------------------------------------------------------------
// Best-first verification
// ---------------------------------------------------------------------------

std::vector<ScoredObject> Verification(BiGrid& grid,
                                       const UpperBoundResult& ub,
                                       std::size_t k,
                                       const LabelSet* use_labels,
                                       LabelSet* record_labels,
                                       const std::vector<Ewah>* lb_bitsets,
                                       QueryStats* stats,
                                       bool use_verify_bit,
                                       QueryGuard* guard,
                                       VerifyArena* arena) {
  TopKTracker tracker(k);
  PlainBitset local_scratch;  // reused across every verified point
  PlainBitset* b_scratch = arena != nullptr ? &arena->scratch : &local_scratch;
  PlainBitset* acc_scratch = arena != nullptr ? &arena->acc : nullptr;
  for (ObjectId i : ub.candidates) {
    // Early termination (Corollary 1): the queue is sorted by descending
    // upper bound, so once the front cannot beat the k-th best exact
    // score, neither can anything behind it.
    if (static_cast<long long>(ub.tau_upp[i]) <= tracker.Threshold()) break;
    if (guard != nullptr && guard->Poll()) break;
    MIO_TRACE_SPAN_CAT("verify.candidate", "verify");
    const Ewah* lb =
        lb_bitsets != nullptr ? &(*lb_bitsets)[i] : nullptr;
    std::uint32_t score = ExactScore(
        grid, i, use_labels, record_labels, lb,
        stats != nullptr ? &stats->distance_computations : nullptr,
        use_verify_bit, b_scratch, guard, acc_scratch);
    if (guard != nullptr && guard->tripped()) break;  // partial: discard
    if (stats != nullptr) ++stats->num_verified;
    tracker.Offer(i, score);
  }
  return tracker.Sorted();
}

}  // namespace mio
