#include "core/partition.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>

namespace mio {

std::vector<int> GreedyAssign(const std::vector<std::uint64_t>& weights,
                              int parts) {
  std::vector<int> assignment(weights.size(), 0);
  if (parts <= 1) return assignment;

  // Min-heap of (load, part): pop the least-loaded part in O(log parts).
  using Entry = std::pair<std::uint64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int p = 0; p < parts; ++p) heap.emplace(0, p);

  for (std::size_t i = 0; i < weights.size(); ++i) {
    auto [load, part] = heap.top();
    heap.pop();
    assignment[i] = part;
    heap.emplace(load + weights[i], part);
  }
  return assignment;
}

PartitionQuality EvaluatePartition(const std::vector<std::uint64_t>& weights,
                                   const std::vector<int>& assignment,
                                   int parts) {
  std::vector<std::uint64_t> loads(std::max(parts, 1), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    loads[assignment[i]] += weights[i];
    total += weights[i];
  }
  PartitionQuality q;
  q.max_load = *std::max_element(loads.begin(), loads.end());
  q.min_load = *std::min_element(loads.begin(), loads.end());
  double mean = static_cast<double>(total) / static_cast<double>(loads.size());
  q.imbalance =
      mean > 0.0 ? static_cast<double>(q.max_load - q.min_load) / mean : 0.0;
  return q;
}

std::string PartitionQuality::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "max=%llu min=%llu imbalance=%.3f",
                static_cast<unsigned long long>(max_load),
                static_cast<unsigned long long>(min_load), imbalance);
  return buf;
}

}  // namespace mio
