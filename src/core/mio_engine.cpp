#include "core/mio_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/guardrails.hpp"
#include "common/omp_utils.hpp"
#include "common/timer.hpp"
#include "core/bigrid.hpp"
#include "core/lower_bound.hpp"
#include "core/parallel_phases.hpp"
#include "core/upper_bound.hpp"
#include "core/verification.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace mio {

MioEngine::MioEngine(const ObjectSet& objects, std::string label_dir)
    : objects_(objects), planar_(objects.IsPlanar()) {
  if (!label_dir.empty()) {
    store_ = std::make_unique<LabelStore>(std::move(label_dir));
  }
}

const LabelSet* MioEngine::LookupLabels(int ceil_r, double* load_seconds,
                                        LabelOutcome* outcome) {
  auto it = label_cache_.find(ceil_r);
  if (it != label_cache_.end()) {
    obs::Add(obs::Counter::kLabelCacheHits);
    *outcome = LabelOutcome::kHitMemory;
    return &it->second;
  }
  if (store_ != nullptr && store_->Has(ceil_r)) {
    Timer timer;
    Result<LabelSet> loaded = store_->Load(ceil_r, objects_);
    if (load_seconds != nullptr) *load_seconds = timer.ElapsedSeconds();
    if (loaded.ok()) {
      auto [ins, _] = label_cache_.emplace(ceil_r, std::move(loaded).value());
      obs::Add(obs::Counter::kLabelCacheHits);
      *outcome = LabelOutcome::kHitDisk;
      return &ins->second;
    }
    // A corrupt / mismatched file is a cache miss, not an error: evict it
    // so this query's label-free run re-records and rewrites the labels,
    // and fall back to the always-correct label-free pipeline.
    if (loaded.status().code() == StatusCode::kCorruption) {
      obs::Add(obs::Counter::kLabelsCorruptRecovered);
      store_->Remove(ceil_r);
    }
  }
  obs::Add(obs::Counter::kLabelCacheMisses);
  *outcome = LabelOutcome::kMiss;
  return nullptr;
}

bool MioEngine::HasLabelsFor(double r) const {
  int ceil_r = static_cast<int>(LargeGridWidth(r));
  if (label_cache_.count(ceil_r) > 0) return true;
  return store_ != nullptr && store_->Has(ceil_r);
}

void MioEngine::ClearLabels() {
  label_cache_.clear();
  if (store_ != nullptr) store_->Clear();
}

namespace {

/// Converts a tripped guard into the result's terminal state: non-OK
/// status, complete=false, and a best-so-far answer. Exact scores from a
/// (possibly short) verification win; otherwise the best partial lower
/// bound stands in (its score is a valid lower bound of the true tau).
void FinalizeTripped(const QueryGuard& guard, const LowerBoundResult& lb,
                     QueryResult* res) {
  res->status = guard.status();
  res->complete = false;
  switch (guard.code()) {
    case StatusCode::kDeadlineExceeded:
      obs::Add(obs::Counter::kQueryDeadlineExceeded);
      break;
    case StatusCode::kCancelled:
      obs::Add(obs::Counter::kQueryCancelled);
      break;
    default:
      break;
  }
  if (!res->topk.empty() || lb.tau_low.empty()) return;
  std::size_t best = 0;
  for (std::size_t i = 1; i < lb.tau_low.size(); ++i) {
    if (lb.tau_low[i] > lb.tau_low[best]) best = i;
  }
  res->topk.push_back(ScoredObject{static_cast<ObjectId>(best),
                                   lb.tau_low[best]});
}

}  // namespace

QueryResult MioEngine::Query(double r, const QueryOptions& options) {
  return RunPipeline(r, options, nullptr);
}

QueryResult MioEngine::RunPipeline(double r, const QueryOptions& options,
                                   const PipelineContext* ctx) {
  MIO_TRACE_SPAN_CAT("query", "query");
  QueryResult res;
  if (objects_.empty() || r <= 0.0) return res;

  const int threads = ResolveThreads(options.threads);
  const std::size_t k = std::min(std::max<std::size_t>(options.k, 1),
                                 objects_.size());
  const bool parallel = threads > 1;
  QueryStats& stats = res.stats;
  stats.threads = threads;
  stats.total_points = objects_.Stats().nm;

  QueryGuard guard;
  guard.SetDeadline(options.deadline_ms);
  guard.SetCancelToken(options.cancel);

  Timer total_timer;

  // --- Label lookup (BIGrid-label: Label-Input row of Table II) ---------
  // A batch context carries the class-hoisted lookup result, so members
  // after the first skip the probe entirely.
  const int ceil_r = static_cast<int>(LargeGridWidth(r));
  const LabelSet* use_labels = nullptr;
  if (options.use_labels) {
    if (ctx != nullptr && ctx->labels_resolved) {
      use_labels = ctx->labels;
      stats.label_outcome = ctx->label_outcome;
    } else {
      MIO_TRACE_SPAN_CAT("label_input", "query");
      obs::PmuPhaseScope pmu(&stats.hardware.label_input);
      use_labels =
          LookupLabels(ceil_r, &stats.phases.label_input, &stats.label_outcome);
    }
  }
  LabelSet recorded;
  LabelSet* record_labels = nullptr;
  if (options.record_labels && use_labels == nullptr &&
      (ctx == nullptr || ctx->allow_record)) {
    recorded = LabelSet::MakeAllOnes(objects_);
    recorded.recorded_r = r;
    record_labels = &recorded;
  }
  // Labeling-3 is only sound when replaying the exact recorded radius
  // (see labels.hpp); Labeling-1/2 transfer to the whole ceiling class.
  // Non-const: the degradation ladder may clear it (see below).
  bool use_verify_bit = use_labels != nullptr && use_labels->recorded_r == r;

  // --- GRID-MAPPING(O, r) ------------------------------------------------
  // Planar data gets the tighter 2-D small grid (footnote 1); the large
  // grid — and therefore label validity — is unaffected. With reuse_grid,
  // a cached large grid for this ceiling (complete, with memoised b_adj)
  // is adopted and only the small grid is mapped.
  std::shared_ptr<LargeGridData> reuse;
  if (ctx != nullptr && ctx->shared_grid != nullptr) {
    reuse = ctx->shared_grid;  // class grid pinned by the batch
  } else if (options.reuse_grid) {
    auto it = grid_cache_.find(ceil_r);
    if (it != grid_cache_.end()) reuse = it->second;
  }
  // A batch's class grid must be complete (shareable with every sibling,
  // labelled or not), so its build ignores label pruning — exactly the
  // grid a cache hit would have supplied. The LB/UB/verification label
  // filters are unaffected and still prune per point.
  const LabelSet* grid_labels =
      ctx != nullptr && ctx->build_complete_grid ? nullptr : use_labels;
  BiGrid grid(objects_, r, planar_, std::move(reuse));
  {
    MIO_TRACE_SPAN_CAT("grid_mapping", "query");
    ScopedAccumulator acc(&stats.phases.grid_mapping);
    obs::PmuPhaseScope pmu(&stats.hardware.grid_mapping);
    if (parallel) {
      grid.BuildParallel(threads, grid_labels, /*build_groups=*/true, &guard);
    } else {
      grid.Build(grid_labels, /*build_groups=*/false, &guard);
    }
  }
  stats.reused_grid = grid.reused_large_grid();
  stats.cells_small = grid.NumSmallCells();
  stats.cells_large = grid.NumLargeCells();
  if (use_labels != nullptr) {
    stats.points_pruned_by_labels = use_labels->CountAnyPruned();
  }

  // The with-label verification seeds its accumulators from the
  // lower-bound unions, so keep them in that mode. Non-const: the
  // degradation ladder may shed them (with use_verify_bit — the kVerify
  // bit is only sound on top of the lower-bound seed).
  bool keep_lb_bitsets = use_labels != nullptr;
  bool cache_this_grid = (options.reuse_grid || ctx != nullptr) &&
                         grid.large_grid_complete();

  // --- Memory-budget degradation (docs/ROBUSTNESS.md) ---------------------
  // Project this query's footprint against the budget and shed optional
  // work in ladder order before giving up. The projection uses the built
  // grid's real footprint plus cheap estimates for the optional parts.
  if (options.memory_budget_bytes > 0 && !guard.tripped()) {
    MemoryBreakdown mb = grid.MemoryUsage();
    DegradationInputs in;
    in.budget_bytes = options.memory_budget_bytes;
    in.required_bytes = mb.Total();
    in.label_bytes =
        record_labels != nullptr ? recorded.MemoryUsageBytes() : 0;
    if (cache_this_grid) {
      for (const auto& [name, bytes] : mb.parts) {
        if (name == "large_grid") in.cache_bytes = bytes;
      }
    }
    // The lower-bound unions are not built yet; estimate one compressed
    // bitset per object.
    in.lb_bitset_bytes = keep_lb_bitsets ? objects_.size() * 128 : 0;
    DegradationPlan plan = PlanDegradation(in);
    if (plan.shed_label_recording && record_labels != nullptr) {
      record_labels = nullptr;
      recorded = LabelSet{};
    }
    if (plan.drop_grid_cache) {
      ClearGridCache();
      cache_this_grid = false;
    }
    if (plan.stream_verification) {
      keep_lb_bitsets = false;
      use_verify_bit = false;  // sound only on top of the lb-bitset seed
    }
    if (plan.abort) guard.TripResource();
    stats.degradation_level = static_cast<std::uint8_t>(plan.level());
    if (plan.degraded()) obs::Add(obs::Counter::kQueryDegraded);
  }
  if (cache_this_grid && !guard.tripped()) {
    grid_cache_[ceil_r] = grid.ShareLargeGrid();
  }
  // Hand the class grid back to the batch loop. A tripped member leaves
  // grid_out empty, so the next member of the class builds afresh —
  // guardrail isolation: one degrading member never poisons siblings.
  if (ctx != nullptr && ctx->grid_out != nullptr &&
      grid.large_grid_complete() && !guard.tripped()) {
    *ctx->grid_out = grid.ShareLargeGrid();
  }

  // --- LOWER-BOUNDING(O, r) ----------------------------------------------
  LowerBoundResult lb;
  if (!guard.tripped()) {
    MIO_TRACE_SPAN_CAT("lower_bounding", "query");
    ScopedAccumulator acc(&stats.phases.lower_bounding);
    obs::PmuPhaseScope pmu(&stats.hardware.lower_bounding);
    lb = parallel ? ParallelLowerBounding(grid, options.lb_strategy, threads,
                                          keep_lb_bitsets, &stats, &guard)
                  : LowerBounding(grid, keep_lb_bitsets, &guard);
  }
  std::uint32_t threshold = k == 1 ? lb.tau_low_max : lb.KthLargest(k);
  stats.tau_low_max = lb.tau_low_max;

  // --- UPPER-BOUNDING(O, r, threshold) ------------------------------------
  UpperBoundResult ub;
  if (!guard.tripped()) {
    MIO_TRACE_SPAN_CAT("upper_bounding", "query");
    ScopedAccumulator acc(&stats.phases.upper_bounding);
    obs::PmuPhaseScope pmu(&stats.hardware.upper_bounding);
    ub = parallel
             ? ParallelUpperBounding(grid, threshold, options.ub_strategy,
                                     threads, use_labels, record_labels,
                                     &stats, &guard)
             : UpperBounding(grid, threshold, use_labels, record_labels,
                             &stats, &guard);
  }

  // --- VERIFICATION(O_cand, r) ---------------------------------------------
  if (!guard.tripped()) {
    MIO_TRACE_SPAN_CAT("verification", "query");
    ScopedAccumulator acc(&stats.phases.verification);
    obs::PmuPhaseScope pmu(&stats.hardware.verification);
    const std::vector<Ewah>* lb_bits =
        keep_lb_bitsets ? &lb.lb_bitsets : nullptr;
    VerifyArena* arena = ctx != nullptr ? ctx->arena : nullptr;
    res.topk =
        parallel
            ? ParallelVerification(grid, ub, k, threads, use_labels,
                                   record_labels, lb_bits, &stats,
                                   use_verify_bit, &guard, arena)
            : Verification(grid, ub, k, use_labels, record_labels, lb_bits,
                           &stats, use_verify_bit, &guard, arena);
  }

  // --- Post-processing: label output (§III-D) -----------------------------
  // A tripped query ran its phases partially, so the recorded labels are
  // incomplete — discard them rather than persist a low-value set.
  if (record_labels != nullptr && !guard.tripped()) {
    // A miss that ran to completion produced a fresh label set — the next
    // query in this ceiling class will hit. (A shed or tripped recording
    // stays kMiss: nothing reusable was produced.)
    if (stats.label_outcome == LabelOutcome::kMiss) {
      stats.label_outcome = LabelOutcome::kMissRecorded;
    }
    stats.points_pruned_by_labels = recorded.CountMapPruned();
    if (store_ != nullptr) {
      // Persisting is best-effort: a failed write only costs future reuse.
      (void)store_->Save(ceil_r, recorded);
    }
    label_cache_[ceil_r] = std::move(recorded);
  }

  if (guard.tripped()) FinalizeTripped(guard, lb, &res);

  stats.memory = grid.MemoryUsage();
  if (use_labels != nullptr) {
    stats.memory.Add("labels", use_labels->MemoryUsageBytes());
  }
  stats.index_memory_bytes = stats.memory.Total();
  MemoryTracker::Instance().ObserveBreakdown(stats.memory);
  if (options.collect_compression_stats) {
    stats.compression = grid.CompressionStats();
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  return res;
}

}  // namespace mio
