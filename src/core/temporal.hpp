// Temporal MIO queries (paper Appendix B): objects carry a timestamp per
// point, and two objects interact iff they have points p, p' with
// dist(p,p') <= r AND |t - t'| <= delta. The time domain is decomposed
// into width-delta sub-domains and a BIGrid-style pair of grids is kept
// per (cell, sub-domain):
//   lower bound  — two points in the same small cell of the same
//     sub-domain are certainly within both thresholds;
//   upper bound / verification — partners of a point in sub-domain s lie
//     in the 27-cell spatial neighbourhood of sub-domains s-1, s, s+1.
// delta = 0 is the special case where each distinct generation time is its
// own sub-domain and only the same sub-domain is probed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/query_result.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Runs one temporal MIO query. Every object must be fully timestamped.
/// k selects the top-k variant.
QueryResult TemporalMioQuery(const ObjectSet& objects, double r, double delta,
                             std::size_t k = 1);

/// Brute-force oracle for the temporal interaction scores (tests and small
/// baselines): O(n^2 m^2).
std::vector<std::uint32_t> TemporalBruteForceScores(const ObjectSet& objects,
                                                    double r, double delta);

}  // namespace mio
