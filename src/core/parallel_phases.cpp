#include "core/parallel_phases.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/guardrails.hpp"
#include "common/omp_utils.hpp"
#include "common/timer.hpp"
#include "core/partition.hpp"
#include "core/verification.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace mio {

namespace {

/// Collects the OpenMP workers' PMU deltas for one parallel region and
/// folds the non-master shares into a PhaseHardware slot. The master
/// thread (region thread 0) is excluded: the engine's per-phase
/// PmuPhaseScope already counts it. The task-clock slot is dropped when
/// folding — workers run concurrently, so summing their wall time would
/// inflate the phase clock. Hardware-tier only; on the timing tier every
/// call is a no-op.
class WorkerPmuCapture {
 public:
  explicit WorkerPmuCapture(int threads)
      : active_(obs::ActivePmuTier() == obs::PmuTier::kHardware),
        begin_(active_ ? static_cast<std::size_t>(threads) : 0),
        delta_(active_ ? static_cast<std::size_t>(threads) : 0) {}

  /// Call at worker-region entry / exit, from the worker itself.
  void Enter(int t) {
    if (active_) begin_[static_cast<std::size_t>(t)] = obs::ReadPmuCounts();
  }
  void Leave(int t) {
    if (active_) {
      std::size_t s = static_cast<std::size_t>(t);
      delta_[s] += obs::ReadPmuCounts().DeltaSince(begin_[s]);
    }
  }

  /// Call after the region, from the master thread.
  void FoldInto(obs::PmuCounts* sink) const {
    if (!active_ || sink == nullptr) return;
    for (std::size_t t = 1; t < delta_.size(); ++t) {
      obs::PmuCounts d = delta_[t];
      d.Set(obs::PmuEvent::kTaskClockNs, 0);
      *sink += d;
    }
  }

 private:
  bool active_;
  std::vector<obs::PmuCounts> begin_;
  std::vector<obs::PmuCounts> delta_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Lower-bounding
// ---------------------------------------------------------------------------

namespace {

LowerBoundResult LbGreedyDivide(const BiGrid& grid, int threads,
                                bool keep_bitsets, QueryStats* stats,
                                QueryGuard* guard) {
  const std::size_t n = grid.objects().size();
  LowerBoundResult res;
  res.tau_low.assign(n, 0);
  if (keep_bitsets) res.lb_bitsets.resize(n);

  // Greedy division of O by key-list size (the paper's LB-greedy-d):
  // each core computes whole objects, so no bitset synchronisation.
  std::vector<std::uint64_t> weights(n);
  for (ObjectId i = 0; i < n; ++i) weights[i] = grid.KeyList(i).size() + 1;
  std::vector<int> assign = GreedyAssign(weights, threads);

  std::vector<std::uint32_t> local_max(threads, 0);
  WorkerPmuCapture pmu(threads);
#pragma omp parallel num_threads(threads)
  {
    MIO_TRACE_SPAN_CAT("lb.worker", "lb");
    int t = ThreadId();
    pmu.Enter(t);
    std::size_t done = 0;
    for (ObjectId i = 0; i < n; ++i) {
      if (assign[i] != t) continue;
      if (guard != nullptr && (done++ % kGuardStrideObjects) == 0 &&
          guard->Poll()) {
        break;  // each worker drains independently
      }
      Ewah acc;
      for (const CellKey& key : grid.KeyList(i)) {
        acc.OrWith(grid.FindSmall(key)->bits);
      }
      std::size_t count = acc.Count();
      obs::Add(obs::Counter::kLbCellOrs, grid.KeyList(i).size());
      obs::Observe(obs::Histogram::kLbKeyListLen, grid.KeyList(i).size());
      obs::Observe(obs::Histogram::kLbUnionBits, count);
      res.tau_low[i] = count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
      local_max[t] = std::max(local_max[t], res.tau_low[i]);
      if (keep_bitsets) res.lb_bitsets[i] = std::move(acc);
    }
    pmu.Leave(t);
  }
  if (stats != nullptr) pmu.FoldInto(&stats->hardware.lower_bounding);
  for (int t = 0; t < threads; ++t) {
    res.tau_low_max = std::max(res.tau_low_max, local_max[t]);
  }
  return res;
}

LowerBoundResult LbHashPartition(const BiGrid& grid, int threads,
                                 bool keep_bitsets, QueryGuard* guard) {
  const std::size_t n = grid.objects().size();
  LowerBoundResult res;
  res.tau_low.assign(n, 0);
  if (keep_bitsets) res.lb_bitsets.resize(n);

  // Hash-partition each object's key list across cores, OR into per-core
  // local bitsets, merge per object (the paper's LB-hash-p). Perfectly
  // balanced, but pays a parallel region + merge per object — exactly the
  // overhead Fig. 8 shows dominating when key lists are small.
  std::vector<Ewah> locals(threads);
  for (ObjectId i = 0; i < n; ++i) {
    // Polled per object (not per stride): each iteration already pays for
    // a parallel region, so the poll cost is negligible here.
    if (guard != nullptr && guard->Poll()) break;
    const std::vector<CellKey>& keys = grid.KeyList(i);
#pragma omp parallel num_threads(threads)
    {
      std::size_t t = static_cast<std::size_t>(ThreadId());
      locals[t].Reset();
      for (std::size_t idx = t; idx < keys.size();
           idx += static_cast<std::size_t>(threads)) {
        locals[t].OrWith(grid.FindSmall(keys[idx])->bits);
      }
    }
    Ewah acc;
    for (int t = 0; t < threads; ++t) acc.OrWith(locals[t]);
    std::size_t count = acc.Count();
    res.tau_low[i] = count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
    res.tau_low_max = std::max(res.tau_low_max, res.tau_low[i]);
    if (keep_bitsets) res.lb_bitsets[i] = std::move(acc);
  }
  return res;
}

}  // namespace

LowerBoundResult ParallelLowerBounding(const BiGrid& grid,
                                       LbStrategy strategy, int threads,
                                       bool keep_bitsets, QueryStats* stats,
                                       QueryGuard* guard) {
  threads = ResolveThreads(threads);
  if (threads <= 1) return LowerBounding(grid, keep_bitsets, guard);
  switch (strategy) {
    case LbStrategy::kHashPartitionPoints:
      // Per-object parallel regions: PMU capture per region would cost two
      // group reads per object per worker, so hash-partition hardware
      // counts cover the coordinating thread only (engine phase scope).
      return LbHashPartition(grid, threads, keep_bitsets, guard);
    case LbStrategy::kGreedyDivideObjects:
    default:
      return LbGreedyDivide(grid, threads, keep_bitsets, stats, guard);
  }
}

// ---------------------------------------------------------------------------
// Upper-bounding
// ---------------------------------------------------------------------------

namespace {

/// Clears the kUpper bit for the points of a group, optionally keeping the
/// first one (the point that "carries" the group's OR in future replays).
void ClearUpperLabels(LabelSet* record, ObjectId i, const PointGroup& g,
                      bool keep_first) {
  for (std::size_t idx = keep_first ? 1 : 0; idx < g.point_idx.size(); ++idx) {
    record->labels[i][g.point_idx[idx]] &=
        static_cast<std::uint8_t>(~label::kUpper);
  }
  if (!keep_first && !g.point_idx.empty()) {
    record->labels[i][g.point_idx[0]] &=
        static_cast<std::uint8_t>(~label::kUpper);
  }
}

UpperBoundResult UbCostBasedGreedy(BiGrid& grid, std::uint32_t threshold,
                                   int threads, const LabelSet* use_labels,
                                   LabelSet* record_labels,
                                   QueryStats* stats, QueryGuard* guard) {
  const std::size_t n = grid.objects().size();
  UpperBoundResult res;
  res.tau_upp.assign(n, 0);

  std::vector<Ewah> locals(threads);
  for (ObjectId i = 0; i < n; ++i) {
    // Per-object poll: each iteration spawns a parallel region anyway.
    if (guard != nullptr && guard->Poll()) break;
    const std::vector<PointGroup>& groups = grid.LargeGroups(i);

    // Cost model Eq. (3): a group whose cell still needs b_adj costs 27
    // cell accesses; a memoised one costs a single bitset update. The
    // labelling term |P_{i,K}| applies only when labels are being
    // recorded (it is "omitted when the labels are utilized").
    std::vector<std::uint64_t> weights(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const LargeCell* cell = grid.FindLarge(groups[g].key);
      std::uint64_t w = (cell != nullptr && cell->adj_computed)
                            ? 1
                            : static_cast<std::uint64_t>(kNeighborhoodSize);
      if (record_labels != nullptr) w += groups[g].point_idx.size();
      weights[g] = w;
    }
    std::vector<int> assign = GreedyAssign(weights, threads);

#pragma omp parallel num_threads(threads)
    {
      int t = ThreadId();
      locals[t].Reset();
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (assign[g] != t) continue;
        const PointGroup& group = groups[g];
        if (use_labels != nullptr) {
          // Skip the group unless some point still carries kUpper.
          bool any = false;
          for (std::uint32_t j : group.point_idx) {
            std::uint8_t l = use_labels->Get(i, j);
            if ((l & label::kUpper) != 0 && (l & label::kMap) != 0) {
              any = true;
              break;
            }
          }
          if (!any) continue;
        }
        // Points with the same key share one cell, so exactly one core
        // computes b_adj for it — no synchronisation (paper §IV).
        LargeCell& cell = grid.EnsureAdj(group.key);
        if (record_labels != nullptr && cell.adj_count == 1) {
          for (std::uint32_t j : group.point_idx) {
            record_labels->labels[i][j] &=
                static_cast<std::uint8_t>(~label::kMap);
          }
          continue;
        }
        if (record_labels != nullptr) {
          std::size_t before = locals[t].Count();
          locals[t].OrWith(cell.adj);
          bool changed = locals[t].Count() != before;
          // One OR per group: the first point carries it, the rest are
          // redundant (Observation 2); if nothing changed, all are.
          ClearUpperLabels(record_labels, i, group, /*keep_first=*/changed);
        } else {
          locals[t].OrWith(cell.adj);
        }
      }
    }

    Ewah acc;
    for (int t = 0; t < threads; ++t) acc.OrWith(locals[t]);
    std::size_t count = acc.Count();
    obs::Observe(obs::Histogram::kUbGroupsPerObject, groups.size());
    obs::Observe(obs::Histogram::kUbUnionBits, count);
    res.tau_upp[i] = count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
    if (res.tau_upp[i] >= threshold) res.candidates.push_back(i);
  }

  SortCandidates(res.tau_upp, &res.candidates);
  if (stats != nullptr) stats->num_candidates = res.candidates.size();
  return res;
}

UpperBoundResult UbGreedyDivide(BiGrid& grid, std::uint32_t threshold,
                                int threads, const LabelSet* use_labels,
                                LabelSet* record_labels, QueryStats* stats,
                                QueryGuard* guard) {
  const ObjectSet& objects = grid.objects();
  const std::size_t n = objects.size();
  const double large_width = grid.large_width();
  UpperBoundResult res;
  res.tau_upp.assign(n, 0);

  // The paper's strawman: divide O by |P_i| only. The real per-point cost
  // depends on whether b_adj must be computed, which this ignores — hence
  // the poor balance Fig. 8 reports. Threads keep private b_adj memos to
  // stay race-free (duplicated neighbourhood unions are part of the cost).
  std::vector<std::uint64_t> weights(n);
  for (ObjectId i = 0; i < n; ++i) weights[i] = objects[i].NumPoints() + 1;
  std::vector<int> assign = GreedyAssign(weights, threads);

  WorkerPmuCapture pmu(threads);
#pragma omp parallel num_threads(threads)
  {
    int t = ThreadId();
    pmu.Enter(t);
    std::unordered_map<CellKey, std::pair<Ewah, std::uint32_t>, CellKeyHash>
        memo;
    std::size_t done = 0;
    for (ObjectId i = 0; i < n; ++i) {
      if (assign[i] != t) continue;
      if (guard != nullptr && (done++ % kGuardStrideObjects) == 0 &&
          guard->Poll()) {
        break;  // each worker drains independently
      }
      const Object& o = objects[i];
      Ewah acc;
      std::size_t acc_count = 0;
      for (std::size_t j = 0; j < o.points.size(); ++j) {
        if (use_labels != nullptr) {
          std::uint8_t l = use_labels->Get(i, j);
          if ((l & label::kMap) == 0 || (l & label::kUpper) == 0) continue;
        }
        CellKey key = KeyForWidth(o.points[j], large_width);
        auto it = memo.find(key);
        if (it == memo.end()) {
          Ewah adj;
          const LargeCell* cell = grid.FindLarge(key);
          adj = cell->bits;
          ForEachNeighbor(key, false, [&](const CellKey& nk) {
            if (const LargeCell* nc = grid.FindLarge(nk)) adj.OrWith(nc->bits);
          });
          std::uint32_t cnt = static_cast<std::uint32_t>(adj.Count());
          it = memo.emplace(key, std::make_pair(std::move(adj), cnt)).first;
        }
        const auto& [adj, adj_count] = it->second;
        if (record_labels != nullptr && adj_count == 1) {
          record_labels->labels[i][j] &=
              static_cast<std::uint8_t>(~label::kMap);
          continue;
        }
        acc.OrWith(adj);
        if (record_labels != nullptr) {
          std::size_t new_count = acc.Count();
          if (new_count == acc_count) {
            record_labels->labels[i][j] &=
                static_cast<std::uint8_t>(~label::kUpper);
          }
          acc_count = new_count;
        }
      }
      std::size_t count = record_labels != nullptr ? acc_count : acc.Count();
      res.tau_upp[i] = count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
    }
    pmu.Leave(t);
  }
  if (stats != nullptr) pmu.FoldInto(&stats->hardware.upper_bounding);

  for (ObjectId i = 0; i < n; ++i) {
    if (res.tau_upp[i] >= threshold) res.candidates.push_back(i);
  }
  SortCandidates(res.tau_upp, &res.candidates);
  if (stats != nullptr) stats->num_candidates = res.candidates.size();
  return res;
}

}  // namespace

UpperBoundResult ParallelUpperBounding(BiGrid& grid, std::uint32_t threshold,
                                       UbStrategy strategy, int threads,
                                       const LabelSet* use_labels,
                                       LabelSet* record_labels,
                                       QueryStats* stats, QueryGuard* guard) {
  threads = ResolveThreads(threads);
  if (threads <= 1 || !grid.has_groups()) {
    return UpperBounding(grid, threshold, use_labels, record_labels, stats,
                         guard);
  }
  switch (strategy) {
    case UbStrategy::kGreedyDivideObjects:
      return UbGreedyDivide(grid, threshold, threads, use_labels,
                            record_labels, stats, guard);
    case UbStrategy::kCostBasedGreedy:
    default:
      return UbCostBasedGreedy(grid, threshold, threads, use_labels,
                               record_labels, stats, guard);
  }
}

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

namespace {

/// Parallel exact score of one candidate: points are partitioned across
/// cores (round-robin within each P_{i,K}; tiny groups go to the least
/// loaded core) and each core scans with a private accumulator; the
/// accumulators are merged afterwards (paper §IV, with/without label).
/// Each worker's scan time is accumulated into
/// stats->verify_thread_seconds so load imbalance is reportable.
std::uint32_t ParallelExactScore(BiGrid& grid, ObjectId i, int threads,
                                 const LabelSet* use_labels,
                                 LabelSet* record_labels, const Ewah* lb_bitset,
                                 QueryStats* stats, bool use_verify_bit,
                                 QueryGuard* guard, VerifyArena* arena) {
  const std::vector<PointGroup>& groups = grid.LargeGroups(i);
  const std::size_t n = grid.objects().size();

  // Phase 1: make sure every needed b_adj exists (with labels, upper
  // bounding may have skipped some cells). Keys are unique per group, so
  // parallel EnsureAdj calls touch distinct cells.
#pragma omp parallel for schedule(dynamic, 8) num_threads(threads)
  for (std::size_t g = 0; g < groups.size(); ++g) {
    grid.EnsureAdj(groups[g].key);
  }

  PlainBitset seed = lb_bitset != nullptr ? lb_bitset->ToPlain() : PlainBitset(n);
  seed.Set(i);

  // Phase 2 (with-label): prune whole cells already covered by the
  // lower-bound union before distributing any points.
  std::vector<char> group_alive(groups.size(), 1);
  if (lb_bitset != nullptr) {
#pragma omp parallel num_threads(threads)
    {
      PlainBitset b;  // per-thread decode scratch
#pragma omp for schedule(static)
      for (std::size_t g = 0; g < groups.size(); ++g) {
        grid.FindLarge(groups[g].key)->adj.DecodeInto(&b);
        b.AndNotWith(seed);
        group_alive[g] = b.Count() > 0 ? 1 : 0;
      }
    }
  }

  // Phase 3: distribute points. Each surviving group is split round-robin
  // across cores; groups smaller than the core count feed the least
  // loaded core instead.
  std::vector<std::vector<std::pair<std::size_t, std::uint32_t>>> tasks(
      threads);  // (group index, point index)
  std::vector<std::size_t> load(threads, 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!group_alive[g]) continue;
    const PointGroup& group = groups[g];
    if (group.point_idx.size() >=
        static_cast<std::size_t>(threads)) {
      for (std::size_t idx = 0; idx < group.point_idx.size(); ++idx) {
        int t = static_cast<int>(idx % static_cast<std::size_t>(threads));
        tasks[t].emplace_back(g, group.point_idx[idx]);
        ++load[t];
      }
    } else {
      for (std::uint32_t j : group.point_idx) {
        int t = static_cast<int>(
            std::min_element(load.begin(), load.end()) - load.begin());
        tasks[t].emplace_back(g, j);
        ++load[t];
      }
    }
  }

  // Phase 4: per-core scans with private accumulators. PMU capture is
  // per candidate (this function runs once per verified object): two
  // group reads per worker per candidate, paid only on the hardware tier.
  // With an arena the per-core bitsets come from its slots (allocated
  // once per batch class); copy-assigning the seed reuses their capacity.
  std::vector<PlainBitset> local_accs;
  if (arena != nullptr) {
    arena->PrepareThreads(threads);
  } else {
    local_accs.resize(static_cast<std::size_t>(threads));
  }
  auto acc_of = [&](int t) -> PlainBitset& {
    return arena != nullptr ? arena->slots[static_cast<std::size_t>(t)].acc
                            : local_accs[static_cast<std::size_t>(t)];
  };
  std::vector<std::size_t> comps(threads, 0);
  std::vector<double> seconds(threads, 0.0);
  WorkerPmuCapture pmu(threads);
#pragma omp parallel num_threads(threads)
  {
    MIO_TRACE_SPAN_CAT("verify.worker", "verify");
    Timer worker_timer;
    int t = ThreadId();
    pmu.Enter(t);
    PlainBitset& acc = acc_of(t);
    acc = seed;
    PlainBitset local_scratch;  // per-core candidate-set scratch
    PlainBitset& b_scratch =
        arena != nullptr ? arena->slots[static_cast<std::size_t>(t)].scratch
                         : local_scratch;
    std::size_t done = 0;
    for (const auto& [g, j] : tasks[t]) {
      if (guard != nullptr && (done++ % kGuardStridePoints) == 0 &&
          guard->Poll()) {
        break;  // partial score: the caller discards it
      }
      if (use_labels != nullptr) {
        std::uint8_t l = use_labels->Get(i, j);
        if ((l & label::kMap) == 0) continue;
        if (use_verify_bit && (l & label::kVerify) == 0) continue;
      }
      VerifyPoint(grid, i, j, &acc, &b_scratch, record_labels, &comps[t]);
    }
    seconds[static_cast<std::size_t>(t)] = worker_timer.ElapsedSeconds();
    pmu.Leave(t);
  }

  PlainBitset& merged = acc_of(0);
  for (int t = 1; t < threads; ++t) merged.OrWith(acc_of(t));
  if (stats != nullptr) pmu.FoldInto(&stats->hardware.verification);
  if (stats != nullptr) {
    for (int t = 0; t < threads; ++t) {
      stats->distance_computations += comps[t];
      stats->verify_thread_seconds[static_cast<std::size_t>(t)] +=
          seconds[static_cast<std::size_t>(t)];
    }
  }
  std::size_t count = merged.Count();
  return count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
}

}  // namespace

std::vector<ScoredObject> ParallelVerification(
    BiGrid& grid, const UpperBoundResult& ub, std::size_t k, int threads,
    const LabelSet* use_labels, LabelSet* record_labels,
    const std::vector<Ewah>* lb_bitsets, QueryStats* stats,
    bool use_verify_bit, QueryGuard* guard, VerifyArena* arena) {
  threads = ResolveThreads(threads);
  if (threads <= 1 || !grid.has_groups()) {
    return Verification(grid, ub, k, use_labels, record_labels, lb_bitsets,
                        stats, use_verify_bit, guard, arena);
  }
  TopKTracker tracker(k);
  if (stats != nullptr) {
    stats->verify_thread_seconds.assign(static_cast<std::size_t>(threads),
                                        0.0);
  }
  for (ObjectId i : ub.candidates) {
    if (static_cast<long long>(ub.tau_upp[i]) <= tracker.Threshold()) break;
    if (guard != nullptr && guard->Poll()) break;
    MIO_TRACE_SPAN_CAT("verify.candidate", "verify");
    std::uint32_t score =
        ParallelExactScore(grid, i, threads, use_labels, record_labels,
                           lb_bitsets != nullptr ? &(*lb_bitsets)[i] : nullptr,
                           stats, use_verify_bit, guard, arena);
    if (guard != nullptr && guard->tripped()) break;  // partial: discard
    if (stats != nullptr) ++stats->num_verified;
    tracker.Offer(i, score);
  }
  return tracker.Sorted();
}

}  // namespace mio
