#include "core/upper_bound.hpp"

#include <algorithm>

#include "common/guardrails.hpp"
#include "obs/metrics.hpp"

namespace mio {

void SortCandidates(const std::vector<std::uint32_t>& tau_upp,
                    std::vector<ObjectId>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [&](ObjectId a, ObjectId b) {
              if (tau_upp[a] != tau_upp[b]) return tau_upp[a] > tau_upp[b];
              return a < b;
            });
}

UpperBoundResult UpperBounding(BiGrid& grid, std::uint32_t threshold,
                               const LabelSet* use_labels,
                               LabelSet* record_labels, QueryStats* stats,
                               QueryGuard* guard) {
  const ObjectSet& objects = grid.objects();
  const std::size_t n = objects.size();
  const double large_width = grid.large_width();

  UpperBoundResult res;
  res.tau_upp.assign(n, 0);
  res.candidates.reserve(n / 4 + 1);

  for (ObjectId i = 0; i < n; ++i) {
    if (guard != nullptr && (i % kGuardStrideObjects) == 0 && guard->Poll()) {
      break;  // partial candidate queue; usable only for best-so-far
    }
    const Object& o = objects[i];
    Ewah acc;
    std::size_t acc_count = 0;
    std::size_t ors = 0;
    for (std::size_t j = 0; j < o.points.size(); ++j) {
      if (use_labels != nullptr) {
        std::uint8_t l = use_labels->Get(i, j);
        // UPPER-BOUNDING-WITH-LABEL iterates only points labelled 11*.
        if ((l & label::kMap) == 0 || (l & label::kUpper) == 0) continue;
      }
      CellKey key = KeyForWidth(o.points[j], large_width);
      LargeCell& cell = grid.EnsureAdj(key);
      if (record_labels != nullptr && cell.adj_count == 1) {
        // Labeling-1: only o_i occupies this neighbourhood — the point is
        // irrelevant to every phase of future same-ceil(r) queries.
        record_labels->labels[i][j] &= static_cast<std::uint8_t>(~label::kMap);
        continue;  // it cannot change acc either (acc will contain bit i)
      }
      acc.OrWith(cell.adj);
      ++ors;
      if (record_labels != nullptr) {
        std::size_t new_count = acc.Count();
        if (new_count == acc_count) {
          // Labeling-2: the OR changed nothing (Observation 2).
          record_labels->labels[i][j] &=
              static_cast<std::uint8_t>(~label::kUpper);
        }
        acc_count = new_count;
      }
    }
    std::size_t count = record_labels != nullptr ? acc_count : acc.Count();
    obs::Add(obs::Counter::kUbCellOrs, ors);
    obs::Observe(obs::Histogram::kUbUnionBits, count);
    res.tau_upp[i] = count > 0 ? static_cast<std::uint32_t>(count - 1) : 0;
    if (res.tau_upp[i] >= threshold) res.candidates.push_back(i);
  }

  SortCandidates(res.tau_upp, &res.candidates);
  if (stats != nullptr) stats->num_candidates = res.candidates.size();
  return res;
}

}  // namespace mio
