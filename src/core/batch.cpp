// MioEngine::QueryBatch — batch execution over ceil(r) classes (see
// core/batch.hpp for the contract). Kept out of mio_engine.cpp so the
// single-query pipeline and the batch orchestration read independently.
#include <algorithm>
#include <utility>
#include <vector>

#include "core/mio_engine.hpp"
#include "core/verification.hpp"
#include "geo/cell_key.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mio {

BatchResult MioEngine::QueryBatch(const std::vector<BatchQuery>& queries,
                                  const BatchOptions& options) {
  MIO_TRACE_SPAN_CAT("query_batch", "query");
  BatchResult out;
  out.results.resize(queries.size());
  if (queries.empty()) return out;
  obs::Add(obs::Counter::kBatchQueries, queries.size());

  // Group member indices by ceil(r) class — first-appearance order across
  // classes, submission order within a class, so per-member behaviour
  // (label recording, guardrail outcomes) matches the sequential run of
  // the same class. A linear scan over classes is fine: real batches hold
  // a handful of distinct ceilings.
  std::vector<std::pair<int, std::vector<std::size_t>>> classes;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    if (queries[qi].r <= 0.0) continue;  // empty result, like Query
    const int ceil_r = static_cast<int>(LargeGridWidth(queries[qi].r));
    auto it = std::find_if(
        classes.begin(), classes.end(),
        [&](const auto& c) { return c.first == ceil_r; });
    if (it == classes.end()) {
      classes.emplace_back(ceil_r, std::vector<std::size_t>{});
      it = classes.end() - 1;
    }
    it->second.push_back(qi);
  }
  out.stats.classes = classes.size();
  obs::Add(obs::Counter::kBatchClasses, classes.size());

  // One arena for the whole batch: its bitsets never shrink, so every
  // class after the first verifies allocation-free.
  VerifyArena arena;

  for (const auto& [ceil_r, members] : classes) {
    // Pin the class grid with a local shared_ptr for the duration of the
    // class: a member's degradation ladder may call ClearGridCache()
    // mid-batch, and this reference is what keeps the grid alive for its
    // siblings (see ClearGridCache's lifetime contract).
    std::shared_ptr<LargeGridData> class_grid;
    if (auto it = grid_cache_.find(ceil_r); it != grid_cache_.end()) {
      class_grid = it->second;
    }
    std::size_t class_posting_bytes = 0;
    auto adopt_class_grid = [&](std::shared_ptr<LargeGridData> g) {
      class_grid = std::move(g);
      if (options.partition_postings) {
        const std::size_t cells = PartitionLargeGridPostings(
            class_grid.get(), options.partition_min_points);
        out.stats.cells_partitioned += cells;
        obs::Add(obs::Counter::kBatchCellsPartitioned, cells);
      }
      class_posting_bytes = LargeGridPostingBytes(*class_grid);
    };
    if (class_grid != nullptr) adopt_class_grid(std::move(class_grid));

    // Hoisted label lookup: one probe per class. Members still see their
    // own per-query outcome semantics (a miss recorded by the designated
    // recorder upgrades the class to a memory hit for its siblings).
    const LabelSet* class_labels = nullptr;
    LabelOutcome class_outcome = LabelOutcome::kOff;
    bool labels_resolved = false;
    for (std::size_t qi : members) {
      if (queries[qi].options.use_labels) {
        double load_seconds = 0.0;
        class_labels = LookupLabels(ceil_r, &load_seconds, &class_outcome);
        labels_resolved = true;
        break;
      }
    }
    // The first member that would record labels does; siblings replay.
    bool recorder_pending = class_labels == nullptr;

    for (std::size_t qi : members) {
      const BatchQuery& q = queries[qi];
      QueryOptions opt = q.options;
      opt.reuse_grid = true;  // class grids flow through grid_cache_

      const bool had_class_grid = class_grid != nullptr;
      std::shared_ptr<LargeGridData> built;
      PipelineContext ctx;
      ctx.shared_grid = class_grid;
      ctx.build_complete_grid = true;
      ctx.arena = &arena;
      ctx.grid_out = had_class_grid ? nullptr : &built;
      ctx.allow_record = recorder_pending;
      if (opt.use_labels && labels_resolved) {
        ctx.labels_resolved = true;
        ctx.labels = class_labels;
        ctx.label_outcome = class_outcome;
      }

      if (had_class_grid) {
        ++out.stats.grid_builds_saved;
        obs::Add(obs::Counter::kBatchGridBuildsSaved);
        out.stats.postings_bytes_shared += class_posting_bytes;
        obs::Add(obs::Counter::kBatchPostingsBytesShared,
                 class_posting_bytes);
      }

      QueryResult res = RunPipeline(q.r, opt, &ctx);

      if (!had_class_grid) {
        ++out.stats.grid_builds;
        if (built != nullptr) adopt_class_grid(std::move(built));
        // A tripped first member leaves class_grid empty; the next
        // member rebuilds rather than inheriting a partial grid.
      }
      if (recorder_pending &&
          res.stats.label_outcome == LabelOutcome::kMissRecorded) {
        // The recorder's fresh set is now in label_cache_ (node-stable
        // across inserts); siblings replay it as a memory hit.
        auto it = label_cache_.find(ceil_r);
        if (it != label_cache_.end()) {
          class_labels = &it->second;
          class_outcome = LabelOutcome::kHitMemory;
          labels_resolved = true;
          recorder_pending = false;
        }
      }
      out.results[qi] = std::move(res);
    }
  }

  out.stats.arena_high_water_bytes = arena.HighWaterBytes();
  obs::Observe(obs::Histogram::kBatchArenaHighWater,
               out.stats.arena_high_water_bytes);
  return out;
}

}  // namespace mio
