// LOWER-BOUNDING(O, r) — paper Algorithm 4 / Lemma 1. For each object,
// OR together the small-grid bitsets of the cells in its key list; every
// object in that union (minus o_i itself) certainly interacts with o_i,
// because two points in one small cell are within r. No distance
// computation is involved.
#pragma once

#include <cstdint>
#include <vector>

#include "bitset/ewah.hpp"
#include "core/bigrid.hpp"

namespace mio {

class QueryGuard;  // common/guardrails.hpp

/// Lower bounds for all objects.
struct LowerBoundResult {
  std::vector<std::uint32_t> tau_low;
  std::uint32_t tau_low_max = 0;
  /// The per-object union bitsets b(o_i); kept only when requested (the
  /// *-WITH-LABEL verification seeds its accumulator from them).
  std::vector<Ewah> lb_bitsets;

  /// k-th largest lower bound (the top-k pruning threshold, §III-C).
  std::uint32_t KthLargest(std::size_t k) const;
};

/// Serial lower-bounding over the whole collection. `guard` (optional) is
/// polled on an amortised stride; a trip abandons the scan, leaving the
/// remaining tau_low entries at 0 (the partial bounds stay valid lower
/// bounds, so the engine's best-so-far answer may still use them).
LowerBoundResult LowerBounding(const BiGrid& grid, bool keep_bitsets,
                               QueryGuard* guard = nullptr);

}  // namespace mio
