// VERIFICATION(O_cand, r) — paper Algorithm 6 / Corollary 1. Candidates
// are verified best-first (descending upper bound); verification stops as
// soon as the next upper bound cannot beat the best exact score found
// (the k-th best, for the top-k variant). The exact score of one object
// uses the large grid: per point, the still-unconfirmed candidates are
// b = b_adj(c) - b(o_i); posting lists are scanned only for set bits of b,
// and a point's neighbourhood scan stops the moment b empties.
#pragma once

#include <cstddef>
#include <vector>

#include "bitset/ewah.hpp"
#include "core/bigrid.hpp"
#include "core/labels.hpp"
#include "core/query_result.hpp"
#include "core/upper_bound.hpp"

namespace mio {

class QueryGuard;  // common/guardrails.hpp

/// Reusable verification scratch. A single query allocates its scratch
/// bitsets lazily inside the verification loop; a batch hands one arena
/// to every member of a ceil(r) class so the bitsets are allocated once
/// per class instead of once per query (PlainBitset never shrinks, so
/// steady state is allocation-free). HighWaterBytes feeds the
/// batch.arena_high_water_bytes histogram.
class VerifyArena {
 public:
  PlainBitset acc;      ///< serial-path accumulator b(o_i)
  PlainBitset scratch;  ///< serial-path candidate-set decode scratch

  /// Per-core scratch for the parallel verification path.
  struct Slot {
    PlainBitset acc;
    PlainBitset scratch;
  };
  std::vector<Slot> slots;

  /// Grows `slots` to cover `threads` entries (existing capacity kept).
  void PrepareThreads(int threads) {
    if (slots.size() < static_cast<std::size_t>(threads)) {
      slots.resize(static_cast<std::size_t>(threads));
    }
  }

  /// Bytes currently held across every bitset — monotone over the arena's
  /// lifetime, so reading it after a batch gives the high-water mark.
  std::size_t HighWaterBytes() const {
    std::size_t bytes = acc.MemoryUsageBytes() + scratch.MemoryUsageBytes();
    for (const Slot& s : slots) {
      bytes += s.acc.MemoryUsageBytes() + s.scratch.MemoryUsageBytes();
    }
    return bytes;
  }
};

/// Processes one point of object i during exact scoring: computes the
/// unconfirmed-candidate set b = b_adj - acc, performs Labeling-3 when
/// recording, and scans the 27-cell neighbourhood's postings, folding
/// confirmed partners into `acc`. Each touched posting is evaluated with
/// one batch distance-kernel call over its SoA coordinates
/// (geo/kernels.hpp). `b_scratch` is caller-owned scratch the candidate
/// set is decoded into — reusing one bitset across points removes the
/// per-point allocation this function otherwise dominates on. Shared by
/// the serial and parallel verification paths (the parallel path passes
/// per-core accumulators and scratch).
void VerifyPoint(BiGrid& grid, ObjectId i, std::size_t point_idx,
                 PlainBitset* acc, PlainBitset* b_scratch,
                 LabelSet* record_labels, std::size_t* dist_comps);

/// Exact score of a single object via the large grid (the body of
/// Algorithm 6's loop). `use_labels` activates the 1*1 point filter;
/// `record_labels` performs Labeling-3; `lb_bitset` (with-label mode)
/// seeds the accumulator with the lower-bound union; `dist_comps`
/// accumulates distance evaluations. `b_scratch` (optional) is reused
/// scratch for VerifyPoint's candidate set; pass one bitset across many
/// ExactScore calls to keep verification allocation-free. `acc_scratch`
/// (optional) is reused storage for the accumulator itself — the lb seed
/// is decoded over it wholesale, so a stale value cannot leak between
/// candidates. `guard` (optional) is polled every kGuardStridePoints
/// points; once tripped the scan stops and the returned score is PARTIAL
/// (a valid lower bound of the true score, but not exact) — callers must
/// discard it.
std::uint32_t ExactScore(BiGrid& grid, ObjectId i, const LabelSet* use_labels,
                         LabelSet* record_labels, const Ewah* lb_bitset,
                         std::size_t* dist_comps, bool use_verify_bit = true,
                         PlainBitset* b_scratch = nullptr,
                         QueryGuard* guard = nullptr,
                         PlainBitset* acc_scratch = nullptr);

/// Best-first verification of the candidate queue; returns the top-k
/// objects by exact score, descending. `guard` (optional): on a trip the
/// in-flight candidate's partial score is discarded and the loop stops —
/// scores already offered to the tracker stay exact, so the returned
/// (possibly short) list is a sound best-so-far answer. `arena`
/// (optional) supplies the accumulator/scratch bitsets; null keeps the
/// query-local scratch of the single-query path.
std::vector<ScoredObject> Verification(BiGrid& grid,
                                       const UpperBoundResult& ub,
                                       std::size_t k,
                                       const LabelSet* use_labels,
                                       LabelSet* record_labels,
                                       const std::vector<Ewah>* lb_bitsets,
                                       QueryStats* stats,
                                       bool use_verify_bit = true,
                                       QueryGuard* guard = nullptr,
                                       VerifyArena* arena = nullptr);

/// Maintains the k best exact scores seen so far and the resulting
/// termination threshold (shared by serial and parallel verification).
class TopKTracker {
 public:
  explicit TopKTracker(std::size_t k) : k_(k == 0 ? 1 : k) {}

  /// Current pruning threshold: the k-th best score once k objects have
  /// been verified, else -1 (nothing can be pruned yet).
  long long Threshold() const;

  void Offer(ObjectId id, std::uint32_t score);

  /// Results in descending score order (ties: ascending id).
  std::vector<ScoredObject> Sorted() const;

 private:
  void RecomputeWorst();

  std::size_t k_;
  std::vector<ScoredObject> entries_;  // unsorted, size <= k_
  std::size_t worst_idx_ = 0;  // index of the current worst entry; valid
                               // whenever entries_ is non-empty
};

}  // namespace mio
