// OpenMP-parallel versions of the BIGrid pipeline phases (paper §IV),
// with the load-balancing strategies compared in Fig. 8:
//   lower-bounding  — LB-greedy-d (divide O by key-list size, no sync) or
//                     LB-hash-p (hash-partition each key list, local
//                     bitsets merged per object);
//   upper-bounding  — UB-greedy-p (cost-based greedy over P_{i,K} groups,
//                     Eq. (3); single-writer b_adj) or UB-greedy-d
//                     (divide O by |P_i|, per-thread b_adj memos);
//   verification    — per-candidate point partitioning with per-core
//                     accumulators merged after the scan.
// The parallel grid mapping lives on BiGrid::BuildParallel.
#pragma once

#include "core/bigrid.hpp"
#include "core/labels.hpp"
#include "core/lower_bound.hpp"
#include "core/options.hpp"
#include "core/query_result.hpp"
#include "core/upper_bound.hpp"
#include "core/verification.hpp"

namespace mio {

class QueryGuard;  // common/guardrails.hpp

/// PARALLEL-LOWER-BOUNDING(O, r). `stats` (optional) receives the
/// non-master workers' PMU deltas (hardware.lower_bounding). `guard`
/// (optional) is polled on an amortised stride inside every worker;
/// OpenMP regions cannot be broken, so tripped workers drain their
/// remaining iterations at one relaxed load each (common/guardrails.hpp).
LowerBoundResult ParallelLowerBounding(const BiGrid& grid,
                                       LbStrategy strategy, int threads,
                                       bool keep_bitsets,
                                       QueryStats* stats = nullptr,
                                       QueryGuard* guard = nullptr);

/// PARALLEL-UPPER-BOUNDING(O, r, tau_low_max). Requires the BiGrid to have
/// been built with point groups for the cost-based strategy. Guard
/// semantics as above; a tripped scan yields a partial candidate queue.
UpperBoundResult ParallelUpperBounding(BiGrid& grid, std::uint32_t threshold,
                                       UbStrategy strategy, int threads,
                                       const LabelSet* use_labels,
                                       LabelSet* record_labels,
                                       QueryStats* stats,
                                       QueryGuard* guard = nullptr);

/// PARALLEL-VERIFICATION(O_cand, r). Candidates are still consumed
/// best-first and serially (the early-termination check is inherently
/// sequential); the per-candidate point scan is parallelised. On a guard
/// trip the in-flight candidate's partial score is discarded, so the
/// returned list is a sound best-so-far answer. `arena` (optional)
/// supplies per-core accumulator/scratch slots (see
/// core/verification.hpp); null keeps the query-local scratch.
std::vector<ScoredObject> ParallelVerification(
    BiGrid& grid, const UpperBoundResult& ub, std::size_t k, int threads,
    const LabelSet* use_labels, LabelSet* record_labels,
    const std::vector<Ewah>* lb_bitsets, QueryStats* stats,
    bool use_verify_bit = true, QueryGuard* guard = nullptr,
    VerifyArena* arena = nullptr);

}  // namespace mio
