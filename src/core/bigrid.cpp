#include "core/bigrid.hpp"

#include <algorithm>

#include "common/fault_injection.hpp"
#include "common/guardrails.hpp"
#include "common/omp_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mio {

// ---------------------------------------------------------------------------
// LargeCell
// ---------------------------------------------------------------------------

void LargeCell::AddPostingPoint(ObjectId obj, const Point& p) {
  if (post_obj.empty() || post_obj.back() != obj) {
    post_obj.push_back(obj);
    post_start.push_back(static_cast<std::uint32_t>(post_xs.size()));
  }
  post_xs.push_back(p.x);
  post_ys.push_back(p.y);
  post_zs.push_back(p.z);
}

PostingView LargeCell::PostingAt(std::size_t idx) const {
  std::uint32_t begin = post_start[idx];
  std::uint32_t end = idx + 1 < post_start.size()
                          ? post_start[idx + 1]
                          : static_cast<std::uint32_t>(post_xs.size());
  return PostingView{post_xs.data() + begin, post_ys.data() + begin,
                     post_zs.data() + begin, end - begin};
}

PostingView LargeCell::Posting(ObjectId obj) const {
  auto it = std::lower_bound(post_obj.begin(), post_obj.end(), obj);
  if (it == post_obj.end() || *it != obj) return {};
  return PostingAt(static_cast<std::size_t>(it - post_obj.begin()));
}

void LargeCell::PartitionPostings(const CellKey& key, double width,
                                  std::size_t min_points) {
  if (partitioned() || post_xs.size() < min_points) return;
  const std::size_t runs = post_obj.size();
  const std::size_t pts = post_xs.size();
  const double half = 0.5 * width;
  const double base_x = static_cast<double>(key.x) * width;
  const double base_y = static_cast<double>(key.y) * width;
  const double base_z = static_cast<double>(key.z) * width;

  // Octant of every point (bit 0/1/2 = upper half along x/y/z). The
  // assignment only has to be consistent — the prune uses the tight point
  // boxes below, not the geometric octant boundaries, so floating-point
  // edge cases at the half-width plane cannot produce a wrong skip.
  std::vector<std::uint8_t> oct(pts);
  for (std::size_t p = 0; p < pts; ++p) {
    std::uint8_t o = 0;
    if (post_xs[p] - base_x >= half) o |= 1;
    if (post_ys[p] - base_y >= half) o |= 2;
    if (post_zs[p] - base_z >= half) o |= 4;
    oct[p] = o;
  }

  std::vector<ObjectId> new_obj;
  std::vector<std::uint32_t> new_start;
  new_obj.reserve(runs);
  new_start.reserve(runs);
  std::vector<double> new_xs, new_ys, new_zs;
  new_xs.reserve(pts);
  new_ys.reserve(pts);
  new_zs.reserve(pts);
  part_runs.assign(9, 0);
  part_box.assign(48, 0.0);

  // Emit octants in order; within each octant walk the original runs in
  // order, so runs stay ascending by object id inside every partition.
  for (int o = 0; o < 8; ++o) {
    double* box = &part_box[o * 6];
    bool box_init = false;
    for (std::size_t ri = 0; ri < runs; ++ri) {
      const std::uint32_t begin = post_start[ri];
      const std::uint32_t end = ri + 1 < runs
                                    ? post_start[ri + 1]
                                    : static_cast<std::uint32_t>(pts);
      bool emitted = false;
      for (std::uint32_t p = begin; p < end; ++p) {
        if (oct[p] != o) continue;
        if (!emitted) {
          new_obj.push_back(post_obj[ri]);
          new_start.push_back(static_cast<std::uint32_t>(new_xs.size()));
          emitted = true;
        }
        const double x = post_xs[p], y = post_ys[p], z = post_zs[p];
        new_xs.push_back(x);
        new_ys.push_back(y);
        new_zs.push_back(z);
        if (!box_init) {
          box[0] = box[3] = x;
          box[1] = box[4] = y;
          box[2] = box[5] = z;
          box_init = true;
        } else {
          box[0] = std::min(box[0], x);
          box[1] = std::min(box[1], y);
          box[2] = std::min(box[2], z);
          box[3] = std::max(box[3], x);
          box[4] = std::max(box[4], y);
          box[5] = std::max(box[5], z);
        }
      }
    }
    part_runs[static_cast<std::size_t>(o) + 1] =
        static_cast<std::uint32_t>(new_obj.size());
  }

  post_obj = std::move(new_obj);
  post_start = std::move(new_start);
  post_xs = std::move(new_xs);
  post_ys = std::move(new_ys);
  post_zs = std::move(new_zs);
}

std::size_t LargeCell::MemoryUsageBytes() const {
  return bits.MemoryUsageBytes() + (adj_computed ? adj.MemoryUsageBytes() : 0) +
         post_obj.capacity() * sizeof(ObjectId) +
         post_start.capacity() * sizeof(std::uint32_t) +
         (post_xs.capacity() + post_ys.capacity() + post_zs.capacity()) *
             sizeof(double) +
         part_runs.capacity() * sizeof(std::uint32_t) +
         part_box.capacity() * sizeof(double);
}

std::size_t PartitionLargeGridPostings(LargeGridData* grid,
                                       std::size_t min_points) {
  std::size_t cells = 0;
  for (auto& shard : grid->shards) {
    shard.ForEach([&](const CellKey& key, LargeCell& cell) {
      if (cell.partitioned()) return;
      cell.PartitionPostings(key, grid->width, min_points);
      if (cell.partitioned()) ++cells;
    });
  }
  return cells;
}

std::size_t LargeGridPostingBytes(const LargeGridData& grid) {
  std::size_t bytes = 0;
  for (const auto& shard : grid.shards) {
    shard.ForEach([&](const CellKey&, const LargeCell& cell) {
      bytes += cell.post_obj.size() * sizeof(ObjectId) +
               cell.post_start.size() * sizeof(std::uint32_t) +
               cell.NumPostingPoints() * 3 * sizeof(double);
    });
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// BiGrid build
// ---------------------------------------------------------------------------

BiGrid::BiGrid(const ObjectSet& objects, double r, bool planar,
               std::shared_ptr<LargeGridData> reuse)
    : objects_(&objects),
      r_(r),
      small_width_(planar ? SmallGridWidth2D(r) : SmallGridWidth(r)) {
  double width = LargeGridWidth(r);
  if (reuse != nullptr && reuse->width == width && reuse->complete) {
    large_ = std::move(reuse);
    reused_large_ = true;
  } else {
    large_ = std::make_shared<LargeGridData>();
    large_->width = width;
  }
}

void BiGrid::MapPointSmall(ObjectId i, const Point& p, bool update_key_lists) {
  CellKey key = KeyForWidth(p, small_width_);
  SmallCell& cell = small_[ShardOfSmall(key)].GetOrCreate(key);
  if (cell.last_obj == i && cell.num_objects > 0) return;  // same-object dedup
  cell.last_obj = i;
  cell.bits.Set(i);
  ++cell.num_objects;
  if (cell.num_objects == 1) {
    cell.first_obj = i;
  } else if (update_key_lists) {
    // Cells holding a single object contribute nothing to any lower bound
    // (Lemma 1's union minus the object's own bit), so keys enter the key
    // lists only once a second object arrives — and then retroactively for
    // the first object too (Algorithm 3 lines 7-10).
    if (cell.num_objects == 2) key_lists_[cell.first_obj].push_back(key);
    key_lists_[i].push_back(key);
  }
}

void BiGrid::MapPointLarge(ObjectId i, const Point& p) {
  CellKey key = KeyForWidth(p, large_->width);
  LargeCell& cell = large_->shards[ShardOfLarge(key)].GetOrCreate(key);
  if (cell.last_obj != i || cell.post_obj.empty()) {
    cell.bits.Set(i);
    cell.last_obj = i;
  }
  cell.AddPostingPoint(i, p);
}

void BiGrid::Build(const LabelSet* labels, bool build_groups,
                   QueryGuard* guard) {
  MIO_TRACE_SPAN_CAT("grid.build", "grid");
  const ObjectSet& objs = *objects_;
  const std::size_t n = objs.size();
  small_.assign(1, SmallMap{});
  key_lists_.assign(n, {});

  const bool build_large = !reused_large_;
  if (build_large) {
    large_->shards.assign(1, LargeMap{});
    large_->groups.clear();
    large_->has_groups = false;
    large_->complete = labels == nullptr;
  }

  for (ObjectId i = 0; i < n; ++i) {
    if (guard != nullptr && (i % kGuardStrideObjects) == 0) {
      if (MIO_FAULT_HIT("alloc.bigrid")) guard->TripResource();
      if (guard->Poll()) {
        // Abandoned mid-map: the grid misses points, so it must never be
        // cached or queried; the engine discards it.
        large_->complete = false;
        return;
      }
    }
    const Object& o = objs[i];
    for (std::size_t j = 0; j < o.points.size(); ++j) {
      if (labels != nullptr && (labels->Get(i, j) & label::kMap) == 0) {
        continue;  // Labeling-1: prunable everywhere (Lemma 3)
      }
      MapPointSmall(i, o.points[j], /*update_key_lists=*/true);
      if (build_large) MapPointLarge(i, o.points[j]);
    }
  }

  if (build_groups && !large_->has_groups) {
    // A reused (complete) grid needs complete groups; a fresh labelled
    // grid needs label-filtered groups matching its cell population.
    const LabelSet* group_labels = reused_large_ ? nullptr : labels;
    large_->groups.assign(n, {});
    for (ObjectId i = 0; i < n; ++i) BuildGroupsFor(i, group_labels);
    large_->has_groups = true;
  }
}

void BiGrid::BuildParallel(int threads, const LabelSet* labels,
                           bool build_groups, QueryGuard* guard) {
  threads = ResolveThreads(threads);
  if (threads <= 1) {
    Build(labels, build_groups, guard);
    return;
  }
  MIO_TRACE_SPAN_CAT("grid.build_parallel", "grid");
  const ObjectSet& objs = *objects_;
  const std::size_t n = objs.size();
  small_.assign(threads, SmallMap{});
  key_lists_.assign(n, {});

  const bool build_large = !reused_large_;
  if (build_large) {
    large_->shards.assign(threads, LargeMap{});
    large_->groups.clear();
    large_->has_groups = false;
    large_->complete = labels == nullptr;
  }

  // Hash partitioning of points by cell key: thread t exclusively owns
  // shard t of each grid, so all cell updates are single-writer. Each
  // thread scans all points and keeps those hashing to its shard; the scan
  // is duplicated but cheap compared with the hash-map updates.
#pragma omp parallel num_threads(threads)
  {
    MIO_TRACE_SPAN_CAT("grid.map.worker", "grid");
    std::size_t t = static_cast<std::size_t>(ThreadId());
    for (ObjectId i = 0; i < n; ++i) {
      if (guard != nullptr && (i % kGuardStrideObjects) == 0) {
        if (t == 0 && MIO_FAULT_HIT("alloc.bigrid")) guard->TripResource();
        if (guard->Poll()) break;  // each worker drains independently
      }
      const Object& o = objs[i];
      for (std::size_t j = 0; j < o.points.size(); ++j) {
        if (labels != nullptr && (labels->Get(i, j) & label::kMap) == 0) {
          continue;
        }
        const Point& p = o.points[j];
        CellKey ks = KeyForWidth(p, small_width_);
        if (CellKeyHash{}(ks) % small_.size() == t) {
          MapPointSmall(i, p, /*update_key_lists=*/false);
        }
        if (build_large) {
          CellKey kl = KeyForWidth(p, large_->width);
          if (CellKeyHash{}(kl) % large_->shards.size() == t) {
            MapPointLarge(i, p);
          }
        }
      }
    }
  }

  if (guard != nullptr && guard->tripped()) {
    large_->complete = false;  // partial map: never cache or query
    return;
  }

  DeriveKeyListsFromCells(threads);

  if (build_groups && !large_->has_groups) {
    const LabelSet* group_labels = reused_large_ ? nullptr : labels;
    large_->groups.assign(n, {});
#pragma omp parallel for schedule(dynamic, 16) num_threads(threads)
    for (ObjectId i = 0; i < n; ++i) BuildGroupsFor(i, group_labels);
    large_->has_groups = true;
  }
}

void BiGrid::DeriveKeyListsFromCells(int threads) {
  // Post-pass equivalent of the incremental key-list maintenance: a key
  // belongs to o_i.L iff its small cell holds >= 2 distinct objects and
  // o_i is one of them — exactly the membership Algorithm 3 arrives at.
  std::vector<std::vector<std::pair<ObjectId, CellKey>>> local(
      static_cast<std::size_t>(threads));
#pragma omp parallel num_threads(threads)
  {
    std::size_t t = static_cast<std::size_t>(ThreadId());
    auto& buf = local[t];
    for (std::size_t s = t; s < small_.size();
         s += static_cast<std::size_t>(threads)) {
      small_[s].ForEach([&](const CellKey& key, SmallCell& cell) {
        if (cell.num_objects < 2) return;
        cell.bits.ForEachSetBit([&](std::size_t obj) {
          buf.emplace_back(static_cast<ObjectId>(obj), key);
        });
      });
    }
  }
  for (const auto& buf : local) {
    for (const auto& [obj, key] : buf) key_lists_[obj].push_back(key);
  }
}

void BiGrid::BuildGroupsFor(ObjectId i, const LabelSet* labels) {
  const Object& o = (*objects_)[i];
  auto& groups = large_->groups[i];
  std::unordered_map<CellKey, std::size_t, CellKeyHash> index;
  for (std::size_t j = 0; j < o.points.size(); ++j) {
    if (labels != nullptr && (labels->Get(i, j) & label::kMap) == 0) continue;
    CellKey key = KeyForWidth(o.points[j], large_->width);
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) groups.push_back(PointGroup{key, {}});
    groups[it->second].point_idx.push_back(static_cast<std::uint32_t>(j));
  }
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

const SmallCell* BiGrid::FindSmall(const CellKey& k) const {
  return small_[ShardOfSmall(k)].Find(k);
}

const LargeCell* BiGrid::FindLarge(const CellKey& k) const {
  return large_->shards[ShardOfLarge(k)].Find(k);
}

LargeCell* BiGrid::FindLarge(const CellKey& k) {
  return large_->shards[ShardOfLarge(k)].Find(k);
}

LargeCell& BiGrid::EnsureAdj(const CellKey& k) {
  LargeCell& cell = *FindLarge(k);
  if (cell.adj_computed) return cell;
  obs::Add(obs::Counter::kAdjBuilds);
  Ewah acc = cell.bits;
  ForEachNeighbor(k, /*include_self=*/false, [&](const CellKey& nk) {
    if (const LargeCell* nc = FindLarge(nk)) acc.OrWith(nc->bits);
  });
  cell.adj = std::move(acc);
  cell.adj_count = static_cast<std::uint32_t>(cell.adj.Count());
  cell.adj_computed = true;
  return cell;
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

MemoryBreakdown BiGrid::MemoryUsage() const {
  MemoryBreakdown mb;
  std::size_t small_bytes = 0;
  for (const auto& shard : small_) {
    small_bytes += shard.TableBytes();
    shard.ForEach([&](const CellKey&, const SmallCell& cell) {
      small_bytes += cell.bits.MemoryUsageBytes();
    });
  }
  mb.Add("small_grid", small_bytes);

  std::size_t large_bytes = 0;
  for (const auto& shard : large_->shards) {
    large_bytes += shard.TableBytes();
    shard.ForEach([&](const CellKey&, const LargeCell& cell) {
      large_bytes += cell.MemoryUsageBytes();
    });
  }
  mb.Add("large_grid", large_bytes);

  std::size_t kl_bytes = key_lists_.capacity() * sizeof(std::vector<CellKey>);
  for (const auto& kl : key_lists_) kl_bytes += kl.capacity() * sizeof(CellKey);
  mb.Add("key_lists", kl_bytes);

  if (large_->has_groups) {
    std::size_t g_bytes =
        large_->groups.capacity() * sizeof(std::vector<PointGroup>);
    for (const auto& groups : large_->groups) {
      g_bytes += groups.capacity() * sizeof(PointGroup);
      for (const auto& g : groups) {
        g_bytes += g.point_idx.capacity() * sizeof(std::uint32_t);
      }
    }
    mb.Add("point_groups", g_bytes);
  }
  return mb;
}

BitsetCompressionStats BiGrid::CompressionStats() const {
  BitsetCompressionStats stats;
  for (const auto& shard : small_) {
    shard.ForEach([&](const CellKey&, const SmallCell& cell) {
      stats.Add(cell.bits);
    });
  }
  for (const auto& shard : large_->shards) {
    shard.ForEach([&](const CellKey&, const LargeCell& cell) {
      stats.Add(cell.bits);
      if (cell.adj_computed) stats.Add(cell.adj);
    });
  }
  return stats;
}

}  // namespace mio
