#include "core/labels.hpp"

#include "obs/trace.hpp"

namespace mio {

LabelSet LabelSet::MakeAllOnes(const ObjectSet& objects) {
  MIO_TRACE_SPAN_CAT("labels.make_all_ones", "labels");
  LabelSet set;
  set.labels.resize(objects.size());
  for (ObjectId i = 0; i < objects.size(); ++i) {
    set.labels[i].assign(objects[i].NumPoints(), label::kAll);
  }
  return set;
}

std::size_t LabelSet::CountMapPruned() const {
  MIO_TRACE_SPAN_CAT("labels.count_map_pruned", "labels");
  std::size_t count = 0;
  for (const auto& obj : labels) {
    for (std::uint8_t l : obj) {
      if ((l & label::kMap) == 0) ++count;
    }
  }
  return count;
}

std::size_t LabelSet::CountAnyPruned() const {
  MIO_TRACE_SPAN_CAT("labels.count_any_pruned", "labels");
  std::size_t count = 0;
  for (const auto& obj : labels) {
    for (std::uint8_t l : obj) {
      if (l != label::kAll) ++count;
    }
  }
  return count;
}

std::size_t LabelSet::MemoryUsageBytes() const {
  std::size_t bytes = labels.capacity() * sizeof(std::vector<std::uint8_t>);
  for (const auto& obj : labels) bytes += obj.capacity();
  return bytes;
}

}  // namespace mio
