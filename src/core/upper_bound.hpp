// UPPER-BOUNDING(O, r, tau_low_max) — paper Algorithm 5 / Lemma 2 /
// Theorem 2. For each object, OR together the lazily computed
// neighbourhood bitsets b_adj of its points' large cells; any object NOT
// in that union cannot interact with o_i (its points are farther than r).
// Objects whose upper bound falls below the best lower bound are pruned;
// survivors become the candidate queue, sorted by descending upper bound
// for the best-first verification.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bigrid.hpp"
#include "core/labels.hpp"
#include "core/query_result.hpp"

namespace mio {

class QueryGuard;  // common/guardrails.hpp

/// Upper bounds plus the surviving candidate queue.
struct UpperBoundResult {
  std::vector<std::uint32_t> tau_upp;
  /// Candidates with tau_upp >= threshold, descending tau_upp (ties by
  /// ascending id, for determinism).
  std::vector<ObjectId> candidates;
};

/// Serial upper-bounding. `use_labels` (may be null) activates
/// UPPER-BOUNDING-WITH-LABEL: points whose kUpper (or kMap) bit is cleared
/// are skipped. `record_labels` (may be null) performs Labeling-1/2 as a
/// side effect. `stats` (may be null) receives counter updates. `guard`
/// (optional) is polled on an amortised stride; a trip abandons the scan
/// (unvisited objects never enter the candidate queue, so the partial
/// result is only usable for best-so-far reporting, not a final answer).
UpperBoundResult UpperBounding(BiGrid& grid, std::uint32_t threshold,
                               const LabelSet* use_labels,
                               LabelSet* record_labels, QueryStats* stats,
                               QueryGuard* guard = nullptr);

/// Sorts `candidates` by descending tau_upp, ties by ascending id.
void SortCandidates(const std::vector<std::uint32_t>& tau_upp,
                    std::vector<ObjectId>* candidates);

}  // namespace mio
