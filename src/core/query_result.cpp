#include "core/query_result.hpp"

#include <algorithm>
#include <numeric>

namespace mio {

const char* LabelOutcomeName(LabelOutcome outcome) {
  switch (outcome) {
    case LabelOutcome::kOff:
      return "off";
    case LabelOutcome::kHitMemory:
      return "hit_memory";
    case LabelOutcome::kHitDisk:
      return "hit_disk";
    case LabelOutcome::kMissRecorded:
      return "recorded";
    case LabelOutcome::kMiss:
      return "miss";
  }
  return "unknown";
}

bool ParseLabelOutcome(const std::string& name, LabelOutcome* out) {
  for (LabelOutcome o :
       {LabelOutcome::kOff, LabelOutcome::kHitMemory, LabelOutcome::kHitDisk,
        LabelOutcome::kMissRecorded, LabelOutcome::kMiss}) {
    if (name == LabelOutcomeName(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

std::vector<ScoredObject> TopKFromScores(
    const std::vector<std::uint32_t>& scores, std::size_t k) {
  const std::size_t n = scores.size();
  k = std::min(k == 0 ? std::size_t(1) : k, n);
  std::vector<ObjectId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](ObjectId a, ObjectId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::vector<ScoredObject> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(ScoredObject{ids[i], scores[ids[i]]});
  }
  return out;
}

ThreadLoadReport ComputeThreadLoad(const std::vector<double>& seconds) {
  ThreadLoadReport report;
  if (seconds.empty()) return report;
  report.min_seconds = seconds[0];
  report.max_seconds = seconds[0];
  double sum = 0.0;
  for (double s : seconds) {
    report.min_seconds = std::min(report.min_seconds, s);
    report.max_seconds = std::max(report.max_seconds, s);
    sum += s;
  }
  report.mean_seconds = sum / static_cast<double>(seconds.size());
  report.imbalance =
      report.mean_seconds > 0.0 ? report.max_seconds / report.mean_seconds : 0.0;
  return report;
}

}  // namespace mio
