#include "core/query_result.hpp"

#include <algorithm>
#include <numeric>

namespace mio {

std::vector<ScoredObject> TopKFromScores(
    const std::vector<std::uint32_t>& scores, std::size_t k) {
  const std::size_t n = scores.size();
  k = std::min(k == 0 ? std::size_t(1) : k, n);
  std::vector<ObjectId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](ObjectId a, ObjectId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::vector<ScoredObject> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(ScoredObject{ids[i], scores[ids[i]]});
  }
  return out;
}

}  // namespace mio
