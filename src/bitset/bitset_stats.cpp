#include "bitset/bitset_stats.hpp"

#include <cstdio>

namespace mio {

std::string BitsetCompressionStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "bitsets=%zu compressed=%zuB uncompressed=%zuB savings=%.1f%%",
                num_bitsets, compressed_bytes, uncompressed_bytes,
                SavingsRatio() * 100.0);
  return buf;
}

}  // namespace mio
