#include "bitset/plain_bitset.hpp"

#include <algorithm>

namespace mio {

void PlainBitset::Resize(std::size_t bits) {
  if (bits <= size_in_bits_) return;
  size_in_bits_ = bits;
  words_.resize((bits + 63) / 64, 0);
}

void PlainBitset::EnsureWord(std::size_t word_idx) {
  if (word_idx >= words_.size()) {
    words_.resize(word_idx + 1, 0);
  }
}

void PlainBitset::Set(std::size_t i) {
  EnsureWord(i / 64);
  words_[i / 64] |= (std::uint64_t(1) << (i % 64));
  size_in_bits_ = std::max(size_in_bits_, i + 1);
}

void PlainBitset::Clear(std::size_t i) {
  if (i / 64 >= words_.size()) return;
  words_[i / 64] &= ~(std::uint64_t(1) << (i % 64));
}

bool PlainBitset::Test(std::size_t i) const {
  if (i / 64 >= words_.size()) return false;
  return (words_[i / 64] >> (i % 64)) & 1u;
}

std::size_t PlainBitset::Count() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += __builtin_popcountll(w);
  return c;
}

void PlainBitset::OrWith(const PlainBitset& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
    size_in_bits_ = std::max(size_in_bits_, other.size_in_bits_);
  }
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void PlainBitset::AndWith(const PlainBitset& other) {
  std::size_t shared = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < shared; ++i) words_[i] &= other.words_[i];
  for (std::size_t i = shared; i < words_.size(); ++i) words_[i] = 0;
}

void PlainBitset::AndNotWith(const PlainBitset& other) {
  std::size_t shared = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < shared; ++i) words_[i] &= ~other.words_[i];
}

void PlainBitset::XorWith(const PlainBitset& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
    size_in_bits_ = std::max(size_in_bits_, other.size_in_bits_);
  }
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
}

void PlainBitset::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
}

std::vector<std::size_t> PlainBitset::SetBits() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  ForEachSetBit([&](std::size_t i) { out.push_back(i); });
  return out;
}

bool PlainBitset::operator==(const PlainBitset& other) const {
  std::size_t shared = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if (words_[i] != other.words_[i]) return false;
  }
  for (std::size_t i = shared; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  for (std::size_t i = shared; i < other.words_.size(); ++i) {
    if (other.words_[i] != 0) return false;
  }
  return true;
}

}  // namespace mio
