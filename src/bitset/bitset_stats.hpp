// Compression statistics over collections of EWAH bitsets. The paper's
// footnote 4 reports 80-99.9% byte savings versus uncompressed bitsets on
// the default workload; bench_micro_bitset regenerates that claim with
// these helpers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bitset/ewah.hpp"

namespace mio {

/// Aggregate byte accounting for a set of compressed bitsets.
struct BitsetCompressionStats {
  std::size_t num_bitsets = 0;
  std::size_t compressed_bytes = 0;
  std::size_t uncompressed_bytes = 0;

  /// Fraction of bytes saved by compression, in [0, 1). Negative if the
  /// compressed form is larger (tiny, dense bitsets).
  double SavingsRatio() const {
    if (uncompressed_bytes == 0) return 0.0;
    return 1.0 - static_cast<double>(compressed_bytes) /
                     static_cast<double>(uncompressed_bytes);
  }

  void Add(const Ewah& b) {
    ++num_bitsets;
    compressed_bytes += b.CompressedBytes();
    uncompressed_bytes += b.UncompressedBytes();
  }

  void Merge(const BitsetCompressionStats& other) {
    num_bitsets += other.num_bitsets;
    compressed_bytes += other.compressed_bytes;
    uncompressed_bytes += other.uncompressed_bytes;
  }

  std::string ToString() const;
};

}  // namespace mio
