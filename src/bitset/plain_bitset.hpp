// Uncompressed dynamic bitset. Two roles: (1) the random-access
// accumulator used during verification, where bits are set/cleared in
// arbitrary order (EWAH patching would be O(size) per write); (2) the
// reference implementation for differential-testing the EWAH codec.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mio {

/// Growable uncompressed bitset over 64-bit words.
class PlainBitset {
 public:
  PlainBitset() = default;
  /// Creates a bitset with `bits` zero bits pre-allocated.
  explicit PlainBitset(std::size_t bits) { Resize(bits); }

  /// Grows (never shrinks) the logical size to at least `bits`.
  void Resize(std::size_t bits);

  /// Number of logical bits.
  std::size_t SizeInBits() const { return size_in_bits_; }

  /// Sets bit i (grows if needed).
  void Set(std::size_t i);
  /// Clears bit i (no-op past the end).
  void Clear(std::size_t i);
  /// Tests bit i (false past the end).
  bool Test(std::size_t i) const;

  /// Number of set bits.
  std::size_t Count() const;
  /// True iff no bit is set.
  bool Empty() const { return Count() == 0; }

  /// this |= other (grows to cover other).
  void OrWith(const PlainBitset& other);
  /// this &= other (bits past other's end become 0).
  void AndWith(const PlainBitset& other);
  /// this &= ~other.
  void AndNotWith(const PlainBitset& other);
  /// this ^= other (grows to cover other).
  void XorWith(const PlainBitset& other);

  /// Zeroes all bits, keeping capacity.
  void Reset();

  /// Overwrites 64-bit word `word_idx` wholesale (grows if needed). Bulk
  /// decode path: EWAH decompression writes whole words, not bits.
  void AssignWord(std::size_t word_idx, std::uint64_t value) {
    EnsureWord(word_idx);
    words_[word_idx] = value;
    size_in_bits_ = std::max(size_in_bits_, (word_idx + 1) * 64);
  }

  /// Invokes f(index) for each set bit in ascending order.
  template <typename F>
  void ForEachSetBit(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        f(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Indices of set bits in ascending order.
  std::vector<std::size_t> SetBits() const;

  /// Heap bytes held by the word array.
  std::size_t MemoryUsageBytes() const { return words_.capacity() * 8; }

  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Logical equality: same set of set bits (sizes may differ).
  bool operator==(const PlainBitset& other) const;

 private:
  void EnsureWord(std::size_t word_idx);

  std::vector<std::uint64_t> words_;
  std::size_t size_in_bits_ = 0;
};

}  // namespace mio
