#include "bitset/roaring.hpp"

#include <algorithm>

namespace mio {

// ---------------------------------------------------------------------------
// Container primitives
// ---------------------------------------------------------------------------

std::size_t Roaring::Container::Cardinality() const {
  if (IsArray()) return array.size();
  std::size_t c = 0;
  for (std::uint64_t w : bitmap) c += __builtin_popcountll(w);
  return c;
}

void Roaring::Container::Set(std::uint16_t low) {
  if (IsArray()) {
    auto it = std::lower_bound(array.begin(), array.end(), low);
    if (it != array.end() && *it == low) return;
    array.insert(it, low);
    MaybeUpgrade();
  } else {
    bitmap[low / 64] |= std::uint64_t(1) << (low % 64);
  }
}

bool Roaring::Container::Test(std::uint16_t low) const {
  if (IsArray()) {
    return std::binary_search(array.begin(), array.end(), low);
  }
  return (bitmap[low / 64] >> (low % 64)) & 1u;
}

void Roaring::Container::MaybeUpgrade() {
  if (!IsArray() || array.size() <= kArrayMax) return;
  bitmap.assign(kBitmapWords, 0);
  for (std::uint16_t v : array) {
    bitmap[v / 64] |= std::uint64_t(1) << (v % 64);
  }
  array.clear();
  array.shrink_to_fit();
}

void Roaring::Container::MaybeDowngrade() {
  if (IsArray()) return;
  std::size_t card = Cardinality();
  if (card > kArrayMax) return;
  array.reserve(card);
  for (std::size_t w = 0; w < bitmap.size(); ++w) {
    std::uint64_t word = bitmap[w];
    while (word != 0) {
      int b = __builtin_ctzll(word);
      array.push_back(static_cast<std::uint16_t>(w * 64 + b));
      word &= word - 1;
    }
  }
  bitmap.clear();
  bitmap.shrink_to_fit();
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

std::size_t Roaring::FindContainer(std::uint16_t key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - keys_.begin());
}

Roaring::Container& Roaring::GetOrCreateContainer(std::uint16_t key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  std::size_t idx = static_cast<std::size_t>(it - keys_.begin());
  if (it == keys_.end() || *it != key) {
    keys_.insert(it, key);
    containers_.insert(containers_.begin() + idx, Container{});
  }
  return containers_[idx];
}

void Roaring::Set(std::size_t i) {
  std::uint16_t key = static_cast<std::uint16_t>(i >> 16);
  GetOrCreateContainer(key).Set(static_cast<std::uint16_t>(i & 0xFFFF));
}

bool Roaring::Test(std::size_t i) const {
  std::size_t idx = FindContainer(static_cast<std::uint16_t>(i >> 16));
  if (idx == static_cast<std::size_t>(-1)) return false;
  return containers_[idx].Test(static_cast<std::uint16_t>(i & 0xFFFF));
}

std::size_t Roaring::Count() const {
  std::size_t c = 0;
  for (const Container& ct : containers_) c += ct.Cardinality();
  return c;
}

// ---------------------------------------------------------------------------
// Container-level binary ops
// ---------------------------------------------------------------------------

Roaring::Container Roaring::OrContainers(const Container& a,
                                         const Container& b) {
  Container out;
  if (a.IsArray() && b.IsArray()) {
    out.array.resize(a.array.size() + b.array.size());
    out.array.erase(std::set_union(a.array.begin(), a.array.end(),
                                   b.array.begin(), b.array.end(),
                                   out.array.begin()),
                    out.array.end());
    out.MaybeUpgrade();
    return out;
  }
  // At least one bitmap: result is a bitmap (cardinality can only grow).
  const Container& bm = a.IsArray() ? b : a;
  const Container& other = a.IsArray() ? a : b;
  out.bitmap = bm.bitmap;
  if (other.IsArray()) {
    for (std::uint16_t v : other.array) {
      out.bitmap[v / 64] |= std::uint64_t(1) << (v % 64);
    }
  } else {
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
      out.bitmap[w] |= other.bitmap[w];
    }
  }
  return out;
}

Roaring::Container Roaring::AndContainers(const Container& a,
                                          const Container& b) {
  Container out;
  if (a.IsArray() && b.IsArray()) {
    out.array.resize(std::min(a.array.size(), b.array.size()));
    out.array.erase(std::set_intersection(a.array.begin(), a.array.end(),
                                          b.array.begin(), b.array.end(),
                                          out.array.begin()),
                    out.array.end());
    return out;
  }
  if (a.IsArray() || b.IsArray()) {
    const Container& arr = a.IsArray() ? a : b;
    const Container& bm = a.IsArray() ? b : a;
    for (std::uint16_t v : arr.array) {
      if (bm.Test(v)) out.array.push_back(v);
    }
    return out;
  }
  out.bitmap.resize(kBitmapWords);
  for (std::size_t w = 0; w < kBitmapWords; ++w) {
    out.bitmap[w] = a.bitmap[w] & b.bitmap[w];
  }
  out.MaybeDowngrade();
  return out;
}

Roaring::Container Roaring::AndNotContainers(const Container& a,
                                             const Container& b) {
  Container out;
  if (a.IsArray()) {
    for (std::uint16_t v : a.array) {
      if (!b.Test(v)) out.array.push_back(v);
    }
    return out;
  }
  out.bitmap = a.bitmap;
  if (b.IsArray()) {
    for (std::uint16_t v : b.array) {
      out.bitmap[v / 64] &= ~(std::uint64_t(1) << (v % 64));
    }
  } else {
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
      out.bitmap[w] &= ~b.bitmap[w];
    }
  }
  out.MaybeDowngrade();
  return out;
}

// ---------------------------------------------------------------------------
// Bitmap-level binary ops (merge the sorted key lists)
// ---------------------------------------------------------------------------

Roaring Roaring::Or(const Roaring& a, const Roaring& b) {
  Roaring out;
  std::size_t ia = 0, ib = 0;
  while (ia < a.keys_.size() || ib < b.keys_.size()) {
    bool take_a = ib >= b.keys_.size() ||
                  (ia < a.keys_.size() && a.keys_[ia] < b.keys_[ib]);
    bool take_b = ia >= a.keys_.size() ||
                  (ib < b.keys_.size() && b.keys_[ib] < a.keys_[ia]);
    if (take_a) {
      out.keys_.push_back(a.keys_[ia]);
      out.containers_.push_back(a.containers_[ia]);
      ++ia;
    } else if (take_b) {
      out.keys_.push_back(b.keys_[ib]);
      out.containers_.push_back(b.containers_[ib]);
      ++ib;
    } else {
      out.keys_.push_back(a.keys_[ia]);
      out.containers_.push_back(OrContainers(a.containers_[ia],
                                             b.containers_[ib]));
      ++ia;
      ++ib;
    }
  }
  return out;
}

Roaring Roaring::And(const Roaring& a, const Roaring& b) {
  Roaring out;
  std::size_t ia = 0, ib = 0;
  while (ia < a.keys_.size() && ib < b.keys_.size()) {
    if (a.keys_[ia] < b.keys_[ib]) {
      ++ia;
    } else if (b.keys_[ib] < a.keys_[ia]) {
      ++ib;
    } else {
      Container ct = AndContainers(a.containers_[ia], b.containers_[ib]);
      if (ct.Cardinality() > 0) {
        out.keys_.push_back(a.keys_[ia]);
        out.containers_.push_back(std::move(ct));
      }
      ++ia;
      ++ib;
    }
  }
  return out;
}

Roaring Roaring::AndNot(const Roaring& a, const Roaring& b) {
  Roaring out;
  std::size_t ia = 0, ib = 0;
  while (ia < a.keys_.size()) {
    if (ib >= b.keys_.size() || a.keys_[ia] < b.keys_[ib]) {
      out.keys_.push_back(a.keys_[ia]);
      out.containers_.push_back(a.containers_[ia]);
      ++ia;
    } else if (b.keys_[ib] < a.keys_[ia]) {
      ++ib;
    } else {
      Container ct = AndNotContainers(a.containers_[ia], b.containers_[ib]);
      if (ct.Cardinality() > 0) {
        out.keys_.push_back(a.keys_[ia]);
        out.containers_.push_back(std::move(ct));
      }
      ++ia;
      ++ib;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Conversions and accounting
// ---------------------------------------------------------------------------

PlainBitset Roaring::ToPlain() const {
  PlainBitset out;
  ForEachSetBit([&](std::size_t i) { out.Set(i); });
  return out;
}

Roaring Roaring::FromPlain(const PlainBitset& plain) {
  Roaring out;
  plain.ForEachSetBit([&](std::size_t i) { out.Set(i); });
  return out;
}

bool Roaring::operator==(const Roaring& other) const {
  return ToPlain() == other.ToPlain();
}

std::size_t Roaring::CompressedBytes() const {
  std::size_t bytes = keys_.size() * sizeof(std::uint16_t);
  for (const Container& ct : containers_) {
    bytes += ct.IsArray() ? ct.array.size() * sizeof(std::uint16_t)
                          : ct.bitmap.size() * sizeof(std::uint64_t);
  }
  return bytes;
}

std::size_t Roaring::MemoryUsageBytes() const {
  std::size_t bytes = keys_.capacity() * sizeof(std::uint16_t) +
                      containers_.capacity() * sizeof(Container);
  for (const Container& ct : containers_) {
    bytes += ct.array.capacity() * sizeof(std::uint16_t) +
             ct.bitmap.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace mio
