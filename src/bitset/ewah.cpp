#include "bitset/ewah.hpp"

#include <algorithm>

namespace mio {

// ---------------------------------------------------------------------------
// Builder primitives
// ---------------------------------------------------------------------------

void Ewah::AddRunWords(bool bit, std::uint64_t count) {
  size_in_bits_ += count * 64;
  while (count > 0) {
    std::uint64_t marker = buffer_[rlw_pos_];
    bool can_extend =
        LitCount(marker) == 0 && (RunLen(marker) == 0 || RunBit(marker) == bit);
    if (!can_extend) {
      NewMarker();
      marker = buffer_[rlw_pos_];
    }
    if (RunLen(buffer_[rlw_pos_]) == 0) SetRunBit(bit);
    std::uint64_t room = kMaxRunLen - RunLen(buffer_[rlw_pos_]);
    std::uint64_t add = std::min(count, room);
    SetRunLen(RunLen(buffer_[rlw_pos_]) + add);
    count -= add;
    if (count > 0) NewMarker();
  }
}

void Ewah::AddLiteralWordRaw(std::uint64_t w) {
  if (LitCount(buffer_[rlw_pos_]) >= kMaxLitCount) NewMarker();
  SetLitCount(LitCount(buffer_[rlw_pos_]) + 1);
  buffer_.push_back(w);
  size_in_bits_ += 64;
}

void Ewah::AddLiteralWord(std::uint64_t w) {
  if (w == 0) {
    AddRunWords(false, 1);
  } else if (w == ~std::uint64_t(0)) {
    AddRunWords(true, 1);
  } else {
    AddLiteralWordRaw(w);
  }
}

// ---------------------------------------------------------------------------
// Bit access
// ---------------------------------------------------------------------------

void Ewah::Set(std::size_t i) {
  std::size_t cur_words = WordCount();
  std::size_t target_word = i / 64;
  if (target_word >= cur_words) {
    // Append path: first fold a completed all-ones literal tail into a
    // ones run (incremental ascending sets fill words left to right, so
    // dense regions would otherwise stay uncompressed), then round the
    // logical size up to a word boundary, pad with zero words, and emit
    // the word holding bit i.
    if (LitCount(buffer_[rlw_pos_]) >= 1 &&
        buffer_.back() == ~std::uint64_t(0)) {
      SetLitCount(LitCount(buffer_[rlw_pos_]) - 1);
      buffer_.pop_back();
      size_in_bits_ -= 64;
      AddRunWords(true, 1);
    }
    size_in_bits_ = cur_words * 64;
    if (target_word > cur_words) {
      AddRunWords(false, target_word - cur_words);
    }
    AddLiteralWord(std::uint64_t(1) << (i % 64));
    size_in_bits_ = i + 1;
    return;
  }
  InPlaceSet(i);
  size_in_bits_ = std::max(size_in_bits_, i + 1);
}

void Ewah::InPlaceSet(std::size_t i) {
  std::size_t target_word = i / 64;
  std::uint64_t mask = std::uint64_t(1) << (i % 64);
  std::size_t pos = 0;
  std::size_t base = 0;  // first word index covered by the current block
  while (pos < buffer_.size()) {
    std::uint64_t m = buffer_[pos];
    std::uint64_t run_len = RunLen(m);
    if (target_word < base + run_len) {
      if (RunBit(m)) return;  // inside a run of ones: already set
      SlowSet(i);             // inside a zero run: structural patch
      return;
    }
    base += run_len;
    std::uint64_t lit = LitCount(m);
    if (target_word < base + lit) {
      buffer_[pos + 1 + (target_word - base)] |= mask;
      return;
    }
    base += lit;
    pos += 1 + lit;
  }
  SlowSet(i);  // defensive: logical size said the word exists
}

void Ewah::SlowSet(std::size_t i) {
  PlainBitset plain = ToPlain();
  plain.Set(i);
  std::size_t bits = std::max(size_in_bits_, i + 1);
  *this = FromPlain(plain);
  size_in_bits_ = bits;
}

bool Ewah::Test(std::size_t i) const {
  std::size_t target_word = i / 64;
  std::uint64_t mask = std::uint64_t(1) << (i % 64);
  std::size_t pos = 0;
  std::size_t base = 0;
  while (pos < buffer_.size()) {
    std::uint64_t m = buffer_[pos];
    std::uint64_t run_len = RunLen(m);
    if (target_word < base + run_len) return RunBit(m);
    base += run_len;
    std::uint64_t lit = LitCount(m);
    if (target_word < base + lit) {
      return (buffer_[pos + 1 + (target_word - base)] & mask) != 0;
    }
    base += lit;
    pos += 1 + lit;
  }
  return false;
}

std::size_t Ewah::Count() const {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < buffer_.size()) {
    std::uint64_t m = buffer_[pos];
    if (RunBit(m)) count += RunLen(m) * 64;
    std::uint64_t lit = LitCount(m);
    for (std::uint64_t l = 0; l < lit; ++l) {
      count += __builtin_popcountll(buffer_[pos + 1 + l]);
    }
    pos += 1 + lit;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

PlainBitset Ewah::ToPlain() const {
  PlainBitset out(size_in_bits_);
  ForEachSetBit([&](std::size_t i) { out.Set(i); });
  return out;
}

void Ewah::DecodeInto(PlainBitset* out) const {
  out->Reset();
  out->Resize(size_in_bits_);
  // Word-wise decode: runs of ones fill whole words, literals copy.
  std::size_t pos = 0;
  std::size_t word = 0;
  while (pos < buffer_.size()) {
    std::uint64_t m = buffer_[pos];
    std::uint64_t run_len = RunLen(m);
    if (RunBit(m)) {
      for (std::uint64_t w = 0; w < run_len; ++w) {
        out->AssignWord(word + w, ~std::uint64_t(0));
      }
    }
    word += run_len;
    std::uint64_t lit = LitCount(m);
    for (std::uint64_t l = 0; l < lit; ++l) {
      out->AssignWord(word + l, buffer_[pos + 1 + l]);
    }
    word += lit;
    pos += 1 + lit;
  }
}

Ewah Ewah::FromPlain(const PlainBitset& plain) {
  Ewah out;
  for (std::uint64_t w : plain.words()) out.AddLiteralWord(w);
  out.size_in_bits_ = plain.SizeInBits();
  return out;
}

bool Ewah::operator==(const Ewah& other) const {
  return ToPlain() == other.ToPlain();
}

// ---------------------------------------------------------------------------
// Logical operations
// ---------------------------------------------------------------------------

/// Streams the logical words of an Ewah buffer, exposing run-level bulk
/// access so run/run regions are combined without materialisation. Once
/// the buffer is exhausted it yields an infinite zero run, which lets the
/// binary-op loop treat operands of different logical size uniformly.
class Ewah::WordSource {
 public:
  explicit WordSource(const std::vector<std::uint64_t>& buf) : buf_(buf) {
    Normalize();
  }

  /// True if the current position is inside a run (always true once
  /// exhausted, as an endless zero run).
  bool InRun() {
    Normalize();
    return run_rem_ > 0;
  }

  std::uint64_t RunAvail() const { return run_rem_; }
  std::uint64_t RunWord() const {
    return run_bit_ ? ~std::uint64_t(0) : std::uint64_t(0);
  }
  void ConsumeRun(std::uint64_t t) { run_rem_ -= t; }

  /// Consumes and returns one logical word (run or literal).
  std::uint64_t NextWord() {
    Normalize();
    if (run_rem_ > 0) {
      --run_rem_;
      return RunWord();
    }
    --lit_rem_;
    return buf_[lit_pos_++];
  }

 private:
  void Normalize() {
    while (!exhausted_ && run_rem_ == 0 && lit_rem_ == 0) {
      if (pos_ >= buf_.size()) {
        exhausted_ = true;
        break;
      }
      std::uint64_t m = buf_[pos_];
      run_bit_ = RunBit(m);
      run_rem_ = RunLen(m);
      lit_rem_ = LitCount(m);
      lit_pos_ = pos_ + 1;
      pos_ += 1 + LitCount(m);
    }
    if (exhausted_ && run_rem_ == 0) {
      run_bit_ = false;
      run_rem_ = ~std::uint64_t(0);  // endless zero run
    }
  }

  const std::vector<std::uint64_t>& buf_;
  std::size_t pos_ = 0;
  bool run_bit_ = false;
  std::uint64_t run_rem_ = 0;
  std::size_t lit_pos_ = 0;
  std::uint64_t lit_rem_ = 0;
  bool exhausted_ = false;
};

void Ewah::OrWith(const Ewah& other) {
  // The accumulator pattern (lower/upper bounding OR a bitset per key or
  // per point) is the hottest loop in the system; reuse a per-thread
  // scratch buffer so each OR costs no allocation once capacity warms up.
  thread_local Ewah scratch;
  scratch.buffer_.clear();
  scratch.buffer_.push_back(0);
  scratch.rlw_pos_ = 0;
  scratch.size_in_bits_ = 0;

  std::uint64_t total = std::max(WordCount(), other.WordCount());
  WordSource sa(buffer_);
  WordSource sb(other.buffer_);
  std::uint64_t done = 0;
  while (done < total) {
    if (sa.InRun() && sb.InRun()) {
      std::uint64_t t = std::min({sa.RunAvail(), sb.RunAvail(), total - done});
      std::uint64_t w = sa.RunWord() | sb.RunWord();
      scratch.AddRunWords(w != 0, t);
      sa.ConsumeRun(t);
      sb.ConsumeRun(t);
      done += t;
    } else {
      scratch.AddLiteralWord(sa.NextWord() | sb.NextWord());
      ++done;
    }
  }
  std::size_t bits = std::max(size_in_bits_, other.size_in_bits_);
  std::swap(buffer_, scratch.buffer_);
  rlw_pos_ = scratch.rlw_pos_;
  size_in_bits_ = bits;
}

template <typename Op>
Ewah Ewah::BinaryOp(const Ewah& a, const Ewah& b, Op op) {
  Ewah out;
  std::uint64_t total = std::max(a.WordCount(), b.WordCount());
  WordSource sa(a.buffer_);
  WordSource sb(b.buffer_);
  std::uint64_t done = 0;
  while (done < total) {
    if (sa.InRun() && sb.InRun()) {
      std::uint64_t t =
          std::min({sa.RunAvail(), sb.RunAvail(), total - done});
      std::uint64_t w = op(sa.RunWord(), sb.RunWord());
      out.AddRunWords(w != 0, t);
      sa.ConsumeRun(t);
      sb.ConsumeRun(t);
      done += t;
    } else {
      out.AddLiteralWord(op(sa.NextWord(), sb.NextWord()));
      ++done;
    }
  }
  out.size_in_bits_ = std::max(a.size_in_bits_, b.size_in_bits_);
  return out;
}

Ewah Ewah::Or(const Ewah& a, const Ewah& b) {
  return BinaryOp(a, b,
                  [](std::uint64_t x, std::uint64_t y) { return x | y; });
}

Ewah Ewah::And(const Ewah& a, const Ewah& b) {
  return BinaryOp(a, b,
                  [](std::uint64_t x, std::uint64_t y) { return x & y; });
}

Ewah Ewah::AndNot(const Ewah& a, const Ewah& b) {
  return BinaryOp(a, b,
                  [](std::uint64_t x, std::uint64_t y) { return x & ~y; });
}

Ewah Ewah::Xor(const Ewah& a, const Ewah& b) {
  return BinaryOp(a, b,
                  [](std::uint64_t x, std::uint64_t y) { return x ^ y; });
}

}  // namespace mio
