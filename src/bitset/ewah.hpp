// 64-bit EWAH (Enhanced Word-Aligned Hybrid) compressed bitset,
// implemented from scratch after Lemire, Kaser & Aouiche, "Sorting
// improves word-aligned bitmap indexes" (DKE 2010) — the codec the paper
// uses for every BIGrid cell bitset (paper §III-A, footnote 3).
//
// Encoding: the buffer is a sequence of blocks. Each block starts with a
// 64-bit marker word:
//   bit  0      : the "running bit" (value of the run)
//   bits 1..32  : run length, in 64-bit words (up to 2^32-1)
//   bits 33..63 : number of literal (verbatim) words following the marker
// Runs compress all-zero stretches (sparse space) and all-one stretches
// (dense space); literal words hold everything else verbatim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitset/plain_bitset.hpp"

namespace mio {

/// \brief Append-friendly compressed bitset with word-aligned logical ops.
///
/// Bits must normally be Set() in non-decreasing index order (the BIGrid
/// build satisfies this: object ids arrive ascending). Setting a bit that
/// falls inside an already-emitted zero run triggers a transparent
/// decompress-patch-recompress slow path, so arbitrary writes stay correct,
/// just not fast — random-write-heavy code should use PlainBitset and
/// convert at the boundary.
class Ewah {
 public:
  Ewah() { buffer_.push_back(0); }

  /// Sets bit i to 1. Amortised O(1) for non-decreasing i; O(size) when
  /// patching inside an earlier zero run.
  void Set(std::size_t i);

  /// Tests bit i. O(number of markers).
  bool Test(std::size_t i) const;

  /// Number of set bits. O(compressed size).
  std::size_t Count() const;

  /// True iff no bit is set.
  bool Empty() const { return Count() == 0; }

  /// Number of logical bits represented.
  std::size_t SizeInBits() const { return size_in_bits_; }

  /// Number of logical 64-bit words represented.
  std::size_t WordCount() const { return (size_in_bits_ + 63) / 64; }

  /// Compressed buffer footprint in bytes.
  std::size_t CompressedBytes() const { return buffer_.size() * 8; }
  /// Heap bytes actually held (capacity).
  std::size_t MemoryUsageBytes() const { return buffer_.capacity() * 8; }
  /// What an uncompressed bitset of the same logical size would occupy.
  std::size_t UncompressedBytes() const { return WordCount() * 8; }

  /// Removes all bits, keeping capacity.
  void Reset() {
    buffer_.clear();
    buffer_.push_back(0);
    rlw_pos_ = 0;
    size_in_bits_ = 0;
  }

  /// this = this | other. Allocation-free on the steady state (reuses a
  /// per-thread scratch buffer) — the accumulator op of Algorithms 4-5.
  void OrWith(const Ewah& other);

  static Ewah Or(const Ewah& a, const Ewah& b);
  static Ewah And(const Ewah& a, const Ewah& b);
  /// a & ~b ("a minus b", the verification-step candidate subtraction).
  static Ewah AndNot(const Ewah& a, const Ewah& b);
  static Ewah Xor(const Ewah& a, const Ewah& b);

  /// Invokes f(index) for every set bit in ascending order.
  template <typename F>
  void ForEachSetBit(F&& f) const {
    std::size_t pos = 0;
    std::size_t base_bit = 0;
    while (pos < buffer_.size()) {
      std::uint64_t m = buffer_[pos];
      std::uint64_t run_len = RunLen(m);
      if (RunBit(m)) {
        for (std::uint64_t w = 0; w < run_len; ++w) {
          for (int b = 0; b < 64; ++b) f(base_bit + w * 64 + b);
        }
      }
      base_bit += run_len * 64;
      std::uint64_t lit = LitCount(m);
      for (std::uint64_t l = 0; l < lit; ++l) {
        std::uint64_t word = buffer_[pos + 1 + l];
        while (word != 0) {
          int b = __builtin_ctzll(word);
          f(base_bit + l * 64 + static_cast<std::size_t>(b));
          word &= word - 1;
        }
      }
      base_bit += lit * 64;
      pos += 1 + lit;
    }
  }

  /// Decompresses to an uncompressed bitset.
  PlainBitset ToPlain() const;
  /// Decompresses into an existing bitset (cleared first), reusing its
  /// capacity — the allocation-free variant for hot-path scratch reuse.
  void DecodeInto(PlainBitset* out) const;
  /// Compresses an uncompressed bitset.
  static Ewah FromPlain(const PlainBitset& plain);

  /// Logical equality (same set bits).
  bool operator==(const Ewah& other) const;

  /// Appends `count` words of all-`bit` (used by codec + bulk builders).
  void AddRunWords(bool bit, std::uint64_t count);
  /// Appends one 64-bit word, compressing all-zero / all-one words.
  void AddLiteralWord(std::uint64_t w);

  const std::vector<std::uint64_t>& buffer() const { return buffer_; }

 private:
  static constexpr std::uint64_t kMaxRunLen = 0xFFFFFFFFull;
  static constexpr std::uint64_t kMaxLitCount = 0x7FFFFFFFull;

  static bool RunBit(std::uint64_t marker) { return marker & 1u; }
  static std::uint64_t RunLen(std::uint64_t marker) {
    return (marker >> 1) & 0xFFFFFFFFull;
  }
  static std::uint64_t LitCount(std::uint64_t marker) { return marker >> 33; }

  void SetRunBit(bool bit) {
    if (bit) {
      buffer_[rlw_pos_] |= 1u;
    } else {
      buffer_[rlw_pos_] &= ~std::uint64_t(1);
    }
  }
  void SetRunLen(std::uint64_t len) {
    buffer_[rlw_pos_] =
        (buffer_[rlw_pos_] & ~(0xFFFFFFFFull << 1)) | (len << 1);
  }
  void SetLitCount(std::uint64_t cnt) {
    buffer_[rlw_pos_] = (buffer_[rlw_pos_] & ((1ull << 33) - 1)) | (cnt << 33);
  }

  void NewMarker() {
    buffer_.push_back(0);
    rlw_pos_ = buffer_.size() - 1;
  }

  void AddLiteralWordRaw(std::uint64_t w);
  /// Set-bit slow path: decompress, patch, recompress.
  void SlowSet(std::size_t i);
  /// Set inside already-represented words (last-word fast path or SlowSet).
  void InPlaceSet(std::size_t i);

  template <typename Op>
  static Ewah BinaryOp(const Ewah& a, const Ewah& b, Op op);

  class WordSource;

  std::vector<std::uint64_t> buffer_;
  std::size_t rlw_pos_ = 0;
  std::size_t size_in_bits_ = 0;
};

}  // namespace mio
