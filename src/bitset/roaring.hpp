// Roaring bitmap (Chambi, Lemire et al.), original two-container variant:
// the bit universe is split into 2^16-bit chunks; sparse chunks store
// sorted 16-bit arrays, dense chunks store 1024-word bitmaps, converting
// at the classical 4096-element threshold. Implemented from scratch as
// the second compressed-bitset codec behind BIGrid: the paper (footnote
// 3) notes BIGrid "is orthogonal to any compressed bitset" and uses EWAH
// as one choice — bench_micro_bitset and bench_ablation compare the two
// codecs on the index's actual workloads.
//
// Unlike EWAH, Roaring supports fast random-order Set() (no append
// constraint), at the cost of a container lookup per operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitset/plain_bitset.hpp"

namespace mio {

/// Compressed bitset over array/bitmap containers.
class Roaring {
 public:
  Roaring() = default;

  /// Sets bit i (any order).
  void Set(std::size_t i);
  /// Tests bit i.
  bool Test(std::size_t i) const;
  /// Number of set bits; O(#containers).
  std::size_t Count() const;
  bool Empty() const { return Count() == 0; }

  void Reset() {
    keys_.clear();
    containers_.clear();
  }

  static Roaring Or(const Roaring& a, const Roaring& b);
  static Roaring And(const Roaring& a, const Roaring& b);
  /// a & ~b.
  static Roaring AndNot(const Roaring& a, const Roaring& b);

  /// this |= other.
  void OrWith(const Roaring& other) { *this = Or(*this, other); }

  /// Invokes f(index) for every set bit in ascending order.
  template <typename F>
  void ForEachSetBit(F&& f) const {
    for (std::size_t c = 0; c < keys_.size(); ++c) {
      std::size_t base = static_cast<std::size_t>(keys_[c]) << 16;
      const Container& ct = containers_[c];
      if (ct.IsArray()) {
        for (std::uint16_t v : ct.array) f(base + v);
      } else {
        for (std::size_t w = 0; w < ct.bitmap.size(); ++w) {
          std::uint64_t word = ct.bitmap[w];
          while (word != 0) {
            int b = __builtin_ctzll(word);
            f(base + w * 64 + static_cast<std::size_t>(b));
            word &= word - 1;
          }
        }
      }
    }
  }

  PlainBitset ToPlain() const;
  static Roaring FromPlain(const PlainBitset& plain);

  /// Logical equality (same set bits).
  bool operator==(const Roaring& other) const;

  /// Bytes of the compressed representation.
  std::size_t CompressedBytes() const;
  std::size_t MemoryUsageBytes() const;

  std::size_t NumContainers() const { return containers_.size(); }

 private:
  static constexpr std::size_t kArrayMax = 4096;    // classic threshold
  static constexpr std::size_t kBitmapWords = 1024; // 65536 bits

  struct Container {
    // Array form: sorted unique 16-bit values. Bitmap form: 1024 words.
    std::vector<std::uint16_t> array;
    std::vector<std::uint64_t> bitmap;
    bool IsArray() const { return bitmap.empty(); }

    std::size_t Cardinality() const;
    void Set(std::uint16_t low);
    bool Test(std::uint16_t low) const;
    /// Converts to bitmap form when the array outgrows the threshold.
    void MaybeUpgrade();
    /// Converts to array form when a result shrinks below the threshold.
    void MaybeDowngrade();
  };

  /// Index of the container for high bits `key`, or npos.
  std::size_t FindContainer(std::uint16_t key) const;
  Container& GetOrCreateContainer(std::uint16_t key);

  static Container OrContainers(const Container& a, const Container& b);
  static Container AndContainers(const Container& a, const Container& b);
  static Container AndNotContainers(const Container& a, const Container& b);

  std::vector<std::uint16_t> keys_;   // sorted high-16-bit keys
  std::vector<Container> containers_; // parallel to keys_
};

}  // namespace mio
