#include "object/sampling.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/random.hpp"

namespace mio {

ObjectSet SampleObjects(const ObjectSet& input, double rate,
                        std::uint64_t seed) {
  rate = std::clamp(rate, 0.0, 1.0);
  std::size_t take =
      static_cast<std::size_t>(rate * static_cast<double>(input.size()));
  ObjectSet out;
  if (take == 0) return out;
  if (take >= input.size()) {
    for (const Object& o : input.objects()) out.Add(o);
    return out;
  }
  std::vector<std::uint32_t> idx(input.size());
  std::iota(idx.begin(), idx.end(), 0u);
  Pcg32 rng(seed);
  // Partial Fisher-Yates: only the first `take` slots need shuffling.
  for (std::size_t i = 0; i < take; ++i) {
    std::size_t j =
        i + rng.NextBounded(static_cast<std::uint32_t>(idx.size() - i));
    std::swap(idx[i], idx[j]);
  }
  std::sort(idx.begin(), idx.begin() + take);  // keep original order stable
  for (std::size_t i = 0; i < take; ++i) out.Add(input[idx[i]]);
  return out;
}

}  // namespace mio
