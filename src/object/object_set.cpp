#include "object/object_set.hpp"

#include <algorithm>
#include <cstdio>

namespace mio {

std::string DatasetStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu m=%.1f nm=%zu min_points=%zu max_points=%zu", n, m, nm,
                min_points, max_points);
  return buf;
}

ObjectId ObjectSet::Add(Object obj) {
  objects_.push_back(std::move(obj));
  return static_cast<ObjectId>(objects_.size() - 1);
}

DatasetStats ObjectSet::Stats() const {
  DatasetStats s;
  s.n = objects_.size();
  if (s.n == 0) return s;
  s.min_points = objects_[0].NumPoints();
  for (const Object& o : objects_) {
    s.nm += o.NumPoints();
    s.min_points = std::min(s.min_points, o.NumPoints());
    s.max_points = std::max(s.max_points, o.NumPoints());
  }
  s.m = static_cast<double>(s.nm) / static_cast<double>(s.n);
  return s;
}

Aabb ObjectSet::Bounds() const {
  Aabb box;
  for (const Object& o : objects_) {
    for (const Point& p : o.points) box.Extend(p);
  }
  return box;
}

std::size_t ObjectSet::MemoryUsageBytes() const {
  std::size_t bytes = objects_.capacity() * sizeof(Object);
  for (const Object& o : objects_) {
    bytes += o.points.capacity() * sizeof(Point);
    bytes += o.times.capacity() * sizeof(double);
  }
  return bytes;
}

bool ObjectSet::IsPlanar() const {
  bool seen = false;
  double z0 = 0.0;
  for (const Object& o : objects_) {
    for (const Point& p : o.points) {
      if (!seen) {
        z0 = p.z;
        seen = true;
      } else if (p.z != z0) {
        return false;
      }
    }
  }
  return seen;
}

double ObjectSet::MaxTime() const {
  double mx = 0.0;
  for (const Object& o : objects_) {
    for (double t : o.times) mx = std::max(mx, t);
  }
  return mx;
}

}  // namespace mio
