// The paper's data model: an object is a set of spatial points (a neuron's
// sample points, a sub-trajectory's fixes). Object ids are their indices in
// the owning ObjectSet — bit i of every BIGrid bitset refers to object i.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"

namespace mio {

/// Object id type; also the bit index inside BIGrid bitsets.
using ObjectId = std::uint32_t;

/// A spatial object: a bag of points, optionally timestamped (temporal
/// variant, paper Appendix B). `times` is either empty or point-parallel.
struct Object {
  std::vector<Point> points;
  std::vector<double> times;

  std::size_t NumPoints() const { return points.size(); }
  bool HasTimes() const { return !times.empty(); }
};

}  // namespace mio
