// Object-level sampling for the scalability experiments (paper Fig. 6:
// "for each dataset, we select s*n objects, where s is a sampling rate").
#pragma once

#include <cstdint>

#include "object/object_set.hpp"

namespace mio {

/// Returns a new collection containing floor(rate * n) objects drawn
/// uniformly without replacement (deterministic for a given seed). Ids are
/// re-assigned densely, as BIGrid bit indices require.
ObjectSet SampleObjects(const ObjectSet& input, double rate,
                        std::uint64_t seed);

}  // namespace mio
