// Spatial object reordering. BIGrid cell bitsets are EWAH-compressed over
// object ids, so ids that cluster spatially produce runs and compress
// well — the effect the EWAH paper ("Sorting improves word-aligned bitmap
// indexes", the paper's [22]) is about. Real collections (neurons grouped
// by tissue region, trajectories by deployment) arrive roughly in this
// order already; synthetic or shuffled data should be passed through this
// reorder before indexing.
#pragma once

#include "object/object_set.hpp"

namespace mio {

/// Returns the collection reordered by the Morton code of each object's
/// centroid (ids are re-assigned densely in the new order).
ObjectSet SortObjectsSpatially(const ObjectSet& input);

}  // namespace mio
