#include "object/spatial_sort.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "geo/morton.hpp"

namespace mio {

ObjectSet SortObjectsSpatially(const ObjectSet& input) {
  const std::size_t n = input.size();
  if (n == 0) return {};

  // Normalise centroids into the 21-bit Morton lattice spanned by the
  // collection's bounding box.
  Aabb bounds = input.Bounds();
  double span = std::max({bounds.ExtentX(), bounds.ExtentY(),
                          bounds.ExtentZ(), 1e-12});
  double scale = double((1u << 20) - 1) / span;

  std::vector<std::uint64_t> codes(n);
  for (ObjectId i = 0; i < n; ++i) {
    const Object& o = input[i];
    double cx = 0, cy = 0, cz = 0;
    for (const Point& p : o.points) {
      cx += p.x;
      cy += p.y;
      cz += p.z;
    }
    double inv = o.points.empty() ? 0.0 : 1.0 / o.points.size();
    codes[i] = MortonEncode3(
        static_cast<std::uint32_t>((cx * inv - bounds.min.x) * scale),
        static_cast<std::uint32_t>((cy * inv - bounds.min.y) * scale),
        static_cast<std::uint32_t>((cz * inv - bounds.min.z) * scale));
  }

  std::vector<ObjectId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    return codes[a] < codes[b];
  });

  ObjectSet out;
  for (ObjectId i : order) out.Add(input[i]);
  return out;
}

}  // namespace mio
