// The object collection O: memory-resident and static (paper §II-A).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geo/aabb.hpp"
#include "object/object.hpp"

namespace mio {

/// Summary statistics in the paper's notation (Table I).
struct DatasetStats {
  std::size_t n = 0;        ///< number of objects
  double m = 0.0;           ///< average points per object
  std::size_t nm = 0;       ///< total number of points
  std::size_t min_points = 0;
  std::size_t max_points = 0;

  std::string ToString() const;
};

/// An immutable-after-build collection of objects. Object i's id is i.
class ObjectSet {
 public:
  ObjectSet() = default;

  /// Appends an object and returns its id.
  ObjectId Add(Object obj);

  std::size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  const Object& operator[](ObjectId id) const { return objects_[id]; }
  const std::vector<Object>& objects() const { return objects_; }

  /// n, m, nm and min/max object sizes.
  DatasetStats Stats() const;

  /// Bounding box over every point of every object.
  Aabb Bounds() const;

  /// Total heap bytes held by the point arrays.
  std::size_t MemoryUsageBytes() const;

  /// Maximum timestamp across all objects (0 when untimestamped).
  double MaxTime() const;

  /// True iff every point shares one z coordinate (a 2-D dataset such as
  /// planar trajectories) — enables the tighter 2-D small grid.
  bool IsPlanar() const;

 private:
  std::vector<Object> objects_;
};

}  // namespace mio
