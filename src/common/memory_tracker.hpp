// Memory accounting for index structures. The paper's Figs. 5(f)-(j) and
// 6(f)-(j) report index memory usage; every index structure implements
// MemoryUsageBytes() built from these helpers so the benches can report
// byte-exact structure sizes rather than noisy RSS readings.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mio {

/// Bytes held by a vector's heap allocation (capacity, not size).
template <typename T>
std::size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Approximate bytes held by an unordered_map: bucket array plus one node
/// per element (libstdc++ node = value + next pointer + cached hash).
template <typename K, typename V, typename H, typename E, typename A>
std::size_t UnorderedMapBytes(const std::unordered_map<K, V, H, E, A>& m) {
  std::size_t node = sizeof(std::pair<const K, V>) + 2 * sizeof(void*);
  return m.bucket_count() * sizeof(void*) + m.size() * node;
}

/// Named breakdown of an index's memory footprint, e.g.
/// {"small_grid": ..., "large_grid": ..., "key_lists": ...}.
struct MemoryBreakdown {
  std::vector<std::pair<std::string, std::size_t>> parts;

  void Add(std::string name, std::size_t bytes) {
    parts.emplace_back(std::move(name), bytes);
  }
  std::size_t Total() const {
    std::size_t t = 0;
    for (const auto& [_, b] : parts) t += b;
    return t;
  }
  /// "small_grid=1.2MiB large_grid=3.4MiB total=4.6MiB"
  std::string ToString() const;
};

/// Formats a byte count as "123 B", "1.2 KiB", "3.4 MiB", "5.6 GiB".
std::string FormatBytes(std::size_t bytes);

/// Process-wide high-water-mark tracker. Subsystems report their current
/// footprint under a tag (index builds re-report on every query); the
/// tracker keeps the latest value and the peak per tag, and the stats
/// sink serialises the snapshot, so peaks survive into the stats JSON
/// instead of only being printable at the moment they occur.
class MemoryTracker {
 public:
  struct Entry {
    std::string tag;
    std::size_t current_bytes = 0;
    std::size_t peak_bytes = 0;
  };

  static MemoryTracker& Instance();

  /// Sets the tag's current footprint and raises its peak if exceeded.
  void Observe(const std::string& tag, std::size_t current_bytes);

  /// Observe() for every part of a breakdown (tags = part names).
  void ObserveBreakdown(const MemoryBreakdown& breakdown);

  /// All tags in lexicographic order.
  std::vector<Entry> Snapshot() const;

  /// Forgets every tag (tests; fresh baselines between bench runs).
  void Reset();

 private:
  MemoryTracker() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::pair<std::size_t, std::size_t>>
      tags_;  // tag -> {current, peak}
};

}  // namespace mio
