#include "common/status.hpp"

namespace mio {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    // 1 is reserved for generic/usage failures.
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kIOError:
      return 3;
    case StatusCode::kCorruption:
      return 4;
    case StatusCode::kNotFound:
      return 5;
    case StatusCode::kOutOfRange:
      return 6;
    case StatusCode::kUnimplemented:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kDeadlineExceeded:
      return 9;
    case StatusCode::kResourceExhausted:
      return 10;
    case StatusCode::kCancelled:
      return 11;
  }
  return 1;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace mio
