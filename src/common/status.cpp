#include "common/status.hpp"

namespace mio {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace mio
