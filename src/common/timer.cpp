#include "common/timer.hpp"

#include <cstdio>

namespace mio {

std::string FormatSeconds(double seconds) {
  // Durations can legitimately be negative (clock adjustments, timestamp
  // subtraction): format the magnitude and keep the sign. Exact zero used
  // to print "0.0 ns", which is misleading for an unmeasured field.
  if (seconds == 0.0) return "0 s";
  if (seconds < 0.0) return "-" + FormatSeconds(-seconds);
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds < 3600.0) {
    // Minute-plus runs (full-scale benches): whole minutes + seconds.
    int m = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm %.1fs", m, seconds - 60.0 * m);
  } else {
    int h = static_cast<int>(seconds / 3600.0);
    int m = static_cast<int>((seconds - 3600.0 * h) / 60.0);
    std::snprintf(buf, sizeof(buf), "%dh %dm %.0fs", h, m,
                  seconds - 3600.0 * h - 60.0 * m);
  }
  return buf;
}

}  // namespace mio
