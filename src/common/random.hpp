// Deterministic pseudo-random number generation (PCG32). All data
// generators and property tests seed explicitly so every run of the test
// suite and every benchmark sees byte-identical datasets.
#pragma once

#include <cstdint>
#include <limits>

namespace mio {

/// PCG32 (O'Neill): small, fast, statistically strong 32-bit generator.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (stream << 1u) | 1u;
    Next();
    state_ += seed;
    Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return Next() * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). Bound must be > 0.
  std::uint32_t NextBounded(std::uint32_t bound) {
    // Lemire's nearly-divisionless method.
    std::uint64_t product = std::uint64_t(Next()) * bound;
    std::uint32_t low = static_cast<std::uint32_t>(product);
    if (low < bound) {
      std::uint32_t threshold = -bound % bound;
      while (low < threshold) {
        product = std::uint64_t(Next()) * bound;
        low = static_cast<std::uint32_t>(product);
      }
    }
    return static_cast<std::uint32_t>(product >> 32);
  }

  /// Standard normal via Box–Muller (one value per call; simple over fast).
  double NextGaussian() {
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-12);
    double u2 = NextDouble();
    // sqrt(-2 ln u1) cos(2 pi u2)
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  result_type Next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace mio
