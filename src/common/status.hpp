// Lightweight Status / Result error-handling primitives, in the style of
// Apache Arrow / RocksDB: recoverable failures travel as values, not
// exceptions, so callers on hot paths pay nothing for the happy path.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace mio {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// Returns the canonical human-readable name of a status code.
const char* StatusCodeName(StatusCode code);

/// Process exit code for a status: 0 for OK, a distinct small nonzero
/// value per error code (docs/ROBUSTNESS.md; scripts branch on these).
int ExitCodeFor(StatusCode code);

/// \brief Outcome of an operation that can fail without a payload.
///
/// A default-constructed Status is OK. Failure states carry a code and a
/// message. Status is cheap to copy (small string optimization covers the
/// common short messages).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// \brief Status with a payload: holds either a value of T or an error.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  /// Precondition: ok().
  T& value() & { return std::get<T>(var_); }
  const T& value() const& { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    if (ok()) return std::get<T>(std::move(var_));
    return fallback;
  }

 private:
  std::variant<T, Status> var_;
};

}  // namespace mio

/// Propagates a non-OK Status to the caller.
#define MIO_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::mio::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)
