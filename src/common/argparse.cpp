#include "common/argparse.hpp"

#include <cstdlib>
#include <sstream>

namespace mio {
namespace {

bool LooksLikeFlag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

ArgParser::ArgParser(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 std::string fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return it->second;
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

std::vector<double> ArgParser::GetDoubleList(
    const std::string& name, std::vector<double> fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  std::vector<double> out;
  for (const auto& tok : SplitCommas(it->second)) {
    out.push_back(std::strtod(tok.c_str(), nullptr));
  }
  return out;
}

std::vector<std::int64_t> ArgParser::GetIntList(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  std::vector<std::int64_t> out;
  for (const auto& tok : SplitCommas(it->second)) {
    out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<std::string> ArgParser::GetStringList(
    const std::string& name, std::vector<std::string> fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return SplitCommas(it->second);
}

}  // namespace mio
