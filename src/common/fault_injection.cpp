#include "common/fault_injection.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "obs/metrics.hpp"

namespace mio {
namespace fault {

namespace {

enum class Mode { kAlways, kProb, kNth, kAfter };

struct ArmedFault {
  std::string site;  // exact, or prefix when wildcard
  bool wildcard = false;
  Mode mode = Mode::kAlways;
  double p = 0.0;
  std::uint64_t n = 0;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<ArmedFault> armed;
  std::uint64_t rng_seed = 0x9E3779B97F4A7C15ULL;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: shutdown-safe
  return *r;
}

// Armed-entry count mirrored outside the lock so unarmed site checks pay
// no mutex; env parsing is resolved before the first read of it.
std::atomic<std::size_t> g_armed_count{0};
std::atomic<std::uint64_t> g_injected_count{0};
std::once_flag g_env_once;

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool SiteMatches(const ArmedFault& f, const char* site) {
  if (f.wildcard) {
    return std::string_view(site).substr(0, f.site.size()) == f.site;
  }
  return f.site == site;
}

void InstallFromEnv() {
  const char* seed = std::getenv("MIO_FAULT_SEED");
  if (seed != nullptr) {
    GetRegistry().rng_seed = std::strtoull(seed, nullptr, 10);
  }
  const char* spec = std::getenv("MIO_FAULT");
  if (spec == nullptr || spec[0] == '\0') return;
  Status st = ArmFromSpec(spec);
  if (!st.ok()) {
    std::fprintf(stderr, "MIO_FAULT: %s\n", st.ToString().c_str());
  }
}

}  // namespace

const std::vector<std::string>& FaultSites() {
  static const std::vector<std::string> kSites = {
      "io.dataset.read",   // per read op in LoadDatasetBinary (short read)
      "io.dataset.write",  // SaveDatasetBinary entry (failed write)
      "io.label.read",     // per read op in LabelStore::Load (short read)
      "io.label.write",    // LabelStore::Save entry (failed write)
      "io.import.open",    // importer file open (SWC / CSV)
      "alloc.bigrid",      // per-object allocation during BIGrid build
      "workload.query_delay",  // injects latency into a workload query
                               // (tail-sampling tests force a slow query)
  };
  return kSites;
}

Status Arm(const std::string& site, const std::string& spec) {
  ArmedFault f;
  f.site = site;
  if (!f.site.empty() && f.site.back() == '*') {
    f.wildcard = true;
    f.site.pop_back();
  }
  if (site.empty()) {
    return Status::InvalidArgument("empty fault site");
  }
  if (spec == "always") {
    f.mode = Mode::kAlways;
  } else if (spec.rfind("p=", 0) == 0) {
    f.mode = Mode::kProb;
    char* end = nullptr;
    f.p = std::strtod(spec.c_str() + 2, &end);
    if (end == spec.c_str() + 2 || *end != '\0' || f.p < 0.0 || f.p > 1.0) {
      return Status::InvalidArgument("bad fault probability: " + spec);
    }
  } else if (spec.rfind("nth=", 0) == 0 || spec.rfind("after=", 0) == 0) {
    f.mode = spec[0] == 'n' ? Mode::kNth : Mode::kAfter;
    const char* num = spec.c_str() + (f.mode == Mode::kNth ? 4 : 6);
    char* end = nullptr;
    f.n = std::strtoull(num, &end, 10);
    if (end == num || *end != '\0' || (f.mode == Mode::kNth && f.n == 0)) {
      return Status::InvalidArgument("bad fault count: " + spec);
    }
  } else {
    return Status::InvalidArgument("unknown fault spec '" + spec +
                                   "' (want always | p=F | nth=N | after=N)");
  }
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.armed.push_back(std::move(f));
  g_armed_count.store(reg.armed.size(), std::memory_order_release);
  return Status::OK();
}

Status ArmFromSpec(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("fault entry missing ':': " + entry);
    }
    MIO_RETURN_NOT_OK(Arm(entry.substr(0, colon), entry.substr(colon + 1)));
  }
  return Status::OK();
}

void Reset() {
  // Consume the env spec first so a Reset before any site check still
  // prevents it from re-arming later.
  std::call_once(g_env_once, InstallFromEnv);
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.armed.clear();
  g_armed_count.store(0, std::memory_order_release);
}

std::size_t ArmedCount() {
  std::call_once(g_env_once, InstallFromEnv);
  return g_armed_count.load(std::memory_order_acquire);
}

std::uint64_t InjectedCount() {
  return g_injected_count.load(std::memory_order_relaxed);
}

#if !defined(MIO_FAULT_INJECTION_DISABLED)

bool ShouldFail(const char* site) {
  std::call_once(g_env_once, InstallFromEnv);
  if (g_armed_count.load(std::memory_order_acquire) == 0) return false;

  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ArmedFault& f : reg.armed) {
    if (!SiteMatches(f, site)) continue;
    std::uint64_t hit = ++f.hits;
    bool fail = false;
    switch (f.mode) {
      case Mode::kAlways:
        fail = true;
        break;
      case Mode::kProb:
        // Deterministic per-process stream: hash of (seed, hit index).
        fail = static_cast<double>(SplitMix64(reg.rng_seed ^ hit)) <
               f.p * 18446744073709551616.0;  // 2^64
        break;
      case Mode::kNth:
        fail = hit == f.n;
        break;
      case Mode::kAfter:
        fail = hit > f.n;
        break;
    }
    if (fail) {
      g_injected_count.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs::Counter::kFaultsInjected);
      return true;
    }
  }
  return false;
}

#endif  // !MIO_FAULT_INJECTION_DISABLED

}  // namespace fault
}  // namespace mio
