#include "common/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define MIO_X86 1
#else
#define MIO_X86 0
#endif

namespace mio {

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kSse2:
      return "sse2";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kScalar:
    default:
      return "scalar";
  }
}

bool ParseKernelTier(const std::string& name, KernelTier* out) {
  if (name == "scalar") {
    *out = KernelTier::kScalar;
  } else if (name == "sse2") {
    *out = KernelTier::kSse2;
  } else if (name == "avx2") {
    *out = KernelTier::kAvx2;
  } else {
    return false;
  }
  return true;
}

namespace {

KernelTier ProbeBestTier() {
#if MIO_X86
  __builtin_cpu_init();
  // The avx2 tier uses only AVX2 integer/double ops, but is gated on FMA
  // too so the tier name matches the usual "AVX2+FMA" capability class.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return KernelTier::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) return KernelTier::kSse2;
#endif
  return KernelTier::kScalar;
}

}  // namespace

KernelTier BestSupportedTier() {
  static const KernelTier tier = ProbeBestTier();
  return tier;
}

}  // namespace mio
