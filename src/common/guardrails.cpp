#include "common/guardrails.hpp"

#include <cstdio>

namespace mio {

Status QueryGuard::status() const {
  switch (code()) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kDeadlineExceeded: {
      char msg[64];
      std::snprintf(msg, sizeof(msg), "query deadline of %.3f ms exceeded",
                    deadline_ms_);
      return Status::DeadlineExceeded(msg);
    }
    case StatusCode::kCancelled:
      return Status::Cancelled("query cancelled by caller");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(
          "memory budget exhausted (after shedding all optional work)");
    default:
      return Status::Internal("guard tripped with unexpected code");
  }
}

DegradationPlan PlanDegradation(const DegradationInputs& in) {
  DegradationPlan plan;
  if (in.budget_bytes == 0) return plan;  // unlimited

  std::size_t projected = in.required_bytes + in.label_bytes +
                          in.cache_bytes + in.lb_bitset_bytes;
  if (projected > in.budget_bytes && in.label_bytes > 0) {
    plan.shed_label_recording = true;
    projected -= in.label_bytes;
  }
  if (projected > in.budget_bytes && in.cache_bytes > 0) {
    plan.drop_grid_cache = true;
    projected -= in.cache_bytes;
  }
  if (projected > in.budget_bytes && in.lb_bitset_bytes > 0) {
    plan.stream_verification = true;
    projected -= in.lb_bitset_bytes;
  }
  plan.abort = projected > in.budget_bytes;
  return plan;
}

}  // namespace mio
