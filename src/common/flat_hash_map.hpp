// Open-addressing hash map with linear probing, used for the BIGrid cell
// tables. Cells are inserted during grid mapping and then only looked up
// (never erased), which this layout exploits: contiguous slot storage,
// one cache line per probe, no per-node allocation — the neighbourhood
// probes of EnsureAdj are the hottest lookups in the system and run ~4x
// faster than on std::unordered_map here.
//
// Constraints (checked by usage, not the type system):
//  * no erase;
//  * references returned by operator[]/Find are invalidated by the next
//    insert that triggers a rehash — do not hold them across inserts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mio {

/// Insert-only flat hash map. K must be trivially comparable; V movable.
template <typename K, typename V, typename Hash>
class FlatHashMap {
 public:
  FlatHashMap() { Rehash(kInitialCapacity); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes for `n` elements without rehashing during inserts.
  void Reserve(std::size_t n) {
    std::size_t needed = NextPow2(n * 10 / 7 + 1);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Returns the value for `key`, default-constructing it when absent.
  V& operator[](const K& key) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
    std::size_t idx = ProbeFor(key, slots_, states_);
    if (states_[idx] == kEmpty) {
      states_[idx] = kFull;
      slots_[idx].first = key;
      ++size_;
    }
    return slots_[idx].second;
  }

  /// Pointer to the value for `key`, or nullptr.
  V* Find(const K& key) {
    std::size_t idx = ProbeFor(key, slots_, states_);
    return states_[idx] == kFull ? &slots_[idx].second : nullptr;
  }
  const V* Find(const K& key) const {
    std::size_t idx = ProbeFor(key, slots_, states_);
    return states_[idx] == kFull ? &slots_[idx].second : nullptr;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Invokes f(key, value) for every element (unspecified order).
  template <typename F>
  void ForEach(F&& f) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (states_[i] == kFull) f(slots_[i].first, slots_[i].second);
    }
  }
  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (states_[i] == kFull) f(slots_[i].first, slots_[i].second);
    }
  }

  /// Heap bytes of the table itself (not of heap-owning values).
  std::size_t TableBytes() const {
    return slots_.capacity() * sizeof(std::pair<K, V>) + states_.capacity();
  }

 private:
  static constexpr std::size_t kInitialCapacity = 16;
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;

  static std::size_t NextPow2(std::size_t n) {
    std::size_t p = kInitialCapacity;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t ProbeFor(const K& key,
                       const std::vector<std::pair<K, V>>& slots,
                       const std::vector<std::uint8_t>& states) const {
    std::size_t mask = slots.size() - 1;
    std::size_t idx = Hash{}(key) & mask;
    while (states[idx] == kFull && !(slots[idx].first == key)) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<std::pair<K, V>> new_slots(new_capacity);
    std::vector<std::uint8_t> new_states(new_capacity, kEmpty);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (states_[i] != kFull) continue;
      std::size_t idx = ProbeFor(slots_[i].first, new_slots, new_states);
      new_states[idx] = kFull;
      new_slots[idx] = std::move(slots_[i]);
    }
    slots_ = std::move(new_slots);
    states_ = std::move(new_states);
  }

  std::vector<std::pair<K, V>> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;
};

}  // namespace mio
