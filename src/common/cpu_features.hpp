// Runtime CPU capability detection for the geometry kernel layer
// (src/geo/kernels.hpp). Dispatch tiers are strictly ordered: every tier
// is a superset of the one below it, so clamping an override to the best
// supported tier is always sound.
#pragma once

#include <string>

namespace mio {

/// Instruction-set tiers of the batch distance kernels, worst to best.
/// kSse2 and kAvx2 exist only on x86; other architectures report kScalar.
enum class KernelTier : int {
  kScalar = 0,  ///< portable C++, no intrinsics
  kSse2 = 1,    ///< 128-bit lanes (2 doubles); baseline on x86-64
  kAvx2 = 2,    ///< 256-bit lanes (4 doubles); requires AVX2 + FMA
};

/// Human-readable tier name ("scalar" / "sse2" / "avx2").
const char* KernelTierName(KernelTier tier);

/// Parses a tier name as accepted by the MIO_KERNEL environment variable.
/// Returns false (and leaves *out untouched) on an unknown name.
bool ParseKernelTier(const std::string& name, KernelTier* out);

/// Best tier this CPU supports, probed once via cpuid and cached.
KernelTier BestSupportedTier();

}  // namespace mio
