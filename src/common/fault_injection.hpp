// Fault-injection framework: named fault sites compiled into the IO and
// allocation paths so the Status/Result error handling is exercisable
// under test and in staging, not just written. A site is a string like
// "io.dataset.read"; arming a fault makes MIO_FAULT_HIT(site) return true
// according to a trigger spec, and the caller turns that into the same
// failure path a real short read / failed allocation would take.
//
// Arming:
//   - environment:   MIO_FAULT=io.dataset.read:p=0.5;alloc.bigrid:nth=2
//     (parsed once, on the first site check; bad specs are reported to
//     stderr and skipped). MIO_FAULT_SEED pins the probabilistic stream.
//   - programmatic:  fault::Arm("io.label.write", "always") in tests;
//     fault::Reset() disarms everything, including env-armed faults.
//
// Spec grammar (docs/ROBUSTNESS.md):
//   always      every hit fails
//   p=F         each hit fails independently with probability F (the
//               stream is deterministic per process given MIO_FAULT_SEED)
//   nth=N       exactly the N-th hit fails (1-based), one-shot
//   after=N     every hit after the first N succeeds fails
// A site pattern ending in '*' matches any site with that prefix
// ("io.*" matches every IO site).
//
// Sites are registered in fault_injection.cpp (FaultSites()); keep that
// table and the docs in sync when adding one.
//
// Compile-out: -DMIO_FAULT_INJECTION=OFF defines MIO_FAULT_INJECTION_DISABLED
// and every MIO_FAULT_HIT site folds to `false` at compile time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace mio {
namespace fault {

/// All known fault-site names (the registry printed in docs/ROBUSTNESS.md).
const std::vector<std::string>& FaultSites();

/// Arms one fault: `site` (exact name or prefix pattern ending in '*')
/// plus a trigger spec from the grammar above.
Status Arm(const std::string& site, const std::string& spec);

/// Parses a full MIO_FAULT-style string ("site:spec[;site:spec...]",
/// ';' or ',' separated) and arms every entry.
Status ArmFromSpec(const std::string& spec);

/// Disarms every fault (env-armed ones included; the environment is not
/// re-read afterwards).
void Reset();

/// Number of armed fault entries.
std::size_t ArmedCount();

/// Total faults triggered since process start (mirrors the
/// faults.injected metrics counter, readable without a snapshot).
std::uint64_t InjectedCount();

#if defined(MIO_FAULT_INJECTION_DISABLED)

inline bool ShouldFail(const char* /*site*/) { return false; }
inline constexpr bool kCompiledIn = false;

#else

/// True when an armed fault decides this hit of `site` fails. Fast path
/// (nothing armed) is two relaxed atomic loads.
bool ShouldFail(const char* site);
inline constexpr bool kCompiledIn = true;

#endif

}  // namespace fault
}  // namespace mio

/// Fault-site check; folds to `false` when fault injection is compiled out.
#define MIO_FAULT_HIT(site) (::mio::fault::ShouldFail(site))
