// Per-query resource guardrails: a wall-clock deadline, a cooperative
// cancellation token, and a memory-budget degradation planner. The engine
// creates one QueryGuard per query and the phase loops poll it on an
// amortised stride (every N cells/objects, including inside OpenMP
// regions), so a pathological query stops within one stride of its limit
// instead of running unbounded.
//
// Trip semantics: the first limit that fires wins (an atomic CAS on the
// status code); every later Poll() returns true immediately, so parallel
// workers drain their remaining iterations at one relaxed load each. The
// engine converts a tripped guard into an incomplete QueryResult carrying
// the best-so-far answer (docs/ROBUSTNESS.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>

#include "common/status.hpp"

namespace mio {

/// Poll strides: how many loop iterations run between two guard polls.
/// Object-granular loops (build, bounding, candidate queue) use the
/// coarse stride; point-granular inner loops the fine one. Chosen so the
/// poll (a steady_clock read) stays far below 1% of loop cost while a
/// deadline still fires within a few hundred microseconds of real work.
inline constexpr std::size_t kGuardStrideObjects = 256;
inline constexpr std::size_t kGuardStridePoints = 64;

/// Cooperative cancellation: share one token between the query thread and
/// any controller thread; Cancel() makes the query return kCancelled at
/// its next guard poll. Reusable after Reset().
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// One query's limit state. Configure before the query starts; Poll()
/// from any thread during it. Not reusable across queries.
class QueryGuard {
 public:
  using Clock = std::chrono::steady_clock;

  /// Arms the deadline `ms` milliseconds from now (<= 0 leaves it off).
  void SetDeadline(double ms) {
    if (ms <= 0.0) return;
    deadline_ms_ = ms;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(ms));
    has_deadline_ = true;
  }

  void SetCancelToken(const CancelToken* token) { cancel_ = token; }

  /// True when any limit is armed (deadline or cancel; the memory budget
  /// is enforced by the planner below, not by polling).
  bool active() const { return has_deadline_ || cancel_ != nullptr; }

  bool tripped() const {
    return code_.load(std::memory_order_relaxed) != 0;
  }

  /// Amortised check: true when the query must stop. Callers stride this
  /// (e.g. every 256 objects); once tripped it costs one relaxed load.
  bool Poll() {
    if (tripped()) return true;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Trip(StatusCode::kCancelled);
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Trip(StatusCode::kDeadlineExceeded);
    }
    return false;
  }

  /// Explicit kResourceExhausted trip (budget abort, injected allocation
  /// failure). Returns true for `if (...) return;` call sites.
  bool TripResource() { return Trip(StatusCode::kResourceExhausted); }

  StatusCode code() const {
    return static_cast<StatusCode>(code_.load(std::memory_order_relaxed));
  }

  /// OK until tripped; afterwards the trip code with a canned message.
  Status status() const;

 private:
  bool Trip(StatusCode c) {
    int expected = 0;
    code_.compare_exchange_strong(expected, static_cast<int>(c),
                                  std::memory_order_relaxed);
    return true;
  }

  std::atomic<int> code_{0};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  double deadline_ms_ = 0.0;
  const CancelToken* cancel_ = nullptr;
};

/// Inputs to the memory-budget planner: the index bytes the query cannot
/// run without, plus the cost of each sheddable extra (0 = not wanted).
struct DegradationInputs {
  std::size_t budget_bytes = 0;     ///< 0 = unlimited
  std::size_t required_bytes = 0;   ///< the BIGrid itself
  std::size_t label_bytes = 0;      ///< label recording (step 1)
  std::size_t cache_bytes = 0;      ///< retained grid cache (step 2)
  std::size_t lb_bitset_bytes = 0;  ///< kept lower-bound bitsets (step 3)
};

/// The degradation ladder (docs/ROBUSTNESS.md): optional work is shed in
/// a fixed order until the projection fits the budget —
///   1. skip label recording
///   2. drop the reuse-grid cache
///   3. fall back from EWAH-seeded to streaming verification
/// and only if the required bytes alone still exceed the budget does the
/// query abort with kResourceExhausted.
struct DegradationPlan {
  bool shed_label_recording = false;
  bool drop_grid_cache = false;
  bool stream_verification = false;
  bool abort = false;

  /// Highest ladder step applied (0 = none, 3 = streaming verification).
  int level() const {
    if (stream_verification) return 3;
    if (drop_grid_cache) return 2;
    if (shed_label_recording) return 1;
    return 0;
  }
  bool degraded() const { return level() > 0; }
};

DegradationPlan PlanDegradation(const DegradationInputs& in);

}  // namespace mio
