// Minimal command-line flag parser for the benchmark harnesses and
// examples. Supports `--flag`, `--flag=value` and `--flag value` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mio {

/// \brief Parses `--key[=value]` style flags; positional args are kept
/// in order. Unknown flags are tolerated (benches share sweep scripts).
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  /// True if `--name` was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Value of `--name`, or `fallback` when absent.
  std::string GetString(const std::string& name, std::string fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Comma-separated list flag, e.g. `--r=4,6,8,10`.
  std::vector<double> GetDoubleList(const std::string& name,
                                    std::vector<double> fallback) const;
  std::vector<std::int64_t> GetIntList(const std::string& name,
                                       std::vector<std::int64_t> fallback) const;
  std::vector<std::string> GetStringList(const std::string& name,
                                         std::vector<std::string> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mio
