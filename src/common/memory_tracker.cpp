#include "common/memory_tracker.hpp"

#include <cstdio>

namespace mio {

std::string FormatBytes(std::size_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (b < 1024.0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else if (b < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string MemoryBreakdown::ToString() const {
  std::string out;
  for (const auto& [name, bytes] : parts) {
    out += name;
    out += "=";
    out += FormatBytes(bytes);
    out += " ";
  }
  out += "total=";
  out += FormatBytes(Total());
  return out;
}

}  // namespace mio
