#include "common/memory_tracker.hpp"

#include <cstdio>

namespace mio {

std::string FormatBytes(std::size_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (b < 1024.0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else if (b < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

MemoryTracker& MemoryTracker::Instance() {
  static MemoryTracker* t = new MemoryTracker();  // leaked: shutdown-safe
  return *t;
}

void MemoryTracker::Observe(const std::string& tag,
                            std::size_t current_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& [current, peak] = tags_[tag];
  current = current_bytes;
  if (current_bytes > peak) peak = current_bytes;
}

void MemoryTracker::ObserveBreakdown(const MemoryBreakdown& breakdown) {
  for (const auto& [name, bytes] : breakdown.parts) Observe(name, bytes);
}

std::vector<MemoryTracker::Entry> MemoryTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(tags_.size());
  for (const auto& [tag, cp] : tags_) {
    out.push_back(Entry{tag, cp.first, cp.second});
  }
  return out;
}

void MemoryTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tags_.clear();
}

std::string MemoryBreakdown::ToString() const {
  std::string out;
  for (const auto& [name, bytes] : parts) {
    out += name;
    out += "=";
    out += FormatBytes(bytes);
    out += " ";
  }
  out += "total=";
  out += FormatBytes(Total());
  return out;
}

}  // namespace mio
