// Thin wrappers over OpenMP so the rest of the code never includes
// <omp.h> directly and single-threaded builds behave identically.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mio {

/// Number of hardware threads OpenMP will use by default.
inline int MaxThreads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's id inside a parallel region (0 outside).
inline int ThreadId() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Clamps a requested thread count to [1, max] where max defaults to the
/// OpenMP runtime limit; 0 means "use all".
inline int ResolveThreads(int requested) {
  int hw = MaxThreads();
  if (requested <= 0) return hw;
  return requested < 1 ? 1 : requested;
}

}  // namespace mio
