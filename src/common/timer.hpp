// Wall-clock timing utilities used by the benchmark harnesses and the
// per-phase breakdown reported in QueryStats (paper Table II).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace mio {

/// Monotonic wall-clock stopwatch with millisecond/second readouts.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanoseconds elapsed, for micro-measurements.
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds into `*sink` on destruction; used to
/// attribute time to pipeline phases without sprinkling Timer calls.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* sink) : sink_(sink) {}
  ~ScopedAccumulator() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

/// Formats seconds as a human-friendly string, e.g. "12.3 ms" or "4.56 s".
std::string FormatSeconds(double seconds);

}  // namespace mio
