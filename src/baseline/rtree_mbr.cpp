#include "baseline/rtree_mbr.hpp"

#include "obs/trace.hpp"

#include <cmath>
#include <memory>
#include <unordered_set>

#include "common/omp_utils.hpp"
#include "common/timer.hpp"
#include "geo/cell_key.hpp"
#include "kdtree/kdtree.hpp"
#include "rtree/rtree.hpp"

namespace mio {

double MbrEmptinessFraction(const ObjectSet& objects, double r) {
  if (objects.empty() || r <= 0.0) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (const Object& o : objects.objects()) {
    if (o.points.empty()) continue;
    Aabb box;
    std::unordered_set<CellKey, CellKeyHash> occupied;
    for (const Point& p : o.points) {
      box.Extend(p);
      occupied.insert(KeyForWidth(p, r));
    }
    auto cells_along = [&](double lo, double hi) {
      return static_cast<double>(
          static_cast<std::int64_t>(std::floor(hi / r)) -
          static_cast<std::int64_t>(std::floor(lo / r)) + 1);
    };
    double total = cells_along(box.min.x, box.max.x) *
                   cells_along(box.min.y, box.max.y) *
                   cells_along(box.min.z, box.max.z);
    sum += 1.0 - static_cast<double>(occupied.size()) / total;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

std::vector<std::uint32_t> RtreeMbrScores(const ObjectSet& objects, double r,
                                          int threads,
                                          MbrFilterStats* filter_stats) {
  const std::size_t n = objects.size();
  threads = ResolveThreads(threads);

  // Index every object's MBR.
  std::vector<Aabb> boxes(n);
  std::vector<RTree::Entry> entries(n);
  for (ObjectId i = 0; i < n; ++i) {
    for (const Point& p : objects[i].points) boxes[i].Extend(p);
    entries[i] = RTree::Entry{boxes[i], i};
  }
  RTree rtree(std::move(entries));

  // Per-object kd-trees for the verification step (same machinery the
  // NL-kd variant uses; RT only changes the filtering).
  std::vector<std::unique_ptr<KdTree>> trees(n);
#pragma omp parallel for schedule(dynamic, 4) num_threads(threads)
  for (std::size_t i = 0; i < n; ++i) {
    trees[i] = std::make_unique<KdTree>(objects[static_cast<ObjectId>(i)].points);
  }

  std::vector<std::vector<std::uint32_t>> local(
      threads, std::vector<std::uint32_t>(n, 0));
  std::vector<MbrFilterStats> local_stats(threads);

#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (std::size_t i = 0; i < n; ++i) {
    int t = ThreadId();
    // MBR filter: R-tree range probe around o_i's box. Process each pair
    // once (j > i keeps the counting symmetric and race-free per thread).
    rtree.ForEachWithin(boxes[i], r, [&](std::uint32_t j) {
      if (j <= i) return true;
      ++local_stats[t].candidate_pairs;
      const Object& oi = objects[static_cast<ObjectId>(i)];
      const Object& oj = objects[static_cast<ObjectId>(j)];
      bool hit = false;
      if (oi.NumPoints() <= oj.NumPoints()) {
        for (const Point& p : oi.points) {
          if (trees[j]->ContainsWithin(p, r)) {
            hit = true;
            break;
          }
        }
      } else {
        for (const Point& p : oj.points) {
          if (trees[i]->ContainsWithin(p, r)) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        ++local[t][i];
        ++local[t][j];
        ++local_stats[t].interacting_pairs;
      }
      return true;
    });
  }

  std::vector<std::uint32_t> tau(n, 0);
  for (int t = 0; t < threads; ++t) {
    for (std::size_t i = 0; i < n; ++i) tau[i] += local[t][i];
  }
  if (filter_stats != nullptr) {
    for (int t = 0; t < threads; ++t) {
      filter_stats->candidate_pairs += local_stats[t].candidate_pairs;
      filter_stats->interacting_pairs += local_stats[t].interacting_pairs;
    }
    filter_stats->total_pairs = n * (n - 1) / 2;
  }
  return tau;
}

QueryResult RtreeMbrQuery(const ObjectSet& objects, double r, int threads,
                          std::size_t k) {
  MIO_TRACE_SPAN_CAT("rt.query", "baseline");
  QueryResult res;
  Timer timer;
  std::vector<std::uint32_t> tau = RtreeMbrScores(objects, r, threads);
  res.topk = TopKFromScores(tau, k);
  res.stats.phases.verification = timer.ElapsedSeconds();
  res.stats.total_seconds = timer.ElapsedSeconds();
  res.stats.num_verified = objects.size();
  res.stats.threads = ResolveThreads(threads);
  return res;
}

}  // namespace mio
