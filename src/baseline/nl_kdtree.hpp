// NL-kd: the nested-loop variant from the paper's footnote 9 — each
// object's points are held in a kd-tree, so the pair test becomes m
// pruned range-exists queries instead of m^2 distance checks
// (O(n^2 m log m) overall). The paper reports it performs like NL and
// cannot beat BIGrid; we include it so that claim is reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "core/query_result.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Exact scores via per-object kd-trees (built per query; the build time
/// is part of the measured cost, as NL-kd has no pre-processing either).
std::vector<std::uint32_t> NlKdScores(const ObjectSet& objects, double r,
                                      int threads = 1);

/// Full MIO query via NL-kd.
QueryResult NlKdQuery(const ObjectSet& objects, double r, int threads = 1,
                      std::size_t k = 1);

}  // namespace mio
