// NL: the non-indexed nested loop baseline (paper Algorithm 1). For each
// object pair, pairwise point comparison with an early break on the first
// hit (once one interacting pair is found the pair's verdict is settled).
// O(n^2 m^2) worst case; no pre-processing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/query_result.hpp"
#include "geo/kernels.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Exact score of every object, by nested-loop join. `threads` > 1
/// parallelises the outer pair loop with per-thread score accumulators
/// (the paper's parallel NL, §V-C). If `dist_comps` is non-null it
/// receives the number of point-distance evaluations.
std::vector<std::uint32_t> NestedLoopScores(const ObjectSet& objects, double r,
                                            int threads = 1,
                                            std::size_t* dist_comps = nullptr);

/// Full MIO query via NL. k selects the top-k variant (NL computes all
/// scores anyway, so k only changes the reported list).
QueryResult NestedLoopQuery(const ObjectSet& objects, double r,
                            int threads = 1, std::size_t k = 1);

/// True iff objects a and b interact at threshold r (early-exit pairwise
/// scan). Shared by NL and the test oracles.
bool ObjectsInteract(const Object& a, const Object& b, double r,
                     std::size_t* dist_comps = nullptr);

/// The kernel-routed form: probes each point of `a` against b's SoA
/// coordinate arrays with one AnyWithin batch call. NL builds the SoA
/// mirrors once per query and calls this in its pair loop, so the
/// baseline's pairwise predicate runs through the same dispatch tiers as
/// BIGrid's verification.
bool ObjectsInteract(const Object& a, const SoaPoints& b, double r,
                     std::size_t* dist_comps = nullptr);

}  // namespace mio
