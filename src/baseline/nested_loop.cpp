#include "baseline/nested_loop.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <numeric>

#include "common/omp_utils.hpp"
#include "common/timer.hpp"

namespace mio {

bool ObjectsInteract(const Object& a, const SoaPoints& b, double r,
                     std::size_t* dist_comps) {
  double r2 = r * r;
  std::size_t comps = 0;
  bool hit = false;
  for (const Point& pa : a.points) {
    std::ptrdiff_t idx =
        AnyWithin(pa, b.xs.data(), b.ys.data(), b.zs.data(), b.size(), r2);
    if (idx >= 0) {
      comps += static_cast<std::size_t>(idx) + 1;
      hit = true;
      break;
    }
    comps += b.size();
  }
  if (dist_comps != nullptr) *dist_comps += comps;
  return hit;
}

bool ObjectsInteract(const Object& a, const Object& b, double r,
                     std::size_t* dist_comps) {
  return ObjectsInteract(a, SoaPoints(b.points), r, dist_comps);
}

std::vector<std::uint32_t> NestedLoopScores(const ObjectSet& objects, double r,
                                            int threads,
                                            std::size_t* dist_comps) {
  const std::size_t n = objects.size();
  std::vector<std::uint32_t> tau(n, 0);
  threads = ResolveThreads(threads);
  std::size_t total_comps = 0;

  // SoA mirrors, built once: the inner predicate is then one batch-kernel
  // call per probe point instead of a scalar AoS scan.
  std::vector<SoaPoints> soa(n);
  for (std::size_t i = 0; i < n; ++i) {
    soa[i].Assign(objects[static_cast<ObjectId>(i)].points);
  }

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (ObjectsInteract(objects[static_cast<ObjectId>(i)], soa[j], r,
                            dist_comps != nullptr ? &total_comps : nullptr)) {
          ++tau[i];
          ++tau[j];
        }
      }
    }
  } else {
    // Each thread accumulates into a private score array; the symmetric
    // increments (tau[i] and tau[j]) would otherwise race. Dynamic
    // scheduling copes with the triangular iteration space.
    std::vector<std::vector<std::uint32_t>> local(threads,
                                                  std::vector<std::uint32_t>(n, 0));
    std::vector<std::size_t> local_comps(threads, 0);
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
    for (std::size_t i = 0; i < n; ++i) {
      int t = ThreadId();
      for (std::size_t j = i + 1; j < n; ++j) {
        if (ObjectsInteract(objects[static_cast<ObjectId>(i)], soa[j], r,
                            dist_comps != nullptr ? &local_comps[t] : nullptr)) {
          ++local[t][i];
          ++local[t][j];
        }
      }
    }
    for (int t = 0; t < threads; ++t) {
      for (std::size_t i = 0; i < n; ++i) tau[i] += local[t][i];
      total_comps += local_comps[t];
    }
  }
  if (dist_comps != nullptr) *dist_comps += total_comps;
  return tau;
}

QueryResult NestedLoopQuery(const ObjectSet& objects, double r, int threads,
                            std::size_t k) {
  MIO_TRACE_SPAN_CAT("nl.query", "baseline");
  QueryResult res;
  Timer timer;
  std::size_t comps = 0;
  std::vector<std::uint32_t> tau = NestedLoopScores(objects, r, threads, &comps);
  res.topk = TopKFromScores(tau, k);
  res.stats.phases.verification = timer.ElapsedSeconds();
  res.stats.total_seconds = timer.ElapsedSeconds();
  res.stats.distance_computations = comps;
  res.stats.num_verified = objects.size();
  res.stats.threads = ResolveThreads(threads);
  return res;
}

}  // namespace mio
