#include "baseline/nl_kdtree.hpp"

#include "obs/trace.hpp"

#include <memory>

#include "common/omp_utils.hpp"
#include "common/timer.hpp"
#include "kdtree/kdtree.hpp"

namespace mio {
namespace {

/// Probe the smaller object's points against the larger object's tree:
/// fewer queries, better pruning.
bool InteractViaTree(const Object& probe, const KdTree& tree, double r,
                     const Aabb& probe_box) {
  // Whole-object reject: if even the boxes are farther than r apart, no
  // pair can be within r.
  if (probe_box.MinSquaredDistanceTo(tree.Bounds()) > r * r) return false;
  for (const Point& p : probe.points) {
    if (tree.ContainsWithin(p, r)) return true;
  }
  return false;
}

}  // namespace

std::vector<std::uint32_t> NlKdScores(const ObjectSet& objects, double r,
                                      int threads) {
  const std::size_t n = objects.size();
  threads = ResolveThreads(threads);

  // Build one tree per object (parallelisable, embarrassingly).
  std::vector<std::unique_ptr<KdTree>> trees(n);
  std::vector<Aabb> boxes(n);
#pragma omp parallel for schedule(dynamic, 4) num_threads(threads)
  for (std::size_t i = 0; i < n; ++i) {
    trees[i] = std::make_unique<KdTree>(objects[static_cast<ObjectId>(i)].points);
    boxes[i] = trees[i]->Bounds();
  }

  std::vector<std::vector<std::uint32_t>> local(
      threads, std::vector<std::uint32_t>(n, 0));
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (std::size_t i = 0; i < n; ++i) {
    int t = ThreadId();
    const Object& oi = objects[static_cast<ObjectId>(i)];
    for (std::size_t j = i + 1; j < n; ++j) {
      const Object& oj = objects[static_cast<ObjectId>(j)];
      // Probe with the smaller point set.
      bool hit =
          oi.NumPoints() <= oj.NumPoints()
              ? InteractViaTree(oi, *trees[j], r, boxes[i])
              : InteractViaTree(oj, *trees[i], r, boxes[j]);
      if (hit) {
        ++local[t][i];
        ++local[t][j];
      }
    }
  }

  std::vector<std::uint32_t> tau(n, 0);
  for (int t = 0; t < threads; ++t) {
    for (std::size_t i = 0; i < n; ++i) tau[i] += local[t][i];
  }
  return tau;
}

QueryResult NlKdQuery(const ObjectSet& objects, double r, int threads,
                      std::size_t k) {
  MIO_TRACE_SPAN_CAT("nl-kd.query", "baseline");
  QueryResult res;
  Timer timer;
  std::vector<std::uint32_t> tau = NlKdScores(objects, r, threads);
  res.topk = TopKFromScores(tau, k);
  res.stats.phases.verification = timer.ElapsedSeconds();
  res.stats.total_seconds = timer.ElapsedSeconds();
  res.stats.num_verified = objects.size();
  res.stats.threads = ResolveThreads(threads);
  return res;
}

}  // namespace mio
