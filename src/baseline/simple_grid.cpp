#include "baseline/simple_grid.hpp"

#include "obs/trace.hpp"

#include "common/omp_utils.hpp"
#include "common/timer.hpp"
#include "geo/kernels.hpp"
#include "grid/spatial_hash_grid.hpp"

namespace mio {
namespace {

/// Epoch-stamped membership set: clearing between objects is O(1).
class SeenSet {
 public:
  explicit SeenSet(std::size_t n) : stamp_(n, 0) {}
  void NextEpoch() { ++epoch_; }
  bool Test(ObjectId id) const { return stamp_[id] == epoch_; }
  void Mark(ObjectId id) { stamp_[id] = epoch_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
};

std::uint32_t ScoreOne(const ObjectSet& objects, const SpatialHashGrid& grid,
                       ObjectId i, double r, SeenSet* counted,
                       std::size_t* dist_comps) {
  const double r2 = r * r;
  counted->NextEpoch();
  counted->Mark(i);  // never count the object itself
  std::uint32_t count = 0;
  std::size_t comps = 0;
  for (const Point& p : objects[i].points) {
    grid.ForEachCellNear(p, [&](const SpatialHashGrid::Cell& cell) {
      // A partner already counted needs no further distance checks (the
      // early break of Algorithm 1); misses stay candidates, since a
      // later point pair may still be within r. Runs group one object's
      // points, so the skip and the batch-kernel scan are per run.
      for (std::size_t ri = 0; ri < cell.NumRuns(); ++ri) {
        SpatialHashGrid::Run run = cell.RunAt(ri);
        if (counted->Test(run.obj)) continue;
        std::ptrdiff_t hit = AnyWithin(p, run.xs, run.ys, run.zs, run.size, r2);
        if (hit >= 0) {
          comps += static_cast<std::size_t>(hit) + 1;
          ++count;
          counted->Mark(run.obj);
        } else {
          comps += run.size;
        }
      }
      return true;
    });
  }
  if (dist_comps != nullptr) *dist_comps += comps;
  return count;
}

}  // namespace

std::vector<std::uint32_t> SimpleGridScores(const ObjectSet& objects, double r,
                                            int threads,
                                            std::size_t* grid_memory,
                                            std::size_t* dist_comps) {
  const std::size_t n = objects.size();
  threads = ResolveThreads(threads);

  SpatialHashGrid grid(r);
  grid.Build(objects);
  if (grid_memory != nullptr) *grid_memory = grid.MemoryUsageBytes();

  std::vector<std::uint32_t> tau(n, 0);
  std::vector<std::size_t> comps(threads, 0);
  if (threads <= 1) {
    SeenSet seen(n);
    for (std::size_t i = 0; i < n; ++i) {
      tau[i] = ScoreOne(objects, grid, static_cast<ObjectId>(i), r, &seen,
                        dist_comps != nullptr ? &comps[0] : nullptr);
    }
  } else {
#pragma omp parallel num_threads(threads)
    {
      SeenSet seen(n);
      int t = ThreadId();
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < n; ++i) {
        // Static scheduling == hash partitioning of the object tasks; the
        // paper notes this balances poorly under skew, which is the effect
        // Fig. 9 shows.
        tau[i] = ScoreOne(objects, grid, static_cast<ObjectId>(i), r, &seen,
                          dist_comps != nullptr ? &comps[t] : nullptr);
      }
    }
  }
  if (dist_comps != nullptr) {
    for (int t = 0; t < threads; ++t) *dist_comps += comps[t];
  }
  return tau;
}

QueryResult SimpleGridQuery(const ObjectSet& objects, double r, int threads,
                            std::size_t k) {
  MIO_TRACE_SPAN_CAT("sg.query", "baseline");
  QueryResult res;
  Timer timer;
  std::size_t grid_bytes = 0;
  std::size_t comps = 0;
  std::vector<std::uint32_t> tau =
      SimpleGridScores(objects, r, threads, &grid_bytes, &comps);
  res.topk = TopKFromScores(tau, k);
  res.stats.phases.verification = timer.ElapsedSeconds();
  res.stats.total_seconds = timer.ElapsedSeconds();
  res.stats.index_memory_bytes = grid_bytes;
  res.stats.memory.Add("sg_grid", grid_bytes);
  MemoryTracker::Instance().ObserveBreakdown(res.stats.memory);
  res.stats.distance_computations = comps;
  res.stats.num_verified = objects.size();
  res.stats.threads = ResolveThreads(threads);
  return res;
}

}  // namespace mio
