#include "baseline/theoretical.hpp"

#include <algorithm>
#include <memory>

#include "common/omp_utils.hpp"
#include "common/timer.hpp"
#include "kdtree/closest_pair.hpp"
#include "kdtree/kdtree.hpp"

namespace mio {

TheoreticalIndex::TheoreticalIndex(const ObjectSet& objects, int threads)
    : n_(objects.size()) {
  Timer timer;
  threads = ResolveThreads(threads);

  // One kd-tree per object, then all-pairs closest distances. The closest
  // pair is symmetric, so each unordered pair is computed once and stored
  // twice (A_i and A_j both need it).
  std::vector<std::unique_ptr<KdTree>> trees(n_);
#pragma omp parallel for schedule(dynamic, 4) num_threads(threads)
  for (std::size_t i = 0; i < n_; ++i) {
    trees[i] = std::make_unique<KdTree>(objects[static_cast<ObjectId>(i)].points);
  }

  arrays_.assign(n_, {});
  for (std::size_t i = 0; i < n_; ++i) {
    arrays_[i].reserve(n_ > 0 ? n_ - 1 : 0);
  }
  // Row-parallel with private buffers would double the distance work;
  // instead compute the strict upper triangle in parallel and scatter
  // serially (scatter is O(n^2) appends, dominated by the search cost).
  std::vector<std::vector<double>> rows(n_);
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (std::size_t i = 0; i < n_; ++i) {
    rows[i].resize(n_ - i - 1 + (i + 1 > n_ ? 0 : 0));
    for (std::size_t j = i + 1; j < n_; ++j) {
      const Object& oi = objects[static_cast<ObjectId>(i)];
      const Object& oj = objects[static_cast<ObjectId>(j)];
      double d = oi.NumPoints() <= oj.NumPoints()
                     ? MinDistanceBetween(oi, *trees[j])
                     : MinDistanceBetween(oj, *trees[i]);
      rows[i][j - i - 1] = d;
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      double d = rows[i][j - i - 1];
      arrays_[i].push_back(d);
      arrays_[j].push_back(d);
    }
    rows[i].clear();
    rows[i].shrink_to_fit();
  }

#pragma omp parallel for schedule(dynamic, 16) num_threads(threads)
  for (std::size_t i = 0; i < n_; ++i) {
    std::sort(arrays_[i].begin(), arrays_[i].end());
  }
  preprocessing_seconds_ = timer.ElapsedSeconds();
}

std::vector<std::uint32_t> TheoreticalIndex::Scores(double r) const {
  std::vector<std::uint32_t> tau(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    tau[i] = static_cast<std::uint32_t>(
        std::upper_bound(arrays_[i].begin(), arrays_[i].end(), r) -
        arrays_[i].begin());
  }
  return tau;
}

QueryResult TheoreticalIndex::Query(double r, std::size_t k) const {
  QueryResult res;
  Timer timer;
  res.topk = TopKFromScores(Scores(r), k);
  res.stats.phases.verification = timer.ElapsedSeconds();
  res.stats.total_seconds = timer.ElapsedSeconds();
  res.stats.index_memory_bytes = MemoryUsageBytes();
  return res;
}

std::size_t TheoreticalIndex::MemoryUsageBytes() const {
  std::size_t bytes = arrays_.capacity() * sizeof(std::vector<double>);
  for (const auto& a : arrays_) bytes += a.capacity() * sizeof(double);
  return bytes;
}

}  // namespace mio
