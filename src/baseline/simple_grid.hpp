// SG: the simple-grid competitor (paper §V-A). Builds a width-r spatial
// hash grid online, then computes every tau(o) by probing each point's
// 27-cell neighbourhood, de-duplicating partner objects with a seen-set and
// early-breaking per partner. The paper positions SG as a TOUCH-style
// main-memory spatial-join specialised for MIO (no hierarchical index is
// needed because candidates are confined to the neighbourhood).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/query_result.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Exact scores via the width-r grid. `threads` > 1 hash-partitions the
/// per-object score computations (the paper's parallel SG). `grid_memory`,
/// if non-null, receives the grid's footprint in bytes; `dist_comps`
/// the number of distance evaluations.
std::vector<std::uint32_t> SimpleGridScores(const ObjectSet& objects, double r,
                                            int threads = 1,
                                            std::size_t* grid_memory = nullptr,
                                            std::size_t* dist_comps = nullptr);

/// Full MIO query via SG, including online grid build time.
QueryResult SimpleGridQuery(const ObjectSet& objects, double r,
                            int threads = 1, std::size_t k = 1);

}  // namespace mio
