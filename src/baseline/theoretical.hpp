// The theoretical algorithm (paper §II-B, Theorem 1): pre-compute, for
// every object o_i, the sorted array A_i of closest-point-pair distances
// to every other object; a query with threshold r is then n binary
// searches, O(n log n) total. The paper includes it to exhibit the
// computation/memory trade-off — O(n^2) space and an
// O(n^2 (m log m + log n)) pre-processing that exceeded their 8-hour
// budget — and so do we (bench_theoretical measures both costs).
#pragma once

#include <cstddef>
#include <vector>

#include "core/query_result.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Pre-computed closest-pair distance arrays; answers any r online.
class TheoreticalIndex {
 public:
  /// Runs the full pre-processing (kd-tree closest pairs, then sorts).
  /// `threads` parallelises across objects.
  explicit TheoreticalIndex(const ObjectSet& objects, int threads = 1);

  /// MIO query by n binary searches.
  QueryResult Query(double r, std::size_t k = 1) const;

  /// Exact score vector for threshold r.
  std::vector<std::uint32_t> Scores(double r) const;

  double preprocessing_seconds() const { return preprocessing_seconds_; }

  /// The O(n^2) array footprint.
  std::size_t MemoryUsageBytes() const;

 private:
  std::size_t n_;
  std::vector<std::vector<double>> arrays_;  // A_i, ascending
  double preprocessing_seconds_ = 0.0;
};

}  // namespace mio
