// RT: an MBR-based baseline the paper dismisses analytically (§II-B):
// index each object's minimum bounding rectangle in an R-tree, filter
// candidate pairs by MBR distance <= r, then verify candidates with
// early-exit pairwise checks (kd-tree accelerated). For point-set objects
// like neurites and trajectories the MBRs are huge and hollow, so the
// filter passes nearly every pair and RT degenerates to NL-kd plus
// indexing overhead — the bench harness shows exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/query_result.hpp"
#include "object/object_set.hpp"

namespace mio {

/// Filter diagnostics for the MBR baseline.
struct MbrFilterStats {
  std::size_t candidate_pairs = 0;  ///< pairs surviving the MBR filter
  std::size_t total_pairs = 0;      ///< n*(n-1)/2
  std::size_t interacting_pairs = 0;

  /// Fraction of pairs the MBR filter failed to prune. Near 1.0 means
  /// the filter is useless (the paper's "uselessly large rectangles").
  double PassRate() const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(candidate_pairs) /
                     static_cast<double>(total_pairs);
  }
};

/// Mean fraction of each object's MBR that is *empty* at resolution r:
/// 1 - (occupied width-r cells / total width-r cells inside the MBR),
/// averaged over objects. Near 1.0 for the elongated point-set objects
/// this system targets — a direct quantification of the paper's
/// "uselessly large rectangles with large empty spaces" (§II-B).
double MbrEmptinessFraction(const ObjectSet& objects, double r);

/// Exact scores via the R-tree MBR filter. `filter_stats` may be null.
std::vector<std::uint32_t> RtreeMbrScores(const ObjectSet& objects, double r,
                                          int threads = 1,
                                          MbrFilterStats* filter_stats = nullptr);

/// Full MIO query via the RT baseline.
QueryResult RtreeMbrQuery(const ObjectSet& objects, double r, int threads = 1,
                          std::size_t k = 1);

}  // namespace mio
