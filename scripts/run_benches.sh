#!/usr/bin/env bash
# Runs the JSON-emitting bench harnesses and collects every mio-stats-v1
# record into one JSONL file, suitable for scripts/compare_bench.py.
#
# Usage: scripts/run_benches.sh [build-dir] [out-file]
#   build-dir  defaults to ./build (must already be built)
#   out-file   defaults to BENCH_<yyyy-mm-dd>.json in the repo root
#
# Environment:
#   MIO_BENCH_ARGS   extra flags for every harness (e.g. "--full")
#   MIO_DATASETS     --datasets value (default: bird,syn — the quick pair)
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$SRC/build"}
OUT=${2:-"$SRC/BENCH_$(date +%F).json"}
DATASETS=${MIO_DATASETS:-bird,syn}
EXTRA=${MIO_BENCH_ARGS:-}

if [ ! -d "$BUILD/bench" ]; then
  echo "error: $BUILD/bench not found — build with -DMIO_BUILD_BENCHMARKS=ON" >&2
  exit 1
fi

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() { # run <binary> <flags...>
  local bin="$BUILD/bench/$1"; shift
  if [ ! -x "$bin" ]; then
    echo "skip: $bin (not built)" >&2
    return 0
  fi
  echo "== $(basename "$bin") $* =="
  # shellcheck disable=SC2086
  "$bin" --datasets="$DATASETS" --json-out="$TMP" $EXTRA "$@"
}

run bench_table2_breakdown
run bench_fig9_parallel --t=1,2

if [ ! -s "$TMP" ]; then
  echo "error: no JSON records were produced" >&2
  exit 1
fi
mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $(wc -l < "$OUT") records to $OUT"
