#!/usr/bin/env bash
# Runs the JSON-emitting bench harnesses and collects the records into one
# JSONL file, suitable for scripts/compare_bench.py.
#
# Layout (one JSON document per line):
#   line 1   mio-bench-header-v1 — machine identity (host, OS, CPU count,
#            model) and the git describe of the checkout, so a committed
#            baseline (e.g. BENCH_PR4.json) records where it was measured;
#   rest     mio-stats-v1 records. Each harness runs MIO_BENCH_REPEATS
#            times (default 3); compare_bench.py aggregates the repeated
#            configurations by median, which is why the repeats are
#            appended rather than pre-reduced. When the mio CLI is built,
#            a canonical 30-query workload's mio-qlog-v1 records are
#            appended as well (per-query latency coverage).
#
# Usage: scripts/run_benches.sh [build-dir] [out-file]
#   build-dir  defaults to ./build (must already be built)
#   out-file   defaults to BENCH_<yyyy-mm-dd>.json in the repo root
#
# Environment:
#   MIO_BENCH_ARGS     extra flags for every harness (e.g. "--full")
#   MIO_DATASETS       --datasets value (default: bird,syn — the quick pair)
#   MIO_BENCH_REPEATS  runs per harness for the median (default 3)
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$SRC/build"}
OUT=${2:-"$SRC/BENCH_$(date +%F).json"}
DATASETS=${MIO_DATASETS:-bird,syn}
EXTRA=${MIO_BENCH_ARGS:-}
REPEATS=${MIO_BENCH_REPEATS:-3}

if [ ! -d "$BUILD/bench" ]; then
  echo "error: $BUILD/bench not found — build with -DMIO_BUILD_BENCHMARKS=ON" >&2
  exit 1
fi
# Absolute: the workload step below runs the CLI from another directory.
BUILD=$(cd "$BUILD" && pwd)

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

# Machine-identity header, written by python so every field is correctly
# JSON-escaped regardless of what the host reports.
GIT_DESC=$(git -C "$SRC" describe --always --dirty --tags 2>/dev/null || echo unknown)
python3 - "$GIT_DESC" >"$TMP" <<'PYEOF'
import json, os, platform, sys
model = ""
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith("model name"):
                model = line.split(":", 1)[1].strip()
                break
except OSError:
    pass
print(json.dumps({
    "schema": "mio-bench-header-v1",
    "git": sys.argv[1],
    "machine": {
        "host": platform.node(),
        "os": f"{platform.system()} {platform.release()}",
        "arch": platform.machine(),
        "cpus": os.cpu_count() or 0,
        "cpu_model": model,
    },
}, separators=(",", ":")))
PYEOF

run() { # run <binary> <flags...>
  local bin="$BUILD/bench/$1"; shift
  if [ ! -x "$bin" ]; then
    echo "skip: $bin (not built)" >&2
    return 0
  fi
  local i
  for i in $(seq 1 "$REPEATS"); do
    echo "== $(basename "$bin") $* (run $i/$REPEATS) =="
    # shellcheck disable=SC2086
    "$bin" --datasets="$DATASETS" --json-out="$TMP" $EXTRA "$@"
  done
}

run bench_table2_breakdown
run bench_fig9_parallel --t=1,2
# Batch-vs-sequential throughput (30-query mixed-ceil(r) workload): emits
# paired algo=sequential / algo=batch records per dataset, from which
# compare_bench.py derives and tracks the batch speedup.
run bench_batch --queries=30

# Canonical workload: per-query latency records (mio-qlog-v1) from the
# CLI's workload runner, appended alongside the harness records so
# compare_bench.py can also flag per-query regressions (keyed by
# workload/r/threads; repeated radii reduce to the median). Skipped when
# the CLI is not built. The dataset path is relative so the stamped
# `dataset` field is stable across checkouts and machines.
CLI="$BUILD/tools/mio"
if [ -x "$CLI" ]; then
  WORKDIR=$(mktemp -d)
  # shellcheck disable=SC2064
  trap "rm -f '$TMP'; rm -rf '$WORKDIR'" EXIT
  echo "== canonical workload (mio run-workload) =="
  "$CLI" generate --preset=bird2 --scale=quick --seed=11 \
    --out="$WORKDIR/bench-bird2-quick.bin" > /dev/null
  cat > "$WORKDIR/bench.spec" <<'SPEC'
name bench-canonical
defaults k=1 threads=2 labels=on
repeat 30 r=3,4.5,9
SPEC
  (cd "$WORKDIR" && "$CLI" run-workload --spec=bench.spec \
    --in=bench-bird2-quick.bin --qlog=qlog.jsonl)
  cat "$WORKDIR/qlog.jsonl" >> "$TMP"
  rm -rf "$WORKDIR"
  trap 'rm -f "$TMP"' EXIT
else
  echo "skip: $CLI (not built) — no canonical workload records" >&2
fi

if [ "$(wc -l < "$TMP")" -le 1 ]; then
  echo "error: no JSON records were produced" >&2
  exit 1
fi
mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $(wc -l < "$OUT") records to $OUT"
