#!/usr/bin/env bash
# Query-log gate: runs a ~100-query workload that mixes ceil(r) classes
# through `mio run-workload` and asserts
#  - every emitted line is a schema-valid mio-qlog-v1 record, indices in
#    order, ceil_r consistent with r, label outcomes legal (first visit
#    of each ceil(r) class records, every revisit hits);
#  - the trace directory holds a Chrome trace for EXACTLY the tail
#    queries — the set recomputed offline from the qlog wall times
#    (threshold exceeders plus slowest-N by (wall, index)) — with one
#    query forced slow via the workload.query_delay fault site so the
#    threshold path is exercised deterministically;
#  - `mio qlog report --json` agrees with an independent R-7 percentile
#    computation and with per-class label-reuse tallies from the qlog.
# Usage: scripts/check_qlog.sh [build-dir]
#   build-dir  reused if it already contains tools/mio, else configured
#              and built (default build-qlog)
set -eu

BUILD=${1:-build-qlog}
SRC=$(cd "$(dirname "$0")/.." && pwd)
JOBS=$(nproc 2>/dev/null || echo 2)

if [ ! -x "$BUILD/tools/mio" ]; then
  echo "== build: mio CLI ($BUILD) =="
  cmake -B "$BUILD" -S "$SRC" -DCMAKE_BUILD_TYPE=Release \
    -DMIO_BUILD_BENCHMARKS=OFF -DMIO_BUILD_EXAMPLES=OFF -DMIO_BUILD_TESTS=OFF \
    > "$BUILD.cmake.log" 2>&1 || { cat "$BUILD.cmake.log"; exit 1; }
  cmake --build "$BUILD" --target mio_cli -j "$JOBS" \
    > "$BUILD.build.log" 2>&1 || { tail -50 "$BUILD.build.log"; exit 1; }
fi
CLI="$BUILD/tools/mio"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --preset=bird2 --scale=quick --seed=11 \
  --out="$WORK/data.bin" > /dev/null

# 102 queries cycling six radii across five ceil(r) classes (3, 5, 4, 7,
# 6; 2.1 -> 3 again) — label reuse is exercised on every revisit. The
# sample keeps individual queries far below the tail threshold so the
# tail set stays a strict subset (and slowest-N churn exercises eviction).
cat > "$WORK/mix.spec" <<'SPEC'
name check-qlog-mix
sample 0.25 seed=1
defaults k=1 threads=2 labels=on
repeat 102 r=3,4.5,3.2,6.8,2.1,5.5
SPEC

THRESHOLD_MS=40
SLOWEST_N=5
# nth=7 forces a 50ms busy-wait into query index 6: it must exceed the
# threshold no matter how fast the host is.
echo "== mio run-workload: 102-query ceil(r) mix =="
MIO_FAULT="workload.query_delay:nth=7" \
  "$CLI" run-workload --spec="$WORK/mix.spec" --in="$WORK/data.bin" \
  --qlog="$WORK/run.jsonl" --trace-dir="$WORK/traces" \
  --tail-threshold-ms=$THRESHOLD_MS --tail-slowest=$SLOWEST_N

echo "== mio qlog report --json =="
"$CLI" qlog report --in="$WORK/run.jsonl" --trace-dir="$WORK/traces" \
  --slowest=$SLOWEST_N --json="$WORK/report.json" > /dev/null
# The human-readable formatter must also run clean.
"$CLI" qlog report --in="$WORK/run.jsonl" --trace-dir="$WORK/traces" \
  > /dev/null

echo "== validate qlog, tail set, report =="
python3 - "$WORK" "$THRESHOLD_MS" "$SLOWEST_N" <<'PYEOF'
import json, math, os, sys

work, threshold, slowest_n = sys.argv[1], float(sys.argv[2]) / 1000.0, int(sys.argv[3])

def fail(msg):
    sys.exit("FAILED: " + msg)

OUTCOMES = {"off", "hit_memory", "hit_disk", "recorded", "miss"}
NUMBER, STRING, BOOL = (int, float), str, bool
SHAPE = {  # section -> {field: type}
    "params": {"r": NUMBER, "ceil_r": NUMBER, "k": NUMBER, "threads": NUMBER},
    "phases": {"label_input": NUMBER, "grid_mapping": NUMBER,
               "lower_bounding": NUMBER, "upper_bounding": NUMBER,
               "verification": NUMBER, "total": NUMBER},
    "funnel": {"objects": NUMBER, "candidates": NUMBER, "verified": NUMBER,
               "distance_computations": NUMBER},
    "winner": {"id": NUMBER, "score": NUMBER},
    "labels": {"outcome": STRING, "points_pruned": NUMBER},
    "outcome": {"status": STRING, "complete": BOOL,
                "degradation_level": NUMBER},
    "env": {"pmu_tier": STRING, "kernel_tier": STRING},
    "memory": {"index_bytes": NUMBER, "peak_bytes": NUMBER},
    "trace": {"dropped_spans": NUMBER},
}

records = []
with open(os.path.join(work, "run.jsonl")) as f:
    for lineno, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)  # raises on malformed JSON
        if doc.get("schema") != "mio-qlog-v1":
            fail(f"line {lineno}: schema {doc.get('schema')!r}")
        for key, ty in {"query_index": NUMBER, "workload": STRING,
                        "dataset": STRING, "algo": STRING,
                        "wall_seconds": NUMBER,
                        "total_seconds": NUMBER}.items():
            if not isinstance(doc.get(key), ty) or isinstance(doc.get(key), bool) != (ty is BOOL):
                fail(f"line {lineno}: bad {key!r}: {doc.get(key)!r}")
        for section, fields in SHAPE.items():
            sub = doc.get(section)
            if not isinstance(sub, dict):
                fail(f"line {lineno}: missing section {section!r}")
            for key, ty in fields.items():
                if key not in sub or not isinstance(sub[key], ty) \
                        or isinstance(sub[key], bool) != (ty is BOOL):
                    fail(f"line {lineno}: bad {section}.{key}: {sub.get(key)!r}")
        if doc["labels"]["outcome"] not in OUTCOMES:
            fail(f"line {lineno}: label outcome {doc['labels']['outcome']!r}")
        if doc["params"]["ceil_r"] != math.ceil(doc["params"]["r"]):
            fail(f"line {lineno}: ceil_r != ceil(r)")
        records.append(doc)

if len(records) != 102:
    fail(f"expected 102 records, got {len(records)}")
for i, doc in enumerate(records):
    if doc["query_index"] != i:
        fail(f"record {i} has query_index {doc['query_index']}")
    if doc["outcome"]["status"] != "OK":
        fail(f"query {i}: status {doc['outcome']['status']}")

# Label reuse: the first query of each ceil(r) class records its labels,
# every later one in the class must hit (memory or disk).
seen = set()
for i, doc in enumerate(records):
    ceil_r, outcome = doc["params"]["ceil_r"], doc["labels"]["outcome"]
    if ceil_r not in seen:
        if outcome != "recorded":
            fail(f"query {i}: first ceil_r={ceil_r} visit is {outcome!r}")
        seen.add(ceil_r)
    elif outcome not in ("hit_memory", "hit_disk"):
        fail(f"query {i}: ceil_r={ceil_r} revisit is {outcome!r}")
if len(seen) < 5:
    fail(f"workload only exercised {len(seen)} ceil(r) classes")

# Tail set, recomputed offline: threshold exceeders plus the slowest-N by
# (wall, index) descending. Must match the trace directory exactly.
wall = [doc["wall_seconds"] for doc in records]
if wall[6] < 0.05:
    fail(f"fault-delayed query 6 only took {wall[6]:.4f}s")
by_slowness = sorted(range(len(wall)), key=lambda i: (wall[i], i),
                     reverse=True)
tail = {i for i in range(len(wall)) if wall[i] >= threshold}
tail |= set(by_slowness[:slowest_n])
expected_files = {f"q{i:06d}.trace.json" for i in tail}
actual_files = set(os.listdir(os.path.join(work, "traces")))
if actual_files != expected_files:
    fail("trace dir mismatch:\n"
         f"  missing: {sorted(expected_files - actual_files)}\n"
         f"  extra:   {sorted(actual_files - expected_files)}")
if 6 not in tail:
    fail("fault-delayed query 6 is not in the tail set")
if len(tail) >= len(records):
    fail("tail sampling kept every query — nothing was sampled out")
if len(tail) > len(records) // 2:
    print(f"  warning: slow host, {len(tail)}/{len(records)} queries "
          "exceeded the tail threshold", file=sys.stderr)
for name in actual_files:
    with open(os.path.join(work, "traces", name)) as f:
        trace = json.load(f)  # every kept trace is valid JSON
    if not trace.get("traceEvents"):
        fail(f"{name}: no traceEvents")

# Report cross-check: R-7 (numpy-default linear) percentiles, counts, and
# per-class label tallies recomputed from the raw records.
def percentile_r7(values, p):
    v = sorted(values)
    h = (len(v) - 1) * p
    lo = math.floor(h)
    hi = min(lo + 1, len(v) - 1)
    return v[lo] + (h - lo) * (v[hi] - v[lo])

report = json.load(open(os.path.join(work, "report.json")))
if report.get("schema") != "mio-qlog-report-v1":
    fail(f"report schema {report.get('schema')!r}")
if report["num_queries"] != len(records):
    fail(f"report num_queries {report['num_queries']}")
for name, p in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
    want = percentile_r7(wall, p)
    got = report["latency"][name]
    if abs(got - want) > 1e-9 * max(1.0, abs(want)):
        fail(f"latency {name}: report {got!r} vs recomputed {want!r}")
if abs(report["latency"]["max"] - max(wall)) > 1e-12:
    fail("latency max mismatch")

classes = {}
for doc in records:
    cls = classes.setdefault(doc["params"]["ceil_r"],
                             {"queries": 0, "hits": 0, "recorded": 0})
    cls["queries"] += 1
    outcome = doc["labels"]["outcome"]
    if outcome in ("hit_memory", "hit_disk"):
        cls["hits"] += 1
    elif outcome == "recorded":
        cls["recorded"] += 1
for entry in report["label_reuse"]:
    want = classes.pop(entry["ceil_r"], None)
    if want is None:
        fail(f"report invents ceil_r={entry['ceil_r']}")
    for key in ("queries", "hits", "recorded"):
        if entry[key] != want[key]:
            fail(f"ceil_r={entry['ceil_r']} {key}: "
                 f"report {entry[key]} vs qlog {want[key]}")
if classes:
    fail(f"report missing ceil_r classes {sorted(classes)}")

slowest = report["slowest"]
if len(slowest) != slowest_n:
    fail(f"report slowest has {len(slowest)} rows")
if slowest[0]["query_index"] != by_slowness[0]:
    fail("report slowest[0] is not the slowest query")
for row in slowest:
    if row["query_index"] in tail and "trace_file" not in row:
        fail(f"slowest q{row['query_index']} lost its trace pointer")

print(f"  ok: 102 records valid, tail={sorted(tail)} matches trace dir, "
      "report agrees with recomputation")
PYEOF

echo "check_qlog: all passes clean"

# The batch-execution gate (QueryBatch vs sequential differential under
# sanitizers) rides along unless explicitly skipped.
if [ "${MIO_SKIP_BATCH:-0}" != "1" ]; then
  "$SRC/scripts/check_batch.sh" "${BUILD%-qlog}-batch"
fi
