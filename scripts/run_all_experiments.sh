#!/usr/bin/env bash
# Regenerates every table and figure of the paper's empirical study.
# Usage: scripts/run_all_experiments.sh [output-dir] [extra bench flags...]
# e.g.   scripts/run_all_experiments.sh results --full
set -u
BUILD=${BUILD_DIR:-build}
OUT=${1:-results}
shift 2>/dev/null || true
mkdir -p "$OUT"

for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" "$@" 2>&1 | tee "$OUT/$name.txt"
done
echo "results written to $OUT/"
