#!/usr/bin/env bash
# Robustness gate: builds the guardrail + IO test binaries under ASan and
# UBSan and runs them (the corruption matrix and the fault-injection paths
# must stay clean under both), then runs a high-probability fault storm
# (MIO_FAULT over every IO site) against the fault-tolerant suites in a
# plain release build. Catches allocator abuse from corrupt headers, UB in
# the degradation paths, and error-path leaks.
# Usage: scripts/check_robustness.sh [build-dir-prefix]
set -eu

PREFIX=${1:-build-robust}
SRC=$(cd "$(dirname "$0")/.." && pwd)
# The tests that exercise the guardrails, fault sites, and hardened IO.
TESTS="robustness_test io_test importers_test mio_engine_test"
JOBS=$(nproc 2>/dev/null || echo 2)

build() { # build <dir> <extra cmake flags...>
  local dir=$1; shift
  cmake -B "$dir" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMIO_BUILD_BENCHMARKS=OFF -DMIO_BUILD_EXAMPLES=OFF "$@" \
    > "$dir.cmake.log" 2>&1 || { cat "$dir.cmake.log"; exit 1; }
  local targets
  targets=$(for t in $TESTS; do printf ' --target %s' "$t"; done)
  # shellcheck disable=SC2086
  cmake --build "$dir" $targets -j "$JOBS" \
    > "$dir.build.log" 2>&1 || { tail -50 "$dir.build.log"; exit 1; }
}

run_tests() { # run_tests <dir> <label> [gtest filter]
  local dir=$1 label=$2 filter=${3:-*}
  for t in $TESTS; do
    echo "  [$label] $t"
    "$dir/tests/$t" --gtest_brief=1 --gtest_filter="$filter" \
      || { echo "FAILED: $label $t"; exit 1; }
  done
}

for san in address undefined; do
  dir="$PREFIX-$san"
  echo "== sanitizer: $san =="
  build "$dir" -DMIO_SANITIZE=$san
  run_tests "$dir" "$san"
done

# Fault storm against the CLI: every IO site armed at 30% per hit with a
# different deterministic stream per round. Each invocation must either
# succeed (exit 0) or fail with one of the documented per-status exit
# codes (2..11, docs/ROBUSTNESS.md) and a message — never a crash signal.
dir="$PREFIX-release"
echo "== fault storm: MIO_FAULT='io.*:p=0.3' over mio_cli =="
cmake -B "$dir" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMIO_BUILD_BENCHMARKS=OFF -DMIO_BUILD_EXAMPLES=OFF -DMIO_BUILD_TESTS=OFF \
  > "$dir.cmake.log" 2>&1 || { cat "$dir.cmake.log"; exit 1; }
cmake --build "$dir" --target mio_cli -j "$JOBS" \
  > "$dir.cli.log" 2>&1 || { tail -50 "$dir.cli.log"; exit 1; }
CLI="$dir/tools/mio"  # target mio_cli, output name mio
STORM_DIR=$(mktemp -d)
trap 'rm -rf "$STORM_DIR"' EXIT
"$CLI" generate --preset=bird2 --scale=quick --out="$STORM_DIR/data.bin" \
  > /dev/null || { echo "FAILED: storm dataset generation"; exit 1; }
for seed in 1 2 3 4 5 6 7 8; do
  for cmd in \
    "query --in=$STORM_DIR/data.bin --r=2 --labels=$STORM_DIR/labels" \
    "convert --in=$STORM_DIR/data.bin --out=$STORM_DIR/copy.bin" \
    "stats --in=$STORM_DIR/data.bin"; do
    set +e
    # shellcheck disable=SC2086
    MIO_FAULT='io.*:p=0.3' MIO_FAULT_SEED=$seed "$CLI" $cmd \
      > /dev/null 2> "$STORM_DIR/err.txt"
    rc=$?
    set -e
    if [ "$rc" -ne 0 ] && { [ "$rc" -lt 2 ] || [ "$rc" -gt 11 ]; }; then
      echo "FAILED: storm seed=$seed '$cmd' exited $rc (crash?)"
      cat "$STORM_DIR/err.txt"
      exit 1
    fi
    if [ "$rc" -ne 0 ] && [ ! -s "$STORM_DIR/err.txt" ]; then
      echo "FAILED: storm seed=$seed '$cmd' failed silently (rc=$rc)"
      exit 1
    fi
    echo "  [storm] seed=$seed rc=$rc  ${cmd%% *}"
  done
done

echo "check_robustness: all passes clean"

# The profiling gate (PMU tiers, mio profile/explain) rides along unless
# explicitly skipped.
if [ "${MIO_SKIP_PROFILE:-0}" != "1" ]; then
  "$SRC/scripts/check_profile.sh" "$PREFIX-profile"
fi
