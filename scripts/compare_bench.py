#!/usr/bin/env python3
"""Compare two mio bench record files and flag regressions.

Records (JSONL — the output of scripts/run_benches.sh, `--json-out`, or
`mio query --stats-json`) are matched by (bench, dataset, algo, r, k,
threads, scale). Both record kinds run_benches.sh emits are understood:
mio-stats-v1 harness records, and mio-qlog-v1 per-query workload records
(keyed as bench "workload:<name>", so a workload configuration repeated
across its radius cycle reduces to per-radius medians like repeated
harness runs do). A leading `mio-bench-header-v1` machine-identity line
is skipped. A configuration repeated within one file (run_benches.sh
repeats each harness for exactly this reason) is reduced to the median
of the compared metric, so a single noisy run cannot fake a regression.
For each matched pair the metric is compared; slowdowns beyond the
threshold are reported and make the script exit non-zero.

Usage:
  scripts/compare_bench.py BASELINE.json CANDIDATE.json [--threshold=0.10]
                           [--metric=total_seconds] [--verbose]
"""

import argparse
import json
import statistics
import sys

SKIPPED_SCHEMAS = {"mio-bench-header-v1", "mio-profile-v1"}


def load_records(path):
    """Returns {config key: [doc, ...]} — every run of each configuration."""
    records = {}
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: not valid JSON: {e}")
            schema = doc.get("schema")
            if schema in SKIPPED_SCHEMAS:
                continue
            if schema == "mio-qlog-v1":
                # Workload per-query record: the workload name plays the
                # bench role; wall_seconds / total_seconds / phases.* are
                # reachable through the same metric paths.
                bench = "workload:" + doc.get("workload", "")
            elif schema == "mio-stats-v1":
                bench = doc.get("bench", "")
            else:
                sys.exit(f"{path}:{lineno}: unexpected schema {schema!r} "
                         "(want 'mio-stats-v1' or 'mio-qlog-v1')")
            params = doc.get("params", {})
            key = (
                bench,
                doc.get("dataset", ""),
                doc.get("algo", ""),
                params.get("r", 0),
                params.get("k", 1),
                params.get("threads", 1),
                params.get("scale", ""),
            )
            records.setdefault(key, []).append(doc)
    return records


def metric_value(doc, metric):
    if metric in doc:
        value = doc[metric]
        return value if isinstance(value, (int, float)) else None
    # Dotted paths reach nested sections, e.g. phases.verification or
    # counters.distance_computations.
    node = doc
    for part in metric.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def median_metric(docs, metric):
    """Median of the metric over a configuration's repeated runs."""
    values = [v for v in (metric_value(d, metric) for d in docs)
              if v is not None]
    return statistics.median(values) if values else None


def key_str(key):
    bench, dataset, algo, r, k, threads, scale = key
    s = f"{bench}/{dataset}/{algo} r={r} k={k} t={threads}"
    return s + (f" [{scale}]" if scale else "")


def batch_speedups(records):
    """Derived metric for bench_batch records: sequential wall / batch wall
    per (dataset, r, k, threads, scale). The paired algo=sequential and
    algo=batch records measure the same query mix, so their ratio is the
    batch throughput speedup."""
    walls = {}
    for key, docs in records.items():
        bench, dataset, algo, r, k, threads, scale = key
        if bench != "batch" or algo not in ("sequential", "batch"):
            continue
        wall = median_metric(docs, "total_seconds")
        if wall is not None:
            walls[(dataset, r, k, threads, scale)] = dict(
                walls.get((dataset, r, k, threads, scale), {}), **{algo: wall})
    out = {}
    for subkey, pair in walls.items():
        if "sequential" in pair and "batch" in pair and pair["batch"] > 0:
            out[subkey] = pair["sequential"] / pair["batch"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that counts as a regression "
                         "(default 0.10 = +10%%)")
    ap.add_argument("--metric", default="total_seconds",
                    help="record field to compare; dotted paths allowed, "
                         "e.g. phases.verification (default total_seconds)")
    ap.add_argument("--min-seconds", type=float, default=1e-4,
                    help="ignore pairs where the baseline is below this "
                         "(sub-0.1ms timings are pure noise)")
    ap.add_argument("--verbose", action="store_true",
                    help="print every matched pair, not just regressions")
    args = ap.parse_args()

    base = load_records(args.baseline)
    cand = load_records(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        sys.exit("no matching (bench, dataset, algo, r, k, threads, scale) "
                 "configurations between the two files")

    regressions = []
    improvements = 0
    skipped = 0
    for key in common:
        b = median_metric(base[key], args.metric)
        c = median_metric(cand[key], args.metric)
        if b is None or c is None:
            skipped += 1
            continue
        if args.metric == "total_seconds" and b < args.min_seconds:
            skipped += 1
            continue
        delta = (c - b) / b if b else 0.0
        line = (f"{key_str(key):60s} {args.metric} "
                f"{b:.6g} -> {c:.6g}  ({delta:+.1%})")
        if delta > args.threshold:
            regressions.append(line)
        elif delta < -args.threshold:
            improvements += 1
            if args.verbose:
                print("improved   " + line)
        elif args.verbose:
            print("ok         " + line)

    # Batch throughput: a derived ratio, not a raw timing, so it is
    # reported per file and regression-checked directly (a candidate whose
    # batch speedup collapses can slip past the per-record timing check
    # when both algos sped up or slowed down together).
    base_speedup = batch_speedups(base)
    cand_speedup = batch_speedups(cand)
    for subkey in sorted(set(base_speedup) & set(cand_speedup)):
        dataset, r, k, threads, scale = subkey
        b, c = base_speedup[subkey], cand_speedup[subkey]
        line = (f"batch speedup {dataset} t={threads}"
                + (f" [{scale}]" if scale else "")
                + f": {b:.2f}x -> {c:.2f}x")
        if c < b * (1.0 - args.threshold):
            regressions.append(line)
        else:
            print(line)
    for subkey in sorted(set(cand_speedup) - set(base_speedup)):
        dataset, r, k, threads, scale = subkey
        print(f"batch speedup {dataset} t={threads}"
              + (f" [{scale}]" if scale else "")
              + f": {cand_speedup[subkey]:.2f}x (new)")

    only_base = len(base) - len(common)
    only_cand = len(cand) - len(common)
    print(f"compared {len(common)} configuration(s); "
          f"{only_base} only in baseline, {only_cand} only in candidate, "
          f"{skipped} skipped, {improvements} improved "
          f"(threshold {args.threshold:.0%})")
    if regressions:
        print(f"\n{len(regressions)} REGRESSION(S):")
        for line in regressions:
            print("  " + line)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
