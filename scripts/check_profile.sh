#!/usr/bin/env bash
# Profiling gate: builds the CLI with PMU support ON and OFF, smoke-runs
# `mio profile` on a synthetic dataset, and asserts
#  - the report is a valid mio-profile-v1 document in both builds;
#  - MIO_PMU=off forces the timing tier (fallback marker present, no
#    hardware event fields beyond task_clock_ns);
#  - the PMU-disabled build reports the timing tier unconditionally;
#  - `mio explain` runs clean and prints the pruning funnel.
# On hosts without a hardware PMU (most VMs) the PMU-ON build also lands
# on the timing tier — that degradation is exactly what this gate checks.
# Finally chains scripts/check_qlog.sh (the workload / query-log gate)
# against the PMU-ON build; set MIO_SKIP_QLOG=1 to skip it.
# Usage: scripts/check_profile.sh [build-dir-prefix]
set -eu

PREFIX=${1:-build-profile}
SRC=$(cd "$(dirname "$0")/.." && pwd)
JOBS=$(nproc 2>/dev/null || echo 2)

build_cli() { # build_cli <dir> <extra cmake flags...>
  local dir=$1; shift
  cmake -B "$dir" -S "$SRC" -DCMAKE_BUILD_TYPE=Release \
    -DMIO_BUILD_BENCHMARKS=OFF -DMIO_BUILD_EXAMPLES=OFF -DMIO_BUILD_TESTS=OFF \
    "$@" > "$dir.cmake.log" 2>&1 || { cat "$dir.cmake.log"; exit 1; }
  cmake --build "$dir" --target mio_cli -j "$JOBS" \
    > "$dir.build.log" 2>&1 || { tail -50 "$dir.build.log"; exit 1; }
}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# `python3 -c` validates schema + structural invariants of one report.
check_report() { # check_report <file> <label> <expect-timing: 0|1>
  python3 - "$1" "$2" "$3" <<'PYEOF'
import json, sys
path, label, expect_timing = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
doc = json.load(open(path))
def fail(msg):
    sys.exit(f"FAILED [{label}]: {msg}\n{json.dumps(doc, indent=1)[:800]}")
if doc.get("schema") != "mio-profile-v1":
    fail(f"schema = {doc.get('schema')!r}")
for key in ("git", "dataset", "algo", "params", "kernel_tier", "pmu_tier",
            "wall_seconds", "phases", "hardware"):
    if key not in doc:
        fail(f"missing key {key!r}")
if doc["wall_seconds"]["median"] <= 0:
    fail("non-positive wall_seconds.median")
if doc["phases"]["total"] <= 0:
    fail("non-positive phases.total")
tier = doc["pmu_tier"]
if expect_timing and tier != "timing":
    fail(f"expected timing tier, got {tier!r}")
if tier == "timing":
    if doc.get("fallback") != "timing":
        fail("timing tier must carry the fallback marker")
    for phase, counts in doc["hardware"]["phases"].items():
        extra = set(counts) - {"task_clock_ns"}
        if extra:
            fail(f"timing tier leaked hardware fields in {phase}: {extra}")
else:
    if "fallback" in doc:
        fail("hardware tier must not carry the fallback marker")
    total = doc["hardware"]["phases"].get("total", {})
    if total.get("cycles", 0) <= 0:
        fail("hardware tier reported no cycles")
    if "derived" not in doc["hardware"]:
        fail("hardware tier missing derived rates")
print(f"  [{label}] ok: pmu_tier={tier}")
PYEOF
}

echo "== build: PMU support ON =="
build_cli "$PREFIX-on"
CLI_ON="$PREFIX-on/tools/mio"

echo "== build: PMU support OFF (-DMIO_PMU_SUPPORT=OFF) =="
build_cli "$PREFIX-off" -DMIO_PMU_SUPPORT=OFF
CLI_OFF="$PREFIX-off/tools/mio"

"$CLI_ON" generate --preset=bird2 --scale=quick --seed=11 \
  --out="$WORK/data.bin" > /dev/null

echo "== mio profile: PMU-ON build, host default =="
"$CLI_ON" profile --in="$WORK/data.bin" --r=3 --warmup=1 --runs=3 \
  --out="$WORK/on.json" > /dev/null
check_report "$WORK/on.json" "pmu-on/default" 0

echo "== mio profile: PMU-ON build, MIO_PMU=off fallback =="
MIO_PMU=off "$CLI_ON" profile --in="$WORK/data.bin" --r=3 --warmup=0 \
  --runs=2 --out="$WORK/forced.json" > /dev/null
check_report "$WORK/forced.json" "pmu-on/MIO_PMU=off" 1

echo "== mio profile: PMU-OFF build =="
"$CLI_OFF" profile --in="$WORK/data.bin" --r=3 --warmup=0 --runs=2 \
  --out="$WORK/off.json" > /dev/null
check_report "$WORK/off.json" "pmu-off-build" 1

echo "== mio explain smoke =="
"$CLI_ON" explain --in="$WORK/data.bin" --r=3 > "$WORK/explain.txt"
grep -q "pruning funnel" "$WORK/explain.txt" \
  || { echo "FAILED: explain output missing funnel"; cat "$WORK/explain.txt"; exit 1; }
grep -q "ub-survivors" "$WORK/explain.txt" \
  || { echo "FAILED: explain output missing ub-survivors"; exit 1; }

echo "check_profile: all passes clean"

# The qlog gate reuses the PMU-ON build's CLI; MIO_SKIP_QLOG=1 skips it
# (e.g. when iterating on the profile checks alone).
if [ "${MIO_SKIP_QLOG:-0}" != "1" ]; then
  "$SRC/scripts/check_qlog.sh" "$PREFIX-on"
fi
