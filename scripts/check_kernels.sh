#!/usr/bin/env bash
# Kernel-layer gate: builds the kernel + verification tests under ASan and
# UBSan, runs them, and then runs the same tests under every MIO_KERNEL
# dispatch tier in a plain release build. Catches out-of-bounds lane reads,
# UB in the intrinsics paths, and tier-dependent result drift.
# Usage: scripts/check_kernels.sh [build-dir-prefix]
set -eu

PREFIX=${1:-build-check}
SRC=$(cd "$(dirname "$0")/.." && pwd)
# The tests that exercise the kernels and everything routed through them.
TESTS="kernels_test geo_test kdtree_test bigrid_test baseline_test \
  mio_engine_test fuzz_differential_test parallel_test obs_test"
JOBS=$(nproc 2>/dev/null || echo 2)

build() { # build <dir> <extra cmake flags...>
  local dir=$1; shift
  cmake -B "$dir" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMIO_BUILD_BENCHMARKS=OFF -DMIO_BUILD_EXAMPLES=OFF "$@" \
    > "$dir.cmake.log" 2>&1 || { cat "$dir.cmake.log"; exit 1; }
  local targets
  targets=$(for t in $TESTS; do printf ' --target %s' "$t"; done)
  # shellcheck disable=SC2086
  cmake --build "$dir" $targets -j "$JOBS" \
    > "$dir.build.log" 2>&1 || { tail -50 "$dir.build.log"; exit 1; }
}

run_tests() { # run_tests <dir> <label>
  local dir=$1 label=$2
  for t in $TESTS; do
    echo "  [$label] $t"
    "$dir/tests/$t" --gtest_brief=1 || { echo "FAILED: $label $t"; exit 1; }
  done
}

for san in address undefined; do
  dir="$PREFIX-$san"
  echo "== sanitizer: $san =="
  build "$dir" -DMIO_SANITIZE=$san
  run_tests "$dir" "$san"
done

dir="$PREFIX-release"
echo "== dispatch tiers =="
build "$dir"
for tier in scalar sse2 avx2; do
  MIO_KERNEL=$tier run_tests "$dir" "MIO_KERNEL=$tier"
done

echo "check_kernels: all passes clean"

# The robustness gate (guardrails, fault injection, corruption matrix)
# rides along unless explicitly skipped.
if [ "${MIO_SKIP_ROBUSTNESS:-0}" != "1" ]; then
  "$SRC/scripts/check_robustness.sh" "$PREFIX-robust"
fi
