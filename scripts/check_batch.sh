#!/usr/bin/env bash
# Batch-execution gate: builds the batch differential tests and the CLI
# under ASan and UBSan and runs them (the shared class grids, two-level
# posting rewrite, and mid-batch ClearGridCache lifetime contract must be
# clean under both), then diffs `mio run-workload --batch` against the
# sequential run of the same 102-query mixed-ceil(r) workload — winner
# id/score must match per query, batched records must carry the "batch"
# section, and `mio qlog report` must split the two populations. Finally
# a MIO_FAULT storm is pushed through the batch path: every fault site
# armed at 30% must end in a documented exit code, never a crash.
# Usage: scripts/check_batch.sh [build-dir-prefix]
set -eu

PREFIX=${1:-build-batch}
SRC=$(cd "$(dirname "$0")/.." && pwd)
JOBS=$(nproc 2>/dev/null || echo 2)

build() { # build <dir> <extra cmake flags...>
  local dir=$1; shift
  cmake -B "$dir" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMIO_BUILD_BENCHMARKS=OFF -DMIO_BUILD_EXAMPLES=OFF "$@" \
    > "$dir.cmake.log" 2>&1 || { cat "$dir.cmake.log"; exit 1; }
  cmake --build "$dir" --target batch_test --target mio_cli -j "$JOBS" \
    > "$dir.build.log" 2>&1 || { tail -50 "$dir.build.log"; exit 1; }
}

run_workload_pair() { # run_workload_pair <cli> <workdir> <label>
  local cli=$1 work=$2 label=$3
  "$cli" generate --preset=bird2 --scale=quick --seed=11 \
    --out="$work/data.bin" > /dev/null
  cat > "$work/mix.spec" <<'SPEC'
name check-batch-mix
sample 0.25 seed=1
defaults k=1 threads=2 labels=on
repeat 102 r=3,4.5,3.2,6.8,2.1,5.5
SPEC
  echo "  [$label] run-workload (sequential)"
  "$cli" run-workload --spec="$work/mix.spec" --in="$work/data.bin" \
    --qlog="$work/seq.jsonl"
  echo "  [$label] run-workload --batch"
  "$cli" run-workload --spec="$work/mix.spec" --in="$work/data.bin" \
    --qlog="$work/batch.jsonl" --batch
  "$cli" qlog report --in="$work/batch.jsonl" --json="$work/report.json" \
    > /dev/null
  python3 - "$work" <<'PYEOF'
import json, os, sys

work = sys.argv[1]

def fail(msg):
    sys.exit("FAILED: " + msg)

def load(name):
    recs = []
    with open(os.path.join(work, name)) as f:
        for line in f:
            line = line.strip()
            if line:
                recs.append(json.loads(line))
    return recs

seq, bat = load("seq.jsonl"), load("batch.jsonl")
if len(seq) != 102 or len(bat) != 102:
    fail(f"expected 102 records each, got {len(seq)} / {len(bat)}")

for i, (s, b) in enumerate(zip(seq, bat)):
    # The batch path must be bit-identical: same winner, same score, same
    # guardrail outcome, query by query.
    if s["winner"] != b["winner"]:
        fail(f"query {i}: winner {s['winner']} (seq) vs {b['winner']} (batch)")
    if s["outcome"]["status"] != b["outcome"]["status"] \
            or s["outcome"]["complete"] != b["outcome"]["complete"]:
        fail(f"query {i}: outcome mismatch {s['outcome']} vs {b['outcome']}")
    if "batch" in s:
        fail(f"query {i}: sequential record carries a batch section")
    if b.get("batch", {}).get("size") != 102:
        fail(f"query {i}: batch section {b.get('batch')!r}")
    # Label-reuse semantics per ceil(r) class survive batching: the class
    # either records once or hits, never misses outright.
    if b["labels"]["outcome"] == "miss":
        fail(f"query {i}: batched label outcome is a bare miss")

report = json.load(open(os.path.join(work, "report.json")))
if report.get("batched_queries") != 102:
    fail(f"report batched_queries {report.get('batched_queries')!r}")
if "latency_batched" not in report:
    fail("report lacks the latency_batched split")

print(f"  ok: 102 batched records match sequential winners; "
      f"report splits batched={report['batched_queries']}")
PYEOF
}

for san in address undefined; do
  dir="$PREFIX-$san"
  echo "== sanitizer: $san =="
  build "$dir" -DMIO_SANITIZE=$san
  echo "  [$san] batch_test"
  "$dir/tests/batch_test" --gtest_brief=1 \
    || { echo "FAILED: $san batch_test"; exit 1; }
done

# The differential workload runs under ASan: a dangling class grid after
# a mid-batch cache clear (or any use-after-free in the shared posting
# arrays) dies loudly here rather than corrupting results.
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
echo "== batch vs sequential differential (ASan) =="
run_workload_pair "$PREFIX-address/tools/mio" "$WORK" asan

# Fault storm through the batch path: workload.query_delay plus every IO
# site armed. Documented exit codes (0 or 2..11) only — never a signal.
echo "== fault storm: MIO_FAULT over run-workload --batch =="
CLI="$PREFIX-address/tools/mio"
for seed in 1 2 3 4; do
  set +e
  MIO_FAULT='io.*:p=0.3;workload.query_delay:nth=7' MIO_FAULT_SEED=$seed \
    "$CLI" run-workload --spec="$WORK/mix.spec" --in="$WORK/data.bin" \
    --qlog="$WORK/storm.jsonl" --batch > /dev/null 2> "$WORK/err.txt"
  rc=$?
  set -e
  if [ "$rc" -ne 0 ] && { [ "$rc" -lt 2 ] || [ "$rc" -gt 11 ]; }; then
    echo "FAILED: storm seed=$seed exited $rc (crash?)"
    cat "$WORK/err.txt"
    exit 1
  fi
  echo "  [storm] seed=$seed rc=$rc"
done

echo "check_batch: all passes clean"
