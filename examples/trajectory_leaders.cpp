// Trajectory-analysis scenario (paper Example 2): in a bird-tracking
// dataset, the most interactive sub-trajectory is a leader/central flock
// member — the paper's Fig. 2 trajectory interacts with ~30% of the set
// at r = 4 m. This example finds the leaders with a top-k MIO query and
// compares BIGrid against the NL and SG baselines on the same query.
//
//   ./build/examples/trajectory_leaders [--r=4.0] [--k=5] [--threads=1]
#include <cstdio>

#include "baseline/nested_loop.hpp"
#include "baseline/simple_grid.hpp"
#include "common/argparse.hpp"
#include "common/timer.hpp"
#include "core/mio_engine.hpp"
#include "datagen/presets.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 4.0);
  std::size_t k = static_cast<std::size_t>(args.GetInt("k", 5));
  int threads = static_cast<int>(args.GetInt("threads", 1));

  mio::ObjectSet birds = mio::datagen::MakePreset(
      mio::datagen::Preset::kBird2, mio::datagen::Scale::kQuick);
  mio::DatasetStats stats = birds.Stats();
  std::printf("bird sub-trajectories: %s (metres)\n\n",
              stats.ToString().c_str());

  // Leaders via BIGrid top-k.
  mio::MioEngine engine(birds);
  mio::QueryOptions opt;
  opt.k = k;
  opt.threads = threads;
  mio::QueryResult res = engine.Query(r, opt);

  std::printf("top-%zu most interactive sub-trajectories at r = %.1f m:\n", k,
              r);
  for (const mio::ScoredObject& s : res.topk) {
    double frac = 100.0 * s.score / (stats.n - 1);
    std::printf("  trajectory %5u: interacts with %4u others (%.1f%%)%s\n",
                s.id, s.score, frac,
                frac > 20.0 ? "  <- flock leader/core" : "");
  }

  // Cross-check the winner against the baselines and compare latency —
  // the shape of the paper's Fig. 5 on one (dataset, r) point.
  std::printf("\nalgorithm comparison on the same query:\n");
  std::printf("  %-8s %12s   best(score)\n", "algo", "time");
  std::printf("  %-8s %12s   %u (tau=%u)\n", "BIGrid",
              mio::FormatSeconds(res.stats.total_seconds).c_str(),
              res.best().id, res.best().score);

  mio::Timer t;
  mio::QueryResult sg = mio::SimpleGridQuery(birds, r, threads);
  std::printf("  %-8s %12s   %u (tau=%u)\n", "SG",
              mio::FormatSeconds(t.ElapsedSeconds()).c_str(), sg.best().id,
              sg.best().score);

  t.Restart();
  mio::QueryResult nl = mio::NestedLoopQuery(birds, r, threads);
  std::printf("  %-8s %12s   %u (tau=%u)\n", "NL",
              mio::FormatSeconds(t.ElapsedSeconds()).c_str(), nl.best().id,
              nl.best().score);

  if (nl.best().score != res.best().score ||
      sg.best().score != res.best().score) {
    std::printf("\nERROR: algorithms disagree!\n");
    return 1;
  }
  std::printf("\nall three algorithms agree on the winner's score.\n");
  return 0;
}
