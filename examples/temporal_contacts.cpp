// Temporal scenario (paper Appendix B): interactions that must be close
// in space AND time. With timestamped trajectories, "which animal had
// close encounters (within r metres, within delta time units) with the
// most others?" — a proximity/contact analysis. Sweeping delta shows how
// the temporal constraint thins out the spatial interaction graph.
//
//   ./build/examples/temporal_contacts [--r=6.0]
#include <cstdio>

#include "common/argparse.hpp"
#include "common/timer.hpp"
#include "core/temporal.hpp"
#include "datagen/trajectory_gen.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 6.0);

  mio::datagen::BirdConfig cfg;
  cfg.num_objects = 1500;
  cfg.points_per_object = 40;
  cfg.with_times = true;  // one time unit per fix
  mio::ObjectSet animals = mio::datagen::MakeBirdLike(cfg);
  std::printf("timestamped trajectories: %s, time span %.0f\n\n",
              animals.Stats().ToString().c_str(), animals.MaxTime());

  // Purely spatial first (delta = infinity is approximated by the span).
  double span = animals.MaxTime() + 1.0;
  std::printf("%-12s %-10s %-10s %-12s %s\n", "delta", "winner", "score",
              "time", "note");
  const double deltas[] = {span, 200.0, 50.0, 10.0, 1.0, 0.0};
  for (double delta : deltas) {
    mio::QueryResult res = mio::TemporalMioQuery(animals, r, delta);
    if (res.topk.empty()) continue;
    const char* note = "";
    if (delta == span) note = "(no real time constraint)";
    if (delta == 0.0) note = "(exact same timestamp required)";
    std::printf("%-12.1f %-10u %-10u %-12s %s\n", delta, res.best().id,
                res.best().score,
                mio::FormatSeconds(res.stats.total_seconds).c_str(), note);
  }

  std::printf("\nscores shrink monotonically as delta tightens: spatial\n"
              "closeness alone no longer counts as a contact.\n");
  return 0;
}
