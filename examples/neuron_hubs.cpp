// Neuroscience scenario (paper Example 1): find "hub" neurons — the ones
// whose arbors come within synapse-forming distance r of the most other
// neurons — while sweeping r the way a simulation study would. The sweep
// exercises BIGrid-label: fractional thresholds sharing one ceil(r) reuse
// the labels recorded by the first query, so later queries run faster.
//
//   ./build/examples/neuron_hubs [--full] [--threads=1]
#include <cstdio>

#include "common/argparse.hpp"
#include "common/timer.hpp"
#include "core/mio_engine.hpp"
#include "datagen/presets.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  bool full = args.GetBool("full", false);
  int threads = static_cast<int>(args.GetInt("threads", 1));

  std::printf("generating synthetic neuron tissue (%s scale)...\n",
              full ? "paper" : "quick");
  mio::ObjectSet neurons = mio::datagen::MakePreset(
      mio::datagen::Preset::kNeuron,
      full ? mio::datagen::Scale::kFull : mio::datagen::Scale::kQuick);
  std::printf("tissue: %s (coordinates in micrometres)\n\n",
              neurons.Stats().ToString().c_str());

  mio::MioEngine engine(neurons);

  // A study sweeps the synapse-formation threshold at fine granularity
  // (paper section I-B: "distance thresholds are usually fine-grained").
  // All of 4.0..4.8 share ceil(r) = 5, so one label recording serves the
  // whole sweep.
  const double radii[] = {4.0, 4.2, 4.4, 4.6, 4.8};
  std::printf("%-6s %-10s %-10s %-12s %-14s %s\n", "r[um]", "hub id",
              "score", "time", "verified", "labels");
  for (double r : radii) {
    mio::QueryOptions opt;
    opt.threads = threads;
    opt.use_labels = true;     // BIGrid-label: reuse if present ...
    opt.record_labels = true;  // ... record on the first query
    bool had_labels = engine.HasLabelsFor(r);
    mio::QueryResult res = engine.Query(r, opt);
    std::printf("%-6.1f %-10u %-10u %-12s %-14zu %s\n", r, res.best().id,
                res.best().score,
                mio::FormatSeconds(res.stats.total_seconds).c_str(),
                res.stats.num_verified,
                had_labels ? "reused" : "recorded");
  }

  // Drill into the strongest hub at the largest threshold: the top-k
  // variant gives the candidate hub population for follow-up analysis.
  mio::QueryOptions topk;
  topk.k = 5;
  topk.threads = threads;
  topk.use_labels = true;
  mio::QueryResult hubs = engine.Query(4.8, topk);
  std::printf("\nhub neurons at r = 4.8 um (top-5):\n");
  for (const mio::ScoredObject& s : hubs.topk) {
    std::printf("  neuron %5u: %u potential synaptic partners, %zu points\n",
                s.id, s.score, neurons[s.id].NumPoints());
  }
  return 0;
}
