// Quickstart: generate a small spatial dataset, run one MIO query, and
// inspect the result. This is the ten-line tour of the public API.
//
//   ./build/examples/quickstart [--r=4.0] [--k=3] [--threads=1]
#include <cstdio>

#include "common/argparse.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/mio_engine.hpp"
#include "datagen/trajectory_gen.hpp"

int main(int argc, char** argv) {
  mio::ArgParser args(argc, argv);
  double r = args.GetDouble("r", 4.0);
  std::size_t k = static_cast<std::size_t>(args.GetInt("k", 3));
  int threads = static_cast<int>(args.GetInt("threads", 1));

  // 1. Get a dataset: every object is a set of spatial points. Here, a
  //    small flock of synthetic bird sub-trajectories (metres, z = 0).
  mio::datagen::BirdConfig cfg;
  cfg.num_objects = 2000;
  cfg.points_per_object = 40;
  mio::ObjectSet objects = mio::datagen::MakeBirdLike(cfg);
  mio::DatasetStats stats = objects.Stats();
  std::printf("dataset: %s\n", stats.ToString().c_str());

  // 2. Build an engine and query: "which object interacts with the most
  //    other objects, where interacting means having a point pair within
  //    distance r?"
  mio::MioEngine engine(objects);
  mio::QueryOptions opt;
  opt.k = k;
  opt.threads = threads;
  mio::QueryResult res = engine.Query(r, opt);

  // 3. Read the answer.
  std::printf("\nMIO query, r = %.2f (top-%zu):\n", r, k);
  for (const mio::ScoredObject& s : res.topk) {
    std::printf("  object %6u interacts with %u objects (%.1f%% of the set)\n",
                s.id, s.score, 100.0 * s.score / (stats.n - 1));
  }

  // 4. The stats tell you where the time went (the paper's Table II rows).
  const mio::QueryStats& qs = res.stats;
  std::printf("\nphases: grid-mapping %s | lower-bounding %s | "
              "upper-bounding %s | verification %s\n",
              mio::FormatSeconds(qs.phases.grid_mapping).c_str(),
              mio::FormatSeconds(qs.phases.lower_bounding).c_str(),
              mio::FormatSeconds(qs.phases.upper_bounding).c_str(),
              mio::FormatSeconds(qs.phases.verification).c_str());
  std::printf("pruning: best lower bound %u, %zu candidates, "
              "%zu exactly verified (of %zu objects), %zu distance comps\n",
              qs.tau_low_max, qs.num_candidates, qs.num_verified, stats.n,
              qs.distance_computations);
  std::printf("index: %zu small cells, %zu large cells, %s\n",
              qs.cells_small, qs.cells_large,
              mio::FormatBytes(qs.index_memory_bytes).c_str());
  return 0;
}
